//! Statistical invariants the simulated fleet must share with the paper's
//! dataset — the calibration contract between `wtts-gwsim` and the
//! experiments. Thresholds are deliberately loose: they assert the *shape*,
//! not the exact numbers.

use wtts::core::dominance::dominant_devices;
use wtts::gwsim::{Fleet, FleetConfig};
use wtts::stats::{fit_zipf, pearson};
use wtts::timeseries::{TimeSeries, MINUTES_PER_WEEK};

fn fleet() -> Fleet {
    Fleet::new(FleetConfig {
        n_gateways: 16,
        weeks: 2,
        seed: 0xCA11B, // Not the experiments' seed: the shape must be robust.
        ..FleetConfig::default()
    })
}

/// §4.1: incoming and outgoing traffic are strongly correlated
/// (paper: mean 0.92 across gateways).
#[test]
fn incoming_outgoing_strongly_correlated() {
    let fleet = fleet();
    let mut cors = Vec::new();
    for gw in fleet.iter() {
        let r = pearson(
            gw.aggregate_incoming().values(),
            gw.aggregate_outgoing().values(),
        );
        if r.n > 1000 {
            cors.push(r.value);
        }
    }
    let mean = cors.iter().sum::<f64>() / cors.len() as f64;
    assert!(mean > 0.8, "mean in/out correlation {mean} too low");
}

/// §4.1: per-minute traffic values follow Zipf's law on most gateways.
#[test]
fn traffic_values_are_zipfian() {
    let fleet = fleet();
    let mut zipfian = 0;
    let mut tested = 0;
    for gw in fleet.iter() {
        let values = gw.aggregate_total().observed_values();
        if let Some(fit) = fit_zipf(&values, 20) {
            tested += 1;
            if fit.is_zipfian() {
                zipfian += 1;
            }
        }
    }
    assert!(tested >= 10);
    assert!(
        zipfian * 3 >= tested * 2,
        "only {zipfian}/{tested} gateways look zipfian"
    );
}

/// §6.2: almost every gateway has at least one dominant device, and never
/// an absurd number of them.
#[test]
fn most_gateways_have_a_dominant_device() {
    let fleet = fleet();
    let mut with_dominant = 0;
    let mut total = 0;
    for gw in fleet.iter() {
        let series: Vec<TimeSeries> = gw.devices.iter().map(|d| d.total()).collect();
        let gw_total = TimeSeries::sum_all(series.iter()).unwrap();
        let dom = dominant_devices(&gw_total, &series, 0.6);
        total += 1;
        if !dom.is_empty() {
            with_dominant += 1;
        }
        assert!(
            dom.len() <= 5,
            "gateway {} has {} dominants",
            gw.id,
            dom.len()
        );
    }
    assert!(
        with_dominant * 4 >= total * 3,
        "only {with_dominant}/{total} gateways have a dominant device"
    );
}

/// §3: the fleet's device census matches the deployment's scale — around
/// 8-14 devices per gateway including transient guests.
#[test]
fn device_census_scale() {
    let fleet = fleet();
    let devices: usize = fleet.iter().map(|gw| gw.devices.len()).sum();
    let per_gateway = devices as f64 / fleet.len() as f64;
    assert!(
        (5.0..=18.0).contains(&per_gateway),
        "devices per gateway = {per_gateway}"
    );
}

/// §3: some gateways have reporting gaps (the eligibility filters must have
/// something to filter), but the majority report every week.
#[test]
fn reporting_gaps_exist_but_are_minority() {
    let fleet = fleet();
    let per_week = MINUTES_PER_WEEK as usize;
    let mut complete = 0;
    for gw in fleet.iter() {
        let total = gw.aggregate_total();
        let weekly_ok = (0..2).all(|w| {
            total.values()[w * per_week..(w + 1) * per_week]
                .iter()
                .any(|v| v.is_finite())
        });
        if weekly_ok {
            complete += 1;
        }
    }
    assert!(complete >= fleet.len() / 2, "too many gappy gateways");
    // The default config's flaky fractions guarantee some gaps at fleet
    // scale; with 16 gateways this is probabilistic, so only assert the
    // filter keeps a majority.
}

/// Portables must actually come and go (their coverage is below the fixed
/// devices'), otherwise the connected-device analyses are vacuous.
#[test]
fn portables_are_intermittent() {
    let fleet = fleet();
    let mut portable_cov = Vec::new();
    let mut fixed_cov = Vec::new();
    for gw in fleet.iter() {
        for d in &gw.devices {
            if d.spec.guest_days.is_some() {
                continue;
            }
            let cov = d.incoming.coverage();
            if d.spec.role.is_portable() {
                portable_cov.push(cov);
            } else {
                fixed_cov.push(cov);
            }
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        avg(&portable_cov) < avg(&fixed_cov) - 0.05,
        "portables ({:.2}) should be less present than fixed ({:.2})",
        avg(&portable_cov),
        avg(&fixed_cov)
    );
}

/// The classifier recovers the majority of device types from MAC + name.
#[test]
fn classifier_recovers_most_types() {
    let fleet = fleet();
    let mut correct = 0;
    let mut total = 0;
    for gw in fleet.iter() {
        for d in &gw.devices {
            total += 1;
            if d.inferred_type() == d.spec.true_type {
                correct += 1;
            }
        }
    }
    let accuracy = correct as f64 / total as f64;
    assert!(
        accuracy > 0.6,
        "classifier accuracy {accuracy:.2} too low over {total} devices"
    );
    assert!(
        accuracy < 0.999,
        "a perfect classifier means no unlabeled devices — unrealistic"
    );
}
