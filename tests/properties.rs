//! Property-based tests of the workspace's cross-crate invariants.

use proptest::prelude::*;
use wtts::core::clustering::cluster_correlated;
use wtts::core::motif::{discover_motifs, MotifConfig};
use wtts::core::similarity::cor;
use wtts::stats::{euclidean, kendall, pearson, spearman, z_normalize};
use wtts::timeseries::{aggregate, CounterTrace, Granularity, Minute, TimeSeries};

/// A strategy for short plain sample vectors.
fn samples(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e7, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every correlation coefficient is symmetric and bounded.
    #[test]
    fn correlations_symmetric_and_bounded(
        x in samples(3..40),
        y in samples(3..40),
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        for f in [pearson, spearman, kendall] {
            let a = f(x, y);
            let b = f(y, x);
            prop_assert!((-1.0..=1.0).contains(&a.value));
            prop_assert!((0.0..=1.0).contains(&a.p_value));
            prop_assert!((a.value - b.value).abs() < 1e-9);
        }
    }

    /// Definition 1 is invariant to positive affine scaling.
    #[test]
    fn cor_scale_invariant(x in samples(8..50), scale in 0.001f64..1000.0) {
        let y: Vec<f64> = x.iter().map(|v| v * scale + 3.0).collect();
        let c = cor(&x, &y);
        // Either the series is degenerate (constant) or similarity is 1.
        let constant = x.iter().all(|&v| v == x[0]);
        if !constant {
            prop_assert!(c > 0.99, "cor = {c}");
        }
    }

    /// cor is invariant under z-normalization of either argument.
    #[test]
    fn cor_invariant_under_znorm(x in samples(8..40), y in samples(8..40)) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let c1 = cor(x, y);
        let zx = z_normalize(x);
        let c2 = cor(&zx, y);
        // Spearman/Kendall unchanged; Pearson unchanged; max therefore
        // unchanged (up to fp error) unless z-norm degenerates a constant.
        let x_constant = x.iter().all(|&v| v == x[0]);
        if !x_constant {
            prop_assert!((c1 - c2).abs() < 1e-6, "{c1} vs {c2}");
        }
    }

    /// Aggregation conserves the total and never lengthens the series.
    #[test]
    fn aggregation_conserves(values in samples(10..300), g in 1u32..30) {
        let s = TimeSeries::per_minute(values);
        let a = aggregate(&s, Granularity::minutes(g), 0);
        let rel = (a.total() - s.total()).abs() / s.total().max(1.0);
        prop_assert!(rel < 1e-9);
        prop_assert!(a.len() <= s.len());
    }

    /// Counter traces decode to non-negative per-minute series.
    #[test]
    fn counter_decode_non_negative(
        deltas in prop::collection::vec(0u64..1_000_000, 2..50),
    ) {
        let mut trace = CounterTrace::new();
        let mut cum = 0u64;
        for (i, d) in deltas.iter().enumerate() {
            cum += d;
            trace.push(Minute(i as u32), cum);
        }
        let series = trace.to_per_minute(Minute(0), deltas.len());
        for (i, v) in series.values().iter().enumerate().skip(1) {
            prop_assert!(v.is_finite());
            prop_assert!((*v - deltas[i] as f64).abs() < 1e-9);
        }
    }

    /// Euclidean distance satisfies the metric basics on complete data.
    #[test]
    fn euclidean_metric_basics(x in samples(2..30), y in samples(2..30)) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        prop_assert!(euclidean(x, y) >= 0.0);
        prop_assert!((euclidean(x, y) - euclidean(y, x)).abs() < 1e-9);
        prop_assert_eq!(euclidean(x, x), 0.0);
    }

    /// Clustering always partitions the input: every index exactly once.
    #[test]
    fn clustering_partitions(series in prop::collection::vec(samples(10..11), 2..8)) {
        let clusters = cluster_correlated(&series, 0.6);
        let mut seen: Vec<usize> = clusters.into_iter().flatten().collect();
        seen.sort_unstable();
        let expect: Vec<usize> = (0..series.len()).collect();
        prop_assert_eq!(seen, expect);
    }

    /// Motif members are disjoint across motifs and within bounds.
    #[test]
    fn motifs_are_disjoint(series in prop::collection::vec(samples(8..9), 4..16)) {
        let motifs = discover_motifs(&series, &MotifConfig::default());
        let mut seen = std::collections::HashSet::new();
        for m in &motifs {
            for &i in &m.members {
                prop_assert!(i < series.len());
                prop_assert!(seen.insert(i), "window {i} appears in two motifs");
            }
        }
    }
}
