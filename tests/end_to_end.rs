//! End-to-end pipeline tests: simulate → clean → aggregate → analyze,
//! exercising the workspace exactly as a downstream user would.

use wtts::core::background::{estimate_tau, remove_background};
use wtts::core::motif::{discover_motifs, MotifConfig};
use wtts::core::similarity::cor;
use wtts::core::{dominance, stationarity};
use wtts::gwsim::{Fleet, FleetConfig};
use wtts::timeseries::{aggregate, daily_windows, weekly_windows, Granularity, TimeSeries};

fn test_fleet() -> Fleet {
    Fleet::new(FleetConfig {
        n_gateways: 10,
        weeks: 2,
        seed: 0xE2E,
        ..FleetConfig::default()
    })
}

/// The gateway total must equal the sum of its devices at every minute.
#[test]
fn gateway_total_is_device_sum() {
    let fleet = test_fleet();
    let gw = fleet.gateway(0);
    let device_series: Vec<TimeSeries> = gw.devices.iter().map(|d| d.total()).collect();
    let manual = TimeSeries::sum_all(device_series.iter()).unwrap();
    let total = gw.aggregate_total();
    assert_eq!(manual.len(), total.len());
    for (a, b) in manual.values().iter().zip(total.values()) {
        match (a.is_finite(), b.is_finite()) {
            (true, true) => assert!((a - b).abs() < 1e-6),
            (false, false) => {}
            _ => panic!("missing-ness differs between device sum and total"),
        }
    }
}

/// Background removal must keep calendar alignment and only ever zero or
/// keep values.
#[test]
fn background_removal_pipeline() {
    let fleet = test_fleet();
    let gw = fleet.gateway(1);
    for d in &gw.devices {
        let Some(tau) = estimate_tau(&d.incoming) else {
            continue;
        };
        let active = remove_background(&d.incoming, tau);
        assert_eq!(active.len(), d.incoming.len());
        assert_eq!(active.start(), d.incoming.start());
        for (&orig, &cleaned) in d.incoming.values().iter().zip(active.values()) {
            if orig.is_finite() {
                assert!(cleaned == 0.0 || cleaned == orig);
            } else {
                assert!(cleaned.is_nan());
            }
        }
        assert!(active.total() <= d.incoming.total() + 1e-9);
    }
}

/// Aggregation must conserve total traffic at every granularity (no offset).
#[test]
fn aggregation_conserves_traffic() {
    let fleet = test_fleet();
    let total = fleet.gateway(2).aggregate_total();
    for g in [
        Granularity::minutes(5),
        Granularity::hours(1),
        Granularity::hours(8),
    ] {
        let agg = aggregate(&total, g, 0);
        let rel = (agg.total() - total.total()).abs() / total.total().max(1.0);
        assert!(
            rel < 1e-9,
            "traffic changed under {g} binning (rel err {rel})"
        );
    }
}

/// Weekly and daily windows of an aggregated series tile it completely.
#[test]
fn windows_tile_the_series() {
    let fleet = test_fleet();
    let total = fleet.gateway(3).aggregate_total();
    let agg = aggregate(&total, Granularity::hours(3), 0);
    let weeks = 2;
    let weekly = weekly_windows(&agg, weeks, 0);
    let daily = daily_windows(&agg, weeks, 0);
    assert_eq!(weekly.len(), 2);
    assert_eq!(daily.len(), 14);
    let weekly_sum: f64 = weekly.iter().map(|w| w.series.total()).sum();
    let daily_sum: f64 = daily.iter().map(|w| w.series.total()).sum();
    let scale = agg.total().max(1.0);
    assert!((weekly_sum - agg.total()).abs() / scale < 1e-9);
    assert!((daily_sum - agg.total()).abs() / scale < 1e-9);
}

/// Motifs discovered on simulated windows respect Definition 5's
/// constraints.
#[test]
fn discovered_motifs_respect_definition5() {
    let fleet = test_fleet();
    let mut windows = Vec::new();
    for gw in fleet.iter() {
        let agg = aggregate(&gw.aggregate_total(), Granularity::hours(3), 0);
        for w in daily_windows(&agg, 2, 0) {
            windows.push(w.series.into_values());
        }
    }
    let config = MotifConfig::default();
    let motifs = discover_motifs(&windows, &config);
    // With the default config the group threshold (¾·0.8) and the merge
    // threshold coincide at 0.6, so after merging every pair must still
    // reach 0.6, and every member must have entered through a φ-strong
    // partner that remains in the motif.
    let floor = config.group_threshold().min(config.merge_threshold);
    for m in &motifs {
        assert!(m.support() >= 2, "a motif needs at least two members");
        for &i in &m.members {
            let mut has_phi_partner = false;
            for &j in &m.members {
                if i == j {
                    continue;
                }
                let c = cor(&windows[i], &windows[j]);
                assert!(
                    c >= floor - 1e-6,
                    "members ({i},{j}) similarity {c} below the group floor"
                );
                if c >= config.phi - 1e-6 {
                    has_phi_partner = true;
                }
            }
            assert!(has_phi_partner, "member {i} has no phi-similar partner");
        }
    }
}

/// Dominance analysis returns well-formed, threshold-respecting rankings on
/// every simulated gateway.
#[test]
fn dominance_well_formed_across_fleet() {
    let fleet = test_fleet();
    for gw in fleet.iter() {
        let device_series: Vec<TimeSeries> = gw.devices.iter().map(|d| d.total()).collect();
        let total = TimeSeries::sum_all(device_series.iter()).unwrap();
        let dom = dominance::dominant_devices(&total, &device_series, 0.6);
        for (k, d) in dom.iter().enumerate() {
            assert_eq!(d.rank, k);
            assert!(d.similarity > 0.6);
            assert!(d.device < gw.devices.len());
        }
        for pair in dom.windows(2) {
            assert!(pair[0].similarity >= pair[1].similarity);
        }
    }
}

/// Strong stationarity on identical windows always holds; on opposite
/// windows never.
#[test]
fn stationarity_sanity_on_simulated_windows() {
    let fleet = test_fleet();
    // Find a gateway whose first week carries observations (late joiners
    // may miss it entirely).
    let w0 = fleet
        .iter()
        .find_map(|gw| {
            let agg = aggregate(&gw.aggregate_total(), Granularity::hours(8), 0);
            let weekly = weekly_windows(&agg, 2, 0);
            let w = weekly[0].series.values().to_vec();
            w.iter().any(|v| v.is_finite()).then_some(w)
        })
        .expect("some gateway reports in week 0");
    // A window is always strongly stationary against itself.
    let check = stationarity::strong_stationarity(&[&w0, &w0]).unwrap();
    assert!(check.is_stationary());
    // Against its negation the correlations must fail.
    let neg: Vec<f64> = w0.iter().map(|v| -v).collect();
    let check = stationarity::strong_stationarity(&[&w0, &neg]).unwrap();
    assert!(!check.correlations_pass);
}
