//! `wtts` — command-line front end for the analysis framework.
//!
//! Works on the simple CSV interchange format
//! `gateway,device,minute,bytes_in,bytes_out` (one row per reported
//! device-minute), which is also what `wtts simulate` emits — so the tool
//! closes the loop: simulate a fleet, or bring your own gateway export, and
//! run the paper's analyses on it.
//!
//! ```text
//! wtts simulate --gateways 4 --weeks 2 --out traces.csv
//! wtts analyze --input traces.csv
//! wtts motifs --input traces.csv --weeks 2
//! wtts maintenance --input traces.csv --duration 120
//! ```

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::process::ExitCode;
use wtts::core::background::{estimate_tau, remove_background};
use wtts::core::maintenance::WeeklyProfile;
use wtts::core::motif::{discover_motifs, MotifConfig};
use wtts::core::profile::GatewayProfile;
use wtts::gwsim::{write_traffic_csv, Fleet, FleetConfig};
use wtts::timeseries::{aggregate, daily_windows, Granularity, TimeSeries};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  wtts simulate --out FILE [--gateways N] [--weeks W] [--seed S]\n  \
wtts analyze --input FILE [--weeks W]\n  \
wtts motifs --input FILE [--weeks W] [--phi F]\n  \
wtts maintenance --input FILE [--duration MINUTES]\n\n\
CSV format: gateway,device,minute,bytes_in,bytes_out"
    );
    ExitCode::from(2)
}

/// Parsed command-line flags: `--key value` pairs after the subcommand.
struct Flags(BTreeMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Option<Flags> {
        let mut map = BTreeMap::new();
        let mut it = args.iter();
        while let Some(k) = it.next() {
            let key = k.strip_prefix("--")?;
            let value = it.next()?;
            map.insert(key.to_string(), value.clone());
        }
        Some(Flags(map))
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.0
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required flag --{key}"))
    }
}

/// Per-gateway device series loaded from the interchange CSV.
type LoadedFleet = BTreeMap<u64, Vec<TimeSeries>>;

/// Parses `gateway,device,minute,bytes_in,bytes_out` rows (header line
/// optional) into per-gateway, per-device overall-traffic series.
fn load_csv(reader: impl BufRead) -> Result<LoadedFleet, String> {
    // (gateway, device) -> (minute -> bytes).
    let mut sparse: BTreeMap<(u64, u64), Vec<(u32, f64)>> = BTreeMap::new();
    let mut max_minute = 0u32;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("read error at line {}: {e}", lineno + 1))?;
        let line = line.trim();
        if line.is_empty() || (lineno == 0 && line.starts_with("gateway")) {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 5 {
            return Err(format!(
                "line {}: expected 5 columns, got {}",
                lineno + 1,
                cols.len()
            ));
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, String> {
            s.trim()
                .parse()
                .map_err(|_| format!("line {}: bad {what}: {s}", lineno + 1))
        };
        let gw = parse_u64(cols[0], "gateway id")?;
        let dev = parse_u64(cols[1], "device id")?;
        let minute = parse_u64(cols[2], "minute")? as u32;
        let bytes_in: f64 = cols[3]
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad bytes_in: {}", lineno + 1, cols[3]))?;
        let bytes_out: f64 = cols[4]
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad bytes_out: {}", lineno + 1, cols[4]))?;
        max_minute = max_minute.max(minute);
        sparse
            .entry((gw, dev))
            .or_default()
            .push((minute, bytes_in.max(0.0) + bytes_out.max(0.0)));
    }
    if sparse.is_empty() {
        return Err("no data rows found".into());
    }
    let len = max_minute as usize + 1;
    let mut fleet: LoadedFleet = BTreeMap::new();
    for ((gw, _dev), samples) in sparse {
        let mut values = vec![f64::NAN; len];
        for (minute, bytes) in samples {
            let slot = &mut values[minute as usize];
            *slot = if slot.is_finite() {
                *slot + bytes
            } else {
                bytes
            };
        }
        fleet
            .entry(gw)
            .or_default()
            .push(TimeSeries::per_minute(values));
    }
    Ok(fleet)
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    let out_path = flags.require("out")?;
    let n: usize = flags.get("gateways", 4)?;
    let weeks: u32 = flags.get("weeks", 2)?;
    let seed: u64 = flags.get("seed", FleetConfig::default().seed)?;
    let fleet = Fleet::new(FleetConfig {
        n_gateways: n,
        weeks,
        seed,
        ..FleetConfig::default()
    });
    let file = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    let mut w = BufWriter::new(file);
    for (i, gw) in fleet.iter().enumerate() {
        if i == 0 {
            write_traffic_csv(&gw, &mut w).map_err(|e| e.to_string())?;
        } else {
            // Skip the repeated header for subsequent gateways.
            let mut buf = Vec::new();
            write_traffic_csv(&gw, &mut buf).map_err(|e| e.to_string())?;
            let text = String::from_utf8_lossy(&buf);
            for line in text.lines().skip(1) {
                writeln!(w, "{line}").map_err(|e| e.to_string())?;
            }
        }
        eprintln!("simulated gateway {} ({} devices)", gw.id, gw.devices.len());
    }
    eprintln!("wrote {out_path}");
    Ok(())
}

fn cmd_analyze(flags: &Flags) -> Result<(), String> {
    let input = flags.require("input")?;
    let weeks: u32 = flags.get("weeks", 2)?;
    let file = File::open(input).map_err(|e| format!("cannot open {input}: {e}"))?;
    let fleet = load_csv(BufReader::new(file))?;
    for (gw, devices) in &fleet {
        println!("== gateway {gw} ({} devices) ==", devices.len());
        match GatewayProfile::analyze(devices, weeks) {
            Some(profile) => print!("{}", profile.render()),
            None => println!("no observations"),
        }
        println!();
    }
    Ok(())
}

fn cmd_motifs(flags: &Flags) -> Result<(), String> {
    let input = flags.require("input")?;
    let weeks: u32 = flags.get("weeks", 2)?;
    let phi: f64 = flags.get("phi", 0.8)?;
    let file = File::open(input).map_err(|e| format!("cannot open {input}: {e}"))?;
    let fleet = load_csv(BufReader::new(file))?;

    let mut windows = Vec::new();
    let mut owners = Vec::new();
    for (gw, devices) in &fleet {
        let active: Vec<TimeSeries> = devices
            .iter()
            .map(|d| {
                let tau = estimate_tau(d).unwrap_or(f64::INFINITY);
                remove_background(d, tau)
            })
            .collect();
        let Some(total) = TimeSeries::sum_all(active.iter()) else {
            continue;
        };
        let binned = aggregate(&total, Granularity::hours(3), 0);
        for w in daily_windows(&binned, weeks, 0) {
            owners.push((*gw, w.label()));
            windows.push(w.series.into_values());
        }
    }
    let motifs = discover_motifs(
        &windows,
        &MotifConfig {
            phi,
            ..MotifConfig::default()
        },
    );
    println!(
        "{} motifs from {} daily windows across {} gateways (phi = {phi})",
        motifs.len(),
        windows.len(),
        fleet.len()
    );
    for (k, m) in motifs.iter().take(10).enumerate() {
        let members: Vec<String> = m
            .members
            .iter()
            .take(6)
            .map(|&i| format!("gw{}:{}", owners[i].0, owners[i].1))
            .collect();
        println!(
            "motif {:>2}: support {:>3}  e.g. {}{}",
            k + 1,
            m.support(),
            members.join(", "),
            if m.support() > 6 { ", ..." } else { "" }
        );
    }
    Ok(())
}

fn cmd_maintenance(flags: &Flags) -> Result<(), String> {
    let input = flags.require("input")?;
    let duration: u32 = flags.get("duration", 120)?;
    let file = File::open(input).map_err(|e| format!("cannot open {input}: {e}"))?;
    let fleet = load_csv(BufReader::new(file))?;
    for (gw, devices) in &fleet {
        let active: Vec<TimeSeries> = devices
            .iter()
            .map(|d| {
                let tau = estimate_tau(d).unwrap_or(f64::INFINITY);
                remove_background(d, tau)
            })
            .collect();
        let Some(total) = TimeSeries::sum_all(active.iter()) else {
            continue;
        };
        match WeeklyProfile::from_active_series(&total, 60).and_then(|p| p.recommend(duration)) {
            Some(w) => println!(
                "gateway {gw}: {} (expected {:.0} bytes, silent {:.0}%)",
                w.label(),
                w.expected_bytes,
                w.silent_share * 100.0
            ),
            None => println!("gateway {gw}: no window computable"),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let Some(flags) = Flags::parse(rest) else {
        return usage();
    };
    let result = match cmd.as_str() {
        "simulate" => cmd_simulate(&flags),
        "analyze" => cmd_analyze(&flags),
        "motifs" => cmd_motifs(&flags),
        "maintenance" => cmd_maintenance(&flags),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_parses() {
        let csv = "gateway,device,minute,bytes_in,bytes_out\n\
                   0,0,0,100,10\n\
                   0,0,1,200,20\n\
                   0,1,0,50,5\n\
                   1,0,3,999,99\n";
        let fleet = load_csv(csv.as_bytes()).unwrap();
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet[&0].len(), 2);
        // Device 0 of gateway 0: total traffic at minute 0 = 110.
        assert_eq!(fleet[&0][0].values()[0], 110.0);
        assert_eq!(fleet[&0][0].values()[1], 220.0);
        // Gateway 1 device covers up to minute 3, missing elsewhere.
        assert_eq!(fleet[&1][0].values()[3], 1098.0);
        assert!(fleet[&1][0].values()[0].is_nan());
    }

    #[test]
    fn csv_errors_are_reported() {
        assert!(load_csv("".as_bytes()).is_err());
        assert!(load_csv("1,2,3\n".as_bytes()).is_err());
        assert!(load_csv("a,b,c,d,e\n".as_bytes()).is_err());
    }

    #[test]
    fn flags_parse_pairs() {
        let args: Vec<String> = ["--weeks", "3", "--input", "x.csv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let flags = Flags::parse(&args).unwrap();
        assert_eq!(flags.get::<u32>("weeks", 1).unwrap(), 3);
        assert_eq!(flags.require("input").unwrap(), "x.csv");
        assert!(flags.require("missing").is_err());
        assert_eq!(flags.get::<u32>("absent", 7).unwrap(), 7);
    }

    #[test]
    fn flags_reject_malformed() {
        let args: Vec<String> = ["--dangling"].iter().map(|s| s.to_string()).collect();
        assert!(Flags::parse(&args).is_none());
        let args: Vec<String> = ["positional"].iter().map(|s| s.to_string()).collect();
        assert!(Flags::parse(&args).is_none());
    }
}
