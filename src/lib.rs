//! # wtts — Wireless Traffic Time Series analysis
//!
//! Facade crate re-exporting the full public API of the `wtts` workspace, a
//! reproduction of *"Characterizing Home Device Usage From Wireless Traffic
//! Time Series"* (EDBT 2016).
//!
//! The workspace is organized as:
//!
//! * [`timeseries`] — time-series containers, calendar arithmetic, binning and
//!   non-overlapping windowing.
//! * [`stats`] — correlation coefficients with significance tests, stationarity
//!   tests (KPSS/ADF), the Kolmogorov–Smirnov test, KDE, boxplot statistics,
//!   Zipf fitting, and baseline distance measures (Euclidean, DTW).
//! * [`gwsim`] — a residential-gateway fleet simulator that substitutes the
//!   paper's closed dataset.
//! * [`devid`] — device-type inference from MAC OUI prefixes and device names.
//! * [`core`] — the paper's analysis framework: correlation similarity,
//!   strong stationarity, best aggregation, dominant devices and motifs.
//!
//! See the repository `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! reproduction of every table and figure in the paper.

pub use wtts_core as core;
pub use wtts_devid as devid;
pub use wtts_gwsim as gwsim;
pub use wtts_stats as stats;
pub use wtts_timeseries as timeseries;
