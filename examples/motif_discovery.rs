//! Motif discovery across homes (Section 7.2 of the paper).
//!
//! Extracts daily usage windows from a simulated fleet, aggregates them at
//! the paper's best daily binning (3 hours) and mines recurring patterns.
//!
//! ```text
//! cargo run --release --example motif_discovery
//! ```

use wtts::core::background::{estimate_tau, remove_background};
use wtts::core::motif::{discover_motifs, MotifConfig, WindowRef};
use wtts::gwsim::{Fleet, FleetConfig};
use wtts::timeseries::{aggregate, daily_windows, Granularity, TimeSeries};

fn main() {
    let weeks = 2;
    let fleet = Fleet::new(FleetConfig {
        n_gateways: 30,
        weeks,
        ..FleetConfig::default()
    });

    // Collect daily windows of *active* traffic (background removed per
    // device, Section 6.1) at 3-hour binning.
    let mut refs: Vec<WindowRef> = Vec::new();
    let mut windows: Vec<Vec<f64>> = Vec::new();
    for gw in fleet.iter() {
        let active: Vec<TimeSeries> = gw
            .devices
            .iter()
            .map(|d| {
                let tau_in = estimate_tau(&d.incoming).unwrap_or(f64::INFINITY);
                let tau_out = estimate_tau(&d.outgoing).unwrap_or(f64::INFINITY);
                remove_background(&d.incoming, tau_in).add(&remove_background(&d.outgoing, tau_out))
            })
            .collect();
        let total = TimeSeries::sum_all(active.iter()).expect("devices");
        let binned = aggregate(&total, Granularity::hours(3), 0);
        for w in daily_windows(&binned, weeks, 0) {
            refs.push(WindowRef {
                gateway: gw.id,
                week: w.week,
                weekday: w.weekday,
            });
            windows.push(w.series.into_values());
        }
    }
    println!(
        "collected {} daily windows from {} gateways",
        windows.len(),
        fleet.len()
    );

    // Definition 5: individual similarity >= 0.8, group similarity >= 0.6,
    // motifs merged when all cross pairs reach 0.6.
    let motifs = discover_motifs(&windows, &MotifConfig::default());
    println!("discovered {} motifs\n", motifs.len());

    for (k, motif) in motifs.iter().take(5).enumerate() {
        let pattern = motif.average_pattern(&windows);
        let peak = pattern
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        println!(
            "motif {}: support {}, {} gateways, {:.0}% weekend days, peak at {:02}-{:02}h",
            k + 1,
            motif.support(),
            motif.gateways(&refs).len(),
            motif.weekend_fraction(&refs) * 100.0,
            peak * 3,
            peak * 3 + 3
        );
        // A tiny ASCII sparkline of the average pattern.
        let max = pattern.iter().cloned().fold(f64::MIN, f64::max).max(1.0);
        let bars: String = pattern
            .iter()
            .map(|&v| {
                let i = if v.is_finite() {
                    (v / max * 7.0) as usize
                } else {
                    0
                };
                [' ', '.', ':', '-', '=', '+', '*', '#'][i.min(7)]
            })
            .collect();
        println!("  00h [{bars}] 24h");
    }
}
