//! Streaming analytics — the paper's future-work section made concrete.
//!
//! Learns motif templates from a training fleet in batch, then processes a
//! new gateway's measurements **one minute at a time**: an
//! [`OnlinePearson`] tracks the in/out correlation incrementally, a
//! [`WindowAccumulator`] folds the stream into 3-hour-binned daily windows,
//! and a [`MotifMatcher`] assigns every completed day to a known behavior
//! or flags it as novel.
//!
//! ```text
//! cargo run --release --example streaming_monitor
//! ```

use wtts::core::motif::{discover_motifs, MotifConfig, WindowRef};
use wtts::core::streaming::{MatchOutcome, MotifMatcher, OnlinePearson, WindowAccumulator};
use wtts::gwsim::{Fleet, FleetConfig};
use wtts::timeseries::{aggregate, daily_windows, Granularity, Minute, WindowKind};

fn main() {
    let weeks = 2;
    let fleet = Fleet::new(FleetConfig {
        n_gateways: 25,
        weeks,
        ..FleetConfig::default()
    });

    // ---- Batch phase: learn motif templates from gateways 0..24. --------
    let mut refs = Vec::new();
    let mut windows = Vec::new();
    for gw in fleet.iter().take(24) {
        let agg = aggregate(&gw.aggregate_total(), Granularity::hours(3), 0);
        for w in daily_windows(&agg, weeks, 0) {
            refs.push(WindowRef {
                gateway: gw.id,
                week: w.week,
                weekday: w.weekday,
            });
            windows.push(w.series.into_values());
        }
    }
    let motifs = discover_motifs(&windows, &MotifConfig::default());
    let templates: Vec<_> = motifs
        .iter()
        .filter(|m| m.support() >= 4)
        .enumerate()
        .map(|(k, m)| {
            m.to_template(
                format!("motif-{} (support {})", k + 1, m.support()),
                &windows,
            )
        })
        .collect();
    println!(
        "learned {} motif templates from {} training windows\n",
        templates.len(),
        windows.len()
    );

    // ---- Streaming phase: gateway 24 arrives minute by minute. ----------
    let live = fleet.gateway(24);
    let incoming = live.aggregate_incoming();
    let outgoing = live.aggregate_outgoing();

    let mut inout = OnlinePearson::new();
    let mut accumulator = WindowAccumulator::new(WindowKind::Daily, 180);
    let mut matcher = MotifMatcher::new(templates, 0.8);

    for m in 0..incoming.len() {
        let (i, o) = (incoming.values()[m], outgoing.values()[m]);
        inout.push(i, o);
        let total = if i.is_finite() || o.is_finite() {
            i.max(0.0) + o.max(0.0)
        } else {
            f64::NAN
        };
        for window in accumulator.push(Minute(m as u32), total) {
            let day = window.weekday.map(|d| d.to_string()).unwrap_or_default();
            match matcher.observe(&window.values) {
                MatchOutcome::Matched { index, similarity } => println!(
                    "w{} {day}: matches {} (cor {similarity:.2})",
                    window.week,
                    matcher.templates()[index].name
                ),
                MatchOutcome::Novel => {
                    println!("w{} {day}: NOVEL behavior — no template fits", window.week)
                }
                MatchOutcome::Insufficient => {
                    println!("w{} {day}: too few observations", window.week)
                }
            }
        }
    }

    println!(
        "\nstreamed {} minutes; online in/out correlation = {:.3} over {} pairs",
        incoming.len(),
        inout.correlation().unwrap_or(f64::NAN),
        inout.len()
    );
    println!(
        "template support after streaming: {:?}; novel days: {}",
        matcher.support(),
        matcher.novel_count()
    );
}
