//! Choosing the best aggregation granularity (Section 7.1 of the paper).
//!
//! Sweeps candidate binnings for one gateway and reports the week-to-week
//! and same-weekday correlations per granularity, plus strong-stationarity
//! verdicts — Definition 3 in action.
//!
//! ```text
//! cargo run --release --example aggregation_tuning [gateway_id]
//! ```

use wtts::core::aggregation::{
    best_score, daily_window_correlation, stationary_weekday_count, weekly_stationarity,
    weekly_window_correlation,
};
use wtts::gwsim::{Fleet, FleetConfig};
use wtts::timeseries::Granularity;

fn main() {
    let id: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let weeks = 4;
    let fleet = Fleet::new(FleetConfig {
        n_gateways: id + 1,
        weeks,
        ..FleetConfig::default()
    });
    let gw = fleet.gateway(id);
    let total = gw.aggregate_total();
    println!(
        "gateway {id} ({}, regularity {:.2}), {} weeks of data\n",
        gw.archetype, gw.regularity, weeks
    );

    println!("weekly patterns (windows = whole weeks):");
    println!(
        "{:>12} {:>10} {:>12}",
        "granularity", "avg cor", "stationary?"
    );
    let mut weekly_scores = Vec::new();
    for g in Granularity::weekly_candidates() {
        let Some(score) = weekly_window_correlation(&total, weeks, g, 0) else {
            continue;
        };
        let stationary = weekly_stationarity(&total, weeks, g, 0)
            .map(|c| c.is_stationary())
            .unwrap_or(false);
        println!(
            "{:>12} {:>10.3} {:>12}",
            g.to_string(),
            score.mean_correlation,
            stationary
        );
        weekly_scores.push(score);
    }
    if let Some(best) = best_score(&weekly_scores) {
        println!(
            "--> best weekly aggregation: {} (mean correlation {:.3})\n",
            best.granularity, best.mean_correlation
        );
    }

    println!("daily patterns (Mondays vs Mondays, ...):");
    println!(
        "{:>12} {:>10} {:>17}",
        "granularity", "avg cor", "stationary days"
    );
    let mut daily_scores = Vec::new();
    for g in Granularity::daily_candidates() {
        let Some(score) = daily_window_correlation(&total, weeks, g, 0) else {
            continue;
        };
        let days = stationary_weekday_count(&total, weeks, g, 0);
        println!(
            "{:>12} {:>10.3} {:>17}",
            g.to_string(),
            score.mean_correlation,
            days
        );
        daily_scores.push(score);
    }
    if let Some(best) = best_score(&daily_scores) {
        println!(
            "--> best daily aggregation: {} (mean correlation {:.3})",
            best.granularity, best.mean_correlation
        );
    }
}
