//! Choosing the best aggregation granularity (Section 7.1 of the paper).
//!
//! Sweeps candidate binnings for one gateway and reports the week-to-week
//! and same-weekday correlations per granularity, plus strong-stationarity
//! verdicts — Definition 3 in action. Both sweeps run through the
//! granularity-pyramid engine, which shares the gateway's prefix sums
//! across every candidate.
//!
//! ```text
//! cargo run --release --example aggregation_tuning [gateway_id]
//! ```

use wtts::core::aggregation::best_score;
use wtts::core::sweep::{daily_sweep, weekly_sweep, SweepConfig};
use wtts::gwsim::{Fleet, FleetConfig};
use wtts::timeseries::Granularity;

fn main() {
    let id: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let weeks = 4;
    let fleet = Fleet::new(FleetConfig {
        n_gateways: id + 1,
        weeks,
        ..FleetConfig::default()
    });
    let gw = fleet.gateway(id);
    let total = gw.aggregate_total();
    println!(
        "gateway {id} ({}, regularity {:.2}), {} weeks of data\n",
        gw.archetype, gw.regularity, weeks
    );

    let series = std::slice::from_ref(&total);
    let config = SweepConfig::default();

    println!("weekly patterns (windows = whole weeks):");
    println!(
        "{:>12} {:>10} {:>12}",
        "granularity", "avg cor", "stationary?"
    );
    let candidates: Vec<(Granularity, u32)> = Granularity::weekly_candidates()
        .iter()
        .map(|&g| (g, 0))
        .collect();
    let weekly = weekly_sweep(series, weeks, &candidates, &config, None);
    let mut weekly_scores = Vec::new();
    for cell in &weekly.cells[0] {
        let Some(score) = cell.score else {
            continue;
        };
        let stationary = cell
            .stationarity
            .map(|c| c.is_stationary())
            .unwrap_or(false);
        println!(
            "{:>12} {:>10.3} {:>12}",
            score.granularity.to_string(),
            score.mean_correlation,
            stationary
        );
        weekly_scores.push(score);
    }
    if let Some(best) = best_score(&weekly_scores) {
        println!(
            "--> best weekly aggregation: {} (mean correlation {:.3})\n",
            best.granularity, best.mean_correlation
        );
    }

    println!("daily patterns (Mondays vs Mondays, ...):");
    println!(
        "{:>12} {:>10} {:>17}",
        "granularity", "avg cor", "stationary days"
    );
    let daily = daily_sweep(
        series,
        weeks,
        Granularity::daily_candidates(),
        0,
        &config,
        None,
    );
    let mut daily_scores = Vec::new();
    for cell in &daily.cells[0] {
        let Some(score) = cell.score else {
            continue;
        };
        println!(
            "{:>12} {:>10.3} {:>17}",
            score.granularity.to_string(),
            score.mean_correlation,
            cell.stationary_weekday_count()
        );
        daily_scores.push(score);
    }
    if let Some(best) = best_score(&daily_scores) {
        println!(
            "--> best daily aggregation: {} (mean correlation {:.3})",
            best.granularity, best.mean_correlation
        );
    }
}
