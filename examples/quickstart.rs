//! Quickstart: simulate a small gateway fleet and run the paper's core
//! measure on it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wtts::core::similarity::correlation_similarity;
use wtts::core::{background, dominance};
use wtts::gwsim::{Fleet, FleetConfig};
use wtts::timeseries::{aggregate, Granularity, TimeSeries};

fn main() {
    // A 12-gateway, 2-week deployment. Generation is deterministic in the
    // seed, so this example always prints the same numbers.
    let fleet = Fleet::new(FleetConfig {
        n_gateways: 12,
        weeks: 2,
        seed: 7,
        ..FleetConfig::default()
    });

    println!(
        "simulated {} gateways over {} weeks\n",
        fleet.len(),
        fleet.config().weeks
    );

    // Take one gateway and look at its overall traffic (gateway 1 of this
    // seed has a clearly dominant device, which makes a better first tour).
    let gw = fleet.gateway(1);
    let total = gw.aggregate_total();
    println!(
        "gateway 1: archetype {}, {} residents, {} devices, {:.1} GB total traffic",
        gw.archetype,
        gw.residents,
        gw.devices.len(),
        total.total() / 1e9
    );

    // Correlation similarity (Definition 1) between two gateways' hourly
    // aggregated traffic: the maximum statistically significant coefficient.
    let a = aggregate(&total, Granularity::hours(1), 0);
    let b = aggregate(
        &fleet.gateway(2).aggregate_total(),
        Granularity::hours(1),
        0,
    );
    let sim = correlation_similarity(a.values(), b.values());
    println!(
        "cor(gateway1, gateway2) at 1h binning = {:.3} (from {:?})",
        sim.value, sim.best
    );

    // Background thresholding (Section 6.1): the upper boxplot whisker,
    // capped at 5 kB/min.
    let device = &gw.devices[0];
    let tau = background::estimate_tau(&device.incoming).unwrap_or(f64::NAN);
    println!(
        "\ndevice '{}' ({}): background threshold tau = {:.0} B/min (capped {:.0})",
        device.spec.name,
        device.inferred_type(),
        tau,
        background::capped_tau(tau),
    );

    // Dominant devices (Definition 4): who shapes this gateway's traffic?
    let device_series: Vec<TimeSeries> = gw.devices.iter().map(|d| d.total()).collect();
    let dominants = dominance::dominant_devices(&total, &device_series, dominance::DOMINANCE_PHI);
    println!("\ndominant devices (phi = {}):", dominance::DOMINANCE_PHI);
    for d in &dominants {
        let dev = &gw.devices[d.device];
        println!(
            "  #{} {} ({}) similarity {:.2}",
            d.rank + 1,
            dev.spec.name,
            dev.inferred_type(),
            d.similarity
        );
    }
    if dominants.is_empty() {
        println!("  none — no device tracks the total closely enough");
    }
}
