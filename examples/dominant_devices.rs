//! Dominant-device analysis of one home (Section 6.2 of the paper).
//!
//! Finds the devices whose traffic shapes the gateway's overall behavior,
//! and contrasts the correlation-based notion against the Euclidean and
//! traffic-volume baselines.
//!
//! ```text
//! cargo run --release --example dominant_devices [gateway_id]
//! ```

use wtts::core::dominance::{
    dominant_devices, euclidean_ranking, ranking_agreement, volume_ranking,
};
use wtts::gwsim::{Fleet, FleetConfig};
use wtts::timeseries::TimeSeries;

fn main() {
    let id: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let fleet = Fleet::new(FleetConfig {
        n_gateways: id + 1,
        weeks: 4,
        ..FleetConfig::default()
    });
    let gw = fleet.gateway(id);
    println!(
        "gateway {id}: {} residents, archetype {}, {} devices\n",
        gw.residents,
        gw.archetype,
        gw.devices.len()
    );

    let device_series: Vec<TimeSeries> = gw.devices.iter().map(|d| d.total()).collect();
    let total = TimeSeries::sum_all(device_series.iter()).expect("devices");

    // Definition 4 at the paper's phi = 0.6 and the strict 0.8.
    for phi in [0.6, 0.8] {
        let dominants = dominant_devices(&total, &device_series, phi);
        println!("phi = {phi}: {} dominant device(s)", dominants.len());
        for d in &dominants {
            let dev = &gw.devices[d.device];
            let share = device_series[d.device].total() / total.total();
            println!(
                "  rank {}: {:<22} {:<12} cor {:.2}  volume share {:>5.1}%",
                d.rank + 1,
                dev.spec.name,
                dev.inferred_type().to_string(),
                d.similarity,
                share * 100.0
            );
        }
        println!();
    }

    // How do the baselines rank the same devices?
    let dominants = dominant_devices(&total, &device_series, 0.6);
    let zero_filled: Vec<TimeSeries> = device_series
        .iter()
        .map(|d| {
            let mut z = d.clone();
            for v in z.values_mut() {
                if !v.is_finite() {
                    *v = 0.0;
                }
            }
            z
        })
        .collect();
    let euclid = euclidean_ranking(&total, &zero_filled);
    let volume = volume_ranking(&device_series);
    println!(
        "agreement with Euclidean ranking:      {}/{}",
        ranking_agreement(&dominants, &euclid),
        dominants.len()
    );
    println!(
        "agreement with traffic-volume ranking: {}/{}",
        ranking_agreement(&dominants, &volume),
        dominants.len()
    );
    println!(
        "\nclosest by Euclidean: {}  |  biggest by volume: {}",
        gw.devices[euclid[0]].spec.name, gw.devices[volume[0]].spec.name
    );
}
