//! Fleet-scale streaming ingest — gwsim → sharded pipeline → online motifs.
//!
//! Learns motif templates from a training fleet in batch, then replays a
//! *separate* fleet's raw counter reports — cumulative byte counters per
//! device, pushed through a lossy, duplicating, reordering channel — into
//! the sharded [`IngestPipeline`]. Every malformed report becomes a counted
//! outcome instead of a panic, completed calendar windows are matched
//! against the learned templates online, and per-device dominance is
//! tracked incrementally.
//!
//! ```text
//! cargo run --release --example fleet_ingest
//! cargo run --release --example fleet_ingest -- --metrics-json metrics.json
//! cargo run --release --example fleet_ingest -- --wal-dir /tmp/wtts-wal --kill-after 30000
//! cargo run --release --example fleet_ingest -- --wal-dir /tmp/wtts-wal --recover --takeover
//! cargo run --release --example fleet_ingest -- --wal-dir /tmp/wtts-wal --fault-seed 42
//! ```
//!
//! With `--metrics-json [PATH]` the final [`MetricsSnapshot`] — counters,
//! per-shard queue gauges and batch-stage latency histograms, plus the
//! conservation verdict — is emitted as JSON to `PATH` (or stdout when no
//! path is given).
//!
//! With `--wal-dir DIR` the ingest runs through the durable
//! [`DurablePipeline`]: every consumed report is logged to rotated,
//! per-shard write-ahead segments in `DIR` and decoder state is
//! snapshotted periodically (snapshot-covered segments are compacted).
//! `--kill-after N` aborts the process (no unwinding, no flushing — a real
//! crash) after `N` reports have been offered; a later invocation with
//! `--recover` loads the durable prefix, replays the WAL tail, re-feeds
//! the stream and finishes with bit-identical results. A crash leaves a
//! stale single-writer lock behind; `--takeover` fences it (a live owner
//! is always refused). `--fsync` makes WAL flushes and snapshots durable
//! against OS crashes too; `--snapshot-every N` and `--segment-bytes N`
//! override the snapshot cadence and segment rotation size.
//!
//! `--fault-seed S` injects a deterministic I/O fault schedule (EIO,
//! short writes, ENOSPC, lying fsync, torn renames) of `--fault-ops N`
//! faults (default 8) into the durable layer: the run retries transient
//! faults and, past the retry budget, degrades to a typed, counted
//! durability gap instead of crashing.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use wtts::core::ingest::{IngestConfig, IngestPipeline, IngestReport};
use wtts::core::motif::{discover_motifs, MotifConfig};
use wtts::core::{
    Durability, DurableConfig, DurablePipeline, DurableRun, FaultKind, FaultSpec, FaultyFs,
    KillMode, KillPoint,
};
use wtts::gwsim::{
    fault_schedule, gateway_reports, ChannelConfig, FaultOp, Fleet, FleetConfig, TaggedReport,
};
use wtts::timeseries::{aggregate, daily_windows, Granularity};

fn envelope(t: &TaggedReport) -> IngestReport {
    IngestReport {
        gateway: t.gateway as u64,
        device: t.device as u32,
        at: t.report.at,
        cum_in: t.report.cum_in,
        cum_out: t.report.cum_out,
    }
}

#[derive(Default)]
struct Args {
    /// `--metrics-json [PATH]`: `None` = flag absent, `Some(None)` = emit
    /// to stdout, `Some(Some(path))` = write to `path`.
    metrics_json: Option<Option<String>>,
    wal_dir: Option<String>,
    recover: bool,
    takeover: bool,
    kill_after: Option<u64>,
    fsync: bool,
    snapshot_every: Option<u64>,
    segment_bytes: Option<u64>,
    fault_seed: Option<u64>,
    fault_ops: Option<u64>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| -> Option<String> {
        let at = argv.iter().position(|a| a == flag)?;
        argv.get(at + 1).filter(|a| !a.starts_with("--")).cloned()
    };
    let numeric = |flag: &str| -> Option<u64> {
        value_of(flag).map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} expects a number, got {v:?}"))
        })
    };
    Args {
        metrics_json: argv
            .iter()
            .position(|a| a == "--metrics-json")
            .map(|_| value_of("--metrics-json")),
        wal_dir: value_of("--wal-dir"),
        recover: argv.iter().any(|a| a == "--recover"),
        takeover: argv.iter().any(|a| a == "--takeover"),
        kill_after: numeric("--kill-after"),
        fsync: argv.iter().any(|a| a == "--fsync"),
        snapshot_every: numeric("--snapshot-every"),
        segment_bytes: numeric("--segment-bytes"),
        fault_seed: numeric("--fault-seed"),
        fault_ops: numeric("--fault-ops"),
    }
}

/// The simulator's fault kinds mapped onto the durable layer's injector.
fn fault_kind(op: FaultOp) -> FaultKind {
    match op {
        FaultOp::WriteEio => FaultKind::WriteEio,
        FaultOp::WriteShort => FaultKind::WriteShort,
        FaultOp::WriteEnospc => FaultKind::WriteEnospc,
        FaultOp::SyncLies => FaultKind::SyncLies,
        FaultOp::RenameTorn => FaultKind::RenameTorn,
    }
}

fn main() {
    let args = parse_args();
    let metrics_json = args.metrics_json.clone();
    // ---- Batch phase: learn daily motif templates from a training fleet. --
    let training = Fleet::new(FleetConfig {
        n_gateways: 24,
        weeks: 2,
        ..FleetConfig::default()
    });
    let mut windows = Vec::new();
    for gw in training.iter() {
        let agg = aggregate(&gw.aggregate_total(), Granularity::hours(3), 0);
        for w in daily_windows(&agg, 2, 0) {
            windows.push(w.series.into_values());
        }
    }
    let templates: Vec<_> = discover_motifs(&windows, &MotifConfig::default())
        .iter()
        .filter(|m| m.support() >= 4)
        .enumerate()
        .map(|(k, m)| m.to_template(format!("motif-{}", k + 1), &windows))
        .collect();
    println!(
        "learned {} motif templates from {} training windows",
        templates.len(),
        windows.len()
    );

    // ---- Ingest phase: a fresh fleet uploads raw counter reports. --------
    let fleet_size = 40;
    let fleet = Fleet::new(FleetConfig {
        n_gateways: fleet_size,
        weeks: 1,
        seed: 7,
        ..FleetConfig::default()
    });
    let channel = ChannelConfig {
        loss: 0.02,
        duplication: 0.01,
        reorder: 0.01,
    };
    let mut reports = Vec::new();
    for id in 0..fleet_size {
        let gw = fleet.gateway(id);
        let mut rng = SmallRng::seed_from_u64(100 + id as u64);
        reports.extend(gateway_reports(&gw, channel, &mut rng).iter().map(envelope));
    }
    println!(
        "replaying {} reports from {fleet_size} gateways through a lossy channel\n",
        reports.len()
    );

    let config = IngestConfig {
        shards: 4,
        ..IngestConfig::default()
    };
    let summary = match &args.wal_dir {
        None => IngestPipeline::new(config, templates).run(reports),
        Some(dir) => {
            let mut durable = DurableConfig::new(dir);
            durable.fsync = args.fsync;
            durable.takeover = args.takeover;
            if let Some(every) = args.snapshot_every {
                durable.snapshot_every_reports = every;
            }
            if let Some(bytes) = args.segment_bytes {
                durable.segment_bytes = bytes;
            }
            if let Some(seed) = args.fault_seed {
                let n = args.fault_ops.unwrap_or(8) as usize;
                let specs: Vec<FaultSpec> = fault_schedule(seed, 2_000, n)
                    .iter()
                    .map(|e| FaultSpec {
                        op: e.op,
                        kind: fault_kind(e.kind),
                    })
                    .collect();
                println!(
                    "injecting {} seeded I/O faults (seed {seed}) into the durable layer",
                    specs.len()
                );
                durable.fs = Arc::new(FaultyFs::new(&specs));
            }
            let mut pipeline = if args.recover {
                let p = DurablePipeline::recover(config, templates, durable)
                    .expect("recover durable pipeline");
                let m = p.metrics().snapshot();
                println!(
                    "recovered durable state from {dir}: {} reports replayed from the WAL \
                     ({} torn record{} truncated), resuming at seq {}",
                    m.wal_records,
                    m.wal_torn_records,
                    if m.wal_torn_records == 1 { "" } else { "s" },
                    p.resume_seq()
                );
                p
            } else {
                DurablePipeline::create(config, templates, durable)
                    .expect("create durable pipeline")
            };
            let kill = args.kill_after.map(|after_offered| KillPoint {
                after_offered,
                mode: KillMode::SigKill,
            });
            match pipeline.run(reports, kill).expect("durable ingest run") {
                DurableRun::Completed {
                    summary,
                    state_digest,
                    durability,
                } => {
                    println!("state digest: {state_digest:016x}");
                    match durability {
                        Durability::Durable => println!("durability: durable (no gap)"),
                        Durability::Degraded { gap } => println!(
                            "durability: DEGRADED — {gap} reports in a typed durability gap"
                        ),
                    }
                    assert!(
                        summary.metrics.durably_accounted(),
                        "every offered report must be in the WAL or a typed gap"
                    );
                    *summary
                }
                // `KillMode::SigKill` aborts the process inside `run`.
                DurableRun::Killed => unreachable!("SigKill does not return"),
            }
        }
    };

    // ---- Results: metrics first, then per-gateway highlights. ------------
    let m = &summary.metrics;
    println!("ingested {} / {} offered", m.ingested, m.offered);
    println!(
        "dropped: {} late, {} duplicate, {} future-jump ({} reset-spanning gaps voided)",
        m.dropped_late, m.dropped_duplicate, m.dropped_future_jump, m.reset_spanning_gaps
    );
    assert!(m.fully_accounted(), "every report must be accounted for");
    println!(
        "windows: {} sealed, {} matched, {} novel, {} partial",
        m.windows_sealed, m.windows_matched, m.windows_novel, m.partial_windows
    );
    println!("fleet-wide template support: {:?}\n", summary.support);

    for g in summary.gateways.iter().take(8) {
        let dominant = g
            .dominants
            .first()
            .map(|d| format!("device {} (cor {:.2})", d.device, d.similarity))
            .unwrap_or_else(|| "none".into());
        // `windows_matched` counts the trailing partial window too, so it
        // can exceed `windows_sealed` by one.
        println!(
            "gateway {:>2}: {} devices, {} windows sealed, {} matched, dominant: {}",
            g.gateway, g.devices, g.windows_sealed, g.windows_matched, dominant
        );
    }

    if let Some(target) = metrics_json {
        let json = m.to_json();
        match target {
            Some(path) => {
                std::fs::write(&path, &json).expect("write metrics JSON");
                println!("\nmetrics JSON written to {path}");
            }
            None => println!("\n{json}"),
        }
    }
}
