//! Fleet-wide inventory report: what a simulated ISP deployment looks like,
//! and how well the MAC/name device classifier recovers ground truth.
//!
//! ```text
//! cargo run --release --example fleet_report [n_gateways]
//! cargo run --release --example fleet_report -- 12 --metrics-json metrics.json
//! ```
//!
//! With `--metrics-json [PATH]` the report additionally runs an
//! *instrumented* analysis pass — profile build, condensed-matrix row fill,
//! motif discovery and a stationarity sweep over the fleet's daily windows,
//! observed by a [`PipelineObs`] registry — and emits the resulting
//! [`ObsSnapshot`] (stage spans, counters, near-threshold instrument,
//! conservation verdict) as JSON to `PATH` (or stdout when no path is
//! given).

use std::collections::HashMap;
use wtts::core::lagsearch::{lag_search, LagSearchConfig};
use wtts::core::motif::{discover_motifs_observed, MotifConfig};
use wtts::core::obs::PipelineObs;
use wtts::core::{strong_stationarity_observed, STATIONARITY_COR};
use wtts::devid::DeviceType;
use wtts::gwsim::{Fleet, FleetConfig, Reliability};
use wtts::stats::{fit_zipf, ALPHA};
use wtts::timeseries::{aggregate, daily_windows, Granularity};

/// Parses `--metrics-json [PATH]`: `None` = flag absent, `Some(None)` =
/// emit to stdout, `Some(Some(path))` = write to `path`.
fn parse_metrics_json_arg() -> Option<Option<String>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let at = args.iter().position(|a| a == "--metrics-json")?;
    Some(args.get(at + 1).filter(|a| !a.starts_with("--")).cloned())
}

/// The instrumented analysis pass behind `--metrics-json`: motif discovery
/// and per-gateway stationarity sweeps over daily windows, every stage and
/// counter recorded in `obs`.
fn observed_analysis(fleet: &Fleet, obs: &PipelineObs) {
    // Cap the gateway count so the quadratic motif sweep stays snappy in a
    // smoke run; the instrument needs coverage, not scale.
    let gateways = fleet.len().min(12);
    let mut windows = Vec::new();
    let mut per_gateway: Vec<Vec<Vec<f64>>> = Vec::new();
    for id in 0..gateways {
        let gw = fleet.gateway(id);
        let agg = aggregate(&gw.aggregate_total(), Granularity::hours(3), 0);
        let mine: Vec<Vec<f64>> = daily_windows(&agg, 2, 0)
            .into_iter()
            .map(|w| w.series.into_values())
            .collect();
        windows.extend(mine.iter().cloned());
        per_gateway.push(mine);
    }
    let motifs = discover_motifs_observed(&windows, &MotifConfig::default(), Some(obs));
    println!(
        "\ninstrumented pass: {} motifs over {} daily windows from {gateways} gateways",
        motifs.len(),
        windows.len()
    );
    let mut stationary = 0usize;
    for mine in &per_gateway {
        let refs: Vec<&[f64]> = mine.iter().map(|w| w.as_slice()).collect();
        if let Some(check) = strong_stationarity_observed(&refs, STATIONARITY_COR, ALPHA, Some(obs))
        {
            if check.is_stationary() {
                stationary += 1;
            }
        }
    }
    println!("instrumented pass: {stationary}/{gateways} gateways strongly stationary (daily)");

    // Multi-scale lead/lag discovery over the same gateway subset: the
    // scale × lag grid runs through the pruned lag-search engine, so the
    // snapshot also carries the cell-conservation counters ci.sh checks.
    let series: Vec<_> = (0..gateways)
        .map(|id| fleet.gateway(id).aggregate_total())
        .collect();
    let config = LagSearchConfig {
        scales: vec![Granularity::hours(1), Granularity::hours(2)],
        max_lag_bins: 12,
        phi: 0.25,
        ..LagSearchConfig::default()
    };
    let lags = lag_search(&series, &config, Some(obs));
    let leads: usize = (0..lags.scales.len())
        .map(|s| lags.top_leads(s, 3).len())
        .sum();
    assert!(lags.stats.conserved(), "lag-search cell conservation");
    println!(
        "instrumented pass: lag search over {} pairs x {} scales: {} cells, {} pruned, \
         {leads} lead/lag relations >= {}",
        lags.pairs.len(),
        lags.scales.len(),
        lags.stats.cells_total,
        lags.stats.pruned(),
        config.phi,
    );
}

fn main() {
    let metrics_json = parse_metrics_json_arg();
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let fleet = Fleet::new(FleetConfig {
        n_gateways: n,
        weeks: 2,
        ..FleetConfig::default()
    });

    let mut devices = 0usize;
    let mut archetypes: HashMap<String, usize> = HashMap::new();
    let mut reliability: HashMap<&'static str, usize> = HashMap::new();
    let mut confusion: HashMap<(DeviceType, DeviceType), usize> = HashMap::new();
    let mut correct = 0usize;
    let mut traffic_gb = 0.0;

    for gw in fleet.iter() {
        devices += gw.devices.len();
        *archetypes.entry(gw.archetype.to_string()).or_insert(0) += 1;
        let rel = match gw.reliability {
            Reliability::Reliable => "reliable",
            Reliability::FlakyDays => "day gaps",
            Reliability::FlakyWeeks => "week gaps",
        };
        *reliability.entry(rel).or_insert(0) += 1;
        traffic_gb += gw.aggregate_total().total() / 1e9;
        for d in &gw.devices {
            let truth = d.spec.true_type;
            let inferred = d.inferred_type();
            *confusion.entry((truth, inferred)).or_insert(0) += 1;
            if truth == inferred {
                correct += 1;
            }
        }
    }

    println!(
        "fleet: {} gateways, {devices} devices, {traffic_gb:.0} GB over 2 weeks\n",
        fleet.len()
    );

    println!("household archetypes:");
    let mut rows: Vec<_> = archetypes.into_iter().collect();
    rows.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (name, count) in rows {
        println!("  {name:<16} {count}");
    }

    println!("\nreporting reliability:");
    for (name, count) in reliability {
        println!("  {name:<10} {count}");
    }

    println!("\ndevice classifier (rows = truth, columns = inferred):");
    print!("{:>14}", "");
    for ty in DeviceType::ALL {
        print!("{:>13}", ty.label());
    }
    println!();
    for truth in DeviceType::ALL {
        if truth == DeviceType::Unlabeled {
            continue; // No ground-truth unlabeled devices are simulated.
        }
        print!("{:>14}", truth.label());
        for inferred in DeviceType::ALL {
            print!(
                "{:>13}",
                confusion.get(&(truth, inferred)).copied().unwrap_or(0)
            );
        }
        println!();
    }
    println!(
        "\nclassifier accuracy: {:.1}% of {devices} devices",
        correct as f64 / devices as f64 * 100.0
    );

    // Zipf check on the fleet's pooled traffic values (Section 4.1).
    let sample: Vec<f64> = fleet.gateway(0).aggregate_total().observed_values();
    if let Some(fit) = fit_zipf(&sample, 20) {
        println!(
            "\ngateway 0 traffic values: Zipf exponent {:.2}, r^2 {:.2} ({})",
            fit.exponent,
            fit.r_squared,
            if fit.is_zipfian() {
                "zipfian"
            } else {
                "not zipfian"
            }
        );
    }

    if let Some(target) = metrics_json {
        let obs = PipelineObs::new();
        observed_analysis(&fleet, &obs);
        let snap = obs.snapshot();
        assert!(snap.quiescent(), "all stages settle before the snapshot");
        let json = snap.to_json();
        match target {
            Some(path) => {
                std::fs::write(&path, &json).expect("write metrics JSON");
                println!("metrics JSON written to {path}");
            }
            None => println!("{json}"),
        }
    }
}
