//! Fleet-wide inventory report: what a simulated ISP deployment looks like,
//! and how well the MAC/name device classifier recovers ground truth.
//!
//! ```text
//! cargo run --release --example fleet_report [n_gateways]
//! ```

use std::collections::HashMap;
use wtts::devid::DeviceType;
use wtts::gwsim::{Fleet, FleetConfig, Reliability};
use wtts::stats::fit_zipf;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let fleet = Fleet::new(FleetConfig {
        n_gateways: n,
        weeks: 2,
        ..FleetConfig::default()
    });

    let mut devices = 0usize;
    let mut archetypes: HashMap<String, usize> = HashMap::new();
    let mut reliability: HashMap<&'static str, usize> = HashMap::new();
    let mut confusion: HashMap<(DeviceType, DeviceType), usize> = HashMap::new();
    let mut correct = 0usize;
    let mut traffic_gb = 0.0;

    for gw in fleet.iter() {
        devices += gw.devices.len();
        *archetypes.entry(gw.archetype.to_string()).or_insert(0) += 1;
        let rel = match gw.reliability {
            Reliability::Reliable => "reliable",
            Reliability::FlakyDays => "day gaps",
            Reliability::FlakyWeeks => "week gaps",
        };
        *reliability.entry(rel).or_insert(0) += 1;
        traffic_gb += gw.aggregate_total().total() / 1e9;
        for d in &gw.devices {
            let truth = d.spec.true_type;
            let inferred = d.inferred_type();
            *confusion.entry((truth, inferred)).or_insert(0) += 1;
            if truth == inferred {
                correct += 1;
            }
        }
    }

    println!(
        "fleet: {} gateways, {devices} devices, {traffic_gb:.0} GB over 2 weeks\n",
        fleet.len()
    );

    println!("household archetypes:");
    let mut rows: Vec<_> = archetypes.into_iter().collect();
    rows.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (name, count) in rows {
        println!("  {name:<16} {count}");
    }

    println!("\nreporting reliability:");
    for (name, count) in reliability {
        println!("  {name:<10} {count}");
    }

    println!("\ndevice classifier (rows = truth, columns = inferred):");
    print!("{:>14}", "");
    for ty in DeviceType::ALL {
        print!("{:>13}", ty.label());
    }
    println!();
    for truth in DeviceType::ALL {
        if truth == DeviceType::Unlabeled {
            continue; // No ground-truth unlabeled devices are simulated.
        }
        print!("{:>14}", truth.label());
        for inferred in DeviceType::ALL {
            print!(
                "{:>13}",
                confusion.get(&(truth, inferred)).copied().unwrap_or(0)
            );
        }
        println!();
    }
    println!(
        "\nclassifier accuracy: {:.1}% of {devices} devices",
        correct as f64 / devices as f64 * 100.0
    );

    // Zipf check on the fleet's pooled traffic values (Section 4.1).
    let sample: Vec<f64> = fleet.gateway(0).aggregate_total().observed_values();
    if let Some(fit) = fit_zipf(&sample, 20) {
        println!(
            "\ngateway 0 traffic values: Zipf exponent {:.2}, r^2 {:.2} ({})",
            fit.exponent,
            fit.r_squared,
            if fit.is_zipfian() {
                "zipfian"
            } else {
                "not zipfian"
            }
        );
    }
}
