//! Per-home firmware-update planning — the ISP use case that motivates the
//! paper's introduction: replace the fleet-wide night-time update broadcast
//! with a per-gateway window chosen from each home's weekly activity
//! profile.
//!
//! ```text
//! cargo run --release --example maintenance_planner [n_gateways]
//! ```

use wtts::core::background::{estimate_tau, remove_background};
use wtts::core::maintenance::WeeklyProfile;
use wtts::gwsim::{Fleet, FleetConfig};
use wtts::timeseries::TimeSeries;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let fleet = Fleet::new(FleetConfig {
        n_gateways: n,
        weeks: 3,
        ..FleetConfig::default()
    });

    println!(
        "{:>3}  {:>16}  {:>18}  {:>14}  {:>12}",
        "gw", "archetype", "update window", "expected bytes", "silent share"
    );
    for gw in fleet.iter() {
        // Active traffic: per-device background removal, then sum.
        let active: Vec<TimeSeries> = gw
            .devices
            .iter()
            .map(|d| {
                let tin = estimate_tau(&d.incoming).unwrap_or(f64::INFINITY);
                let tout = estimate_tau(&d.outgoing).unwrap_or(f64::INFINITY);
                remove_background(&d.incoming, tin).add(&remove_background(&d.outgoing, tout))
            })
            .collect();
        let total = TimeSeries::sum_all(active.iter()).expect("devices");
        let Some(profile) = WeeklyProfile::from_active_series(&total, 60) else {
            println!("{:>3}  (no observations)", gw.id);
            continue;
        };
        match profile.recommend(120) {
            Some(w) => println!(
                "{:>3}  {:>16}  {:>18}  {:>14.0}  {:>11.0}%",
                gw.id,
                gw.archetype.to_string(),
                w.label(),
                w.expected_bytes,
                w.silent_share * 100.0
            ),
            None => println!(
                "{:>3}  {:>16}  (no fully observed window)",
                gw.id, gw.archetype
            ),
        }
        if let Some((day, minute, bytes)) = profile.peak() {
            println!(
                "     peak activity: {day} {:02}:00 ({:.1} MB/h) — keep updates away from it",
                minute / 60,
                bytes / 1e6
            );
        }
    }
}
