//! Batch pairwise correlation with the engine: profile a fleet's daily
//! windows once, then compute the full similarity matrix in one sweep.
//!
//! ```text
//! cargo run --release --example correlation_engine
//! ```

use std::time::Instant;
use wtts::core::engine::{cor_matrix, profile_series, CorMatrixConfig};
use wtts::core::similarity::cor;
use wtts::gwsim::{Fleet, FleetConfig};
use wtts::timeseries::{aggregate, daily_windows, Granularity};

fn main() {
    // Simulate a small fleet and slice every gateway's traffic into daily
    // windows at the paper's 3-hour binning (8 bins per day).
    let fleet = Fleet::new(FleetConfig {
        n_gateways: 8,
        weeks: 2,
        seed: 11,
        ..FleetConfig::default()
    });
    let mut windows: Vec<Vec<f64>> = Vec::new();
    for g in 0..fleet.len() {
        let agg = aggregate(
            &fleet.gateway(g).aggregate_total(),
            Granularity::hours(3),
            0,
        );
        for w in daily_windows(&agg, fleet.config().weeks, 0) {
            windows.push(w.series.into_values());
        }
    }
    println!(
        "{} daily windows -> {} pairs",
        windows.len(),
        windows.len() * (windows.len() - 1) / 2
    );

    // Profile each window once, then sweep the upper triangle.
    let start = Instant::now();
    let profiles = profile_series(&windows);
    let matrix = cor_matrix(&profiles, &CorMatrixConfig::default());
    let engine_time = start.elapsed();

    // The naive loop calls cor() per pair, redoing the per-series work
    // (masking, moments, ranks, sorting) n-1 times per window.
    let start = Instant::now();
    let mut checked = 0usize;
    for i in 0..windows.len() {
        for j in (i + 1)..windows.len() {
            let reference = cor(&windows[i], &windows[j]) as f32;
            assert_eq!(reference.to_bits(), matrix.get(i, j).to_bits());
            checked += 1;
        }
    }
    let naive_time = start.elapsed();

    println!("engine sweep: {engine_time:?}");
    println!("per-pair cor(): {naive_time:?} ({checked} pairs, results bit-identical)");
    println!(
        "speedup: {:.1}x",
        naive_time.as_secs_f64() / engine_time.as_secs_f64()
    );

    // The matrix answers similarity queries in O(1); show the strongest
    // cross-window pair.
    let mut best = (0, 1, f32::NEG_INFINITY);
    for i in 0..windows.len() {
        for j in (i + 1)..windows.len() {
            if matrix.get(i, j) > best.2 {
                best = (i, j, matrix.get(i, j));
            }
        }
    }
    println!(
        "strongest pair: windows {} and {} with cor = {:.3}",
        best.0, best.1, best.2
    );
}
