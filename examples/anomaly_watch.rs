//! Remote troubleshooting (the paper's §1 motivation): learn a home's
//! normal behavior, then contrast new days against it — including two
//! injected faults a support line would ask about.
//!
//! ```text
//! cargo run --release --example anomaly_watch
//! ```

use wtts::core::anomaly::{AnomalyConfig, AnomalyDetector, Verdict};
use wtts::core::background::{estimate_tau, remove_background};
use wtts::gwsim::{Fleet, FleetConfig};
use wtts::timeseries::{aggregate, daily_windows, Granularity, TimeSeries};

fn main() {
    let weeks = 4;
    let fleet = Fleet::new(FleetConfig {
        n_gateways: 20,
        weeks,
        seed: 0x0DD1,
        ..FleetConfig::default()
    });
    // Pick a regular, fully-reporting home — the interesting case for a
    // behavioral baseline.
    let gw = fleet
        .iter()
        .find(|gw| gw.regularity > 0.7 && gw.reliability == wtts::gwsim::Reliability::Reliable)
        .expect("a regular reliable home exists");
    println!(
        "gateway {}: {} residents, archetype {}, regularity {:.2}\n",
        gw.id, gw.residents, gw.archetype, gw.regularity
    );

    // Active traffic at the paper's daily binning (3 hours).
    let active: Vec<TimeSeries> = gw
        .devices
        .iter()
        .map(|d| {
            let tin = estimate_tau(&d.incoming).unwrap_or(f64::INFINITY);
            let tout = estimate_tau(&d.outgoing).unwrap_or(f64::INFINITY);
            remove_background(&d.incoming, tin).add(&remove_background(&d.outgoing, tout))
        })
        .collect();
    let total = TimeSeries::sum_all(active.iter()).expect("devices");
    let binned = aggregate(&total, Granularity::hours(3), 0);
    let windows = daily_windows(&binned, weeks, 0);

    // Train on the first three weeks, watch the fourth.
    let (train, watch): (Vec<_>, Vec<_>) = windows.into_iter().partition(|w| w.week < 3);
    let detector = AnomalyDetector::new(
        train
            .into_iter()
            .filter_map(|w| w.weekday.map(|d| (d, w.series.into_values()))),
        AnomalyConfig::default(),
    );
    let (wd, we) = detector.history_size();
    println!("trained on {wd} workdays + {we} weekend days\n");

    for (i, w) in watch.into_iter().enumerate() {
        let Some(day) = w.weekday else { continue };
        let mut values = w.series.into_values();
        let note = match i {
            2 => {
                // Injected fault #1: the home goes dark.
                values.iter_mut().for_each(|v| {
                    if v.is_finite() {
                        *v = 0.0;
                    }
                });
                " <- injected: dead day"
            }
            5 => {
                // Injected fault #2: a runaway device floods all night.
                for (b, v) in values.iter_mut().enumerate() {
                    if b < 3 {
                        *v = 4e9;
                    }
                }
                " <- injected: night flood"
            }
            _ => "",
        };
        let verdict = detector.score(day, &values);
        let text = match verdict {
            Verdict::Normal => "normal".to_string(),
            Verdict::Anomalous {
                best_similarity,
                volume_ratio,
            } => format!("ANOMALOUS (best cor {best_similarity:.2}, volume x{volume_ratio:.2})"),
            Verdict::Insufficient => "insufficient data".to_string(),
        };
        println!("week 3 {day}: {text}{note}");
    }
}
