//! Keyword classification of user-assigned device names.
//!
//! Gateways report the hostname/device name users assign ("Katy's-iPhone",
//! "living-room-tv"). These are strong, specific evidence of the device
//! class — stronger than the MAC vendor, which often ships several classes.

use crate::DeviceType;

/// Keyword table: the first matching keyword (longest first within a class)
/// decides. Matching is case-insensitive on a separator-normalized form.
const KEYWORDS: &[(&str, DeviceType)] = &[
    // Smart TVs and streaming sticks first: "appletv" must not match the
    // portable "apple" fallbacks, and "tv" is checked as a whole word below.
    ("appletv", DeviceType::SmartTv),
    ("chromecast", DeviceType::SmartTv),
    ("roku", DeviceType::SmartTv),
    ("bravia", DeviceType::SmartTv),
    ("smarttv", DeviceType::SmartTv),
    // Portables.
    ("iphone", DeviceType::Portable),
    ("ipad", DeviceType::Portable),
    ("ipod", DeviceType::Portable),
    ("android", DeviceType::Portable),
    ("galaxy", DeviceType::Portable),
    ("nexus", DeviceType::Portable),
    ("oneplus", DeviceType::Portable),
    ("xperia", DeviceType::Portable),
    ("lumia", DeviceType::Portable),
    ("phone", DeviceType::Portable),
    ("tablet", DeviceType::Portable),
    ("kindle", DeviceType::Portable),
    ("smartphone", DeviceType::Portable),
    // Fixed machines.
    ("macbook", DeviceType::Fixed),
    ("imac", DeviceType::Fixed),
    ("macmini", DeviceType::Fixed),
    ("laptop", DeviceType::Fixed),
    ("desktop", DeviceType::Fixed),
    ("notebook", DeviceType::Fixed),
    ("thinkpad", DeviceType::Fixed),
    ("pavilion", DeviceType::Fixed),
    ("latitude", DeviceType::Fixed),
    ("workstation", DeviceType::Fixed),
    ("ultrabook", DeviceType::Fixed),
    // Game consoles.
    ("playstation", DeviceType::GameConsole),
    ("xbox", DeviceType::GameConsole),
    ("nintendo", DeviceType::GameConsole),
    ("wii", DeviceType::GameConsole),
    ("3ds", DeviceType::GameConsole),
    ("ps3", DeviceType::GameConsole),
    ("ps4", DeviceType::GameConsole),
    // Network equipment / peripherals.
    ("extender", DeviceType::NetworkEquipment),
    ("repeater", DeviceType::NetworkEquipment),
    ("printer", DeviceType::NetworkEquipment),
    ("epson", DeviceType::NetworkEquipment),
    ("bridge", DeviceType::NetworkEquipment),
    ("accesspoint", DeviceType::NetworkEquipment),
    ("nas", DeviceType::NetworkEquipment),
];

/// Whole-word keywords: must appear as a complete separator-delimited token
/// ("pc" inside "pcmcia" is not evidence).
const WORD_KEYWORDS: &[(&str, DeviceType)] = &[
    ("tv", DeviceType::SmartTv),
    ("pc", DeviceType::Fixed),
    ("mac", DeviceType::Fixed),
];

/// Classifies a device from its user-assigned name, or `None` when the name
/// carries no recognizable evidence.
pub fn classify_name(name: &str) -> Option<DeviceType> {
    if name.is_empty() {
        return None;
    }
    let normalized: String = name
        .to_lowercase()
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { ' ' })
        .collect();
    let squashed: String = normalized.split_whitespace().collect();
    for &(kw, ty) in KEYWORDS {
        if squashed.contains(kw) {
            return Some(ty);
        }
    }
    for token in normalized.split_whitespace() {
        for &(kw, ty) in WORD_KEYWORDS {
            if token == kw {
                return Some(ty);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_names() {
        assert_eq!(classify_name("Katy's-iPhone"), Some(DeviceType::Portable));
        assert_eq!(classify_name("john-ipad-2"), Some(DeviceType::Portable));
        assert_eq!(classify_name("MacBook-Pro"), Some(DeviceType::Fixed));
        assert_eq!(classify_name("FAMILY-DESKTOP"), Some(DeviceType::Fixed));
        assert_eq!(classify_name("wii-u"), Some(DeviceType::GameConsole));
        assert_eq!(
            classify_name("wifi extender upstairs"),
            Some(DeviceType::NetworkEquipment)
        );
    }

    #[test]
    fn separator_and_case_insensitivity() {
        assert_eq!(classify_name("I_PHONE"), Some(DeviceType::Portable));
        assert_eq!(classify_name("apple tv"), Some(DeviceType::SmartTv));
        assert_eq!(
            classify_name("Apple-TV-Living-Room"),
            Some(DeviceType::SmartTv)
        );
    }

    #[test]
    fn whole_word_matching() {
        assert_eq!(classify_name("office pc"), Some(DeviceType::Fixed));
        // "pc" inside a longer token is not evidence... but note the
        // squashed-substring pass runs first and only on full keywords.
        assert_eq!(classify_name("pcmcia-card"), None);
        assert_eq!(classify_name("samsung tv"), Some(DeviceType::SmartTv));
    }

    #[test]
    fn tv_priority_over_vendor_words() {
        // "appletv" should hit SmartTv even though "apple" devices are often
        // portables.
        assert_eq!(classify_name("appletv"), Some(DeviceType::SmartTv));
    }

    #[test]
    fn unknown_names() {
        assert_eq!(classify_name(""), None);
        assert_eq!(classify_name("device-1234"), None);
        assert_eq!(classify_name("zzz"), None);
    }

    #[test]
    fn console_names() {
        assert_eq!(
            classify_name("PS4-living-room"),
            Some(DeviceType::GameConsole)
        );
        assert_eq!(classify_name("xbox360"), Some(DeviceType::GameConsole));
    }
}
