//! The OUI vendor registry.
//!
//! A curated subset of the IEEE OUI assignments covering the manufacturers
//! that dominate residential deployments, each with the device class the
//! paper's heuristic would assign by default (or `None` when the vendor
//! ships too many kinds of devices for the OUI alone to decide — Apple and
//! Samsung make both portables and fixed machines).

use crate::mac::Oui;
use crate::DeviceType;
use std::collections::HashMap;
use std::sync::OnceLock;

/// A manufacturer entry in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vendor {
    /// Manufacturer name as registered with the IEEE.
    pub name: &'static str,
    /// Device class implied by the vendor alone, when unambiguous.
    pub default_type: Option<DeviceType>,
}

/// OUI prefix → vendor lookup table.
#[derive(Debug)]
pub struct OuiRegistry {
    map: HashMap<Oui, Vendor>,
}

impl OuiRegistry {
    /// Looks up the vendor owning an OUI prefix.
    pub fn lookup(&self, oui: Oui) -> Option<&Vendor> {
        self.map.get(&oui)
    }

    /// Number of registered prefixes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All prefixes registered for vendors whose default class is `ty`.
    pub fn prefixes_of_type(&self, ty: DeviceType) -> Vec<Oui> {
        let mut v: Vec<Oui> = self
            .map
            .iter()
            .filter(|(_, vendor)| vendor.default_type == Some(ty))
            .map(|(&oui, _)| oui)
            .collect();
        v.sort();
        v
    }

    /// All prefixes belonging to a vendor with the given name.
    pub fn prefixes_of_vendor(&self, name: &str) -> Vec<Oui> {
        let mut v: Vec<Oui> = self
            .map
            .iter()
            .filter(|(_, vendor)| vendor.name == name)
            .map(|(&oui, _)| oui)
            .collect();
        v.sort();
        v
    }
}

macro_rules! registry_entries {
    ($( $b0:literal : $b1:literal : $b2:literal => $name:literal, $ty:expr; )*) => {
        [ $( (Oui([$b0, $b1, $b2]), Vendor { name: $name, default_type: $ty }) ),* ]
    };
}

/// The global registry (built once, shared).
pub fn oui_registry() -> &'static OuiRegistry {
    static REGISTRY: OnceLock<OuiRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        use DeviceType::*;
        let entries = registry_entries![
            // Apple — phones, tablets, laptops, desktops: ambiguous.
            0x00:0x03:0x93 => "Apple, Inc.", None;
            0x00:0x1C:0xB3 => "Apple, Inc.", None;
            0x28:0xCF:0xE9 => "Apple, Inc.", None;
            0xF0:0xDB:0xE2 => "Apple, Inc.", None;
            0xAC:0xBC:0x32 => "Apple, Inc.", None;
            // Samsung — phones, tablets, TVs: ambiguous.
            0x00:0x16:0x32 => "Samsung Electronics Co., Ltd.", None;
            0x5C:0x0A:0x5B => "Samsung Electronics Co., Ltd.", None;
            0x8C:0x77:0x12 => "Samsung Electronics Co., Ltd.", None;
            // Phone-only manufacturers.
            0x00:0x23:0x76 => "HTC Corporation", Some(Portable);
            0xAC:0x37:0x43 => "HTC Corporation", Some(Portable);
            0x00:0x26:0xE8 => "Murata Manufacturing Co., Ltd.", Some(Portable);
            0x60:0x21:0xC0 => "Murata Manufacturing Co., Ltd.", Some(Portable);
            0x94:0x65:0x9C => "Huawei Technologies Co., Ltd.", Some(Portable);
            0x48:0xDB:0x50 => "Huawei Technologies Co., Ltd.", Some(Portable);
            0x00:0x1A:0x16 => "Nokia Danmark A/S", Some(Portable);
            0x9C:0xD9:0x17 => "Motorola Mobility LLC", Some(Portable);
            0xA8:0x96:0x8A => "LG Electronics (Mobile)", Some(Portable);
            // PC manufacturers.
            0x00:0x14:0x22 => "Dell Inc.", Some(Fixed);
            0x18:0x03:0x73 => "Dell Inc.", Some(Fixed);
            0x00:0x1F:0x29 => "Hewlett-Packard Company", Some(Fixed);
            0x3C:0xD9:0x2B => "Hewlett-Packard Company", Some(Fixed);
            0x00:0x21:0xCC => "Lenovo Mobile Communication", Some(Fixed);
            0x54:0xEE:0x75 => "Wistron InfoComm (Lenovo)", Some(Fixed);
            0x00:0x1E:0x33 => "ASUSTek COMPUTER INC.", Some(Fixed);
            0x1C:0x87:0x2C => "ASUSTek COMPUTER INC.", Some(Fixed);
            0x00:0x26:0x22 => "COMPAL INFORMATION (KUNSHAN)", Some(Fixed);
            0x00:0x1B:0x77 => "Intel Corporate", Some(Fixed);
            0x8C:0xA9:0x82 => "Intel Corporate", Some(Fixed);
            0xAC:0x72:0x89 => "Intel Corporate", Some(Fixed);
            0x00:0x23:0x5A => "Acer Incorporated", Some(Fixed);
            0x00:0x1F:0x16 => "Toshiba Corporation", Some(Fixed);
            // Game consoles.
            0x00:0x09:0xBF => "Nintendo Co., Ltd.", Some(GameConsole);
            0x00:0x1F:0x32 => "Nintendo Co., Ltd.", Some(GameConsole);
            0x00:0x19:0xC5 => "Sony Interactive Entertainment", Some(GameConsole);
            0x28:0x0D:0xFC => "Sony Interactive Entertainment", Some(GameConsole);
            0x00:0x22:0x48 => "Microsoft Corporation (Xbox)", Some(GameConsole);
            0x7C:0xED:0x8D => "Microsoft Corporation (Xbox)", Some(GameConsole);
            // Smart TVs and streaming boxes.
            0x00:0x09:0xDF => "Vestel Elektronik", Some(SmartTv);
            0x04:0x5D:0x4B => "Sony Visual Products (BRAVIA)", Some(SmartTv);
            0xCC:0xB8:0xA8 => "Philips TP Vision", Some(SmartTv);
            0xB0:0xA7:0x37 => "Roku, Inc.", Some(SmartTv);
            0xCC:0x6D:0xA0 => "Roku, Inc.", Some(SmartTv);
            0x6C:0xAD:0xF8 => "AzureWave (Chromecast)", Some(SmartTv);
            0x00:0x05:0xCD => "LG Electronics (TV)", Some(SmartTv);
            // More phone-family prefixes.
            0x00:0x25:0xE7 => "Sony Ericsson Mobile", Some(Portable);
            0x30:0x39:0x26 => "Sony Ericsson Mobile", Some(Portable);
            0x00:0x0E:0x07 => "Sony Ericsson Mobile", Some(Portable);
            0x38:0xE7:0xD8 => "HTC Corporation", Some(Portable);
            0x64:0xA7:0x69 => "HTC Corporation", Some(Portable);
            0x00:0x22:0xA9 => "LG Electronics (Mobile)", Some(Portable);
            0xC0:0x9F:0x42 => "Apple, Inc.", None;
            0x60:0xFB:0x42 => "Apple, Inc.", None;
            0x04:0x0C:0xCE => "Apple, Inc.", None;
            0x28:0x98:0x7B => "Samsung Electronics Co., Ltd.", None;
            0xE8:0x50:0x8B => "Samsung Electronics Co., Ltd.", None;
            0xD0:0x17:0xC2 => "ASUSTek COMPUTER INC.", Some(Fixed);
            0xF4:0x6D:0x04 => "ASUSTek COMPUTER INC.", Some(Fixed);
            0x00:0x24:0xE8 => "Dell Inc.", Some(Fixed);
            0xB8:0xAC:0x6F => "Dell Inc.", Some(Fixed);
            0x00:0x0F:0x1F => "Dell Inc.", Some(Fixed);
            0x2C:0x41:0x38 => "Hewlett-Packard Company", Some(Fixed);
            0x10:0x60:0x4B => "Hewlett-Packard Company", Some(Fixed);
            0x00:0x26:0x2D => "Wistron InfoComm (Lenovo)", Some(Fixed);
            0x60:0xEB:0x69 => "Quanta Computer Inc.", Some(Fixed);
            0x00:0x1E:0x68 => "Quanta Computer Inc.", Some(Fixed);
            0xF0:0xDE:0xF1 => "Wistron InfoComm (Lenovo)", Some(Fixed);
            0x00:0x24:0x2B => "Hon Hai (Foxconn)", Some(Fixed);
            0x00:0x1F:0xE2 => "Hon Hai (Foxconn)", Some(Fixed);
            // More console prefixes.
            0x18:0x2A:0x7B => "Nintendo Co., Ltd.", Some(GameConsole);
            0x34:0xAF:0x2C => "Nintendo Co., Ltd.", Some(GameConsole);
            0x58:0xBD:0xA3 => "Nintendo Co., Ltd.", Some(GameConsole);
            0xFC:0x0F:0xE6 => "Sony Interactive Entertainment", Some(GameConsole);
            0x00:0xD9:0xD1 => "Sony Interactive Entertainment", Some(GameConsole);
            0x30:0x59:0xB7 => "Microsoft Corporation (Xbox)", Some(GameConsole);
            // More TV / streaming prefixes.
            0xD8:0x31:0xCF => "Roku, Inc.", Some(SmartTv);
            0xAC:0x3A:0x7A => "Roku, Inc.", Some(SmartTv);
            0x08:0x05:0x81 => "Sony Visual Products (BRAVIA)", Some(SmartTv);
            0x54:0x42:0x49 => "Sony Visual Products (BRAVIA)", Some(SmartTv);
            0xF8:0x8F:0xCA => "Google (Chromecast)", Some(SmartTv);
            0x54:0x60:0x09 => "Google (Chromecast)", Some(SmartTv);
            0x00:0x7C:0x2D => "Samsung Electronics (Visual Display)", Some(SmartTv);
            // Network equipment and peripherals.
            0x00:0x26:0xAB => "Seiko Epson Corporation", Some(NetworkEquipment);
            0x00:0x00:0x48 => "Seiko Epson Corporation", Some(NetworkEquipment);
            0x00:0x1E:0x8F => "Canon Inc.", Some(NetworkEquipment);
            0x00:0x14:0x6C => "NETGEAR", Some(NetworkEquipment);
            0x20:0x4E:0x7F => "NETGEAR", Some(NetworkEquipment);
            0x00:0x1D:0x7E => "Cisco-Linksys, LLC", Some(NetworkEquipment);
            0x14:0xCC:0x20 => "TP-LINK TECHNOLOGIES CO., LTD.", Some(NetworkEquipment);
            0xF8:0x1A:0x67 => "TP-LINK TECHNOLOGIES CO., LTD.", Some(NetworkEquipment);
            0x00:0x05:0x5D => "D-Link Corporation", Some(NetworkEquipment);
            0x00:0x24:0xA5 => "Buffalo Inc.", Some(NetworkEquipment);
            0x30:0x46:0x9A => "NETGEAR", Some(NetworkEquipment);
            0x00:0x90:0x4C => "Epigram (Broadcom reference)", Some(NetworkEquipment);
            0xC0:0x3F:0x0E => "NETGEAR", Some(NetworkEquipment);
            0x84:0x1B:0x5E => "NETGEAR", Some(NetworkEquipment);
            0x00:0x18:0x4D => "NETGEAR", Some(NetworkEquipment);
            0xA4:0x2B:0x8C => "NETGEAR", Some(NetworkEquipment);
            0xC4:0x6E:0x1F => "TP-LINK TECHNOLOGIES CO., LTD.", Some(NetworkEquipment);
            0x64:0x70:0x02 => "TP-LINK TECHNOLOGIES CO., LTD.", Some(NetworkEquipment);
            0x90:0xF6:0x52 => "TP-LINK TECHNOLOGIES CO., LTD.", Some(NetworkEquipment);
            0x00:0x26:0x5A => "D-Link Corporation", Some(NetworkEquipment);
            0xC8:0xBE:0x19 => "D-Link Corporation", Some(NetworkEquipment);
            0x10:0x6F:0x3F => "Buffalo Inc.", Some(NetworkEquipment);
            0x00:0x0D:0x0B => "Buffalo Inc.", Some(NetworkEquipment);
            0x00:0x18:0xF8 => "Cisco-Linksys, LLC", Some(NetworkEquipment);
            0x48:0xF8:0xB3 => "Cisco-Linksys, LLC", Some(NetworkEquipment);
            0x00:0x00:0x74 => "Ricoh Company Ltd.", Some(NetworkEquipment);
            0x00:0x26:0x73 => "Ricoh Company Ltd.", Some(NetworkEquipment);
            0x00:0x17:0xC8 => "Kyocera Display (printers)", Some(NetworkEquipment);
            0x00:0x80:0x77 => "Brother Industries, Ltd.", Some(NetworkEquipment);
            0x30:0x05:0x5C => "Brother Industries, Ltd.", Some(NetworkEquipment);
            0x00:0x80:0x92 => "Silex Technology (print servers)", Some(NetworkEquipment);
            0xAC:0x9B:0x0A => "Sony Interactive Entertainment", Some(GameConsole);
            0x78:0xDD:0x08 => "Hon Hai (Foxconn)", Some(Fixed);
            0x00:0x23:0x4D => "Hon Hai (Foxconn)", Some(Fixed);
            0x00:0x1D:0x09 => "Dell Inc.", Some(Fixed);
            0x84:0x2B:0x2B => "Dell Inc.", Some(Fixed);
            0x00:0x21:0x70 => "Dell Inc.", Some(Fixed);
            0x5C:0x26:0x0A => "Dell Inc.", Some(Fixed);
            0x48:0x5B:0x39 => "ASUSTek COMPUTER INC.", Some(Fixed);
            0xBC:0xAE:0xC5 => "ASUSTek COMPUTER INC.", Some(Fixed);
            0x00:0x26:0xB9 => "Dell Inc.", Some(Fixed);
            0x00:0x12:0x17 => "Cisco-Linksys, LLC", Some(NetworkEquipment);
            0x58:0x6D:0x8F => "Cisco-Linksys, LLC", Some(NetworkEquipment);
            0x00:0x16:0x6C => "Samsung Electronics Co., Ltd.", None;
            0x00:0x12:0xFB => "Samsung Electronics Co., Ltd.", None;
            0x8C:0x71:0xF8 => "Samsung Electronics Co., Ltd.", None;
            0x00:0x23:0x12 => "Apple, Inc.", None;
            0x00:0x25:0x00 => "Apple, Inc.", None;
            0x7C:0x6D:0x62 => "Apple, Inc.", None;
            0xD8:0x9E:0x3F => "Apple, Inc.", None;
            0x00:0x26:0x08 => "Apple, Inc.", None;
            0x44:0x2A:0x60 => "Apple, Inc.", None;
            0x00:0x1E:0xC2 => "Apple, Inc.", None;
            0x34:0x15:0x9E => "Apple, Inc.", None;
            0x00:0x0A:0x95 => "Apple, Inc.", None;
            0x00:0x17:0xF2 => "Apple, Inc.", None;
            0xE0:0xF8:0x47 => "Apple, Inc.", None;
            0x00:0x1B:0x63 => "Apple, Inc.", None;
            0x00:0x19:0xE3 => "Apple, Inc.", None;
            0x58:0x55:0xCA => "Apple, Inc.", None;
            0xF0:0xB4:0x79 => "Apple, Inc.", None;
            0x00:0x24:0x54 => "Samsung Electronics Co., Ltd.", None;
            0x18:0x46:0x17 => "Samsung Electronics Co., Ltd.", None;
            0x5C:0xE8:0xEB => "Samsung Electronics Co., Ltd.", None;
            0xD0:0x66:0x7B => "Samsung Electronics Co., Ltd.", None;
            0x00:0x15:0xB9 => "Samsung Electronics Co., Ltd.", None;
            0x94:0x35:0x0A => "Samsung Electronics Co., Ltd.", None;
            0x34:0x23:0xBA => "Samsung Electronics Co., Ltd.", None;
            0xB4:0x07:0xF9 => "Samsung Electronics Co., Ltd.", None;
            0x00:0x1A:0x8A => "Samsung Electronics Co., Ltd.", None;
            0x00:0x1D:0x25 => "Samsung Electronics Co., Ltd.", None;
            0x00:0x1F:0xCD => "Samsung Electronics Co., Ltd.", None;
            0x00:0x21:0x19 => "Samsung Electronics Co., Ltd.", None;
            0x00:0x23:0x39 => "Samsung Electronics Co., Ltd.", None;
            0x30:0x19:0x66 => "Samsung Electronics Co., Ltd.", None;
            0x38:0xAA:0x3C => "Samsung Electronics Co., Ltd.", None;
            0x40:0x0E:0x85 => "Samsung Electronics Co., Ltd.", None;
            0x00:0x16:0xDB => "Samsung Electronics Co., Ltd.", None;
            0x00:0x17:0xD5 => "Samsung Electronics Co., Ltd.", None;
            0x00:0x1B:0x98 => "Samsung Electronics Co., Ltd.", None;
            0xF4:0x7B:0x5E => "Huawei Technologies Co., Ltd.", Some(Portable);
            0x28:0x6E:0xD4 => "Huawei Technologies Co., Ltd.", Some(Portable);
            0x00:0x25:0x9E => "Huawei Technologies Co., Ltd.", Some(Portable);
            0x0C:0x37:0xDC => "Huawei Technologies Co., Ltd.", Some(Portable);
            0x00:0x1E:0x10 => "Huawei Technologies Co., Ltd.", Some(Portable);
            0x20:0x2B:0xC1 => "Huawei Technologies Co., Ltd.", Some(Portable);
            0x00:0x21:0xE8 => "Murata Manufacturing Co., Ltd.", Some(Portable);
            0x00:0x26:0x86 => "Quanta Computer Inc.", Some(Fixed);
            0x00:0x1F:0x3B => "Intel Corporate", Some(Fixed);
            0x00:0x21:0x6A => "Intel Corporate", Some(Fixed);
            0x00:0x22:0xFB => "Intel Corporate", Some(Fixed);
            0x00:0x24:0xD7 => "Intel Corporate", Some(Fixed);
            0x00:0x27:0x10 => "Intel Corporate", Some(Fixed);
            0x58:0x94:0x6B => "Intel Corporate", Some(Fixed);
            0x60:0x67:0x20 => "Intel Corporate", Some(Fixed);
            0x64:0x80:0x99 => "Intel Corporate", Some(Fixed);
            0x4C:0xEB:0x42 => "Intel Corporate", Some(Fixed);
            0x00:0x13:0x02 => "Intel Corporate", Some(Fixed);
            0x00:0x15:0x00 => "Intel Corporate", Some(Fixed);
            0x00:0x16:0x6F => "Intel Corporate", Some(Fixed);
            0x00:0x16:0xEA => "Intel Corporate", Some(Fixed);
            0x00:0x18:0xDE => "Intel Corporate", Some(Fixed);
            0x00:0x19:0xD1 => "Intel Corporate", Some(Fixed);
            0x00:0x1C:0xBF => "Intel Corporate", Some(Fixed);
            0x00:0x1D:0xE0 => "Intel Corporate", Some(Fixed);
            0x00:0x1E:0x64 => "Intel Corporate", Some(Fixed);
            0x00:0x1F:0x3C => "Intel Corporate", Some(Fixed);
        ];
        OuiRegistry {
            map: entries.into_iter().collect(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_populated() {
        let reg = oui_registry();
        assert!(reg.len() >= 140);
        assert!(!reg.is_empty());
    }

    #[test]
    fn known_vendor_lookup() {
        let reg = oui_registry();
        let nintendo = reg.lookup(Oui([0x00, 0x09, 0xBF])).unwrap();
        assert_eq!(nintendo.name, "Nintendo Co., Ltd.");
        assert_eq!(nintendo.default_type, Some(DeviceType::GameConsole));
    }

    #[test]
    fn ambiguous_vendor_has_no_default() {
        let reg = oui_registry();
        let apple = reg.lookup(Oui([0x00, 0x03, 0x93])).unwrap();
        assert_eq!(apple.default_type, None);
    }

    #[test]
    fn unknown_prefix_is_none() {
        assert!(oui_registry().lookup(Oui([0xFF, 0xFF, 0xFF])).is_none());
    }

    #[test]
    fn prefixes_grouped_by_type() {
        let reg = oui_registry();
        let consoles = reg.prefixes_of_type(DeviceType::GameConsole);
        assert!(consoles.len() >= 4);
        let fixed = reg.prefixes_of_type(DeviceType::Fixed);
        assert!(fixed.len() >= 8);
        let portables = reg.prefixes_of_type(DeviceType::Portable);
        assert!(portables.len() >= 5);
    }

    #[test]
    fn vendor_prefix_listing() {
        let reg = oui_registry();
        assert!(reg.prefixes_of_vendor("Apple, Inc.").len() >= 20);
        assert!(reg.prefixes_of_vendor("No Such Vendor").is_empty());
    }
}
