//! Device-type inference from MAC addresses and device names.
//!
//! Section 3 of the paper classifies the 2147 observed wireless devices with
//! a heuristic that combines the manufacturer revealed by the MAC address'
//! OUI prefix ("Nintendo Co., Ltd." makes game consoles, "EPSON" makes
//! peripherals) with the user-assigned device name reported by the gateway
//! ("Katy's-iPhone" is a smartphone). This crate reimplements that pipeline:
//!
//! * [`MacAddress`] and its 3-byte [`Oui`] prefix,
//! * a vendor registry ([`oui_registry`]) mapping OUI prefixes to
//!   manufacturers and default device classes,
//! * a name-keyword classifier, and
//! * the combined [`classify`] heuristic — name evidence first (it is more
//!   specific), vendor default second, `Unlabeled` when neither matches.

pub mod mac;
pub mod names;
pub mod registry;

pub use mac::{MacAddress, Oui};
pub use names::classify_name;
pub use registry::{oui_registry, OuiRegistry, Vendor};

/// The device classes used throughout the paper's analysis.
///
/// "Light" devices — smartphones, tablets — are *portable*; laptops and
/// desktops are *fixed*; WiFi extenders and similar are *network equipment*;
/// plus the small classes of game consoles and smart TVs that Figures 13 and
/// 16 break out, and *unlabeled* for everything the heuristic cannot place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceType {
    /// Smartphones, tablets, e-readers.
    Portable,
    /// Laptops and desktop computers.
    Fixed,
    /// Smart TVs and streaming boxes.
    SmartTv,
    /// Game consoles.
    GameConsole,
    /// WiFi extenders, repeaters, bridges, printers.
    NetworkEquipment,
    /// Could not be classified.
    Unlabeled,
}

impl DeviceType {
    /// All classes, in the order the paper's figures list them.
    pub const ALL: [DeviceType; 6] = [
        DeviceType::Portable,
        DeviceType::Fixed,
        DeviceType::SmartTv,
        DeviceType::GameConsole,
        DeviceType::NetworkEquipment,
        DeviceType::Unlabeled,
    ];

    /// Short label used in reports, matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            DeviceType::Portable => "portable",
            DeviceType::Fixed => "fixed",
            DeviceType::SmartTv => "tv",
            DeviceType::GameConsole => "game_console",
            DeviceType::NetworkEquipment => "network_eq",
            DeviceType::Unlabeled => "unlabeled",
        }
    }
}

impl std::fmt::Display for DeviceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Classifies a device from its MAC address and (possibly empty) name.
///
/// ```
/// use wtts_devid::{classify, DeviceType, MacAddress};
///
/// let mac = MacAddress::parse("00:09:BF:12:34:56").unwrap(); // Nintendo OUI
/// assert_eq!(classify(mac, "device-1234"), DeviceType::GameConsole);
/// assert_eq!(classify(mac, "katys-iphone"), DeviceType::Portable); // name wins
/// ```
///
/// The name keywords win over the vendor default because users name devices
/// after what they are ("living-room-tv") while a manufacturer like Apple or
/// Samsung ships both portables and fixed machines. A vendor whose product
/// line is unambiguous (Nintendo, EPSON) still classifies devices with
/// unhelpful names.
pub fn classify(mac: MacAddress, name: &str) -> DeviceType {
    if let Some(ty) = classify_name(name) {
        return ty;
    }
    oui_registry()
        .lookup(mac.oui())
        .and_then(|vendor| vendor.default_type)
        .unwrap_or(DeviceType::Unlabeled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(oui: [u8; 3]) -> MacAddress {
        MacAddress::new([oui[0], oui[1], oui[2], 0x12, 0x34, 0x56])
    }

    #[test]
    fn name_beats_vendor_default() {
        // An Apple OUI with a clearly-TV name must classify as TV.
        let apple = mac([0x00, 0x03, 0x93]);
        assert_eq!(classify(apple, "living-room-appletv"), DeviceType::SmartTv);
        assert_eq!(classify(apple, "Katy's-iPhone"), DeviceType::Portable);
        assert_eq!(classify(apple, "katys-macbook"), DeviceType::Fixed);
    }

    #[test]
    fn vendor_default_when_name_is_unhelpful() {
        let nintendo = mac([0x00, 0x09, 0xBF]);
        assert_eq!(classify(nintendo, "device-1234"), DeviceType::GameConsole);
        let epson = mac([0x00, 0x26, 0xAB]);
        assert_eq!(classify(epson, ""), DeviceType::NetworkEquipment);
    }

    #[test]
    fn unknown_everything_is_unlabeled() {
        let unknown = mac([0xFE, 0xED, 0xFA]);
        assert_eq!(classify(unknown, "gizmo"), DeviceType::Unlabeled);
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(DeviceType::Portable.label(), "portable");
        assert_eq!(DeviceType::NetworkEquipment.label(), "network_eq");
        assert_eq!(DeviceType::ALL.len(), 6);
    }
}
