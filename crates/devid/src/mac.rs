//! MAC addresses and OUI prefixes.

/// A 48-bit IEEE 802 MAC address.
///
/// The paper identifies devices by MAC address; the first three bytes form
/// the [`Oui`] that reveals the manufacturer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddress([u8; 6]);

impl MacAddress {
    /// Builds an address from its six bytes.
    pub const fn new(bytes: [u8; 6]) -> MacAddress {
        MacAddress(bytes)
    }

    /// The raw bytes.
    pub fn bytes(&self) -> [u8; 6] {
        self.0
    }

    /// The organizationally unique identifier (first three bytes).
    pub fn oui(&self) -> Oui {
        Oui([self.0[0], self.0[1], self.0[2]])
    }

    /// Parses `AA:BB:CC:DD:EE:FF` (case-insensitive, `:` or `-` separated).
    pub fn parse(s: &str) -> Option<MacAddress> {
        let mut bytes = [0u8; 6];
        let mut count = 0;
        for part in s.split([':', '-']) {
            if count == 6 || part.len() != 2 {
                return None;
            }
            bytes[count] = u8::from_str_radix(part, 16).ok()?;
            count += 1;
        }
        if count == 6 {
            Some(MacAddress(bytes))
        } else {
            None
        }
    }
}

impl std::fmt::Display for MacAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:02X}:{:02X}:{:02X}:{:02X}:{:02X}:{:02X}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// A 24-bit organizationally unique identifier — the vendor prefix of a MAC
/// address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oui(pub [u8; 3]);

impl std::fmt::Display for Oui {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:02X}:{:02X}:{:02X}", self.0[0], self.0[1], self.0[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_display_parse() {
        let mac = MacAddress::new([0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02]);
        let s = mac.to_string();
        assert_eq!(s, "DE:AD:BE:EF:01:02");
        assert_eq!(MacAddress::parse(&s), Some(mac));
    }

    #[test]
    fn parse_accepts_dashes_and_lowercase() {
        let mac = MacAddress::parse("de-ad-be-ef-01-02").unwrap();
        assert_eq!(mac.bytes(), [0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02]);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(MacAddress::parse("").is_none());
        assert!(MacAddress::parse("DE:AD:BE:EF:01").is_none());
        assert!(MacAddress::parse("DE:AD:BE:EF:01:02:03").is_none());
        assert!(MacAddress::parse("GG:AD:BE:EF:01:02").is_none());
        assert!(MacAddress::parse("DEAD:BE:EF:01:02").is_none());
    }

    #[test]
    fn oui_extraction() {
        let mac = MacAddress::new([0x00, 0x09, 0xBF, 0x11, 0x22, 0x33]);
        assert_eq!(mac.oui(), Oui([0x00, 0x09, 0xBF]));
        assert_eq!(mac.oui().to_string(), "00:09:BF");
    }
}
