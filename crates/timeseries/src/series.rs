//! Regularly sampled time series with explicit missing values.

use crate::time::Minute;

/// A regularly sampled time series.
///
/// ```
/// use wtts_timeseries::{TimeSeries, Minute};
///
/// let s = TimeSeries::per_minute(vec![10.0, f64::NAN, 30.0]);
/// assert_eq!(s.observed_count(), 2);
/// assert_eq!(s.total(), 40.0);
/// assert_eq!(s.value_at(Minute(1)), None); // missing sample
/// ```
///
/// Values are `f64`; missing observations are stored as `NaN` so that series
/// keep their calendar alignment even when a gateway skipped reports (the
/// paper filters gateways by "at least one observation per week/day" rather
/// than requiring gap-free data). All statistics in `wtts-stats` are
/// missing-aware: they operate on pairwise-complete observations.
///
/// The sample at index `i` covers the half-open interval
/// `[start + i*step, start + (i+1)*step)` minutes.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    start: Minute,
    step_minutes: u32,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from raw values.
    ///
    /// # Panics
    /// Panics if `step_minutes == 0`.
    pub fn new(start: Minute, step_minutes: u32, values: Vec<f64>) -> TimeSeries {
        assert!(step_minutes > 0, "step must be positive");
        TimeSeries {
            start,
            step_minutes,
            values,
        }
    }

    /// A per-minute series starting at the trace epoch.
    pub fn per_minute(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(Minute::ZERO, 1, values)
    }

    /// An all-missing series of `len` samples.
    pub fn missing(start: Minute, step_minutes: u32, len: usize) -> TimeSeries {
        TimeSeries::new(start, step_minutes, vec![f64::NAN; len])
    }

    /// First covered minute.
    pub fn start(&self) -> Minute {
        self.start
    }

    /// Sampling step in minutes.
    pub fn step_minutes(&self) -> u32 {
        self.step_minutes
    }

    /// Number of samples (including missing ones).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no samples at all.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw sample values (`NaN` = missing).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the sample values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the series, returning its values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// The timestamp of sample `i`.
    pub fn time_at(&self, i: usize) -> Minute {
        self.start.plus(i as u32 * self.step_minutes)
    }

    /// One past the last covered minute.
    pub fn end(&self) -> Minute {
        self.start
            .plus(self.values.len() as u32 * self.step_minutes)
    }

    /// The sample covering `t`, or `None` if `t` is outside the series or the
    /// sample is missing.
    pub fn value_at(&self, t: Minute) -> Option<f64> {
        if t < self.start {
            return None;
        }
        let idx = ((t.0 - self.start.0) / self.step_minutes) as usize;
        match self.values.get(idx) {
            Some(v) if v.is_finite() => Some(*v),
            _ => None,
        }
    }

    /// Number of non-missing samples.
    pub fn observed_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_finite()).count()
    }

    /// Fraction of samples that are present, in `[0, 1]`; `0` for an empty
    /// series.
    pub fn coverage(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.observed_count() as f64 / self.values.len() as f64
        }
    }

    /// Sum of the non-missing values (`0` if all are missing).
    pub fn total(&self) -> f64 {
        self.values.iter().filter(|v| v.is_finite()).sum()
    }

    /// Mean of the non-missing values, or `None` if all are missing.
    pub fn mean(&self) -> Option<f64> {
        let n = self.observed_count();
        if n == 0 {
            None
        } else {
            Some(self.total() / n as f64)
        }
    }

    /// Largest non-missing value, or `None` if all are missing.
    pub fn max(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Extracts the sub-series covering `[from, from + len_samples*step)`.
    ///
    /// Samples outside the stored range come back as missing, so slicing never
    /// fails: callers can always request calendar-aligned windows.
    pub fn slice(&self, from: Minute, len_samples: usize) -> TimeSeries {
        let mut out = Vec::with_capacity(len_samples);
        for i in 0..len_samples {
            let t = from.plus(i as u32 * self.step_minutes);
            let v = if t < self.start {
                f64::NAN
            } else {
                let idx = ((t.0 - self.start.0) / self.step_minutes) as usize;
                self.values.get(idx).copied().unwrap_or(f64::NAN)
            };
            out.push(v);
        }
        TimeSeries::new(from, self.step_minutes, out)
    }

    /// Element-wise sum of two aligned series.
    ///
    /// Missing + present = present (a gateway total must not become missing
    /// because one idle device skipped a report); missing + missing = missing.
    ///
    /// # Panics
    /// Panics if the series are not aligned (same start, step, and length).
    pub fn add(&self, other: &TimeSeries) -> TimeSeries {
        self.assert_aligned(other);
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(&a, &b)| match (a.is_finite(), b.is_finite()) {
                (true, true) => a + b,
                (true, false) => a,
                (false, true) => b,
                (false, false) => f64::NAN,
            })
            .collect();
        TimeSeries::new(self.start, self.step_minutes, values)
    }

    /// Sums any number of aligned series; `None` when the iterator is empty.
    pub fn sum_all<'a>(mut series: impl Iterator<Item = &'a TimeSeries>) -> Option<TimeSeries> {
        let first = series.next()?.clone();
        Some(series.fold(first, |acc, s| acc.add(s)))
    }

    /// Applies `f` to every non-missing value in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.values {
            if v.is_finite() {
                *v = f(*v);
            }
        }
    }

    /// Returns a copy with every non-missing value below `threshold` set to
    /// zero — the paper's active-traffic filter (Section 6.1).
    pub fn threshold_below(&self, threshold: f64) -> TimeSeries {
        let mut out = self.clone();
        out.map_in_place(|v| if v < threshold { 0.0 } else { v });
        out
    }

    /// The non-missing values as a fresh vector.
    pub fn observed_values(&self) -> Vec<f64> {
        self.values
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect()
    }

    fn assert_aligned(&self, other: &TimeSeries) {
        assert_eq!(self.start, other.start, "series starts differ");
        assert_eq!(self.step_minutes, other.step_minutes, "series steps differ");
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "series lengths differ"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Weekday;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::per_minute(values)
    }

    #[test]
    fn basic_accessors() {
        let s = ts(vec![1.0, 2.0, f64::NAN, 4.0]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.observed_count(), 3);
        assert_eq!(s.total(), 7.0);
        assert_eq!(s.mean(), Some(7.0 / 3.0));
        assert_eq!(s.max(), Some(4.0));
        assert!((s.coverage() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_series_degenerate_stats() {
        let s = ts(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.coverage(), 0.0);
    }

    #[test]
    fn all_missing_stats() {
        let s = TimeSeries::missing(Minute::ZERO, 1, 5);
        assert_eq!(s.observed_count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.total(), 0.0);
    }

    #[test]
    fn value_at_respects_step() {
        let s = TimeSeries::new(Minute(10), 5, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.value_at(Minute(10)), Some(1.0));
        assert_eq!(s.value_at(Minute(14)), Some(1.0));
        assert_eq!(s.value_at(Minute(15)), Some(2.0));
        assert_eq!(s.value_at(Minute(9)), None);
        assert_eq!(s.value_at(Minute(25)), None);
    }

    #[test]
    fn slice_pads_with_missing() {
        let s = TimeSeries::new(Minute(10), 1, vec![1.0, 2.0]);
        let w = s.slice(Minute(9), 4);
        assert_eq!(w.len(), 4);
        assert!(w.values()[0].is_nan());
        assert_eq!(w.values()[1], 1.0);
        assert_eq!(w.values()[2], 2.0);
        assert!(w.values()[3].is_nan());
        assert_eq!(w.start(), Minute(9));
    }

    #[test]
    fn add_merges_missing() {
        let a = ts(vec![1.0, f64::NAN, f64::NAN]);
        let b = ts(vec![2.0, 3.0, f64::NAN]);
        let c = a.add(&b);
        assert_eq!(c.values()[0], 3.0);
        assert_eq!(c.values()[1], 3.0);
        assert!(c.values()[2].is_nan());
    }

    #[test]
    fn sum_all_over_three() {
        let a = ts(vec![1.0, 1.0]);
        let b = ts(vec![2.0, f64::NAN]);
        let c = ts(vec![3.0, 3.0]);
        let sum = TimeSeries::sum_all([&a, &b, &c].into_iter()).unwrap();
        assert_eq!(sum.values(), &[6.0, 4.0]);
        assert!(TimeSeries::sum_all(std::iter::empty()).is_none());
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn add_rejects_misaligned() {
        let a = ts(vec![1.0]);
        let b = ts(vec![1.0, 2.0]);
        let _ = a.add(&b);
    }

    #[test]
    fn threshold_below_zeroes_background() {
        let s = ts(vec![10.0, 4999.0, 5000.0, f64::NAN]);
        let t = s.threshold_below(5000.0);
        assert_eq!(t.values()[0], 0.0);
        assert_eq!(t.values()[1], 0.0);
        assert_eq!(t.values()[2], 5000.0);
        assert!(t.values()[3].is_nan());
    }

    #[test]
    fn time_at_and_end() {
        let start = Minute::from_parts(0, Weekday::Tuesday, 0, 0);
        let s = TimeSeries::new(start, 30, vec![0.0; 4]);
        assert_eq!(s.time_at(2), start.plus(60));
        assert_eq!(s.end(), start.plus(120));
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_rejected() {
        let _ = TimeSeries::new(Minute::ZERO, 0, vec![]);
    }
}
