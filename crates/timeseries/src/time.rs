//! Minimal calendar arithmetic for traffic traces.
//!
//! Traces are anchored at an *epoch*: minute 0 is Monday 00:00 of the first
//! observation week. Working in minutes-since-epoch keeps every calendar
//! operation (weekday, minute-of-day, week index) a couple of integer
//! divisions, and the anchoring to a Monday midnight matches the paper's
//! windowing conventions ("weekly windows starting from Mondays",
//! "daily windows starting from midnight").

/// Minutes in one day.
pub const MINUTES_PER_DAY: u32 = 24 * 60;

/// Minutes in one week.
pub const MINUTES_PER_WEEK: u32 = 7 * MINUTES_PER_DAY;

/// A timestamp measured in whole minutes since the trace epoch
/// (Monday 00:00 of week 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Minute(pub u32);

impl Minute {
    /// The trace epoch itself.
    pub const ZERO: Minute = Minute(0);

    /// Builds a timestamp from calendar components.
    ///
    /// `week` is the zero-based week index, `weekday` the day within that
    /// week, and `hour`/`minute` the time of day.
    ///
    /// # Panics
    /// Panics if `hour >= 24` or `minute >= 60`.
    pub fn from_parts(week: u32, weekday: Weekday, hour: u32, minute: u32) -> Minute {
        assert!(hour < 24, "hour out of range: {hour}");
        assert!(minute < 60, "minute out of range: {minute}");
        Minute(
            week * MINUTES_PER_WEEK + weekday.index() as u32 * MINUTES_PER_DAY + hour * 60 + minute,
        )
    }

    /// Zero-based week index since the epoch.
    pub fn week(self) -> u32 {
        self.0 / MINUTES_PER_WEEK
    }

    /// Day of week.
    pub fn weekday(self) -> Weekday {
        Weekday::from_index(((self.0 / MINUTES_PER_DAY) % 7) as u8)
    }

    /// Zero-based day index since the epoch.
    pub fn day(self) -> u32 {
        self.0 / MINUTES_PER_DAY
    }

    /// Minute within the day, `0..1440`.
    pub fn minute_of_day(self) -> u32 {
        self.0 % MINUTES_PER_DAY
    }

    /// Hour within the day, `0..24`.
    pub fn hour(self) -> u32 {
        self.minute_of_day() / 60
    }

    /// Minute within the week, `0..10080`.
    pub fn minute_of_week(self) -> u32 {
        self.0 % MINUTES_PER_WEEK
    }

    /// Whether this minute falls on a Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        self.weekday().is_weekend()
    }

    /// The timestamp `minutes` later.
    pub fn plus(self, minutes: u32) -> Minute {
        Minute(self.0 + minutes)
    }
}

impl std::fmt::Display for Minute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "w{} {} {:02}:{:02}",
            self.week(),
            self.weekday(),
            self.hour(),
            self.minute_of_day() % 60
        )
    }
}

/// Day of week; the trace epoch falls on a Monday.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// All weekdays in order, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Zero-based index, Monday = 0.
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Weekday::index`], modulo 7.
    pub fn from_index(i: u8) -> Weekday {
        Weekday::ALL[(i % 7) as usize]
    }

    /// Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }

    /// The day after, wrapping Sunday → Monday.
    pub fn next(self) -> Weekday {
        Weekday::from_index(self.index() + 1)
    }
}

impl std::fmt::Display for Weekday {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Weekday::Monday => "Mon",
            Weekday::Tuesday => "Tue",
            Weekday::Wednesday => "Wed",
            Weekday::Thursday => "Thu",
            Weekday::Friday => "Fri",
            Weekday::Saturday => "Sat",
            Weekday::Sunday => "Sun",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monday_midnight() {
        assert_eq!(Minute::ZERO.weekday(), Weekday::Monday);
        assert_eq!(Minute::ZERO.hour(), 0);
        assert_eq!(Minute::ZERO.minute_of_day(), 0);
        assert_eq!(Minute::ZERO.week(), 0);
    }

    #[test]
    fn from_parts_round_trips() {
        let m = Minute::from_parts(3, Weekday::Thursday, 17, 42);
        assert_eq!(m.week(), 3);
        assert_eq!(m.weekday(), Weekday::Thursday);
        assert_eq!(m.hour(), 17);
        assert_eq!(m.minute_of_day(), 17 * 60 + 42);
    }

    #[test]
    fn weekday_rolls_over_at_midnight() {
        let sunday_late = Minute::from_parts(0, Weekday::Sunday, 23, 59);
        assert_eq!(sunday_late.weekday(), Weekday::Sunday);
        assert_eq!(sunday_late.plus(1).weekday(), Weekday::Monday);
        assert_eq!(sunday_late.plus(1).week(), 1);
    }

    #[test]
    fn weekend_detection() {
        assert!(Weekday::Saturday.is_weekend());
        assert!(Weekday::Sunday.is_weekend());
        for d in [
            Weekday::Monday,
            Weekday::Tuesday,
            Weekday::Wednesday,
            Weekday::Thursday,
            Weekday::Friday,
        ] {
            assert!(!d.is_weekend(), "{d} must not be a weekend day");
        }
    }

    #[test]
    fn weekday_next_cycles() {
        let mut d = Weekday::Monday;
        for _ in 0..7 {
            d = d.next();
        }
        assert_eq!(d, Weekday::Monday);
    }

    #[test]
    fn day_and_minute_of_week() {
        let m = Minute::from_parts(2, Weekday::Wednesday, 6, 30);
        assert_eq!(m.day(), 2 * 7 + 2);
        assert_eq!(m.minute_of_week(), 2 * MINUTES_PER_DAY + 6 * 60 + 30);
    }

    #[test]
    #[should_panic(expected = "hour out of range")]
    fn from_parts_rejects_bad_hour() {
        let _ = Minute::from_parts(0, Weekday::Monday, 24, 0);
    }

    #[test]
    fn display_formats() {
        let m = Minute::from_parts(1, Weekday::Friday, 9, 5);
        assert_eq!(m.to_string(), "w1 Fri 09:05");
    }
}
