//! Granularity pyramid: O(bins) re-binning from exact integer prefix sums.
//!
//! Definition 3 of the paper scores *every* candidate binning of a series —
//! 1–180 minutes for daily patterns, the divisor-of-24-hours grid for weekly
//! patterns — and [`aggregate`](crate::binning::aggregate) re-reads all
//! `O(series_len)` samples per candidate. A [`GranularityPyramid`] does the
//! per-minute pass **once**: it stores an integer prefix sum of the finite
//! values plus a parallel finite-count prefix, from which any
//! `(granularity, offset)` binning is a subtraction per bin. A
//! [`PyramidLevel`] additionally folds the prefixes down to one coarse
//! binning's boundaries, so candidate granularities that are multiples of a
//! shared base re-bin from `O(bins_base)` entries instead of re-touching the
//! per-minute arrays at all.
//!
//! # Exactness
//!
//! Traffic counters are integer byte counts, so the pyramid demands integer
//! values and accumulates in `i64`. Eligibility ([`GranularityPyramid::
//! try_new`] returns `None` otherwise) requires every finite sample to be an
//! integer with magnitude at most `2^53` and the running sum of magnitudes
//! to stay within `2^53`. Under those conditions every partial sum the
//! direct `f64` accumulation in `aggregate` forms is an integer of magnitude
//! `≤ 2^53`, hence exactly representable in `f64`: no addition ever rounds,
//! so the direct result *is* the mathematical integer sum — the same number
//! the prefix-sum subtraction produces — and `(psum[hi] - psum[lo]) as f64`
//! is bit-identical to the direct accumulation (IEEE-754 doubles represent
//! each integer in range uniquely, and sums of integers under the default
//! rounding never produce `-0.0`). Bin *boundaries* are computed by the very
//! same [`bin_layout`] routine `aggregate` uses, so the two paths cannot
//! disagree on geometry either. Non-integer series (e.g. normalized rates)
//! simply fall back to `aggregate` — the caller keeps exactness by
//! construction, not by accident.

use crate::binning::{bin_layout, BinLayout, Granularity};
use crate::series::TimeSeries;
use crate::time::Minute;

/// Largest magnitude an intermediate sum may reach while staying exactly
/// representable in `f64` (`2^53`).
const MAX_EXACT: i64 = 1 << 53;

/// Integer prefix sums of a series' finite values plus a finite-count
/// prefix, supporting exact O(bins) re-binning at any `(granularity,
/// offset)`. Build once per series with [`GranularityPyramid::try_new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GranularityPyramid {
    start: Minute,
    step: u32,
    /// `psum[i]` = sum of the finite values among the first `i` samples.
    psum: Vec<i64>,
    /// `pcnt[i]` = number of finite values among the first `i` samples.
    pcnt: Vec<u32>,
}

impl GranularityPyramid {
    /// Builds the pyramid base, or `None` when the series is not exactly
    /// representable: a finite value is non-integer, exceeds `2^53` in
    /// magnitude, or the running sum of magnitudes exceeds `2^53` (callers
    /// then fall back to [`aggregate`](crate::binning::aggregate)).
    pub fn try_new(series: &TimeSeries) -> Option<GranularityPyramid> {
        let n = series.len();
        let mut psum = Vec::with_capacity(n + 1);
        let mut pcnt = Vec::with_capacity(n + 1);
        psum.push(0);
        pcnt.push(0);
        let mut sum: i64 = 0;
        let mut cnt: u32 = 0;
        let mut abs_sum: i64 = 0;
        for &v in series.values() {
            if v.is_finite() {
                if v.fract() != 0.0 || v.abs() > MAX_EXACT as f64 {
                    return None;
                }
                let iv = v as i64;
                abs_sum += iv.abs();
                if abs_sum > MAX_EXACT {
                    return None;
                }
                sum += iv;
                cnt += 1;
            }
            psum.push(sum);
            pcnt.push(cnt);
        }
        Some(GranularityPyramid {
            start: series.start(),
            step: series.step_minutes(),
            psum,
            pcnt,
        })
    }

    /// First covered minute of the source series.
    pub fn start(&self) -> Minute {
        self.start
    }

    /// Sampling step of the source series, in minutes.
    pub fn step_minutes(&self) -> u32 {
        self.step
    }

    /// Number of source samples.
    pub fn len(&self) -> usize {
        self.psum.len() - 1
    }

    /// Whether the source series was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One past the last covered minute of the source series.
    fn end(&self) -> Minute {
        self.start.plus(self.len() as u32 * self.step)
    }

    /// Index of the first sample at or after absolute minute `m`, clamped
    /// to `[0, len]`. For any bin `[m, m + g)` on a lattice `offset + k*g`
    /// (`g` a multiple of the step), the samples the direct `aggregate`
    /// loop reads are exactly indices `first_idx(m) .. first_idx(m + g)`:
    /// its probes visit consecutive indices, one per step, trimmed by the
    /// same `t < start` / `t >= end` bounds this clamp applies.
    fn first_idx(&self, m: i64) -> usize {
        let start = self.start.0 as i64;
        if m <= start {
            0
        } else {
            (((m - start) / self.step as i64) as usize).min(self.len())
        }
    }

    /// Number of bins [`GranularityPyramid::rebin`] would produce at the
    /// given `(granularity, offset)` — the geometry alone, without
    /// materializing the binned series. Lag-search callers use this to size
    /// `(scale, lag)` grids and their cell-accounting totals up front.
    ///
    /// # Panics
    /// Panics if `granularity` is not a multiple of the source step.
    pub fn bin_count(&self, granularity: Granularity, offset_minutes: u32) -> usize {
        let g = granularity.as_minutes();
        assert!(
            g.is_multiple_of(self.step),
            "granularity {g}m must be a multiple of the input step {}m",
            self.step
        );
        if self.is_empty() {
            return 0;
        }
        match bin_layout(self.start.0, self.end().0, g, offset_minutes) {
            BinLayout::Empty { .. } => 0,
            BinLayout::Bins { n_bins, .. } => n_bins,
        }
    }

    /// Re-bins the source series, bit-identical to
    /// [`aggregate`](crate::binning::aggregate) at the same arguments.
    ///
    /// # Panics
    /// Panics if `granularity` is not a multiple of the source step.
    pub fn rebin(&self, granularity: Granularity, offset_minutes: u32) -> TimeSeries {
        let g = granularity.as_minutes();
        assert!(
            g.is_multiple_of(self.step),
            "granularity {g}m must be a multiple of the input step {}m",
            self.step
        );
        if self.is_empty() {
            return TimeSeries::new(self.start, g, Vec::new());
        }
        match bin_layout(self.start.0, self.end().0, g, offset_minutes) {
            BinLayout::Empty { first_bin_start } => {
                TimeSeries::new(Minute(first_bin_start), g, Vec::new())
            }
            BinLayout::Bins {
                first_bin_start,
                n_bins,
            } => {
                let mut out = Vec::with_capacity(n_bins);
                let mut lo = self.first_idx(first_bin_start as i64);
                for b in 0..n_bins {
                    let hi = self.first_idx(first_bin_start as i64 + (b as i64 + 1) * g as i64);
                    out.push(if self.pcnt[hi] == self.pcnt[lo] {
                        f64::NAN
                    } else {
                        (self.psum[hi] - self.psum[lo]) as f64
                    });
                    lo = hi;
                }
                TimeSeries::new(Minute(first_bin_start), g, out)
            }
        }
    }

    /// Folds the pyramid down to the boundaries of one `(base, offset)`
    /// binning. Coarser granularities that are multiples of `base` then
    /// re-bin from the level's `O(bins_base)` prefixes via
    /// [`PyramidLevel::rebin`] without touching the per-sample arrays.
    ///
    /// # Panics
    /// Panics if `base` is not a multiple of the source step.
    pub fn level(&self, base: Granularity, offset_minutes: u32) -> PyramidLevel {
        let g = base.as_minutes();
        assert!(
            g.is_multiple_of(self.step),
            "level base {g}m must be a multiple of the input step {}m",
            self.step
        );
        let (first_bin_start, n_bins) = if self.is_empty() {
            (self.start.0, 0)
        } else {
            match bin_layout(self.start.0, self.end().0, g, offset_minutes) {
                BinLayout::Empty { first_bin_start } => (first_bin_start, 0),
                BinLayout::Bins {
                    first_bin_start,
                    n_bins,
                } => (first_bin_start, n_bins),
            }
        };
        let mut psum = Vec::with_capacity(n_bins + 1);
        let mut pcnt = Vec::with_capacity(n_bins + 1);
        for b in 0..=n_bins {
            let idx = self.first_idx(first_bin_start as i64 + b as i64 * g as i64);
            psum.push(self.psum[idx]);
            pcnt.push(self.pcnt[idx]);
        }
        PyramidLevel {
            src_start: self.start,
            src_end: self.end(),
            src_empty: self.is_empty(),
            base: g,
            offset_minutes,
            first_bin_start,
            psum,
            pcnt,
        }
    }
}

/// One pyramid level: the prefix sums sampled at the bin boundaries of a
/// `(base, offset)` binning. Obtained from [`GranularityPyramid::level`].
///
/// Every boundary of a coarser granularity `k·base` at the *same offset*
/// lies on the level's boundary lattice (both lattices are `offset + j·m`
/// grids with `base` dividing `k·base`), so coarse re-binning is a lookup
/// plus subtraction per bin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PyramidLevel {
    src_start: Minute,
    src_end: Minute,
    src_empty: bool,
    base: u32,
    offset_minutes: u32,
    first_bin_start: u32,
    /// Source prefix sum at each level boundary (`n_bins + 1` entries).
    psum: Vec<i64>,
    /// Source finite-count prefix at each level boundary.
    pcnt: Vec<u32>,
}

impl PyramidLevel {
    /// The level's bin width in minutes.
    pub fn base_minutes(&self) -> u32 {
        self.base
    }

    /// The level's day-start offset in minutes.
    pub fn offset_minutes(&self) -> u32 {
        self.offset_minutes
    }

    /// Index into the level prefixes for an absolute boundary minute `m` of
    /// a coarser binning. Clamping is exact, not approximate: a boundary
    /// below the level's first one can only occur when both are at or below
    /// the series start (where the prefix is 0 either way), and a boundary
    /// past the level's last one is past the series end (where the prefix is
    /// the full-series total either way) — see the unit and property tests.
    fn boundary_idx(&self, m: i64) -> usize {
        let d = m - self.first_bin_start as i64;
        if d <= 0 {
            return 0;
        }
        debug_assert_eq!(d % self.base as i64, 0, "boundary off the level lattice");
        ((d / self.base as i64) as usize).min(self.psum.len() - 1)
    }

    /// Re-bins at a multiple of the level base and the level's own offset,
    /// bit-identical to [`aggregate`](crate::binning::aggregate) on the
    /// source series at the same arguments.
    ///
    /// # Panics
    /// Panics if `granularity` is not a multiple of the level base.
    pub fn rebin(&self, granularity: Granularity) -> TimeSeries {
        let g = granularity.as_minutes();
        assert!(
            g.is_multiple_of(self.base),
            "granularity {g}m must be a multiple of the level base {}m",
            self.base
        );
        if self.src_empty {
            return TimeSeries::new(self.src_start, g, Vec::new());
        }
        match bin_layout(self.src_start.0, self.src_end.0, g, self.offset_minutes) {
            BinLayout::Empty { first_bin_start } => {
                TimeSeries::new(Minute(first_bin_start), g, Vec::new())
            }
            BinLayout::Bins {
                first_bin_start,
                n_bins,
            } => {
                let mut out = Vec::with_capacity(n_bins);
                let mut lo = self.boundary_idx(first_bin_start as i64);
                for b in 0..n_bins {
                    let hi = self.boundary_idx(first_bin_start as i64 + (b as i64 + 1) * g as i64);
                    out.push(if self.pcnt[hi] == self.pcnt[lo] {
                        f64::NAN
                    } else {
                        (self.psum[hi] - self.psum[lo]) as f64
                    });
                    lo = hi;
                }
                TimeSeries::new(Minute(first_bin_start), g, out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::aggregate;

    /// Asserts bitwise equality of two series (NaN positions included).
    fn assert_bit_identical(a: &TimeSeries, b: &TimeSeries, context: &str) {
        assert_eq!(a.start(), b.start(), "{context}: start");
        assert_eq!(a.step_minutes(), b.step_minutes(), "{context}: step");
        assert_eq!(a.len(), b.len(), "{context}: len");
        for (i, (x, y)) in a.values().iter().zip(b.values()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{context}: bin {i}: {x} vs {y} differ"
            );
        }
    }

    fn fixture(start: u32, step: u32, len: usize) -> TimeSeries {
        let values: Vec<f64> = (0..len)
            .map(|i| {
                if i % 7 == 3 {
                    f64::NAN
                } else {
                    ((i * 31 + 5) % 97) as f64 - 13.0
                }
            })
            .collect();
        TimeSeries::new(Minute(start), step, values)
    }

    #[test]
    fn rebin_matches_aggregate_across_geometries() {
        for (start, step, len) in [(0u32, 1u32, 253usize), (10, 1, 100), (7, 3, 81), (0, 2, 0)] {
            let s = fixture(start, step, len);
            let p = GranularityPyramid::try_new(&s).expect("integer series");
            for mult in [1u32, 2, 3, 5, 8, 60] {
                let g = Granularity::minutes(step * mult);
                for offset in [0u32, 1, 2, 5, 17, 120, 1000] {
                    let direct = aggregate(&s, g, offset);
                    let fast = p.rebin(g, offset);
                    assert_bit_identical(
                        &direct,
                        &fast,
                        &format!("start={start} step={step} len={len} g={g} offset={offset}"),
                    );
                }
            }
        }
    }

    #[test]
    fn level_fold_matches_aggregate() {
        for (start, step, len) in [(0u32, 1u32, 300usize), (13, 2, 77)] {
            let s = fixture(start, step, len);
            let p = GranularityPyramid::try_new(&s).unwrap();
            for base_mult in [1u32, 2, 5] {
                let base = Granularity::minutes(step * base_mult);
                for offset in [0u32, 3, 30, 500] {
                    let level = p.level(base, offset);
                    for k in [1u32, 2, 3, 7, 12] {
                        let g = Granularity::minutes(step * base_mult * k);
                        let direct = aggregate(&s, g, offset);
                        let fast = level.rebin(g);
                        assert_bit_identical(
                            &direct,
                            &fast,
                            &format!("start={start} step={step} base={base} g={g} offset={offset}"),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_missing_and_empty_series() {
        let missing = TimeSeries::missing(Minute(5), 1, 10);
        let p = GranularityPyramid::try_new(&missing).expect("NaN-only series is eligible");
        let fast = p.rebin(Granularity::minutes(4), 1);
        assert_bit_identical(&aggregate(&missing, Granularity::minutes(4), 1), &fast, "");
        assert!(fast.values().iter().all(|v| v.is_nan()));

        let empty = TimeSeries::new(Minute(9), 2, Vec::new());
        let p = GranularityPyramid::try_new(&empty).unwrap();
        assert!(p.is_empty());
        let fast = p.rebin(Granularity::minutes(6), 0);
        assert_bit_identical(&aggregate(&empty, Granularity::minutes(6), 0), &fast, "");
        let level = p.level(Granularity::minutes(2), 0);
        assert_bit_identical(
            &aggregate(&empty, Granularity::minutes(6), 0),
            &level.rebin(Granularity::minutes(6)),
            "",
        );
    }

    #[test]
    fn bin_count_matches_materialized_rebin() {
        for (start, step, len) in [(0u32, 1u32, 253usize), (7, 3, 81), (0, 2, 0)] {
            let s = fixture(start, step, len);
            let p = GranularityPyramid::try_new(&s).unwrap();
            for mult in [1u32, 2, 5, 60] {
                let g = Granularity::minutes(step * mult);
                for offset in [0u32, 1, 17, 1000] {
                    assert_eq!(
                        p.bin_count(g, offset),
                        p.rebin(g, offset).len(),
                        "start={start} step={step} len={len} g={g} offset={offset}"
                    );
                }
            }
        }
    }

    #[test]
    fn offset_past_end_gives_empty_binning() {
        // First non-negative boundary lands at or past the series end.
        let s = TimeSeries::per_minute(vec![1.0, 2.0, 3.0]);
        let p = GranularityPyramid::try_new(&s).unwrap();
        let direct = aggregate(&s, Granularity::minutes(10), 5);
        let fast = p.rebin(Granularity::minutes(10), 5);
        assert_bit_identical(&direct, &fast, "empty layout");
        assert!(fast.is_empty());
    }

    #[test]
    fn negative_zero_and_mixed_signs() {
        let s = TimeSeries::per_minute(vec![-0.0, 0.0, -5.0, 5.0, f64::NAN, -0.0]);
        let p = GranularityPyramid::try_new(&s).expect("-0.0 is an integer");
        for g in [1u32, 2, 3, 6] {
            assert_bit_identical(
                &aggregate(&s, Granularity::minutes(g), 0),
                &p.rebin(Granularity::minutes(g), 0),
                &format!("g={g}"),
            );
        }
    }

    #[test]
    fn non_integer_values_are_rejected() {
        let s = TimeSeries::per_minute(vec![1.0, 2.5, 3.0]);
        assert!(GranularityPyramid::try_new(&s).is_none());
        let tiny = TimeSeries::per_minute(vec![1e-3]);
        assert!(GranularityPyramid::try_new(&tiny).is_none());
    }

    #[test]
    fn magnitude_guard_rejects_unsafe_sums() {
        let max = (1u64 << 53) as f64;
        // A single value at the cap is fine…
        let ok = TimeSeries::per_minute(vec![max]);
        assert!(GranularityPyramid::try_new(&ok).is_some());
        // …a value beyond it is not, nor is a running sum crossing it.
        let too_big = TimeSeries::per_minute(vec![2.0 * max]);
        assert!(GranularityPyramid::try_new(&too_big).is_none());
        let creeping = TimeSeries::per_minute(vec![max, 1.0]);
        assert!(GranularityPyramid::try_new(&creeping).is_none());
        // Magnitudes are what matters: cancellation does not restore safety.
        let cancelling = TimeSeries::per_minute(vec![max, -max]);
        assert!(GranularityPyramid::try_new(&cancelling).is_none());
    }

    #[test]
    #[should_panic(expected = "multiple of the input step")]
    fn rebin_rejects_non_multiple_granularity() {
        let s = TimeSeries::new(Minute(0), 2, vec![1.0; 4]);
        let p = GranularityPyramid::try_new(&s).unwrap();
        let _ = p.rebin(Granularity::minutes(3), 0);
    }

    #[test]
    #[should_panic(expected = "multiple of the level base")]
    fn level_rebin_rejects_non_multiple_granularity() {
        let s = TimeSeries::per_minute(vec![1.0; 10]);
        let p = GranularityPyramid::try_new(&s).unwrap();
        let level = p.level(Granularity::minutes(2), 0);
        let _ = level.rebin(Granularity::minutes(3));
    }
}
