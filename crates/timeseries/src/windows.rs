//! Non-overlapping calendar windows.
//!
//! The paper's stationarity notion (Definition 2) and motif mapping
//! (Definition 5) both operate on *non-overlapping* windows whose starting
//! points synchronize with calendar boundaries: weekly windows start on
//! Mondays and daily windows at midnight (optionally shifted, e.g. the
//! winning weekly aggregation starts days at 2am). This module extracts such
//! windows from a [`TimeSeries`].

use crate::series::TimeSeries;
use crate::time::{Minute, Weekday, MINUTES_PER_DAY, MINUTES_PER_WEEK};

/// Whether a window spans a day or a week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// One calendar day (optionally offset from midnight).
    Daily,
    /// One calendar week starting on Monday (optionally offset).
    Weekly,
}

/// One extracted calendar window of a series.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Daily or weekly.
    pub kind: WindowKind,
    /// Zero-based week index the window belongs to.
    pub week: u32,
    /// For daily windows, the weekday; `None` for weekly windows.
    pub weekday: Option<Weekday>,
    /// The window's samples, calendar-aligned (missing-padded at the edges).
    pub series: TimeSeries,
}

impl Window {
    /// Fraction of the window's samples that are observed.
    pub fn coverage(&self) -> f64 {
        self.series.coverage()
    }

    /// Whether the window has at least one observed sample.
    pub fn has_observations(&self) -> bool {
        self.series.observed_count() > 0
    }

    /// Whether this is a Saturday or Sunday window (daily windows only).
    pub fn is_weekend(&self) -> bool {
        self.weekday.is_some_and(Weekday::is_weekend)
    }

    /// A short human-readable label, e.g. `w2` or `w2/Tue`.
    pub fn label(&self) -> String {
        match self.weekday {
            Some(d) => format!("w{}/{d}", self.week),
            None => format!("w{}", self.week),
        }
    }
}

/// Extracts the weekly windows of `series` over weeks `0..n_weeks`.
///
/// Each window starts on Monday at `offset_minutes` past midnight (the
/// paper's best weekly aggregation uses a 2am start, i.e. `offset_minutes =
/// 120`) and spans exactly one week. Windows are missing-padded where the
/// series does not cover them, so every returned window has the same length —
/// a prerequisite for the element-wise correlation of Definition 1.
pub fn weekly_windows(series: &TimeSeries, n_weeks: u32, offset_minutes: u32) -> Vec<Window> {
    let step = series.step_minutes();
    let len = (MINUTES_PER_WEEK / step) as usize;
    (0..n_weeks)
        .map(|w| {
            let start = Minute(w * MINUTES_PER_WEEK + offset_minutes);
            Window {
                kind: WindowKind::Weekly,
                week: w,
                weekday: None,
                series: series.slice(start, len),
            }
        })
        .collect()
}

/// Extracts the daily windows of `series` over `n_weeks` weeks.
///
/// Each window starts at `offset_minutes` past midnight and spans one day.
pub fn daily_windows(series: &TimeSeries, n_weeks: u32, offset_minutes: u32) -> Vec<Window> {
    let step = series.step_minutes();
    let len = (MINUTES_PER_DAY / step) as usize;
    let mut out = Vec::with_capacity(n_weeks as usize * 7);
    for w in 0..n_weeks {
        for d in Weekday::ALL {
            let start =
                Minute(w * MINUTES_PER_WEEK + d.index() as u32 * MINUTES_PER_DAY + offset_minutes);
            out.push(Window {
                kind: WindowKind::Daily,
                week: w,
                weekday: Some(d),
                series: series.slice(start, len),
            });
        }
    }
    out
}

/// Groups daily windows by weekday, preserving order within each group.
///
/// The paper's daily-pattern analysis compares Mondays with Mondays, Tuesdays
/// with Tuesdays, and so on (Section 7.1.2).
pub fn group_by_weekday(windows: &[Window]) -> [Vec<&Window>; 7] {
    let mut groups: [Vec<&Window>; 7] = Default::default();
    for w in windows {
        if let Some(d) = w.weekday {
            groups[d.index() as usize].push(w);
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::{aggregate, Granularity};

    fn two_week_series() -> TimeSeries {
        // Per-minute series over exactly 2 weeks with value = week index + 1.
        let mut v = Vec::new();
        v.extend(std::iter::repeat_n(1.0, MINUTES_PER_WEEK as usize));
        v.extend(std::iter::repeat_n(2.0, MINUTES_PER_WEEK as usize));
        TimeSeries::per_minute(v)
    }

    #[test]
    fn weekly_windows_align_to_mondays() {
        let s = two_week_series();
        let ws = weekly_windows(&s, 2, 0);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].series.start().weekday(), Weekday::Monday);
        assert_eq!(ws[0].series.len(), MINUTES_PER_WEEK as usize);
        assert!(ws[0].series.values().iter().all(|&v| v == 1.0));
        assert!(ws[1].series.values().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn weekly_offset_shifts_and_pads() {
        let s = two_week_series();
        let ws = weekly_windows(&s, 2, 120);
        assert_eq!(ws[0].series.start(), Minute(120));
        assert_eq!(ws[0].series.start().hour(), 2);
        // Second window extends 120 minutes past the series end -> padded.
        let last = &ws[1].series;
        assert_eq!(last.len(), MINUTES_PER_WEEK as usize);
        assert_eq!(
            last.observed_count(),
            MINUTES_PER_WEEK as usize - 120,
            "tail past the data must be missing"
        );
    }

    #[test]
    fn daily_windows_cover_all_weekdays() {
        let s = two_week_series();
        let ds = daily_windows(&s, 2, 0);
        assert_eq!(ds.len(), 14);
        assert_eq!(ds[0].weekday, Some(Weekday::Monday));
        assert_eq!(ds[6].weekday, Some(Weekday::Sunday));
        assert_eq!(ds[7].weekday, Some(Weekday::Monday));
        assert_eq!(ds[7].week, 1);
        assert!(ds[5].is_weekend());
        assert!(!ds[4].is_weekend());
    }

    #[test]
    fn windows_of_aggregated_series() {
        let s = two_week_series();
        let agg = aggregate(&s, Granularity::hours(8), 120);
        let ws = weekly_windows(&agg, 2, 120);
        assert_eq!(ws[0].series.len(), 21, "7 days x 3 eight-hour bins");
        assert_eq!(ws[0].series.step_minutes(), 480);
    }

    #[test]
    fn group_by_weekday_partitions() {
        let s = two_week_series();
        let ds = daily_windows(&s, 2, 0);
        let groups = group_by_weekday(&ds);
        for (i, g) in groups.iter().enumerate() {
            assert_eq!(g.len(), 2, "weekday {i} should appear twice");
        }
    }

    #[test]
    fn labels_are_readable() {
        let s = two_week_series();
        let ws = weekly_windows(&s, 1, 0);
        assert_eq!(ws[0].label(), "w0");
        let ds = daily_windows(&s, 1, 0);
        assert_eq!(ds[1].label(), "w0/Tue");
    }

    #[test]
    fn empty_region_windows_have_no_observations() {
        let s = TimeSeries::per_minute(vec![1.0; 100]);
        let ws = weekly_windows(&s, 3, 0);
        assert!(ws[0].has_observations());
        assert!(!ws[2].has_observations());
        assert_eq!(ws[2].coverage(), 0.0);
    }
}
