//! Raw cumulative-counter reports and their conversion to per-minute series.
//!
//! The paper's gateways log, once per minute, the *cumulative* number of
//! bytes transmitted and received by each device since the counter was last
//! reset. Real deployments lose reports (gateway reboots, devices leaving)
//! and counters wrap or reset; this module converts such a report stream
//! into the regular per-minute [`TimeSeries`] the analysis framework
//! consumes.

use crate::series::TimeSeries;
use crate::time::Minute;

/// One raw measurement report: the cumulative byte counter observed at a
/// given minute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterReport {
    /// Report timestamp.
    pub at: Minute,
    /// Cumulative bytes since the counter was created or last reset.
    pub cumulative_bytes: u64,
}

/// A stream of cumulative-counter reports for a single device and direction.
///
/// Reports must be appended in non-decreasing time order; duplicate
/// timestamps keep the last value, matching how a collection server
/// overwrites re-sent reports.
#[derive(Debug, Clone, Default)]
pub struct CounterTrace {
    reports: Vec<CounterReport>,
}

impl CounterTrace {
    /// An empty trace.
    pub fn new() -> CounterTrace {
        CounterTrace::default()
    }

    /// Appends a report.
    ///
    /// # Panics
    /// Panics if `at` precedes the previous report's timestamp.
    pub fn push(&mut self, at: Minute, cumulative_bytes: u64) {
        if let Some(last) = self.reports.last_mut() {
            assert!(at >= last.at, "reports must be time-ordered");
            if at == last.at {
                last.cumulative_bytes = cumulative_bytes;
                return;
            }
        }
        self.reports.push(CounterReport {
            at,
            cumulative_bytes,
        });
    }

    /// Number of stored reports.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether the trace holds no reports.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// The stored reports, time-ordered.
    pub fn reports(&self) -> &[CounterReport] {
        &self.reports
    }

    /// Converts the cumulative counters into a per-minute byte-count series
    /// covering `[start, start + len_minutes)`.
    ///
    /// Rules, chosen to match how the paper's collection pipeline behaves:
    ///
    /// * The delta between two consecutive reports one minute apart becomes
    ///   the sample of the later minute.
    /// * A counter that *decreases* is treated as a reset (reboot / wrap):
    ///   the later cumulative value is taken as the bytes since the reset.
    /// * A gap of `k > 1` minutes yields one sample carrying the whole delta
    ///   at the later report's minute and `k - 1` missing samples — we cannot
    ///   know how traffic was distributed inside the gap, and inventing a
    ///   uniform spread would fabricate correlation.
    /// * Minutes before the first report are missing.
    pub fn to_per_minute(&self, start: Minute, len_minutes: usize) -> TimeSeries {
        let mut series = TimeSeries::missing(start, 1, len_minutes);
        let end = start.plus(len_minutes as u32);
        let values = series.values_mut();
        for pair in self.reports.windows(2) {
            let (prev, cur) = (pair[0], pair[1]);
            if cur.at < start || cur.at >= end {
                continue;
            }
            let delta = if cur.cumulative_bytes >= prev.cumulative_bytes {
                cur.cumulative_bytes - prev.cumulative_bytes
            } else {
                // Counter reset between the reports.
                cur.cumulative_bytes
            };
            let idx = (cur.at.0 - start.0) as usize;
            values[idx] = delta as f64;
        }
        series
    }
}

impl FromIterator<(Minute, u64)> for CounterTrace {
    fn from_iter<T: IntoIterator<Item = (Minute, u64)>>(iter: T) -> CounterTrace {
        let mut trace = CounterTrace::new();
        for (at, bytes) in iter {
            trace.push(at, bytes);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_reports_become_deltas() {
        let trace: CounterTrace = [
            (Minute(0), 100),
            (Minute(1), 150),
            (Minute(2), 150),
            (Minute(3), 400),
        ]
        .into_iter()
        .collect();
        let s = trace.to_per_minute(Minute(0), 4);
        assert!(s.values()[0].is_nan(), "minute before any delta is missing");
        assert_eq!(s.values()[1], 50.0);
        assert_eq!(s.values()[2], 0.0);
        assert_eq!(s.values()[3], 250.0);
    }

    #[test]
    fn counter_reset_detected() {
        let trace: CounterTrace = [(Minute(0), 1000), (Minute(1), 30)].into_iter().collect();
        let s = trace.to_per_minute(Minute(0), 2);
        assert_eq!(s.values()[1], 30.0, "reset takes the new cumulative value");
    }

    #[test]
    fn gaps_leave_missing_samples() {
        let trace: CounterTrace = [(Minute(0), 0), (Minute(4), 400)].into_iter().collect();
        let s = trace.to_per_minute(Minute(0), 5);
        for i in 0..4 {
            assert!(s.values()[i].is_nan(), "minute {i} should be missing");
        }
        assert_eq!(s.values()[4], 400.0);
    }

    #[test]
    fn duplicate_timestamp_keeps_last() {
        let mut trace = CounterTrace::new();
        trace.push(Minute(0), 10);
        trace.push(Minute(1), 20);
        trace.push(Minute(1), 30);
        assert_eq!(trace.len(), 2);
        let s = trace.to_per_minute(Minute(0), 2);
        assert_eq!(s.values()[1], 20.0);
    }

    #[test]
    fn reports_outside_range_ignored() {
        let trace: CounterTrace = [(Minute(0), 0), (Minute(1), 10), (Minute(10), 100)]
            .into_iter()
            .collect();
        let s = trace.to_per_minute(Minute(0), 5);
        assert_eq!(s.values()[1], 10.0);
        assert_eq!(s.observed_count(), 1);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_rejected() {
        let mut trace = CounterTrace::new();
        trace.push(Minute(5), 10);
        trace.push(Minute(4), 20);
    }

    #[test]
    fn empty_trace_is_all_missing() {
        let trace = CounterTrace::new();
        let s = trace.to_per_minute(Minute(0), 3);
        assert_eq!(s.observed_count(), 0);
    }
}
