//! Raw cumulative-counter reports and their conversion to per-minute series.
//!
//! The paper's gateways log, once per minute, the *cumulative* number of
//! bytes transmitted and received by each device since the counter was last
//! reset. Real deployments lose reports (gateway reboots, devices leaving)
//! and counters wrap or reset; this module converts such a report stream
//! into the regular per-minute [`TimeSeries`] the analysis framework
//! consumes.

use crate::series::TimeSeries;
use crate::time::Minute;

/// One raw measurement report: the cumulative byte counter observed at a
/// given minute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterReport {
    /// Report timestamp.
    pub at: Minute,
    /// Cumulative bytes since the counter was created or last reset.
    pub cumulative_bytes: u64,
}

/// A report that precedes the previous accepted report of its trace.
///
/// Real collection servers see these constantly (retries on a slow path,
/// clock skew between gateway and server); a robust consumer counts and
/// drops them instead of aborting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfOrderReport {
    /// Timestamp of the offending report.
    pub at: Minute,
    /// Timestamp of the last accepted report.
    pub last: Minute,
}

impl std::fmt::Display for OutOfOrderReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out-of-order report at {} (last accepted {})",
            self.at, self.last
        )
    }
}

impl std::error::Error for OutOfOrderReport {}

/// Typed outcome of appending one report to a [`CounterTrace`].
///
/// Batch decoding and the streaming fleet-ingest decoder must classify the
/// *same* report sequence identically, or a WAL replay through one path
/// diverges from live ingest through the other. `CounterTrace` used to
/// silently overwrite on a duplicate timestamp (last delivery wins) while
/// the ingest decoder drops the retry (first delivery wins); both now share
/// this typed outcome with first-delivery-wins semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterPush {
    /// The report extended the trace.
    Appended,
    /// A re-delivery of an already-stored minute; the first delivery wins
    /// and the retry is ignored (the same rule as the ingest pipeline's
    /// `Dropped(Duplicate)` outcome).
    Duplicate,
}

/// How the delta between two consecutive counter reports decodes.
///
/// This is the single classification shared by batch decoding
/// ([`CounterTrace::to_per_minute`]) and the online fleet-ingest decoder, so
/// both paths attribute traffic identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterDelta {
    /// Monotone advance: `bytes` are attributed to the later report's
    /// minute (the whole delta when the reports span a gap — intermediate
    /// minutes stay missing).
    Advance(u64),
    /// The counter decreased between two *adjacent* minutes: a reset
    /// (reboot, wrap, re-association). The later cumulative value is the
    /// bytes since the reset and is attributed to the later minute.
    Reset(u64),
    /// The counter decreased across a multi-minute gap: the reset moment is
    /// unknown, the pre-reset tail is lost, and the post-reset cumulative
    /// value may cover hours — attributing it to any single minute would
    /// fabricate a spike, so the delta is unattributable and the later
    /// minute stays missing.
    ResetSpanningGap,
}

/// Classifies the byte delta carried by `cur` given the previous report
/// `prev` of the same trace. Requires `cur.at > prev.at`.
pub fn counter_delta(prev: CounterReport, cur: CounterReport) -> CounterDelta {
    debug_assert!(cur.at > prev.at, "counter_delta needs a forward step");
    if cur.cumulative_bytes >= prev.cumulative_bytes {
        CounterDelta::Advance(cur.cumulative_bytes - prev.cumulative_bytes)
    } else if cur.at.0 == prev.at.0 + 1 {
        CounterDelta::Reset(cur.cumulative_bytes)
    } else {
        CounterDelta::ResetSpanningGap
    }
}

/// A stream of cumulative-counter reports for a single device and direction.
///
/// Reports must be appended in non-decreasing time order; a duplicate
/// timestamp keeps the *first* delivery ([`CounterPush::Duplicate`]), the
/// same rule the streaming ingest decoder applies to retried reports.
#[derive(Debug, Clone, Default)]
pub struct CounterTrace {
    reports: Vec<CounterReport>,
}

impl CounterTrace {
    /// An empty trace.
    pub fn new() -> CounterTrace {
        CounterTrace::default()
    }

    /// Appends a report, returning the same typed outcome as
    /// [`CounterTrace::try_push`].
    ///
    /// # Panics
    /// Panics if `at` precedes the previous report's timestamp. Streaming
    /// consumers that must survive disordered input should use
    /// [`CounterTrace::try_push`] instead.
    pub fn push(&mut self, at: Minute, cumulative_bytes: u64) -> CounterPush {
        match self.try_push(at, cumulative_bytes) {
            Ok(outcome) => outcome,
            Err(e) => panic!("reports must be time-ordered: {e}"),
        }
    }

    /// Appends a report, returning `Err` instead of panicking when `at`
    /// precedes the previous report's timestamp (the trace is unchanged in
    /// that case). A duplicate timestamp keeps the first delivery and
    /// reports [`CounterPush::Duplicate`] — the classification is shared
    /// with [`CounterTrace::push`], so both entry points decode an
    /// identical report sequence identically.
    pub fn try_push(
        &mut self,
        at: Minute,
        cumulative_bytes: u64,
    ) -> Result<CounterPush, OutOfOrderReport> {
        if let Some(last) = self.reports.last() {
            if at < last.at {
                return Err(OutOfOrderReport { at, last: last.at });
            }
            if at == last.at {
                return Ok(CounterPush::Duplicate);
            }
        }
        self.reports.push(CounterReport {
            at,
            cumulative_bytes,
        });
        Ok(CounterPush::Appended)
    }

    /// Number of stored reports.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether the trace holds no reports.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// The stored reports, time-ordered.
    pub fn reports(&self) -> &[CounterReport] {
        &self.reports
    }

    /// Converts the cumulative counters into a per-minute byte-count series
    /// covering `[start, start + len_minutes)`.
    ///
    /// Rules, chosen to match how the paper's collection pipeline behaves:
    ///
    /// * The delta between two consecutive reports one minute apart becomes
    ///   the sample of the later minute.
    /// * A counter that *decreases* between adjacent minutes is treated as a
    ///   reset (reboot / wrap): the later cumulative value is taken as the
    ///   bytes since the reset.
    /// * A gap of `k > 1` minutes yields one sample carrying the whole delta
    ///   at the later report's minute and `k - 1` missing samples — we cannot
    ///   know how traffic was distributed inside the gap, and inventing a
    ///   uniform spread would fabricate correlation.
    /// * A reset *coinciding with* a multi-minute gap leaves the later
    ///   minute missing too: the post-reset cumulative value may cover hours
    ///   of traffic, and charging it to one minute would fabricate a spike
    ///   (inflating e.g. background-threshold whiskers) — attribution is
    ///   unknowable, the same rationale as the gap rule.
    /// * Minutes before the first report are missing.
    pub fn to_per_minute(&self, start: Minute, len_minutes: usize) -> TimeSeries {
        let mut series = TimeSeries::missing(start, 1, len_minutes);
        let end = start.plus(len_minutes as u32);
        let values = series.values_mut();
        for pair in self.reports.windows(2) {
            let (prev, cur) = (pair[0], pair[1]);
            if cur.at < start || cur.at >= end {
                continue;
            }
            let delta = match counter_delta(prev, cur) {
                CounterDelta::Advance(d) | CounterDelta::Reset(d) => d,
                CounterDelta::ResetSpanningGap => continue,
            };
            let idx = (cur.at.0 - start.0) as usize;
            values[idx] = delta as f64;
        }
        series
    }
}

impl FromIterator<(Minute, u64)> for CounterTrace {
    fn from_iter<T: IntoIterator<Item = (Minute, u64)>>(iter: T) -> CounterTrace {
        let mut trace = CounterTrace::new();
        for (at, bytes) in iter {
            trace.push(at, bytes);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_reports_become_deltas() {
        let trace: CounterTrace = [
            (Minute(0), 100),
            (Minute(1), 150),
            (Minute(2), 150),
            (Minute(3), 400),
        ]
        .into_iter()
        .collect();
        let s = trace.to_per_minute(Minute(0), 4);
        assert!(s.values()[0].is_nan(), "minute before any delta is missing");
        assert_eq!(s.values()[1], 50.0);
        assert_eq!(s.values()[2], 0.0);
        assert_eq!(s.values()[3], 250.0);
    }

    #[test]
    fn counter_reset_detected() {
        let trace: CounterTrace = [(Minute(0), 1000), (Minute(1), 30)].into_iter().collect();
        let s = trace.to_per_minute(Minute(0), 2);
        assert_eq!(s.values()[1], 30.0, "reset takes the new cumulative value");
    }

    #[test]
    fn reset_spanning_gap_is_missing() {
        // Regression: a reboot during a 4-hour reporting gap used to charge
        // the whole post-reset cumulative value (hours of traffic) to one
        // minute, fabricating a spike.
        let trace: CounterTrace = [
            (Minute(0), 5_000_000),
            (Minute(240), 3_600_000), // decreased across a 240-minute gap
            (Minute(241), 3_600_500),
        ]
        .into_iter()
        .collect();
        let s = trace.to_per_minute(Minute(0), 242);
        assert!(
            s.values()[240].is_nan(),
            "reset-spanning gap must stay missing, got {}",
            s.values()[240]
        );
        assert_eq!(s.values()[241], 500.0, "decoding resumes after the reset");
    }

    #[test]
    fn reset_spanning_gap_does_not_inflate_distribution_tail() {
        // A quiet device (100 B/min) with an overnight outage + reboot: the
        // fabricated multi-hour spike used to dominate the value
        // distribution's upper tail (and hence any whisker-style background
        // threshold derived from it).
        let mut trace = CounterTrace::new();
        for m in 0..60u32 {
            trace.push(Minute(m), 1_000 * (m as u64 + 1));
        }
        // 8 h outage with a reboot; the restarted counter has accumulated
        // 8 h of quiet traffic (100 B/min) when reporting resumes.
        trace.push(Minute(540), 48_000);
        trace.push(Minute(541), 48_100);
        let s = trace.to_per_minute(Minute(0), 542);
        let max = s
            .values()
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(f64::MIN, f64::max);
        assert!(
            max <= 1_000.0,
            "no decoded minute may exceed the true per-minute rate, got {max}"
        );
    }

    #[test]
    fn counter_delta_classification() {
        let r = |at: u32, cum: u64| CounterReport {
            at: Minute(at),
            cumulative_bytes: cum,
        };
        assert_eq!(counter_delta(r(0, 10), r(1, 25)), CounterDelta::Advance(15));
        assert_eq!(counter_delta(r(0, 10), r(5, 25)), CounterDelta::Advance(15));
        assert_eq!(counter_delta(r(0, 10), r(1, 4)), CounterDelta::Reset(4));
        assert_eq!(
            counter_delta(r(0, 10), r(2, 4)),
            CounterDelta::ResetSpanningGap
        );
    }

    #[test]
    fn try_push_reports_out_of_order() {
        let mut trace = CounterTrace::new();
        trace.try_push(Minute(5), 10).unwrap();
        let err = trace.try_push(Minute(4), 20).unwrap_err();
        assert_eq!(
            err,
            OutOfOrderReport {
                at: Minute(4),
                last: Minute(5)
            }
        );
        assert!(err.to_string().contains("out-of-order"));
        // The trace is untouched and keeps accepting in-order reports.
        assert_eq!(trace.len(), 1);
        trace.try_push(Minute(6), 30).unwrap();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn gaps_leave_missing_samples() {
        let trace: CounterTrace = [(Minute(0), 0), (Minute(4), 400)].into_iter().collect();
        let s = trace.to_per_minute(Minute(0), 5);
        for i in 0..4 {
            assert!(s.values()[i].is_nan(), "minute {i} should be missing");
        }
        assert_eq!(s.values()[4], 400.0);
    }

    #[test]
    fn duplicate_timestamp_keeps_first_delivery() {
        // Regression: duplicates used to overwrite (last delivery wins)
        // while the streaming ingest decoder drops retries (first wins), so
        // replaying the same report sequence through the two paths could
        // diverge. Both now keep the first delivery.
        let mut trace = CounterTrace::new();
        assert_eq!(trace.push(Minute(0), 10), CounterPush::Appended);
        assert_eq!(trace.push(Minute(1), 20), CounterPush::Appended);
        assert_eq!(trace.push(Minute(1), 30), CounterPush::Duplicate);
        assert_eq!(trace.len(), 2);
        let s = trace.to_per_minute(Minute(0), 2);
        assert_eq!(s.values()[1], 10.0, "first delivery wins");
    }

    #[test]
    fn push_and_try_push_classify_identically() {
        let stream = [
            (Minute(0), 100u64),
            (Minute(1), 150),
            (Minute(1), 175), // retried report with a differing payload
            (Minute(3), 400),
        ];
        let mut a = CounterTrace::new();
        let mut b = CounterTrace::new();
        for &(at, cum) in &stream {
            let via_push = a.push(at, cum);
            let via_try = b.try_push(at, cum).unwrap();
            assert_eq!(via_push, via_try);
        }
        assert_eq!(a.reports(), b.reports());
    }

    #[test]
    fn reports_outside_range_ignored() {
        let trace: CounterTrace = [(Minute(0), 0), (Minute(1), 10), (Minute(10), 100)]
            .into_iter()
            .collect();
        let s = trace.to_per_minute(Minute(0), 5);
        assert_eq!(s.values()[1], 10.0);
        assert_eq!(s.observed_count(), 1);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_rejected() {
        let mut trace = CounterTrace::new();
        trace.push(Minute(5), 10);
        trace.push(Minute(4), 20);
    }

    #[test]
    fn empty_trace_is_all_missing() {
        let trace = CounterTrace::new();
        let s = trace.to_per_minute(Minute(0), 3);
        assert_eq!(s.observed_count(), 0);
    }
}
