//! Time aggregation ("binning") of traffic series.
//!
//! Definition 3 of the paper searches over candidate aggregation
//! granularities (1 minute up to 24 hours) and window starting offsets
//! (midnight, 2am, 3am) for the binning that maximizes window-to-window
//! correlation. This module provides the binning primitive that the search in
//! `wtts-core::aggregation` sweeps over.

use crate::series::TimeSeries;
use crate::time::Minute;

/// An aggregation granularity, i.e. the width of one time bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Granularity {
    minutes: u32,
}

impl Granularity {
    /// A bin of `n` minutes.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub const fn minutes(n: u32) -> Granularity {
        assert!(n > 0, "granularity must be positive");
        Granularity { minutes: n }
    }

    /// A bin of `n` hours.
    pub const fn hours(n: u32) -> Granularity {
        Granularity::minutes(n * 60)
    }

    /// Bin width in minutes.
    pub fn as_minutes(self) -> u32 {
        self.minutes
    }

    /// Number of bins in one day, rounded up.
    pub fn bins_per_day(self) -> usize {
        crate::time::MINUTES_PER_DAY.div_ceil(self.minutes) as usize
    }

    /// Number of bins in one week, rounded up.
    pub fn bins_per_week(self) -> usize {
        crate::time::MINUTES_PER_WEEK.div_ceil(self.minutes) as usize
    }

    /// The daily granularities evaluated in Section 7.1.2 of the paper:
    /// 1, 5, 10, 30, 60, 90, 120 and 180 minutes.
    pub fn daily_candidates() -> &'static [Granularity] {
        const DAILY: [Granularity; 8] = [
            Granularity::minutes(1),
            Granularity::minutes(5),
            Granularity::minutes(10),
            Granularity::minutes(30),
            Granularity::minutes(60),
            Granularity::minutes(90),
            Granularity::minutes(120),
            Granularity::minutes(180),
        ];
        &DAILY
    }

    /// The weekly granularities evaluated in Section 7.1.1 of the paper:
    /// 1 minute plus every divisor-of-24 hour width (1, 2, 3, 4, 6, 8, 12,
    /// 24 hours).
    pub fn weekly_candidates() -> &'static [Granularity] {
        const WEEKLY: [Granularity; 9] = [
            Granularity::minutes(1),
            Granularity::hours(1),
            Granularity::hours(2),
            Granularity::hours(3),
            Granularity::hours(4),
            Granularity::hours(6),
            Granularity::hours(8),
            Granularity::hours(12),
            Granularity::hours(24),
        ];
        &WEEKLY
    }
}

impl std::fmt::Display for Granularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.minutes.is_multiple_of(60) {
            write!(f, "{}h", self.minutes / 60)
        } else {
            write!(f, "{}m", self.minutes)
        }
    }
}

/// Where the bins of a `(granularity, offset)` binning fall over the sample
/// span `[start_abs, end_abs)`, in absolute minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinLayout {
    /// The first usable bin boundary is already at or past the span's end;
    /// the binned series is empty and starts at that boundary.
    Empty { first_bin_start: u32 },
    /// Bins start at `first_bin_start + k*g` for `k in 0..n_bins`.
    Bins { first_bin_start: u32, n_bins: usize },
}

/// Computes the bin geometry [`aggregate`] uses, shared with the granularity
/// pyramid so both paths can never disagree on boundaries.
///
/// Boundaries sit at `offset + k*g` for integer `k`; the first bin is the one
/// containing `start_abs`, except when that boundary would be negative
/// (series starts before the first offset-aligned boundary): then we advance
/// to the first non-negative boundary and drop the leading samples — shifting
/// the boundary to zero would silently misalign every bin after it.
pub(crate) fn bin_layout(start_abs: u32, end_abs: u32, g: u32, offset_minutes: u32) -> BinLayout {
    let rel = start_abs as i64 - offset_minutes as i64;
    let first_bin = rel.div_euclid(g as i64);
    let mut first_bin_start = first_bin * g as i64 + offset_minutes as i64;
    debug_assert!(first_bin_start <= start_abs as i64);
    while first_bin_start < 0 {
        first_bin_start += g as i64;
    }
    let first_bin_start = first_bin_start as u32;
    if first_bin_start >= end_abs {
        return BinLayout::Empty { first_bin_start };
    }
    let n_bins = ((end_abs - first_bin_start) as usize).div_ceil(g as usize);
    BinLayout::Bins {
        first_bin_start,
        n_bins,
    }
}

/// Aggregates a series into `granularity`-wide bins.
///
/// Bin boundaries are anchored at the trace epoch plus `offset_minutes`
/// (e.g. `offset_minutes = 120` aligns 8-hour bins to 2am/10am/6pm, the
/// paper's winning weekly configuration). Each output bin is the **sum** of
/// the input samples it covers — traffic counters are extensive quantities.
/// A bin whose covered samples are all missing is missing; otherwise missing
/// samples contribute zero, matching the collection pipeline where an absent
/// report means "no traffic seen".
///
/// Input samples must be at least as fine as the requested granularity and
/// the granularity must be a multiple of the input step.
///
/// # Panics
/// Panics if `granularity` is not a multiple of the input step.
pub fn aggregate(series: &TimeSeries, granularity: Granularity, offset_minutes: u32) -> TimeSeries {
    let g = granularity.as_minutes();
    let step = series.step_minutes();
    assert!(
        g.is_multiple_of(step),
        "granularity {g}m must be a multiple of the input step {step}m"
    );
    if series.is_empty() {
        return TimeSeries::new(series.start(), g, Vec::new());
    }
    let per_bin = (g / step) as usize;

    let (first_bin_start, n_bins) =
        match bin_layout(series.start().0, series.end().0, g, offset_minutes) {
            BinLayout::Empty { first_bin_start } => {
                return TimeSeries::new(Minute(first_bin_start), g, Vec::new());
            }
            BinLayout::Bins {
                first_bin_start,
                n_bins,
            } => (first_bin_start, n_bins),
        };

    let mut out = Vec::with_capacity(n_bins);
    for b in 0..n_bins {
        let bin_start = first_bin_start + b as u32 * g;
        let mut sum = 0.0;
        let mut any = false;
        for k in 0..per_bin {
            let t = Minute(bin_start + k as u32 * step);
            if t < series.start() || t >= series.end() {
                continue;
            }
            let idx = ((t.0 - series.start().0) / step) as usize;
            let v = series.values()[idx];
            if v.is_finite() {
                sum += v;
                any = true;
            }
        }
        out.push(if any { sum } else { f64::NAN });
    }
    TimeSeries::new(Minute(first_bin_start), g, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_into_bins() {
        let s = TimeSeries::per_minute(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let a = aggregate(&s, Granularity::minutes(3), 0);
        assert_eq!(a.values(), &[6.0, 15.0]);
        assert_eq!(a.step_minutes(), 3);
        assert_eq!(a.start(), Minute(0));
    }

    #[test]
    fn partial_last_bin() {
        let s = TimeSeries::per_minute(vec![1.0; 5]);
        let a = aggregate(&s, Granularity::minutes(3), 0);
        assert_eq!(a.values(), &[3.0, 2.0]);
    }

    #[test]
    fn offset_shifts_boundaries() {
        // Samples at minutes 0..6; offset 2 puts boundaries at 2 and 5. The
        // pre-offset minutes 0..2 are dropped to keep every bin aligned.
        let s = TimeSeries::per_minute(vec![1.0, 1.0, 10.0, 10.0, 10.0, 100.0]);
        let a = aggregate(&s, Granularity::minutes(3), 2);
        assert_eq!(a.start(), Minute(2));
        assert_eq!(a.values(), &[30.0, 100.0]);
    }

    #[test]
    fn offset_alignment_is_calendar_stable() {
        // Two weeks of per-minute data; with an 8h granularity and a 2am
        // offset, every bin boundary must fall at 02:00, 10:00 or 18:00.
        let s = TimeSeries::per_minute(vec![1.0; 2 * crate::time::MINUTES_PER_WEEK as usize]);
        let a = aggregate(&s, Granularity::hours(8), 120);
        assert_eq!(a.start().minute_of_day(), 120);
        for i in 0..a.len() {
            let boundary = a.time_at(i).minute_of_day();
            assert!(
                [120, 600, 1080].contains(&boundary),
                "bin {i} starts at minute-of-day {boundary}"
            );
        }
    }

    #[test]
    fn offset_with_later_start() {
        // Series starting at minute 10, offset 2, g=4: boundaries ...,6,10,14
        let s = TimeSeries::new(Minute(10), 1, vec![1.0; 8]);
        let a = aggregate(&s, Granularity::minutes(4), 2);
        assert_eq!(a.start(), Minute(10));
        assert_eq!(a.values(), &[4.0, 4.0]);
    }

    #[test]
    fn missing_bins_propagate() {
        let s = TimeSeries::per_minute(vec![f64::NAN, f64::NAN, 5.0, f64::NAN]);
        let a = aggregate(&s, Granularity::minutes(2), 0);
        assert!(a.values()[0].is_nan());
        assert_eq!(a.values()[1], 5.0);
    }

    #[test]
    fn identity_granularity() {
        let s = TimeSeries::per_minute(vec![1.0, f64::NAN, 3.0]);
        let a = aggregate(&s, Granularity::minutes(1), 0);
        assert_eq!(a.values()[0], 1.0);
        assert!(a.values()[1].is_nan());
        assert_eq!(a.values()[2], 3.0);
    }

    #[test]
    fn aggregating_aggregated_series() {
        let s = TimeSeries::per_minute((0..12).map(|i| i as f64).collect());
        let hourly = aggregate(&s, Granularity::minutes(6), 0);
        let bi = aggregate(&hourly, Granularity::minutes(12), 0);
        assert_eq!(bi.values(), &[66.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of the input step")]
    fn non_multiple_granularity_rejected() {
        let s = TimeSeries::new(Minute(0), 2, vec![1.0; 4]);
        let _ = aggregate(&s, Granularity::minutes(3), 0);
    }

    #[test]
    fn candidate_lists_match_paper() {
        let daily: Vec<u32> = Granularity::daily_candidates()
            .iter()
            .map(|g| g.as_minutes())
            .collect();
        assert_eq!(daily, vec![1, 5, 10, 30, 60, 90, 120, 180]);
        let weekly: Vec<u32> = Granularity::weekly_candidates()
            .iter()
            .map(|g| g.as_minutes())
            .collect();
        assert_eq!(weekly, vec![1, 60, 120, 180, 240, 360, 480, 720, 1440]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Granularity::hours(8).to_string(), "8h");
        assert_eq!(Granularity::minutes(90).to_string(), "90m");
    }

    #[test]
    fn total_is_conserved() {
        let s = TimeSeries::per_minute((0..100).map(|i| (i * 7 % 13) as f64).collect());
        for g in [1u32, 2, 4, 5, 10, 20, 50] {
            let a = aggregate(&s, Granularity::minutes(g), 0);
            assert!(
                (a.total() - s.total()).abs() < 1e-9,
                "total changed for g={g}"
            );
        }
    }
}
