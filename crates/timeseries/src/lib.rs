//! Time-series foundations for wireless-traffic analysis.
//!
//! The paper analyzes *regularly sampled* traffic-counter series: each
//! residential gateway reports, once per minute, the cumulative incoming and
//! outgoing byte counters of every connected device. This crate provides the
//! containers and calendar machinery that the rest of the workspace builds
//! on:
//!
//! * [`Minute`] and [`Weekday`] — a minimal calendar anchored at the start of
//!   the observation campaign (a Monday, 00:00), mirroring the paper's
//!   dataset which starts on Monday, March 17, 2014.
//! * [`TimeSeries`] — a regularly sampled series with explicit missing values
//!   (`NaN`), the unit of all analyses.
//! * [`CounterTrace`] — raw cumulative-counter reports, convertible to a
//!   per-minute [`TimeSeries`] with reset and gap handling.
//! * [`binning`] — time aggregation (Definition 3 of the paper operates over
//!   candidate binnings).
//! * [`pyramid`] — exact integer prefix sums for O(bins) re-binning, the
//!   fast path of the Definition-3 granularity sweep.
//! * [`windows`] — non-overlapping daily and weekly windows, the `W` mapping
//!   of Definitions 2, 3 and 5.

pub mod binning;
pub mod counter;
pub mod pyramid;
pub mod series;
pub mod time;
pub mod windows;

pub use binning::{aggregate, Granularity};
pub use counter::{
    counter_delta, CounterDelta, CounterPush, CounterReport, CounterTrace, OutOfOrderReport,
};
pub use pyramid::{GranularityPyramid, PyramidLevel};
pub use series::TimeSeries;
pub use time::{Minute, Weekday, MINUTES_PER_DAY, MINUTES_PER_WEEK};
pub use windows::{daily_windows, weekly_windows, Window, WindowKind};
