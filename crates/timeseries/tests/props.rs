//! Property-based tests for the time-series foundations.

use proptest::prelude::*;
use wtts_timeseries::{
    aggregate, daily_windows, weekly_windows, CounterTrace, Granularity, GranularityPyramid,
    Minute, TimeSeries, Weekday, MINUTES_PER_DAY, MINUTES_PER_WEEK,
};

fn values(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            8 => (0.0f64..1e8).prop_map(|v| v),
            2 => Just(f64::NAN),
        ],
        len,
    )
}

/// Integer-valued traffic with NaN gaps — the pyramid's exact domain.
fn integer_values(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            8 => (0i64..100_000_000).prop_map(|v| v as f64),
            2 => Just(f64::NAN),
        ],
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Calendar round trip: any minute decomposes into consistent parts.
    #[test]
    fn minute_calendar_consistency(m in 0u32..(10 * MINUTES_PER_WEEK)) {
        let t = Minute(m);
        let rebuilt = Minute::from_parts(
            t.week(),
            t.weekday(),
            t.hour(),
            t.minute_of_day() % 60,
        );
        prop_assert_eq!(t, rebuilt);
        prop_assert_eq!(t.day(), m / MINUTES_PER_DAY);
        prop_assert!(t.minute_of_week() < MINUTES_PER_WEEK);
    }

    /// Weekday index round trip.
    #[test]
    fn weekday_index_roundtrip(i in 0u8..7) {
        let d = Weekday::from_index(i);
        prop_assert_eq!(d.index(), i);
        prop_assert_eq!(d.is_weekend(), i >= 5);
    }

    /// slice() preserves every stored value it covers and pads the rest.
    #[test]
    fn slice_preserves_values(vals in values(1..300), offset in 0u32..50, len in 1usize..400) {
        let s = TimeSeries::new(Minute(offset), 1, vals.clone());
        let sliced = s.slice(Minute(0), len);
        prop_assert_eq!(sliced.len(), len);
        for i in 0..len {
            let got = sliced.values()[i];
            let expect = if (i as u32) < offset {
                f64::NAN
            } else {
                vals.get((i as u32 - offset) as usize).copied().unwrap_or(f64::NAN)
            };
            prop_assert!(got.is_nan() == expect.is_nan());
            if got.is_finite() {
                prop_assert_eq!(got, expect);
            }
        }
    }

    /// add() is commutative and conserves the total when merges are
    /// missing-free on at least one side.
    #[test]
    fn add_commutes(a in values(1..200), b in values(1..200)) {
        let n = a.len().min(b.len());
        let x = TimeSeries::per_minute(a[..n].to_vec());
        let y = TimeSeries::per_minute(b[..n].to_vec());
        let xy = x.add(&y);
        let yx = y.add(&x);
        for (p, q) in xy.values().iter().zip(yx.values()) {
            prop_assert!(p.is_nan() == q.is_nan());
            if p.is_finite() {
                prop_assert!((p - q).abs() < 1e-9);
            }
        }
        let expect = x.total() + y.total();
        let rel = (xy.total() - expect).abs() / expect.abs().max(1.0);
        prop_assert!(rel < 1e-12);
    }

    /// Aggregation preserves totals and missing-ness semantics for any
    /// offset.
    #[test]
    fn aggregate_total_conserved_any_offset(
        vals in values(10..500),
        g in 1u32..120,
        offset in 0u32..120,
    ) {
        let s = TimeSeries::per_minute(vals);
        let a = aggregate(&s, Granularity::minutes(g), offset);
        // Offsets may drop up to `offset` leading samples.
        let dropped: f64 = s
            .values()
            .iter()
            .take(a.start().0 as usize)
            .filter(|v| v.is_finite())
            .sum();
        let rel = ((a.total() + dropped) - s.total()).abs() / s.total().abs().max(1.0);
        prop_assert!(rel < 1e-9, "total mismatch: {} vs {}", a.total() + dropped, s.total());
        prop_assert!(a.step_minutes() == g);
    }

    /// Weekly and daily windows always have calendar-exact lengths.
    #[test]
    fn windows_have_exact_lengths(weeks in 1u32..4, g in prop::sample::select(vec![1u32, 30, 60, 180, 480])) {
        let s = TimeSeries::per_minute(vec![1.0; (weeks * MINUTES_PER_WEEK) as usize]);
        let agg = aggregate(&s, Granularity::minutes(g), 0);
        for w in weekly_windows(&agg, weeks, 0) {
            prop_assert_eq!(w.series.len(), (MINUTES_PER_WEEK / g) as usize);
        }
        for d in daily_windows(&agg, weeks, 0) {
            prop_assert_eq!(d.series.len(), (MINUTES_PER_DAY / g) as usize);
        }
    }

    /// Pyramid rebinning is bit-identical to direct `aggregate` for any
    /// step, granularity multiple, offset, start, and NaN-gapped integer
    /// series whose length need not divide the bin width.
    #[test]
    fn pyramid_rebin_matches_aggregate(
        vals in integer_values(1..400),
        step in prop::sample::select(vec![1u32, 2, 3, 5]),
        mult in 1u32..40,
        offset in 0u32..2000,
        start in 0u32..500,
    ) {
        let s = TimeSeries::new(Minute(start), step, vals);
        let p = GranularityPyramid::try_new(&s).expect("integer values are exact");
        let g = Granularity::minutes(step * mult);
        let direct = aggregate(&s, g, offset);
        let fast = p.rebin(g, offset);
        prop_assert_eq!(fast.start(), direct.start());
        prop_assert_eq!(fast.step_minutes(), direct.step_minutes());
        prop_assert_eq!(fast.len(), direct.len());
        for (a, b) in fast.values().iter().zip(direct.values()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
        }
    }

    /// Folding a coarser granularity from a pyramid level matches direct
    /// aggregation bit-for-bit.
    #[test]
    fn pyramid_level_fold_matches_aggregate(
        vals in integer_values(1..400),
        step in prop::sample::select(vec![1u32, 2, 5]),
        base_mult in 1u32..8,
        fold_mult in 1u32..8,
        offset in 0u32..600,
        start in 0u32..200,
    ) {
        let s = TimeSeries::new(Minute(start), step, vals);
        let p = GranularityPyramid::try_new(&s).expect("integer values are exact");
        let base = step * base_mult;
        let g = Granularity::minutes(base * fold_mult);
        let level = p.level(Granularity::minutes(base), offset);
        let direct = aggregate(&s, g, offset);
        let folded = level.rebin(g);
        prop_assert_eq!(folded.start(), direct.start());
        prop_assert_eq!(folded.len(), direct.len());
        for (a, b) in folded.values().iter().zip(direct.values()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
        }
    }

    /// Any non-integer finite value disables the pyramid fast path.
    #[test]
    fn pyramid_rejects_fractional_values(
        vals in integer_values(2..100),
        frac in 0.01f64..0.99,
        at in 0usize..1000,
    ) {
        let mut vals = vals;
        let k = at % vals.len();
        vals[k] = 42.0 + frac;
        let s = TimeSeries::per_minute(vals);
        prop_assert!(GranularityPyramid::try_new(&s).is_none());
    }

    /// CounterTrace decoding never produces negative deltas.
    #[test]
    fn counter_deltas_non_negative(raw in prop::collection::vec(0u64..u32::MAX as u64, 2..100)) {
        // Interpret raw values as arbitrary cumulative readings (resets
        // allowed when a value is below its predecessor).
        let mut trace = CounterTrace::new();
        for (i, &v) in raw.iter().enumerate() {
            trace.push(Minute(i as u32), v);
        }
        let s = trace.to_per_minute(Minute(0), raw.len());
        for v in s.values() {
            if v.is_finite() {
                prop_assert!(*v >= 0.0);
            }
        }
    }
}
