//! Offline stand-in for the subset of `proptest` 1.x used by this workspace.
//!
//! The build container has no network access, so the workspace patches
//! `proptest` to this crate. It keeps the same authoring surface —
//! `proptest! { #[test] fn f(x in strategy) { .. } }`, range strategies,
//! `prop::collection::vec`, `prop_map`, `Just`, `prop_oneof!`,
//! `ProptestConfig::with_cases` and the `prop_assert*` macros — but runs a
//! plain deterministic sampler without shrinking: each case draws fresh
//! inputs from a per-test seeded RNG and failures panic like `assert!`.

use std::ops::Range;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    /// Deterministic per-test RNG (splitmix64 over a name-derived seed).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test name so every test draws a distinct but
        /// reproducible stream.
        pub fn deterministic(name: &str) -> TestRng {
            let mut seed = 0xcbf29ce484222325u64; // FNV-1a offset basis.
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100000001b3);
            }
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 random bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A value generator. Unlike real proptest there is no shrinking, so a
    /// strategy is just a sampling function.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values passing `f`, resampling up to a retry cap.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Boxes a strategy; used by `prop_oneof!` to unify arm types.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// The result of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates: {}", self.whence);
        }
    }

    /// Weighted union of boxed strategies, built by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick within total")
        }
    }

    // Tuples of strategies are themselves strategies, as in real proptest
    // (used e.g. as `vec((0.0..1.0, 0.0..1.0), len)` for paired samples).
    macro_rules! impl_tuple_strategy {
        ($($s:ident : $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }
}

pub mod prop {
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Uniform choice from a fixed list, as `prop::sample::select`.
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }

        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select from an empty list");
            Select { options }
        }
    }

    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Length specifications accepted by [`vec`].
        pub trait IntoLenRange {
            fn bounds(self) -> (usize, usize);
        }

        impl IntoLenRange for usize {
            fn bounds(self) -> (usize, usize) {
                (self, self + 1)
            }
        }

        impl IntoLenRange for Range<usize> {
            fn bounds(self) -> (usize, usize) {
                assert!(self.start < self.end, "empty vec length range");
                (self.start, self.end)
            }
        }

        /// Strategy for vectors with elementwise strategy `element`.
        pub struct VecStrategy<S> {
            element: S,
            lo: usize,
            hi: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.lo + (rng.below((self.hi - self.lo) as u64) as usize);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
            let (lo, hi) = len.bounds();
            VecStrategy { element, lo, hi }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    // `#[macro_export]` macros live at the crate root; the glob import of
    // this prelude picks them up through these re-exports.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Reuses a range expression as a strategy (ranges implement [`strategy::Strategy`]
/// directly); kept for API familiarity.
pub fn range_strategy<T>(r: Range<T>) -> Range<T> {
    r
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// The authoring macro: expands each `fn name(arg in strategy, ..) { body }`
/// into a `#[test]` that samples fresh inputs for each case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn lens(r: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(0.0f64..10.0, r)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 0.5f64..2.0, n in 3usize..9) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_lengths(v in lens(2..7)) {
            prop_assert!((2..7).contains(&v.len()), "len = {}", v.len());
            prop_assert!(v.iter().all(|&x| (0.0..10.0).contains(&x)));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![3 => (1.0f64..2.0).prop_map(|x| x * 10.0), 1 => Just(f64::NAN)]) {
            prop_assert!(v.is_nan() || (10.0..20.0).contains(&v));
        }
    }

    #[test]
    fn deterministic_streams_differ_by_name() {
        let mut a = crate::test_runner::TestRng::deterministic("a");
        let mut b = crate::test_runner::TestRng::deterministic("a");
        let mut c = crate::test_runner::TestRng::deterministic("c");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
