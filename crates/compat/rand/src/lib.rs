//! Offline stand-in for the subset of `rand` 0.8 used by this workspace.
//!
//! The build container has no network access and no vendored registry, so
//! the workspace patches `rand` to this crate. It is written to be
//! *stream-compatible* with `rand` 0.8.5 on 64-bit targets, not merely
//! API-compatible: [`rngs::SmallRng`] is xoshiro256++ seeded through the
//! same PCG32 filler `rand_core` uses for `seed_from_u64`, integer
//! `gen_range` reproduces `UniformInt`'s widening-multiply rejection
//! (including the per-width `u_large` type choices), and float `gen_range`
//! reproduces `UniformFloat`'s `[1, 2)` mantissa construction. The
//! simulator's fixture seeds were tuned against the real crate's stream,
//! so matching draws bit-for-bit keeps every seeded fixture identical.

use std::ops::{Range, RangeInclusive};

/// Seeding support: only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Builds a deterministically seeded generator.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from the "standard" distribution of `rand`:
/// uniform over the full integer domain, `[0, 1)` for floats.
pub trait StandardSample {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, exactly like rand's `Standard` for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        // rand compares the high bit of a u32 draw.
        rng.next_u32() & (1 << 31) != 0
    }
}

macro_rules! impl_standard_small_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                // Widths <= 32 draw one u32, as in rand's `Standard`.
                rng.next_u32() as $t
            }
        }
    )*};
}
impl_standard_small_int!(u8, u16, u32, i8, i16, i32);

macro_rules! impl_standard_large_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_large_int!(u64, usize, i64, isize);

/// Types uniformly samplable between two bounds. The blanket
/// [`SampleRange`] impls below are written over this trait so that a
/// range of unsuffixed literals (`0..4`) keeps a single inference
/// candidate, exactly like `rand`'s own `SampleUniform`.
pub trait SampleUniform: Sized {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

// `UniformInt::sample_single{,_inclusive}` from rand 0.8.5: draw the
// type's `u_large`, widening-multiply by the range, accept when the low
// half clears the rejection zone. The zone is computed by modulus for
// widths <= 16 bits and by the leading-zeros approximation above that —
// reproducing both branches keeps the consumed stream identical.
macro_rules! impl_uniform_int {
    ($($t:ty => $unsigned:ty, $u_large:ty, $wide:ty, $via_u32:tt);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let range = (hi.wrapping_sub(lo)) as $unsigned as $u_large;
                sample_rejection!(rng, lo, range, $t, $unsigned, $u_large, $wide, $via_u32)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let range = (hi.wrapping_sub(lo)) as $unsigned as $u_large;
                let range = range.wrapping_add(1);
                if range == 0 {
                    // Full-domain range: any draw is uniform.
                    return draw_u_large!(rng, $u_large, $via_u32) as $t;
                }
                sample_rejection!(rng, lo, range, $t, $unsigned, $u_large, $wide, $via_u32)
            }
        }
    )*};
}

macro_rules! draw_u_large {
    ($rng:expr, $u_large:ty, true) => {
        $rng.next_u32() as $u_large
    };
    ($rng:expr, $u_large:ty, false) => {
        $rng.next_u64() as $u_large
    };
}

macro_rules! sample_rejection {
    ($rng:expr, $lo:expr, $range:expr, $t:ty, $unsigned:ty, $u_large:ty, $wide:ty, $via_u32:tt) => {{
        let range: $u_large = $range;
        let zone = if (<$unsigned>::MAX as u32) <= u16::MAX as u32 {
            let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
            <$u_large>::MAX - ints_to_reject
        } else {
            (range << range.leading_zeros()).wrapping_sub(1)
        };
        loop {
            let v: $u_large = draw_u_large!($rng, $u_large, $via_u32);
            let wide = (v as $wide) * (range as $wide);
            let hi = (wide >> (<$u_large>::BITS)) as $u_large;
            let lo_part = wide as $u_large;
            if lo_part <= zone {
                break $lo.wrapping_add(hi as $t);
            }
        }
    }};
}

impl_uniform_int!(
    u8 => u8, u32, u64, true;
    i8 => u8, u32, u64, true;
    u16 => u16, u32, u64, true;
    i16 => u16, u32, u64, true;
    u32 => u32, u32, u64, true;
    i32 => u32, u32, u64, true;
    u64 => u64, u64, u128, false;
    i64 => u64, u64, u128, false;
    usize => usize, u64, u128, false;
    isize => usize, u64, u128, false;
);

// `UniformFloat::sample_single` from rand 0.8.5: build a float in `[1, 2)`
// from raw mantissa bits, rescale, and redraw on the (rounding-only) case
// where the result reaches `hi`.
impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        let mut scale = hi - lo;
        loop {
            let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
            let res = (value1_2 - 1.0) * scale + lo;
            if res < hi {
                return res;
            }
            scale = f64::from_bits(scale.to_bits() - 1);
        }
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "gen_range: empty range");
        let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
        ((value1_2 - 1.0) * (hi - lo) + lo).min(hi)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "gen_range: empty range");
        let mut scale = hi - lo;
        loop {
            let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
            let res = (value1_2 - 1.0) * scale + lo;
            if res < hi {
                return res;
            }
            scale = f32::from_bits(scale.to_bits() - 1);
        }
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "gen_range: empty range");
        let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
        ((value1_2 - 1.0) * (hi - lo) + lo).min(hi)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The random-value interface: a tiny `rand::Rng` look-alike.
pub trait Rng {
    /// The raw 64-bit source every sampler draws from.
    fn next_u64(&mut self) -> u64;

    /// 32-bit draw: the high half of a 64-bit draw, as rand's `SmallRng`
    /// does; matching it keeps streams aligned for 32-bit-and-under
    /// samples.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A value from the standard distribution (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli draw with probability `p`, via rand's fixed-point
    /// comparison (`p * 2^64` against a raw draw).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        if p == 1.0 {
            self.next_u64();
            return true;
        }
        let p_int = (p * (2.0f64).powi(64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the algorithm behind the real `SmallRng` on 64-bit
    /// targets, seeded through the same PCG32 byte filler `rand_core`'s
    /// default `seed_from_u64` uses, so every `seed_from_u64(n)` stream is
    /// bit-identical to `rand` 0.8.5's.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> SmallRng {
            // rand_core 0.6's default: PCG-XSH-RR 32 fills the seed bytes
            // four at a time, little-endian.
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_mut(4) {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
            }
            // Xoshiro256PlusPlus::from_seed: four little-endian u64 words.
            let mut s = [0u64; 4];
            for (word, bytes) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(bytes.try_into().expect("8-byte chunk"));
            }
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    /// The workspace never relies on `StdRng`'s specific stream; alias it.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0..4usize)] = true;
            let v = r.gen_range(1..=4u32);
            assert!((1..=4).contains(&v));
            let s = r.gen_range(-40i32..40);
            assert!((-40..40).contains(&s));
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn mean_is_half() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((total / n as f64 - 0.5).abs() < 0.01);
    }
}
