//! Offline stand-in for the subset of `criterion` 0.5 used by this
//! workspace's benches.
//!
//! The build container has no network access, so the workspace patches
//! `criterion` to this crate. Bench sources keep the familiar authoring
//! surface (`Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, `criterion_group!`,
//! `criterion_main!`). Measurement is a plain wall-clock loop: a short
//! warm-up, then `sample_size` timed samples whose median per-iteration
//! time is printed as `group/id ... <time>`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id: strings or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// The timing harness handed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Times `f`: warms up briefly, then takes `samples` timed samples with
    /// an iteration count chosen so each sample runs at least ~2 ms.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration estimate.
        let warmup = Instant::now();
        black_box(f());
        let once = warmup.elapsed();
        let iters = (Duration::from_millis(2).as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000)
            as usize;

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            times.push(t.elapsed() / iters as u32);
        }
        times.sort();
        self.last_median = times[times.len() / 2];
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let mut b = Bencher {
            samples: self.sample_size,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        println!("{}/{}: {:>12.3?} per iter", self.name, label, b.last_median);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// Top-level bench driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(7usize), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(runs > 0);
    }
}
