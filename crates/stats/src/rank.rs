//! Rank transforms with tie handling.

/// Everything one stable sort of a series yields: the sort permutation,
/// the mid-ranks, and the tie-group sizes.
///
/// The three views share tie-run detection, so computing them together
/// costs one `O(n log n)` sort instead of the two sorts (plus a value
/// clone) that separate [`mid_ranks`] / [`tie_group_sizes`] calls used to
/// spend. Batch correlation profiles lean on this: ranks feed Spearman,
/// tie groups feed Kendall's variance, and the permutation seeds Knight's
/// algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedSeries {
    /// Stable sort permutation: `order[k]` is the index (into the input) of
    /// the `k`-th smallest value; equal values keep their input order.
    /// Indices are `u32` — the width every downstream gather kernel uses —
    /// so the permutation flows into correlation profiles without a
    /// widening copy (series are capped at `u32::MAX` points).
    pub order: Vec<u32>,
    /// 1-based mid-ranks: ties receive the average of the ranks they
    /// occupy, the convention required by Spearman's ρ and Kendall's τ-b
    /// tie corrections.
    pub ranks: Vec<f64>,
    /// Sizes of each group of tied values, in value order; groups of size 1
    /// are omitted. Feeds the tie-corrected variance of Kendall's S.
    pub ties: Vec<usize>,
}

/// Ranks `xs` once and returns every per-series rank artifact.
///
/// Input values must be finite (filter missing data first).
///
/// # Panics
/// Panics if any value is not finite.
pub fn rank_series(xs: &[f64]) -> RankedSeries {
    // Small-domain fast lane first (see `kernels::rank_small_domain`):
    // integral series with a modest value range — the overwhelmingly common
    // shape of traffic windows — rank in O(n + range) via a stable counting
    // sort, bit-identical to the comparison path. A successful detection
    // also certifies every value finite, so the explicit scan below only
    // runs on the fallback.
    let mut order = Vec::new();
    let mut ranks = Vec::new();
    let mut tie_lens = Vec::new();
    if crate::kernels::rank_small_domain(xs, &mut order, &mut ranks, &mut tie_lens) {
        return RankedSeries {
            order,
            ranks,
            ties: tie_lens,
        };
    }
    assert!(
        xs.iter().all(|x| x.is_finite()),
        "mid_ranks requires finite inputs"
    );
    // Stable `(value, index)` sort, then one sequential walk of the sorted
    // values (see the `kernels` module): the same permutation, mid-ranks
    // and tie groups as the old index sort — equal values keep input order
    // under both — but the sort compares sequential keys instead of
    // chasing indices through `xs`, and the tie walk never gathers.
    let mut kv = Vec::new();
    crate::kernels::stable_value_sort(xs, &mut kv);
    crate::kernels::ranks_from_sorted_pairs(&kv, &mut ranks, &mut tie_lens);
    let order: Vec<u32> = kv.iter().map(|pair| pair.1).collect();
    RankedSeries {
        order,
        ranks,
        ties: tie_lens,
    }
}

/// Mid-ranks and tie-group sizes of `xs` from a single sort.
///
/// # Panics
/// Panics if any value is not finite.
pub fn ranks_and_ties(xs: &[f64]) -> (Vec<f64>, Vec<usize>) {
    let ranked = rank_series(xs);
    (ranked.ranks, ranked.ties)
}

/// Mid-ranks (average ranks) of `xs`, 1-based: ties receive the average of
/// the ranks they occupy, the convention required by Spearman's ρ and
/// Kendall's τ-b tie corrections.
///
/// Input values must be finite (filter missing data first).
///
/// # Panics
/// Panics if any value is not finite.
pub fn mid_ranks(xs: &[f64]) -> Vec<f64> {
    rank_series(xs).ranks
}

/// Sizes of each group of tied values (groups of size 1 are omitted).
///
/// Used by the tie-corrected variance of Kendall's S statistic.
///
/// # Panics
/// Panics if any value is not finite.
pub fn tie_group_sizes(xs: &[f64]) -> Vec<usize> {
    rank_series(xs).ties
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_without_ties() {
        let r = mid_ranks(&[30.0, 10.0, 20.0]);
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties_average() {
        // Values: 1, 2, 2, 3 -> ranks 1, 2.5, 2.5, 4
        let r = mid_ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn all_equal_values() {
        let r = mid_ranks(&[5.0; 4]);
        assert_eq!(r, vec![2.5; 4]);
    }

    #[test]
    fn empty_and_single() {
        assert!(mid_ranks(&[]).is_empty());
        assert_eq!(mid_ranks(&[42.0]), vec![1.0]);
    }

    #[test]
    fn rank_sum_invariant() {
        // Ranks always sum to n(n+1)/2 regardless of ties.
        let xs = [3.0, 1.0, 3.0, 3.0, 2.0, 1.0];
        let r = mid_ranks(&xs);
        let sum: f64 = r.iter().sum();
        assert!((sum - 21.0).abs() < 1e-12);
    }

    #[test]
    fn tie_groups() {
        assert_eq!(tie_group_sizes(&[1.0, 2.0, 3.0]), Vec::<usize>::new());
        assert_eq!(tie_group_sizes(&[1.0, 2.0, 2.0, 2.0, 3.0, 3.0]), vec![3, 2]);
        assert_eq!(tie_group_sizes(&[0.0; 5]), vec![5]);
    }

    #[test]
    #[should_panic(expected = "finite inputs")]
    fn ranks_reject_nan() {
        let _ = mid_ranks(&[1.0, f64::NAN]);
    }

    #[test]
    fn combined_matches_separate_views() {
        let xs = [3.0, 1.0, 3.0, 3.0, 2.0, 1.0];
        let (ranks, ties) = ranks_and_ties(&xs);
        assert_eq!(ranks, mid_ranks(&xs));
        assert_eq!(ties, tie_group_sizes(&xs));
    }

    #[test]
    fn order_is_a_stable_sort_permutation() {
        let xs = [2.0, 1.0, 2.0, 0.5, 1.0];
        let ranked = rank_series(&xs);
        // Sorted value sequence is non-decreasing...
        let sorted: Vec<f64> = ranked.order.iter().map(|&i| xs[i as usize]).collect();
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        // ...and equal values keep their input order (stability).
        assert_eq!(ranked.order, vec![3, 1, 4, 0, 2]);
    }
}
