//! Rank transforms with tie handling.

/// Mid-ranks (average ranks) of `xs`, 1-based: ties receive the average of
/// the ranks they occupy, the convention required by Spearman's ρ and
/// Kendall's τ-b tie corrections.
///
/// Input values must be finite (filter missing data first).
///
/// # Panics
/// Panics if any value is not finite.
pub fn mid_ranks(xs: &[f64]) -> Vec<f64> {
    assert!(
        xs.iter().all(|x| x.is_finite()),
        "mid_ranks requires finite inputs"
    );
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite values compare"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Positions i..=j share the same value: assign the average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Sizes of each group of tied values (groups of size 1 are omitted).
///
/// Used by the tie-corrected variance of Kendall's S statistic.
pub fn tie_group_sizes(xs: &[f64]) -> Vec<usize> {
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let mut groups = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        if j > i {
            groups.push(j - i + 1);
        }
        i = j + 1;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_without_ties() {
        let r = mid_ranks(&[30.0, 10.0, 20.0]);
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties_average() {
        // Values: 1, 2, 2, 3 -> ranks 1, 2.5, 2.5, 4
        let r = mid_ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn all_equal_values() {
        let r = mid_ranks(&[5.0; 4]);
        assert_eq!(r, vec![2.5; 4]);
    }

    #[test]
    fn empty_and_single() {
        assert!(mid_ranks(&[]).is_empty());
        assert_eq!(mid_ranks(&[42.0]), vec![1.0]);
    }

    #[test]
    fn rank_sum_invariant() {
        // Ranks always sum to n(n+1)/2 regardless of ties.
        let xs = [3.0, 1.0, 3.0, 3.0, 2.0, 1.0];
        let r = mid_ranks(&xs);
        let sum: f64 = r.iter().sum();
        assert!((sum - 21.0).abs() < 1e-12);
    }

    #[test]
    fn tie_groups() {
        assert_eq!(tie_group_sizes(&[1.0, 2.0, 3.0]), Vec::<usize>::new());
        assert_eq!(tie_group_sizes(&[1.0, 2.0, 2.0, 2.0, 3.0, 3.0]), vec![3, 2]);
        assert_eq!(tie_group_sizes(&[0.0; 5]), vec![5]);
    }

    #[test]
    #[should_panic(expected = "finite inputs")]
    fn ranks_reject_nan() {
        let _ = mid_ranks(&[1.0, f64::NAN]);
    }
}
