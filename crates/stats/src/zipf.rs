//! Rank-frequency (Zipf) power-law fitting.
//!
//! Section 4.1 of the paper observes that the distribution of traffic
//! values follows Zipf's law: when values are binned and the bin frequencies
//! are ranked, frequency decays as a power of rank,
//! `f(r) ∝ r^{−s}`. This module fits `s` by least squares in log-log space
//! and reports the goodness of fit, quantifying that claim on any sample.

/// A fitted rank-frequency power law `f(r) ≈ C · r^{−s}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfFit {
    /// The Zipf exponent `s` (positive for decaying frequencies).
    pub exponent: f64,
    /// `log10` of the scale constant `C`.
    pub log10_scale: f64,
    /// Coefficient of determination of the log-log regression.
    pub r_squared: f64,
    /// Number of distinct ranks used in the fit.
    pub n_ranks: usize,
}

impl ZipfFit {
    /// A rule-of-thumb check: the sample "follows Zipf's law" when the
    /// log-log fit is close to linear (`R² ≥ 0.8`) with a clearly positive
    /// exponent.
    pub fn is_zipfian(&self) -> bool {
        self.r_squared >= 0.8 && self.exponent > 0.25
    }
}

/// Fits a Zipf law to the rank-frequency distribution of `xs`.
///
/// Values are quantized into `n_bins` logarithmically spaced magnitude
/// classes over the positive finite values (zero and negative values are
/// dropped — zero traffic carries no magnitude information). Class
/// frequencies are sorted descending and regressed against rank in log-log
/// space. Returns `None` when fewer than three non-empty classes exist.
pub fn fit_zipf(xs: &[f64], n_bins: usize) -> Option<ZipfFit> {
    assert!(n_bins >= 3, "need at least three magnitude classes");
    let positives: Vec<f64> = xs
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    if positives.len() < 10 {
        return None;
    }
    let lo = positives.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = positives.iter().copied().fold(0.0f64, f64::max);
    if !hi.is_finite() || !lo.is_finite() || hi <= lo {
        return None;
    }
    let llo = lo.ln();
    let lhi = hi.ln();
    let width = (lhi - llo) / n_bins as f64;
    let mut counts = vec![0usize; n_bins];
    for v in &positives {
        let i = (((v.ln() - llo) / width) as usize).min(n_bins - 1);
        counts[i] += 1;
    }
    let mut freqs: Vec<f64> = counts
        .into_iter()
        .filter(|&c| c > 0)
        .map(|c| c as f64)
        .collect();
    freqs.sort_by(|a, b| b.partial_cmp(a).expect("finite counts"));
    fit_ranked(&freqs)
}

/// Fits a Zipf law to already rank-ordered (descending) frequencies.
pub fn fit_ranked(freqs_desc: &[f64]) -> Option<ZipfFit> {
    let n = freqs_desc.len();
    if n < 3 {
        return None;
    }
    // Regress log10(f) on log10(rank).
    let xs: Vec<f64> = (1..=n).map(|r| (r as f64).log10()).collect();
    let ys: Vec<f64> = freqs_desc.iter().map(|f| f.log10()).collect();
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(ZipfFit {
        exponent: -slope,
        log10_scale: intercept,
        r_squared: r2,
        n_ranks: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovered() {
        // f(r) = 1000 r^{-1.2}
        let freqs: Vec<f64> = (1..=50).map(|r| 1000.0 * (r as f64).powf(-1.2)).collect();
        let fit = fit_ranked(&freqs).unwrap();
        assert!((fit.exponent - 1.2).abs() < 1e-9);
        assert!((fit.log10_scale - 3.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.is_zipfian());
    }

    #[test]
    fn uniform_frequencies_not_zipfian() {
        let freqs = vec![10.0; 20];
        let fit = fit_ranked(&freqs).unwrap();
        assert!((fit.exponent).abs() < 1e-9);
        assert!(!fit.is_zipfian());
    }

    #[test]
    fn zipfian_sample_detected() {
        // Draw values so that magnitude class i has ~ c / (i+1)^1.5 members.
        let mut xs = Vec::new();
        for class in 0..12u32 {
            let count = (4000.0 / ((class + 1) as f64).powf(1.5)) as usize;
            let magnitude = 10f64.powi(class as i32 / 2) * (1.5 + class as f64);
            xs.extend(std::iter::repeat_n(magnitude, count));
        }
        let fit = fit_zipf(&xs, 16).unwrap();
        assert!(fit.exponent > 0.3, "exponent = {}", fit.exponent);
        assert!(fit.r_squared > 0.5, "r2 = {}", fit.r_squared);
    }

    #[test]
    fn too_few_values_is_none() {
        assert!(fit_zipf(&[1.0, 2.0, 3.0], 5).is_none());
        assert!(fit_ranked(&[5.0, 3.0]).is_none());
    }

    #[test]
    fn zeros_and_negatives_dropped() {
        let mut xs = vec![0.0; 100];
        xs.extend(vec![-5.0; 50]);
        // Only zeros/negatives -> None.
        assert!(fit_zipf(&xs, 5).is_none());
    }

    #[test]
    fn constant_positive_values_is_none() {
        let xs = vec![7.0; 100];
        assert!(fit_zipf(&xs, 5).is_none(), "no magnitude spread to fit");
    }
}
