//! Statistical primitives for wireless-traffic time-series analysis.
//!
//! Everything the paper's framework needs, implemented from scratch:
//!
//! * [`special`] — log-gamma, regularized incomplete beta, error function and
//!   the distribution functions (normal, Student's *t*, Kolmogorov) built on
//!   them. These power every p-value in the crate.
//! * [`descriptive`] — means, variances, quantiles, histograms and the
//!   boxplot statistics used for background-traffic thresholding.
//! * [`rank`] — mid-rank transforms with tie handling.
//! * [`correlation`] — Pearson, Spearman and Kendall coefficients, each with
//!   a two-sided significance test (the ingredients of the paper's
//!   Definition 1).
//! * [`corprofile`] — per-series profiles that make batch pairwise
//!   correlation cheap while staying bit-identical to [`correlation`].
//! * [`kernels`] — the cache/autovectorization-friendly inner loops the
//!   profiles, CCF folds, rank transforms and KS scan all bottom out in,
//!   bit-identical at every `f64` decision surface and benchmarked
//!   per-kernel against the loops they replaced (BENCH_kernels).
//! * [`sketch`] — per-series pruning sketches whose coefficient upper
//!   bounds let batch engines discard provably-below-threshold pairs
//!   without exact work (zero false dismissals).
//! * [`ks`] — the two-sample Kolmogorov–Smirnov test (Definition 2's
//!   distribution check).
//! * [`mod@acf`] — autocorrelation and cross-correlation functions
//!   (Figure 2), pairwise-complete under gaps with typed degenerate cases
//!   and a reusable per-series kernel ([`CcfSide`]) for lag-search engines.
//! * [`stationarity`] — KPSS and Augmented Dickey–Fuller tests (Section 4.2).
//! * [`ols`] — the small dense least-squares solver behind ADF.
//! * [`kde`] — Gaussian kernel density estimation (Figure 1a).
//! * [`zipf`] — rank-frequency power-law fitting (the paper's claim that
//!   traffic values follow Zipf's law).
//! * [`distance`] — Euclidean distance, z-normalization and Dynamic Time
//!   Warping, the baselines the correlation measure is compared against.
//!
//! All routines are missing-aware where it matters: series comparisons use
//! pairwise-complete observations, mirroring how the paper handles gateways
//! with gaps.

pub mod acf;
pub mod ar;
pub mod corprofile;
pub mod correlation;
pub mod descriptive;
pub mod distance;
pub mod kde;
pub mod kernels;
pub mod ks;
pub mod ols;
pub mod rank;
pub mod sketch;
pub mod special;
pub mod spectrum;
pub mod stationarity;
pub mod zipf;

pub use acf::{
    acf, ccf, ccf_cell, ccf_cell_counted, ccf_cells_batch, effective_sample_size,
    significance_bound, significance_bound_effective, CcfSide, CorrelogramError,
};
pub use ar::{fit_ar, fit_ar_aic, forecast_rmse, ArModel, ForecastComparison};
pub use corprofile::{
    cor_tests_profiled, kendall_profiled, pearson_profiled, spearman_profiled, CorProfile,
    CorScratch,
};
pub use correlation::{kendall, pearson, spearman, CorrelationCoefficient, CorrelationTest};
pub use descriptive::{
    histogram, mean, median, quantile, std_dev, variance, BoxplotStats, Histogram,
};
pub use distance::{dtw, dtw_banded, euclidean, z_normalize};
pub use kde::Kde;
pub use ks::{ks_two_sample, ks_two_sample_sorted, KsTest};
pub use ols::OlsFit;
pub use rank::{mid_ranks, rank_series, ranks_and_ties, tie_group_sizes, RankedSeries};
pub use sketch::{
    gaussian_breakpoints, mindist_cell_gaps, prune_pair, CorSketch, PruneTier, SketchConfig,
    PRUNE_MARGIN,
};
pub use spectrum::{dominant_period, fft, ljung_box, periodogram, LjungBox, SpectralLine};
pub use stationarity::{adf_test, kpss_test, AdfResult, KpssResult};
pub use zipf::{fit_ranked, fit_zipf, ZipfFit};

/// The significance level used throughout the paper (α = 0.05).
pub const ALPHA: f64 = 0.05;

/// Filters two equally long sample slices down to the index pairs where both
/// values are finite ("pairwise-complete observations").
///
/// Returns the retained `(x, y)` pairs as two vectors of equal length.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pairwise_complete(x: &[f64], y: &[f64]) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    let mut xs = Vec::with_capacity(x.len());
    let mut ys = Vec::with_capacity(y.len());
    for (&a, &b) in x.iter().zip(y) {
        if a.is_finite() && b.is_finite() {
            xs.push(a);
            ys.push(b);
        }
    }
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_complete_drops_either_side_missing() {
        let x = [1.0, f64::NAN, 3.0, 4.0];
        let y = [10.0, 20.0, f64::NAN, 40.0];
        let (xs, ys) = pairwise_complete(&x, &y);
        assert_eq!(xs, vec![1.0, 4.0]);
        assert_eq!(ys, vec![10.0, 40.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn pairwise_complete_rejects_length_mismatch() {
        let _ = pairwise_complete(&[1.0], &[1.0, 2.0]);
    }
}
