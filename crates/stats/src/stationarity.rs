//! Classical (wide-sense) stationarity tests: KPSS and Augmented
//! Dickey–Fuller.
//!
//! Section 4.2 of the paper applies both to per-minute gateway traffic and
//! finds that *all* tests indicate non-stationarity — the motivation for the
//! paper's own "strong stationarity over non-overlapping windows" notion
//! (Definition 2, implemented in `wtts-core`). Note the two tests have
//! opposite null hypotheses:
//!
//! * **KPSS** — `H0: stationary`; a *large* statistic rejects stationarity.
//! * **ADF** — `H0: unit root (non-stationary)`; a *very negative* statistic
//!   rejects the unit root, i.e. supports stationarity.
//!
//! A series behaves "non-stationary" in the paper's sense when KPSS rejects
//! and/or ADF fails to reject.

use crate::descriptive::mean;
use crate::ols::ols;

/// Result of the KPSS level-stationarity test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KpssResult {
    /// The KPSS η statistic.
    pub statistic: f64,
    /// Interpolated p-value, clamped to `[0.01, 0.10]` like R's
    /// `tseries::kpss.test` (values outside the table are reported at the
    /// boundary).
    pub p_value: f64,
    /// Newey–West truncation lag used for the long-run variance.
    pub lags: usize,
    /// Number of observations.
    pub n: usize,
}

impl KpssResult {
    /// Whether `H0: level-stationary` is rejected at level `alpha`.
    pub fn rejects_stationarity(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// KPSS critical values for level stationarity (Kwiatkowski et al. 1992,
/// Table 1), at the 10%, 5%, 2.5% and 1% levels.
const KPSS_LEVEL_CRIT: [(f64, f64); 4] =
    [(0.10, 0.347), (0.05, 0.463), (0.025, 0.574), (0.01, 0.739)];

/// KPSS test for level stationarity.
///
/// The statistic is `η = Σ_t S_t² / (n² s²(l))` where `S_t` are partial sums
/// of the demeaned series and `s²(l)` is the Newey–West long-run variance
/// with Bartlett weights and truncation lag
/// `l = ⌊4 (n/100)^{1/4}⌋` (the "short" lag convention).
///
/// Returns `None` for series with fewer than 8 observations or zero
/// variance. Missing values are dropped (the test concerns the value
/// distribution's evolution, and traffic gaps are ignorable at this scale).
pub fn kpss_test(x: &[f64]) -> Option<KpssResult> {
    let v: Vec<f64> = x.iter().copied().filter(|a| a.is_finite()).collect();
    let n = v.len();
    if n < 8 {
        return None;
    }
    let m = mean(&v);
    let e: Vec<f64> = v.iter().map(|a| a - m).collect();

    // Partial sums.
    let mut s = 0.0;
    let mut sum_s2 = 0.0;
    for &ei in &e {
        s += ei;
        sum_s2 += s * s;
    }

    // Newey–West long-run variance with Bartlett kernel.
    let lags = (4.0 * (n as f64 / 100.0).powf(0.25)).floor() as usize;
    let nf = n as f64;
    let mut lrv: f64 = e.iter().map(|a| a * a).sum::<f64>() / nf;
    for k in 1..=lags.min(n - 1) {
        let w = 1.0 - k as f64 / (lags as f64 + 1.0);
        let gamma: f64 = (0..n - k).map(|t| e[t] * e[t + k]).sum::<f64>() / nf;
        lrv += 2.0 * w * gamma;
    }
    if lrv <= 0.0 {
        return None;
    }

    let eta = sum_s2 / (nf * nf * lrv);
    let p = interpolate_p(eta, &KPSS_LEVEL_CRIT);
    Some(KpssResult {
        statistic: eta,
        p_value: p,
        lags,
        n,
    })
}

/// Linear interpolation of a p-value from `(alpha, critical)` pairs ordered
/// by descending alpha; statistic above the largest critical value clamps to
/// the smallest alpha and vice versa.
fn interpolate_p(stat: f64, table: &[(f64, f64)]) -> f64 {
    if stat <= table[0].1 {
        return table[0].0;
    }
    for w in table.windows(2) {
        let (a0, c0) = w[0];
        let (a1, c1) = w[1];
        if stat <= c1 {
            let t = (stat - c0) / (c1 - c0);
            return a0 + t * (a1 - a0);
        }
    }
    table[table.len() - 1].0
}

/// Result of the Augmented Dickey–Fuller test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdfResult {
    /// The Dickey–Fuller t statistic on the lagged level.
    pub statistic: f64,
    /// Interpolated p-value, clamped to `[0.01, 0.10]` at the table
    /// boundaries.
    pub p_value: f64,
    /// Number of lagged differences included.
    pub lags: usize,
    /// Number of regression observations.
    pub n: usize,
}

impl AdfResult {
    /// Whether `H0: unit root` is rejected at level `alpha` — i.e. whether
    /// the test finds evidence *for* stationarity.
    pub fn rejects_unit_root(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Large-sample critical values of the ADF t statistic for the
/// constant-no-trend model (MacKinnon 2010, T→∞), ordered from the mildest
/// rejection level to the strictest so that p-value interpolation over the
/// negated statistic works left-to-right.
const ADF_CONST_CRIT: [(f64, f64); 3] = [(0.10, -2.57), (0.05, -2.86), (0.01, -3.43)];

/// Augmented Dickey–Fuller test with a constant (no trend).
///
/// Regresses `Δy_t` on `(1, y_{t−1}, Δy_{t−1}, …, Δy_{t−p})` where the lag
/// order `p` defaults to Schwert's rule `⌊12 (n/100)^{1/4}⌋` when `lags` is
/// `None`. Missing values are dropped before differencing.
///
/// Returns `None` for series too short for the requested lag order or with
/// a degenerate regression.
pub fn adf_test(x: &[f64], lags: Option<usize>) -> Option<AdfResult> {
    let v: Vec<f64> = x.iter().copied().filter(|a| a.is_finite()).collect();
    let n = v.len();
    if n < 12 {
        return None;
    }
    let p = lags.unwrap_or_else(|| (12.0 * (n as f64 / 100.0).powf(0.25)).floor() as usize);
    // Differences d_t = y_t - y_{t-1}, t = 1..n-1.
    let d: Vec<f64> = v.windows(2).map(|w| w[1] - w[0]).collect();
    // Regression rows: t from p..d.len(), response d[t], regressors
    // 1, y[t], d[t-1..t-p].
    let k = 2 + p;
    let rows = d.len().checked_sub(p)?;
    if rows <= k + 2 {
        return None;
    }
    let mut design = Vec::with_capacity(rows * k);
    let mut y = Vec::with_capacity(rows);
    for t in p..d.len() {
        design.push(1.0);
        design.push(v[t]); // y_{t-1} relative to response d[t] = y_{t+1}-y_t
        for j in 1..=p {
            design.push(d[t - j]);
        }
        y.push(d[t]);
    }
    let fit = ols(&design, k, &y)?;
    let t_stat = fit.t_statistic(1);
    if !t_stat.is_finite() {
        return None;
    }
    // Table is ordered by increasing alpha <-> increasingly negative crit.
    // Reuse interpolate_p over (alpha, -crit) with -stat.
    let table: Vec<(f64, f64)> = ADF_CONST_CRIT.iter().map(|&(a, c)| (a, -c)).collect();
    let p_value = interpolate_p(-t_stat, &table);
    Some(AdfResult {
        statistic: t_stat,
        p_value,
        lags: p,
        n: rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random standard-normal-ish noise (sum of 12
    /// uniforms, Irwin–Hall) so tests don't need a rand dependency.
    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| (0..12).map(|_| next()).sum::<f64>() - 6.0)
            .collect()
    }

    #[test]
    fn kpss_accepts_white_noise() {
        let x = noise(500, 42);
        let r = kpss_test(&x).unwrap();
        assert!(
            !r.rejects_stationarity(0.05),
            "white noise is stationary, stat = {}",
            r.statistic
        );
    }

    #[test]
    fn kpss_rejects_random_walk() {
        let e = noise(500, 7);
        let mut x = Vec::with_capacity(e.len());
        let mut s = 0.0;
        for v in e {
            s += v;
            x.push(s);
        }
        let r = kpss_test(&x).unwrap();
        assert!(
            r.rejects_stationarity(0.05),
            "random walk is not stationary, stat = {}",
            r.statistic
        );
        assert!(r.statistic > 0.463);
    }

    #[test]
    fn kpss_rejects_trend() {
        let x: Vec<f64> = (0..300).map(|i| i as f64 * 0.1).collect();
        let r = kpss_test(&x).unwrap();
        assert!(r.rejects_stationarity(0.05));
    }

    #[test]
    fn kpss_short_series_none() {
        assert!(kpss_test(&[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn kpss_constant_series_none() {
        assert!(kpss_test(&[5.0; 100]).is_none());
    }

    #[test]
    fn adf_rejects_unit_root_for_white_noise() {
        let x = noise(500, 99);
        let r = adf_test(&x, Some(2)).unwrap();
        assert!(
            r.rejects_unit_root(0.05),
            "white noise has no unit root, t = {}",
            r.statistic
        );
        assert!(r.statistic < -2.86);
    }

    #[test]
    fn adf_fails_to_reject_for_random_walk() {
        let e = noise(500, 3);
        let mut x = Vec::with_capacity(e.len());
        let mut s = 0.0;
        for v in e {
            s += v;
            x.push(s);
        }
        let r = adf_test(&x, Some(2)).unwrap();
        assert!(
            !r.rejects_unit_root(0.05),
            "random walk keeps its unit root, t = {}",
            r.statistic
        );
    }

    #[test]
    fn adf_mean_reverting_ar1() {
        // AR(1) with phi = 0.5 is strongly stationary.
        let e = noise(800, 11);
        let mut x = vec![0.0];
        for t in 1..e.len() {
            let prev = x[t - 1];
            x.push(0.5 * prev + e[t]);
        }
        let r = adf_test(&x, None).unwrap();
        assert!(r.rejects_unit_root(0.05), "t = {}", r.statistic);
    }

    #[test]
    fn adf_short_series_none() {
        assert!(adf_test(&[1.0; 5], None).is_none());
    }

    #[test]
    fn adf_schwert_default_lag() {
        let x = noise(100, 5);
        let r = adf_test(&x, None).unwrap();
        assert_eq!(r.lags, 12); // floor(12 * (100/100)^0.25)
    }

    #[test]
    fn interpolation_clamps_to_table() {
        // Tiny statistic -> p at the 10% boundary; huge -> 1% boundary.
        assert_eq!(interpolate_p(0.0, &KPSS_LEVEL_CRIT), 0.10);
        assert_eq!(interpolate_p(10.0, &KPSS_LEVEL_CRIT), 0.01);
        // Middle of the table interpolates monotonically.
        let p1 = interpolate_p(0.40, &KPSS_LEVEL_CRIT);
        let p2 = interpolate_p(0.50, &KPSS_LEVEL_CRIT);
        assert!(p1 > p2);
    }

    #[test]
    fn kpss_and_adf_agree_on_clear_cases() {
        // Stationary: KPSS accepts, ADF rejects unit root.
        let stationary = noise(400, 42);
        assert!(!kpss_test(&stationary).unwrap().rejects_stationarity(0.05));
        assert!(adf_test(&stationary, Some(3))
            .unwrap()
            .rejects_unit_root(0.05));
        // Non-stationary: the reverse.
        let mut walk = vec![0.0];
        for (i, v) in noise(400, 321).into_iter().enumerate() {
            walk.push(walk[i] + v);
        }
        assert!(kpss_test(&walk).unwrap().rejects_stationarity(0.05));
        assert!(!adf_test(&walk, Some(3)).unwrap().rejects_unit_root(0.05));
    }
}
