//! Two-sample Kolmogorov–Smirnov test.
//!
//! Definition 2 of the paper (strong stationarity) requires that the value
//! distributions of every pair of non-overlapping windows be statistically
//! indistinguishable; the KS test is the non-parametric comparison the paper
//! uses because traffic values are heavily non-normal (Zipfian).

use crate::special::kolmogorov_sf;

/// Result of a two-sample Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic: the supremum distance between the two empirical
    /// CDFs.
    pub statistic: f64,
    /// Asymptotic p-value against `H0: same distribution`.
    pub p_value: f64,
    /// Sample sizes after dropping missing values.
    pub n1: usize,
    /// Sample sizes after dropping missing values.
    pub n2: usize,
}

impl KsTest {
    /// Whether `H0: same distribution` is rejected at level `alpha`.
    pub fn rejected(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sample KS test over the finite values of `x` and `y`.
///
/// Uses the asymptotic Kolmogorov distribution with the
/// effective-sample-size correction
/// `λ = (√n_e + 0.12 + 0.11/√n_e) · D` (Numerical Recipes), which is
/// accurate for `n_e ≳ 4`. Returns `None` if either sample is empty.
///
/// Boundary behavior (exercised by the unit tests and the brute-force
/// differential proptests): the tie sweep advances *past* every value equal
/// to the current step point in both samples before evaluating the CDF gap,
/// so cross-sample ties — including all-tied samples and runs of trailing
/// equal values, common after a constant-traffic window — contribute
/// distance only where the empirical CDFs genuinely differ. Singleton
/// samples (`n = 1`, a window with a single finite observation) are valid
/// inputs: `D` is exact, and the small-`n_e` p-value is conservative (≈ 1),
/// so a single observation never rejects stationarity on its own.
pub fn ks_two_sample(x: &[f64], y: &[f64]) -> Option<KsTest> {
    let mut a: Vec<f64> = x.iter().copied().filter(|v| v.is_finite()).collect();
    let mut b: Vec<f64> = y.iter().copied().filter(|v| v.is_finite()).collect();
    a.sort_by(|p, q| p.partial_cmp(q).expect("finite values compare"));
    b.sort_by(|p, q| p.partial_cmp(q).expect("finite values compare"));
    ks_two_sample_sorted(&a, &b)
}

/// [`ks_two_sample`] over samples that are already finite-only and sorted
/// ascending — the batch fast path when a caller tests one window against
/// many partners and can sort each window once instead of once per pair.
///
/// Bit-identical to [`ks_two_sample`] when each input equals the stably
/// sorted finite subsequence of the corresponding raw sample: the stable
/// sort is deterministic, so pre-sorting upstream yields the very sequence
/// the unsorted entry point would produce internally.
pub fn ks_two_sample_sorted(a: &[f64], b: &[f64]) -> Option<KsTest> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]), "sample not sorted");
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]), "sample not sorted");

    let (n1, n2) = (a.len(), b.len());
    // The sup-scan kernel: integer-scored record test, f64 gap evaluated
    // only at weak records — bit-identical to the classic per-step scan
    // (see `kernels::ks_sup_scan` for the monotonicity argument).
    let d = crate::kernels::ks_sup_scan(a, b);

    let ne = (n1 as f64 * n2 as f64) / (n1 as f64 + n2 as f64);
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    Some(KsTest {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
        n1,
        n2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_not_rejected() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let t = ks_two_sample(&x, &x).unwrap();
        assert_eq!(t.statistic, 0.0);
        assert!((t.p_value - 1.0).abs() < 1e-9);
        assert!(!t.rejected(0.05));
    }

    #[test]
    fn disjoint_samples_rejected() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..50).map(|i| 1000.0 + i as f64).collect();
        let t = ks_two_sample(&x, &y).unwrap();
        assert_eq!(t.statistic, 1.0);
        assert!(t.rejected(0.05));
        assert!(t.p_value < 1e-6);
    }

    #[test]
    fn shifted_distributions_rejected() {
        // Uniform grids offset by half their range.
        let x: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        let y: Vec<f64> = (0..200).map(|i| 0.5 + i as f64 / 200.0).collect();
        let t = ks_two_sample(&x, &y).unwrap();
        assert!((t.statistic - 0.5).abs() < 0.01);
        assert!(t.rejected(0.05));
    }

    #[test]
    fn same_distribution_different_samples() {
        // Two interleaved halves of the same grid: D = 1/100, not rejected.
        let x: Vec<f64> = (0..100).map(|i| (2 * i) as f64).collect();
        let y: Vec<f64> = (0..100).map(|i| (2 * i + 1) as f64).collect();
        let t = ks_two_sample(&x, &y).unwrap();
        assert!(t.statistic < 0.05, "D = {}", t.statistic);
        assert!(!t.rejected(0.05));
    }

    #[test]
    fn reference_statistic() {
        // SciPy: ks_2samp([1,2,3,4], [3,4,5,6]).statistic = 0.5
        let t = ks_two_sample(&[1.0, 2.0, 3.0, 4.0], &[3.0, 4.0, 5.0, 6.0]).unwrap();
        assert!((t.statistic - 0.5).abs() < 1e-12);
    }

    #[test]
    fn handles_ties_across_samples() {
        // All values identical: D = 0.
        let t = ks_two_sample(&[5.0; 30], &[5.0; 40]).unwrap();
        assert_eq!(t.statistic, 0.0);
    }

    #[test]
    fn missing_values_dropped() {
        let x = [1.0, f64::NAN, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, f64::NAN];
        let t = ks_two_sample(&x, &y).unwrap();
        assert_eq!(t.n1, 3);
        assert_eq!(t.n2, 3);
        assert_eq!(t.statistic, 0.0);
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(ks_two_sample(&[], &[1.0]).is_none());
        assert!(ks_two_sample(&[f64::NAN], &[1.0]).is_none());
    }

    #[test]
    fn statistic_symmetric() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0];
        let y = [2.0, 2.0, 6.0, 7.0];
        let a = ks_two_sample(&x, &y).unwrap();
        let b = ks_two_sample(&y, &x).unwrap();
        assert_eq!(a.statistic, b.statistic);
        assert_eq!(a.p_value, b.p_value);
    }

    #[test]
    fn singleton_samples() {
        // n = 1 vs n = 1: equal values → D = 0; distinct → D = 1. Either
        // way the tiny effective sample must keep the p-value conservative
        // (a lone observation can never reject stationarity).
        let same = ks_two_sample(&[4.0], &[4.0]).unwrap();
        assert_eq!((same.n1, same.n2), (1, 1));
        assert_eq!(same.statistic, 0.0);
        assert!(!same.rejected(0.05));

        let diff = ks_two_sample(&[1.0], &[9.0]).unwrap();
        assert_eq!(diff.statistic, 1.0);
        assert!(diff.p_value.is_finite());
        assert!(!diff.rejected(0.05), "p = {}", diff.p_value);

        // Singleton against a larger sample: the lone value sits below the
        // whole other sample, so D = 1 is exact.
        let t = ks_two_sample(&[0.0], &[5.0, 6.0, 7.0, 8.0]).unwrap();
        assert!((t.statistic - 1.0).abs() < 1e-12);

        // The singleton equal to the other sample's minimum: after the tie
        // advance, F1 = 1 and F2 = 1/4.
        let t = ks_two_sample(&[5.0], &[5.0, 6.0, 7.0, 8.0]).unwrap();
        assert!((t.statistic - 0.75).abs() < 1e-12);
    }

    #[test]
    fn trailing_equal_values() {
        // Both samples end in a shared run of equal values (a flat window
        // tail). The tie sweep must consume the whole run in both samples
        // at once; D comes only from the differing prefixes.
        // After t = 1: F1 = 2/5, F2 = 1/5 → D = 0.2; the trailing 9s then
        // close both CDFs to 1 together.
        let x = [0.0, 1.0, 9.0, 9.0, 9.0];
        let y = [1.0, 2.0, 9.0, 9.0, 9.0];
        let t = ks_two_sample(&x, &y).unwrap();
        assert!((t.statistic - 0.2).abs() < 1e-12, "D = {}", t.statistic);

        // Identical samples with a trailing plateau: D must be exactly 0.
        let z = [1.0, 2.0, 7.0, 7.0, 7.0, 7.0];
        let t = ks_two_sample(&z, &z).unwrap();
        assert_eq!(t.statistic, 0.0);
    }

    #[test]
    fn sorted_entry_point_matches_unsorted() {
        let x = [5.0, f64::NAN, 1.0, 3.0, 3.0, 8.0];
        let y = [2.0, 2.0, f64::NAN, 6.0, 7.0];
        let mut xs: Vec<f64> = x.iter().copied().filter(|v| v.is_finite()).collect();
        let mut ys: Vec<f64> = y.iter().copied().filter(|v| v.is_finite()).collect();
        xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
        ys.sort_by(|p, q| p.partial_cmp(q).unwrap());
        let a = ks_two_sample(&x, &y).unwrap();
        let b = ks_two_sample_sorted(&xs, &ys).unwrap();
        assert_eq!(a.statistic.to_bits(), b.statistic.to_bits());
        assert_eq!(a.p_value.to_bits(), b.p_value.to_bits());
        assert_eq!((a.n1, a.n2), (b.n1, b.n2));
        assert!(ks_two_sample_sorted(&[], &ys).is_none());
    }

    #[test]
    fn all_tied_samples_of_unequal_sizes() {
        // Every value identical within and across samples — the degenerate
        // constant-traffic case. D = 0 and H0 stands, for any size split.
        for (n1, n2) in [(1, 1), (1, 30), (30, 1), (17, 5)] {
            let x = vec![2.5; n1];
            let y = vec![2.5; n2];
            let t = ks_two_sample(&x, &y).unwrap();
            assert_eq!(t.statistic, 0.0, "n1={n1} n2={n2}");
            assert!((t.p_value - 1.0).abs() < 1e-9);
            assert!(!t.rejected(0.05));
        }
    }
}
