//! Autoregressive modeling via Yule–Walker / Levinson–Durbin.
//!
//! Section 4.2 of the paper argues that "ARIMA modeling for this time
//! granularity cannot yield useful results, as it is not able to predict
//! the rare bursts of the active traffic". This module provides the AR
//! machinery to make that claim testable: fit an AR(p) model to traffic,
//! forecast one step ahead, and compare against naive predictors — the
//! `sec4-arima` experiment then shows the model's forecasts collapse to the
//! mean and miss every burst.

use crate::acf::acf;
use crate::descriptive::{mean, variance};

/// A fitted autoregressive model of order `p`:
/// `x_t − μ = Σ_i φ_i (x_{t−i} − μ) + ε_t`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArModel {
    /// AR coefficients `φ_1..φ_p`.
    pub coefficients: Vec<f64>,
    /// Series mean subtracted before fitting.
    pub mean: f64,
    /// Innovation variance estimated by Levinson–Durbin.
    pub noise_variance: f64,
    /// Sample variance of the series.
    pub series_variance: f64,
}

impl ArModel {
    /// Model order.
    pub fn order(&self) -> usize {
        self.coefficients.len()
    }

    /// One-step-ahead forecast given the most recent observations
    /// (`history[history.len()-1]` is the newest).
    ///
    /// Missing values in the relevant lags fall back to the series mean —
    /// the model's best unconditional guess.
    pub fn forecast_one(&self, history: &[f64]) -> f64 {
        let mut pred = self.mean;
        for (i, &phi) in self.coefficients.iter().enumerate() {
            let idx = history.len().checked_sub(i + 1);
            let x = idx
                .and_then(|k| history.get(k))
                .copied()
                .filter(|v| v.is_finite())
                .unwrap_or(self.mean);
            pred += phi * (x - self.mean);
        }
        pred
    }

    /// Fraction of the series variance the model explains,
    /// `1 − σ²_ε / σ²_x`, clamped to `[0, 1]`.
    pub fn explained_variance(&self) -> f64 {
        if self.series_variance <= 0.0 {
            return 0.0;
        }
        (1.0 - self.noise_variance / self.series_variance).clamp(0.0, 1.0)
    }

    /// Akaike information criterion (Gaussian approximation):
    /// `n ln σ²_ε + 2p`.
    pub fn aic(&self, n: usize) -> f64 {
        n as f64 * self.noise_variance.max(1e-300).ln() + 2.0 * self.order() as f64
    }
}

/// Fits an AR(p) model by solving the Yule–Walker equations with the
/// Levinson–Durbin recursion.
///
/// Returns `None` for constant or too-short series (`n < p + 2`) or when
/// the recursion degenerates.
pub fn fit_ar(x: &[f64], p: usize) -> Option<ArModel> {
    assert!(p > 0, "AR order must be positive");
    let observed: Vec<f64> = x.iter().copied().filter(|v| v.is_finite()).collect();
    let n = observed.len();
    if n < p + 2 {
        return None;
    }
    // Constant series (typed as zero variance): no autocovariance
    // structure. `observed` is fully finite, so the lag count is the only
    // other way the recursion can come up short.
    let Ok(r) = acf(&observed, p) else {
        return None;
    };
    if r.len() <= p {
        return None;
    }
    let series_variance = variance(&observed);
    if !series_variance.is_finite() || series_variance <= 0.0 {
        return None;
    }

    // Levinson–Durbin recursion on the autocorrelation sequence.
    let mut phi = vec![0.0; p];
    let mut prev = vec![0.0; p];
    let mut e = 1.0; // Normalized innovation variance (ratio to var).
    for k in 0..p {
        let mut acc = r[k + 1];
        for j in 0..k {
            acc -= prev[j] * r[k - j];
        }
        let kappa = acc / e;
        phi[k] = kappa;
        for j in 0..k {
            phi[j] = prev[j] - kappa * prev[k - 1 - j];
        }
        e *= 1.0 - kappa * kappa;
        if !e.is_finite() || e <= 0.0 {
            return None;
        }
        prev[..=k].copy_from_slice(&phi[..=k]);
    }

    Some(ArModel {
        coefficients: phi,
        mean: mean(&observed),
        noise_variance: e * series_variance,
        series_variance,
    })
}

/// Fits AR models of order `1..=max_p` and returns the one minimizing AIC.
pub fn fit_ar_aic(x: &[f64], max_p: usize) -> Option<ArModel> {
    let n = x.iter().filter(|v| v.is_finite()).count();
    (1..=max_p)
        .filter_map(|p| fit_ar(x, p))
        .min_by(|a, b| a.aic(n).partial_cmp(&b.aic(n)).expect("finite AIC"))
}

/// Out-of-sample one-step forecast evaluation: fits on the first
/// `train_frac` of the series and reports root-mean-squared error over the
/// remainder for (model, mean-predictor, persistence-predictor).
pub fn forecast_rmse(x: &[f64], p: usize, train_frac: f64) -> Option<ForecastComparison> {
    assert!(
        (0.1..1.0).contains(&train_frac),
        "train_frac must be in (0.1, 1)"
    );
    let split = (x.len() as f64 * train_frac) as usize;
    if split < p + 2 || split >= x.len() {
        return None;
    }
    let model = fit_ar(&x[..split], p)?;
    let mu = model.mean;
    let mut se_model = 0.0;
    let mut se_mean = 0.0;
    let mut se_persist = 0.0;
    let mut count = 0usize;
    for t in split..x.len() {
        let actual = x[t];
        if !actual.is_finite() {
            continue;
        }
        let pred = model.forecast_one(&x[..t]);
        let last = x[..t]
            .iter()
            .rev()
            .find(|v| v.is_finite())
            .copied()
            .unwrap_or(mu);
        se_model += (actual - pred).powi(2);
        se_mean += (actual - mu).powi(2);
        se_persist += (actual - last).powi(2);
        count += 1;
    }
    if count == 0 {
        return None;
    }
    let rmse = |se: f64| (se / count as f64).sqrt();
    Some(ForecastComparison {
        model_rmse: rmse(se_model),
        mean_rmse: rmse(se_mean),
        persistence_rmse: rmse(se_persist),
        n_forecasts: count,
        model,
    })
}

/// Result of the out-of-sample forecast comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastComparison {
    /// RMSE of the AR model's one-step forecasts.
    pub model_rmse: f64,
    /// RMSE of always predicting the training mean.
    pub mean_rmse: f64,
    /// RMSE of predicting the previous observation.
    pub persistence_rmse: f64,
    /// Number of evaluated forecasts.
    pub n_forecasts: usize,
    /// The fitted model.
    pub model: ArModel,
}

impl ForecastComparison {
    /// Skill relative to the mean predictor: `1 − RMSE_model / RMSE_mean`.
    /// Near zero means the model adds nothing over predicting the mean —
    /// the paper's verdict on per-minute traffic.
    pub fn skill_vs_mean(&self) -> f64 {
        if self.mean_rmse <= 0.0 {
            return 0.0;
        }
        1.0 - self.model_rmse / self.mean_rmse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic noise.
    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((0..12)
                    .map(|k| ((state >> (k * 5)) & 0x3FF) as f64 / 1024.0)
                    .sum::<f64>()
                    - 6.0)
                    / 1.0
            })
            .collect()
    }

    fn ar1_series(phi: f64, n: usize, seed: u64) -> Vec<f64> {
        let e = noise(n, seed);
        let mut x = vec![0.0];
        for t in 1..n {
            let prev = x[t - 1];
            x.push(phi * prev + e[t]);
        }
        x
    }

    #[test]
    fn recovers_ar1_coefficient() {
        let x = ar1_series(0.7, 4000, 42);
        let model = fit_ar(&x, 1).unwrap();
        assert!(
            (model.coefficients[0] - 0.7).abs() < 0.07,
            "phi = {}",
            model.coefficients[0]
        );
        assert!(model.explained_variance() > 0.3);
    }

    #[test]
    fn recovers_ar2_signs() {
        // AR(2): x_t = 0.5 x_{t-1} - 0.3 x_{t-2} + e.
        let e = noise(4000, 9);
        let mut x = vec![0.0, 0.0];
        for t in 2..4000 {
            let v = 0.5 * x[t - 1] - 0.3 * x[t - 2] + e[t];
            x.push(v);
        }
        let model = fit_ar(&x, 2).unwrap();
        assert!(
            (model.coefficients[0] - 0.5).abs() < 0.08,
            "{:?}",
            model.coefficients
        );
        assert!(
            (model.coefficients[1] + 0.3).abs() < 0.08,
            "{:?}",
            model.coefficients
        );
    }

    #[test]
    fn white_noise_has_no_structure() {
        let x = noise(3000, 5);
        let model = fit_ar(&x, 3).unwrap();
        for phi in &model.coefficients {
            assert!(phi.abs() < 0.08, "spurious coefficient {phi}");
        }
        assert!(model.explained_variance() < 0.05);
    }

    #[test]
    fn forecast_tracks_ar_process() {
        let x = ar1_series(0.8, 2000, 3);
        let cmp = forecast_rmse(&x, 1, 0.7).unwrap();
        assert!(
            cmp.model_rmse < cmp.mean_rmse * 0.85,
            "AR should beat the mean on an AR process: {} vs {}",
            cmp.model_rmse,
            cmp.mean_rmse
        );
        assert!(cmp.skill_vs_mean() > 0.1);
    }

    #[test]
    fn bursty_traffic_defeats_the_model() {
        // Sparse huge bursts over near-zero background — per-minute traffic.
        let x: Vec<f64> = (0..3000)
            .map(|i| {
                if (i * 2654435761usize).is_multiple_of(97) {
                    1e7 + (i % 13) as f64 * 1e5
                } else {
                    50.0 + (i % 7) as f64
                }
            })
            .collect();
        let cmp = forecast_rmse(&x, 4, 0.7).unwrap();
        // The model cannot anticipate the bursts: skill vs mean ~ 0.
        assert!(
            cmp.skill_vs_mean() < 0.1,
            "burst traffic should not be forecastable: skill = {}",
            cmp.skill_vs_mean()
        );
    }

    #[test]
    fn aic_selects_reasonable_order() {
        let x = ar1_series(0.7, 3000, 7);
        let model = fit_ar_aic(&x, 6).unwrap();
        assert!(model.order() <= 3, "AIC picked order {}", model.order());
    }

    #[test]
    fn degenerate_inputs() {
        assert!(fit_ar(&[1.0, 2.0], 3).is_none());
        assert!(fit_ar(&[5.0; 100], 2).is_none());
        let short = [1.0, 2.0, 1.5];
        assert!(forecast_rmse(&short, 2, 0.5).is_none());
    }

    #[test]
    fn forecast_handles_missing_history() {
        let x = ar1_series(0.6, 500, 11);
        let model = fit_ar(&x, 2).unwrap();
        let mut hist = x[..100].to_vec();
        hist[99] = f64::NAN;
        let pred = model.forecast_one(&hist);
        assert!(pred.is_finite());
    }

    #[test]
    #[should_panic(expected = "order must be positive")]
    fn zero_order_rejected() {
        let _ = fit_ar(&[1.0; 10], 0);
    }
}
