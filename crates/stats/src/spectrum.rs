//! Spectral analysis: FFT, periodogram and the Ljung–Box portmanteau test.
//!
//! Section 4.2 of the paper asserts that "no gateway exhibits a seasonal
//! behavior" at the per-minute granularity — bursty activity drowns any
//! clean periodicity. This module provides the machinery to check that
//! claim: a radix-2 FFT, the periodogram with its dominant-period readout,
//! and the Ljung–Box test for joint autocorrelation significance.

use crate::descriptive::mean;
use crate::special::chi_squared_sf;

/// In-place iterative radix-2 Cooley–Tukey FFT over `(re, im)` pairs.
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn fft(data: &mut [(f64, f64)]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let angle = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (angle.cos(), angle.sin());
        for chunk in data.chunks_mut(len) {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            let half = len / 2;
            for k in 0..half {
                let (ar, ai) = chunk[k];
                let (br, bi) = chunk[k + half];
                let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                chunk[k] = (ar + tr, ai + ti);
                chunk[k + half] = (ar - tr, ai - ti);
                let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = ncr;
                ci = nci;
            }
        }
        len *= 2;
    }
}

/// One periodogram line: a frequency and its power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralLine {
    /// Frequency in cycles per sample, `(0, 0.5]`.
    pub frequency: f64,
    /// Periodogram power at that frequency.
    pub power: f64,
}

impl SpectralLine {
    /// The corresponding period in samples.
    pub fn period_samples(&self) -> f64 {
        1.0 / self.frequency
    }
}

/// Periodogram of the demeaned series (missing values replaced by the
/// mean, i.e. zero deviation), zero-padded to the next power of two.
///
/// Returns lines for frequencies `k/n_fft`, `k = 1 .. n_fft/2`, in
/// frequency order. Returns an empty vector for series with fewer than four
/// observations or no variance.
pub fn periodogram(x: &[f64]) -> Vec<SpectralLine> {
    let m = mean(x);
    if !m.is_finite() || x.len() < 4 {
        return Vec::new();
    }
    let n = x.len();
    let n_fft = n.next_power_of_two();
    let mut buf: Vec<(f64, f64)> = x
        .iter()
        .map(|&v| {
            if v.is_finite() {
                (v - m, 0.0)
            } else {
                (0.0, 0.0)
            }
        })
        .chain(std::iter::repeat((0.0, 0.0)))
        .take(n_fft)
        .collect();
    if buf.iter().all(|&(re, _)| re == 0.0) {
        return Vec::new();
    }
    fft(&mut buf);
    (1..=n_fft / 2)
        .map(|k| SpectralLine {
            frequency: k as f64 / n_fft as f64,
            power: (buf[k].0 * buf[k].0 + buf[k].1 * buf[k].1) / n as f64,
        })
        .collect()
}

/// The spectral line with the highest power, together with the share of the
/// total spectral mass it carries — a simple seasonality detector: a clean
/// daily rhythm puts a large share on one line, bursty traffic spreads it.
pub fn dominant_period(x: &[f64]) -> Option<(SpectralLine, f64)> {
    let spec = periodogram(x);
    let total: f64 = spec.iter().map(|l| l.power).sum();
    let best = spec
        .into_iter()
        .max_by(|a, b| a.power.partial_cmp(&b.power).expect("finite power"))?;
    if total <= 0.0 {
        return None;
    }
    let share = best.power / total;
    Some((best, share))
}

/// Result of the Ljung–Box portmanteau test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LjungBox {
    /// The Q statistic.
    pub statistic: f64,
    /// p-value against `H0: no autocorrelation up to the tested lag`.
    pub p_value: f64,
    /// Number of lags tested.
    pub lags: usize,
}

impl LjungBox {
    /// Whether `H0: white noise` is rejected at `alpha`.
    pub fn rejects_whiteness(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Ljung–Box test over the first `lags` autocorrelations:
/// `Q = n(n+2) Σ_k r_k² / (n−k)`, `Q ~ χ²(lags)` under `H0`.
///
/// Returns `None` for series too short (`n <= lags + 1`) or without
/// variance.
pub fn ljung_box(x: &[f64], lags: usize) -> Option<LjungBox> {
    assert!(lags > 0, "Ljung-Box needs at least one lag");
    let observed: Vec<f64> = x.iter().copied().filter(|v| v.is_finite()).collect();
    let n = observed.len();
    if n <= lags + 1 {
        return None;
    }
    // `observed` is fully finite, so the typed error can only be zero
    // variance — a constant series is trivially white.
    let Ok(r) = crate::acf::acf(&observed, lags) else {
        return None;
    };
    if r.len() <= lags {
        return None;
    }
    let nf = n as f64;
    let q: f64 = (1..=lags)
        .map(|k| r[k] * r[k] / (nf - k as f64))
        .sum::<f64>()
        * nf
        * (nf + 2.0);
    Some(LjungBox {
        statistic: q,
        p_value: chi_squared_sf(q, lags as f64),
        lags,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![(0.0, 0.0); 8];
        data[0] = (1.0, 0.0);
        fft(&mut data);
        for &(re, im) in &data {
            close(re, 1.0, 1e-12);
            close(im, 0.0, 1e-12);
        }
    }

    #[test]
    fn fft_of_single_tone() {
        // cos(2*pi*k0*t/n) has spikes at bins k0 and n-k0 of magnitude n/2.
        let n = 64;
        let k0 = 5;
        let mut data: Vec<(f64, f64)> = (0..n)
            .map(|t| {
                (
                    (2.0 * std::f64::consts::PI * k0 as f64 * t as f64 / n as f64).cos(),
                    0.0,
                )
            })
            .collect();
        fft(&mut data);
        for (k, &(re, im)) in data.iter().enumerate() {
            let mag = (re * re + im * im).sqrt();
            if k == k0 || k == n - k0 {
                close(mag, n as f64 / 2.0, 1e-9);
            } else {
                close(mag, 0.0, 1e-9);
            }
        }
    }

    #[test]
    fn fft_parseval() {
        let x: Vec<f64> = (0..32).map(|i| ((i * 37) % 11) as f64).collect();
        let mut data: Vec<(f64, f64)> = x.iter().map(|&v| (v, 0.0)).collect();
        fft(&mut data);
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy: f64 = data.iter().map(|(re, im)| re * re + im * im).sum::<f64>() / 32.0;
        close(freq_energy, time_energy, 1e-9);
    }

    #[test]
    fn periodogram_finds_the_daily_cycle() {
        // 4 "days" of 256 samples with a clean daily sinusoid.
        let n = 1024;
        let x: Vec<f64> = (0..n)
            .map(|t| 100.0 + 50.0 * (2.0 * std::f64::consts::PI * t as f64 / 256.0).sin())
            .collect();
        let (line, share) = dominant_period(&x).unwrap();
        close(line.period_samples(), 256.0, 1.0);
        assert!(share > 0.9, "clean tone concentrates the spectrum: {share}");
    }

    #[test]
    fn bursty_series_spreads_the_spectrum() {
        // Sparse deterministic bursts: no single line dominates.
        let x: Vec<f64> = (0..1024)
            .map(|t| {
                if (t * 2654435761usize).is_multiple_of(151) {
                    1e6
                } else {
                    1.0
                }
            })
            .collect();
        let (_, share) = dominant_period(&x).unwrap();
        assert!(share < 0.3, "bursts must not look seasonal: {share}");
    }

    #[test]
    fn ljung_box_accepts_noise_rejects_ar() {
        // SplitMix64: a proper integer hash, genuinely white.
        let noise: Vec<f64> = (0..500u64)
            .map(|i| {
                let mut z = i.wrapping_add(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let lb = ljung_box(&noise, 10).unwrap();
        assert!(!lb.rejects_whiteness(0.01), "hash noise ~ white: {lb:?}");

        // Strongly autocorrelated: a slow ramp-cycle.
        let trended: Vec<f64> = (0..500).map(|i| (i % 100) as f64).collect();
        let lb = ljung_box(&trended, 10).unwrap();
        assert!(lb.rejects_whiteness(0.01));
        assert!(lb.statistic > 100.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(periodogram(&[1.0, 2.0]).is_empty());
        assert!(periodogram(&[5.0; 64]).is_empty());
        assert!(ljung_box(&[1.0; 5], 10).is_none());
        assert!(dominant_period(&[3.0; 16]).is_none());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![(0.0, 0.0); 12];
        fft(&mut data);
    }
}
