//! Cache- and autovectorization-friendly inner-loop kernels.
//!
//! After the algorithmic layers (profiles, sketches, pyramids, energy
//! bounds) removed the redundant work, the pipeline's remaining cost is four
//! scalar inner loops: Pearson/CCF moment accumulation, the mid-rank gather
//! of the pairwise-deletion fallback, Kendall inversion counting, and the
//! KS sup-scan. This module rebuilds those loops for the machine — chunked
//! independent accumulator chains, branch-light index gathers over `u32`
//! order/pos arrays, an allocation-free bottom-up merge, and an
//! integer-scored sup-scan — while keeping every `f64` **decision value
//! bit-identical** to the straightforward loops they replace.
//!
//! # The bit-identity discipline
//!
//! `f64` addition is not associative, so *any* reordering of an `f64`
//! accumulation chain changes the result's bits, and the repo's contract
//! (`results/` CSVs bit-identical across refactors, profiled == from-scratch
//! in every test) forbids that. Each kernel therefore takes its speedup
//! from one of four bit-safe sources:
//!
//! 1. **Instruction-level parallelism across *independent* chains.**
//!    [`sxy_fold2`] interleaves the values cross-moment and the ranks
//!    cross-moment — two sums the old code ran as separate passes — in one
//!    loop. Each chain's own accumulation order is untouched; they merely
//!    overlap each other's add latency. Same idea at higher fan-out in
//!    [`dot_lags_batch`]: one sweep carries up to four lags' independent
//!    accumulators.
//! 2. **Integer-exact arithmetic.** Inversion counts ([`count_inversions`])
//!    and joint-tie counts ([`refine_tie_runs`]) are integers; any correct
//!    algorithm produces the same integer, so the merge strategy is free to
//!    change. The KS scan's record test ([`ks_sup_scan`]) is moved to exact
//!    integer cross-multiples, with the `f64` gap evaluated only at weak
//!    records — in the very order the reference scan would have used.
//! 3. **Branch removal.** [`filter_order_into`] replaces a ~50%
//!    mispredicted filter branch with an unconditional store and a counted
//!    bump; [`order_stats_gather`] gathers the sorted values once and walks
//!    tie runs over sequential memory instead of re-gathering per compare.
//! 4. **An explicit `f32` fast lane with re-verification.** Approximate
//!    results are allowed only behind [`fast_lane_decision`], which forces
//!    the exact `f64` lane whenever the approximation lands inside the
//!    error band of a decision threshold — the `ExactChecker` pattern from
//!    the motif engine, formalized here. The `f64` exact lane never changes.
//!
//! The kernels are exercised three ways: the stats crate's bit-identity
//! tests (profiled vs from-scratch), the differential proptests in
//! `tests/kernel_props.rs`, and `benches/kernels.rs`, which freezes the
//! pre-kernel loops as baselines and records per-kernel single-thread
//! speedups into `results/BENCH_kernels.json` — gated in CI by
//! `scripts/perf_gate.py` against `results/PERF_BUDGET.json`.

use crate::correlation::KendallTies;

// ---------------------------------------------------------------------------
// Mean / second-moment folds
// ---------------------------------------------------------------------------

/// Per-series mean and centered second moment with the exact accumulation
/// order `pearson_complete` uses (plain left-to-right sum, then a
/// left-to-right Σ(v − mean)² pass), so every downstream coefficient stays
/// bit-identical. This is the **exact lane**: its order is pinned by the
/// repo's CSV bit-identity contract and must not be "improved".
///
/// For error-robust variants whose order is *not* pinned, see
/// [`mean_and_sxx_welford`] and [`mean_and_sxx_kahan`]; the proptests pin
/// all three within analytic error bounds of each other on adversarial
/// magnitude mixes.
pub fn mean_and_sxx(vals: &[f64]) -> (f64, f64) {
    let n = vals.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = vals.iter().sum::<f64>() / n as f64;
    (mean, sxx_given_mean(vals, mean))
}

/// Left-to-right Σ(v − mean)² — the second pass of [`mean_and_sxx`], split
/// out for callers that already hold the mean (the gather paths accumulate
/// the value sum during the gather itself).
pub fn sxx_given_mean(vals: &[f64], mean: f64) -> f64 {
    let mut sxx = 0.0;
    for &v in vals {
        let dx = v - mean;
        sxx += dx * dx;
    }
    sxx
}

/// Chunked Welford fold: single pass, numerically robust, chunk partials
/// merged with Chan's parallel update. Not bit-compatible with
/// [`mean_and_sxx`] (different accumulation order) — use it where no cached
/// decision value depends on the bits, e.g. streaming summaries.
pub fn mean_and_sxx_welford(vals: &[f64]) -> (f64, f64) {
    const CHUNK: usize = 256;
    let mut count = 0.0f64;
    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    for chunk in vals.chunks(CHUNK) {
        let mut c = 0.0f64;
        let mut m = 0.0f64;
        let mut s = 0.0f64;
        for &v in chunk {
            c += 1.0;
            let d = v - m;
            m += d / c;
            s += d * (v - m);
        }
        if count == 0.0 {
            (count, mean, m2) = (c, m, s);
        } else {
            let delta = m - mean;
            let total = count + c;
            m2 += s + delta * delta * count * c / total;
            mean += delta * c / total;
            count = total;
        }
    }
    if count == 0.0 {
        (0.0, 0.0)
    } else {
        (mean, m2)
    }
}

/// Kahan-compensated two-pass reference: the most accurate `f64` evaluation
/// available without widening the type. The proptests use it as the ground
/// truth that both [`mean_and_sxx`] and [`mean_and_sxx_welford`] are pinned
/// against on adversarial 1e±12 magnitude mixes.
pub fn mean_and_sxx_kahan(vals: &[f64]) -> (f64, f64) {
    let n = vals.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mut sum = 0.0f64;
    let mut comp = 0.0f64;
    for &v in vals {
        let y = v - comp;
        let t = sum + y;
        comp = (t - sum) - y;
        sum = t;
    }
    let mean = sum / n as f64;
    let mut sxx = 0.0f64;
    let mut comp2 = 0.0f64;
    for &v in vals {
        let d = v - mean;
        let y = d * d - comp2;
        let t = sxx + y;
        comp2 = (t - sxx) - y;
        sxx = t;
    }
    (mean, sxx)
}

// ---------------------------------------------------------------------------
// Pearson / CCF cross-moment folds (kernel A)
// ---------------------------------------------------------------------------

/// The exact single-chain cross-moment Σ(x − mx)(y − my), left to right —
/// the loop `pearson_from_moments` has always run, isolated as a kernel.
#[inline]
pub fn sxy_fold(xs: &[f64], ys: &[f64], mx: f64, my: f64) -> f64 {
    let n = xs.len().min(ys.len());
    let (xs, ys) = (&xs[..n], &ys[..n]);
    let mut sxy = 0.0;
    for i in 0..n {
        sxy += (xs[i] - mx) * (ys[i] - my);
    }
    sxy
}

/// Fused dual cross-moment: the values chain and the ranks chain of one
/// pair's Pearson + Spearman evaluation in a single loop. Each chain's own
/// left-to-right order is exactly [`sxy_fold`]'s, so both sums are
/// bit-identical to two separate passes; fusing them overlaps the two serial
/// add-latency chains (≈2× on the pair hot path) and walks the four input
/// streams once.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn sxy_fold2(
    vx: &[f64],
    vy: &[f64],
    mvx: f64,
    mvy: f64,
    rx: &[f64],
    ry: &[f64],
    mrx: f64,
    mry: f64,
) -> (f64, f64) {
    let n = vx.len().min(vy.len()).min(rx.len()).min(ry.len());
    let (vx, vy, rx, ry) = (&vx[..n], &vy[..n], &rx[..n], &ry[..n]);
    let mut sv = 0.0;
    let mut sr = 0.0;
    for i in 0..n {
        sv += (vx[i] - mvx) * (vy[i] - mvy);
        sr += (rx[i] - mrx) * (ry[i] - mry);
    }
    (sv, sr)
}

/// Plain left-to-right product fold Σ x[t]·y[t] — the CCF numerator over a
/// pre-shifted overlap, in the exact order `ccf` has always summed it.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut s = 0.0;
    for i in 0..n {
        s += x[i] * y[i];
    }
    s
}

/// Batched complete-series CCF numerators: for each `lags[l]` computes
/// Σ_t a[t+k]·b[t] (k ≥ 0) or Σ_t a[t]·b[t−k] (k < 0) over the full overlap,
/// exactly as a per-lag [`dot`] would — per-lag `t`-ascending order is
/// preserved, so every cell is bit-identical to the one-at-a-time fold.
///
/// Lags are processed in groups of four independent accumulator chains over
/// one shared sweep of the deviation arrays: adjacent surviving lags reuse
/// each other's cache lines and overlap each other's add latency, which is
/// where the batch beats `lags.len()` separate passes.
///
/// `a` and `b` must have equal length; `|lag|` must be `< a.len()`.
pub fn dot_lags_batch(a: &[f64], b: &[f64], lags: &[i64], out: &mut Vec<f64>) {
    assert_eq!(a.len(), b.len(), "CCF sides must have equal length");
    let n = a.len();
    out.clear();
    out.reserve(lags.len());
    // Resolve each lag to (x offset into a, y offset into b, overlap len).
    let resolve = |lag: i64| -> (usize, usize, usize) {
        let k = lag.unsigned_abs() as usize;
        debug_assert!(k < n, "lag magnitude must be below the series length");
        if lag >= 0 {
            (k, 0, n - k)
        } else {
            (0, k, n - k)
        }
    };
    for group in lags.chunks(4) {
        match *group {
            [l0, l1, l2, l3] => {
                let (x0, y0, n0) = resolve(l0);
                let (x1, y1, n1) = resolve(l1);
                let (x2, y2, n2) = resolve(l2);
                let (x3, y3, n3) = resolve(l3);
                let m = n0.min(n1).min(n2).min(n3);
                let mut s0 = 0.0;
                let mut s1 = 0.0;
                let mut s2 = 0.0;
                let mut s3 = 0.0;
                let consecutive = l1 == l0 + 1 && l2 == l0 + 2 && l3 == l0 + 3;
                if consecutive && l0 >= 0 {
                    // Four consecutive non-negative lags read a sliding
                    // 4-wide window of `a` against one shared `b` element:
                    // lane d sums a[k₀+d+t]·b[t], so each step costs two new
                    // loads (the window rotates through registers) and four
                    // independent multiply-adds. Each lane still folds its
                    // own terms in t-ascending order — only *loads* are
                    // shared, never accumulators.
                    let k0 = l0 as usize;
                    let aw = &a[k0..k0 + m + 3];
                    let bw = &b[..m];
                    let (mut w0, mut w1, mut w2) = (aw[0], aw[1], aw[2]);
                    for t in 0..m {
                        let w3 = aw[t + 3];
                        let bt = bw[t];
                        s0 += w0 * bt;
                        s1 += w1 * bt;
                        s2 += w2 * bt;
                        s3 += w3 * bt;
                        (w0, w1, w2) = (w1, w2, w3);
                    }
                } else if consecutive && l3 < 0 {
                    // Four consecutive negative lags mirror the same shape:
                    // lane d sums a[t]·b[|l0|−d+t], a shared `a` element
                    // against a sliding window of `b` (lane 3 leads the
                    // window since it has the smallest magnitude).
                    let k = (-l0) as usize; // ≥ 4 because l3 = l0+3 < 0
                    let bwin = &b[k - 3..k + m];
                    let aw = &a[..m];
                    let (mut w3, mut w2, mut w1) = (bwin[0], bwin[1], bwin[2]);
                    for t in 0..m {
                        let w0 = bwin[t + 3];
                        let at = aw[t];
                        s0 += at * w0;
                        s1 += at * w1;
                        s2 += at * w2;
                        s3 += at * w3;
                        (w3, w2, w1) = (w2, w1, w0);
                    }
                } else {
                    // Generic group: exact-length lane slices let the shared
                    // loop run without per-access bounds checks (`t < m =
                    // slice len` is visible to the optimizer), which is what
                    // lets the four chains actually overlap.
                    let (a0, b0) = (&a[x0..x0 + m], &b[y0..y0 + m]);
                    let (a1, b1) = (&a[x1..x1 + m], &b[y1..y1 + m]);
                    let (a2, b2) = (&a[x2..x2 + m], &b[y2..y2 + m]);
                    let (a3, b3) = (&a[x3..x3 + m], &b[y3..y3 + m]);
                    for t in 0..m {
                        s0 += a0[t] * b0[t];
                        s1 += a1[t] * b1[t];
                        s2 += a2[t] * b2[t];
                        s3 += a3[t] * b3[t];
                    }
                }
                // Finish each lane's tail in its own (t-ascending) order.
                for t in m..n0 {
                    s0 += a[x0 + t] * b[y0 + t];
                }
                for t in m..n1 {
                    s1 += a[x1 + t] * b[y1 + t];
                }
                for t in m..n2 {
                    s2 += a[x2 + t] * b[y2 + t];
                }
                for t in m..n3 {
                    s3 += a[x3 + t] * b[y3 + t];
                }
                out.extend_from_slice(&[s0, s1, s2, s3]);
            }
            _ => {
                for &lag in group {
                    let (x, y, len) = resolve(lag);
                    out.push(dot(&a[x..x + len], &b[y..y + len]));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// f32 fast lane (kernel A's approximate tier)
// ---------------------------------------------------------------------------

/// Pearson's r computed in an 8-wide chunked `f32` accumulator fold —
/// roughly half the memory traffic and a vectorizable reduction, at `f32`
/// accuracy. **Never a decision value on its own**: route the result
/// through [`fast_lane_decision`] with [`f32_lane_band`] so anything near a
/// threshold is re-verified on the exact `f64` lane.
pub fn pearson_r_f32(xs: &[f64], ys: &[f64], mx: f64, my: f64, sxx: f64, syy: f64) -> f64 {
    let n = xs.len().min(ys.len());
    let (xs, ys) = (&xs[..n], &ys[..n]);
    let (mxf, myf) = (mx as f32, my as f32);
    let mut acc = [0.0f32; 8];
    let mut i = 0;
    while i + 8 <= n {
        for (lane, slot) in acc.iter_mut().enumerate() {
            *slot += (xs[i + lane] as f32 - mxf) * (ys[i + lane] as f32 - myf);
        }
        i += 8;
    }
    let mut tail = 0.0f32;
    while i < n {
        tail += (xs[i] as f32 - mxf) * (ys[i] as f32 - myf);
        i += 1;
    }
    let sxy = acc.iter().sum::<f32>() as f64 + tail as f64;
    (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
}

/// Conservative bound on `|r_f32 − r_f64|` for an `n`-point
/// [`pearson_r_f32`] fold: the rounding of each product and each partial sum
/// contributes O(ε₃₂) relative to Σ|dx·dy| ≤ √(sxx·syy) (Cauchy–Schwarz),
/// so the error in r is below `n·ε₃₂` with the constant folded in for
/// slack. Decisions whose margin is inside this band must re-verify.
pub fn f32_lane_band(n: usize) -> f64 {
    8.0 * n as f64 * f32::EPSILON as f64
}

/// Outcome of comparing a fast-lane approximation against a threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastDecision {
    /// Approximation is below the threshold by more than the band.
    Below,
    /// Approximation meets the threshold by more than the band.
    AtLeast,
    /// Too close to call at fast-lane accuracy — recompute on the exact
    /// `f64` lane before deciding.
    Reverify,
}

/// The re-verification band test: trust the fast lane only when it clears
/// the threshold by more than `band` in either direction. This is the
/// decision rule the motif engine's `ExactChecker` has always applied to
/// the `f32` condensed-matrix entries, shared here so every fast-lane
/// consumer uses the same arithmetic.
#[inline]
pub fn fast_lane_decision(approx: f64, threshold: f64, band: f64) -> FastDecision {
    if (approx - threshold).abs() <= band {
        FastDecision::Reverify
    } else if approx >= threshold {
        FastDecision::AtLeast
    } else {
        FastDecision::Below
    }
}

// ---------------------------------------------------------------------------
// Mid-rank gather kernels (kernel B)
// ---------------------------------------------------------------------------

/// Index types the order/gather kernels accept: the profiles' compact `u32`
/// orders and the rank module's `usize` orders monomorphize to the same
/// branch-light loops.
pub trait SortIndex: Copy {
    fn ix(self) -> usize;
}

impl SortIndex for u32 {
    #[inline(always)]
    fn ix(self) -> usize {
        self as usize
    }
}

impl SortIndex for usize {
    #[inline(always)]
    fn ix(self) -> usize {
        self
    }
}

/// Gathers `values` along `order` into `out` (`out[k] = values[order[k]]`):
/// one indexed load and one sequential store per element.
pub fn gather_values<I: SortIndex>(order: &[I], values: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.extend(order.iter().map(|&k| values[k.ix()]));
}

/// Filters a sort order down to a gathered intersection: `out[k]` is the
/// gathered position of the k-th smallest surviving value, where `pos`
/// maps full-compaction indices to gathered positions (`u32::MAX` =
/// dropped).
///
/// The filter predicate is data-dependent and ~50% taken on independently
/// holey masks, so the old `if … push` form paid a misprediction per
/// element. This form stores unconditionally and bumps the length by the
/// predicate — branch-free in the loop body.
pub fn filter_order_into(order: &[u32], pos: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.resize(order.len(), 0);
    let mut len = 0usize;
    for &k in order {
        let g = pos[k as usize];
        out[len] = g;
        len += (g != u32::MAX) as usize;
    }
    out.truncate(len);
}

/// One walk of `values` along their sort order, producing any of: mid-ranks
/// (with `rank_series`' exact tie-averaging arithmetic), the `(start, len)`
/// tie runs (len > 1) for Kendall's y-refinement, and the tie aggregates
/// accumulated in group order exactly like `kendall_ties` over the group
/// sizes.
///
/// Unlike the Option-driven walk it replaces, this gathers the sorted
/// values into `sorted` first (one indexed load per element instead of two
/// per comparison) and then detects tie runs over sequential memory; the
/// gathered copy also feeds KS directly when the caller needs it.
pub fn order_stats_gather<I: SortIndex>(
    order: &[I],
    values: &[f64],
    sorted: &mut Vec<f64>,
    mut ranks: Option<&mut Vec<f64>>,
    mut runs: Option<&mut Vec<(u32, u32)>>,
) -> KendallTies {
    gather_values(order, values, sorted);
    let m = order.len();
    if let Some(ranks) = ranks.as_deref_mut() {
        ranks.clear();
        ranks.resize(m, 0.0);
    }
    if let Some(runs) = runs.as_deref_mut() {
        runs.clear();
    }
    let mut ties = KendallTies {
        n_tied_pairs: 0,
        vt: 0.0,
        sum_t2: 0.0,
        sum_t3: 0.0,
    };
    let sv = &sorted[..m];
    let mut i = 0;
    while i < m {
        let v = sv[i];
        let mut j = i + 1;
        while j < m && sv[j] == v {
            j += 1;
        }
        // Run is i..j (exclusive): length j - i.
        if let Some(ranks) = ranks.as_deref_mut() {
            let avg = (i + j - 1) as f64 / 2.0 + 1.0;
            for &g in &order[i..j] {
                ranks[g.ix()] = avg;
            }
        }
        if j - i > 1 {
            let t = (j - i) as u64;
            let tf = t as f64;
            ties.n_tied_pairs += t * (t - 1) / 2;
            ties.vt += tf * (tf - 1.0) * (2.0 * tf + 5.0);
            ties.sum_t2 += tf * (tf - 1.0);
            ties.sum_t3 += tf * (tf - 1.0) * (tf - 2.0);
            if let Some(runs) = runs.as_deref_mut() {
                runs.push((i as u32, (j - i) as u32));
            }
        }
        i = j;
    }
    ties
}

/// Stable `(value, index)` sort of `xs` into `kv` — the same permutation an
/// index sort with a `xs[a] ≤ xs[b]` comparator produces (stability breaks
/// value ties by input position either way), but faster: the sort compares
/// sequential pair keys instead of chasing indices through `xs`, so every
/// comparison is one cache line instead of two dependent loads.
///
/// # Panics
/// Panics if any value is NaN (infinite values order fine either way).
pub fn stable_value_sort(xs: &[f64], kv: &mut Vec<(f64, u32)>) {
    assert!(
        xs.len() <= u32::MAX as usize,
        "series too long for u32 order"
    );
    kv.clear();
    kv.extend(xs.iter().enumerate().map(|(i, &v)| (v, i as u32)));
    kv.sort_by(|p, q| p.0.partial_cmp(&q.0).expect("finite values compare"));
}

/// Mid-ranks and tie-group sizes walked off a stable `(value, index)` sort:
/// the sorted values are already sequential in `kv`, so run detection never
/// touches the original array, and ranks are written with one scatter per
/// element.
pub fn ranks_from_sorted_pairs(kv: &[(f64, u32)], ranks: &mut Vec<f64>, ties: &mut Vec<usize>) {
    let n = kv.len();
    ranks.clear();
    ranks.resize(n, 0.0);
    ties.clear();
    let mut i = 0;
    while i < n {
        let v = kv[i].0;
        let mut j = i + 1;
        while j < n && kv[j].0 == v {
            j += 1;
        }
        let avg = (i + j - 1) as f64 / 2.0 + 1.0;
        for pair in &kv[i..j] {
            ranks[pair.1 as usize] = avg;
        }
        if j - i > 1 {
            ties.push(j - i);
        }
        i = j;
    }
}

// ---------------------------------------------------------------------------
// Small-domain fast lanes (kernels B and C)
// ---------------------------------------------------------------------------

/// Detects the *small-domain* case: every value is an exactly-representable
/// integer and the value range is below `max(n, 512)`. Home-traffic windows
/// are overwhelmingly like this — byte/packet counts are small non-negative
/// integers — and the property unlocks O(n + range) counting algorithms in
/// place of comparison sorts. Returns `(min, bucket_count)` on success.
///
/// The scan runs four independent min/max chains (the comparison folds are
/// latency-bound, so the chains overlap) and piggybacks the integrality
/// check — an `i64` round-trip, exact for every in-range integer — on the
/// same pass. NaN and ±∞ fail the round-trip, so a `Some` return also
/// certifies the values finite.
fn small_domain(xs: &[f64]) -> Option<(f64, usize)> {
    let n = xs.len();
    let mut mn = [f64::INFINITY; 4];
    let mut mx = [f64::NEG_INFINITY; 4];
    let mut integral = true;
    let mut it = xs.chunks_exact(4);
    for p in &mut it {
        for (lane, &v) in p.iter().enumerate() {
            mn[lane] = if v < mn[lane] { v } else { mn[lane] };
            mx[lane] = if v > mx[lane] { v } else { mx[lane] };
            integral &= v as i64 as f64 == v;
        }
    }
    for &v in it.remainder() {
        mn[0] = if v < mn[0] { v } else { mn[0] };
        mx[0] = if v > mx[0] { v } else { mx[0] };
        integral &= v as i64 as f64 == v;
    }
    if !integral {
        return None;
    }
    let mn = mn
        .iter()
        .fold(f64::INFINITY, |a, &b| if b < a { b } else { a });
    let mx = mx
        .iter()
        .fold(f64::NEG_INFINITY, |a, &b| if b > a { b } else { a });
    let range = mx - mn;
    if range.is_nan() || range < 0.0 || range >= n.max(512) as f64 {
        return None;
    }
    Some((mn, range as usize + 1))
}

/// Bucket count of the optimistic fused probe in [`rank_small_domain`]:
/// one pass histograms into a fixed table of this many clamped buckets
/// *while* computing min/max/integrality, betting that values already lie
/// in `[0, OPT_R)` — true for virtually every traffic window. The table is
/// 8 KiB (4 streams × 512 × u32), so the up-front zeroing stays cheap even
/// when the bet loses.
const OPT_R: usize = 512;

/// Counting-sort rank kernel for [`small_domain`] series: the stable sort
/// permutation, mid-ranks and tie-group sizes of `xs` in O(n + range),
/// bit-identical to the comparison-sort path. Returns `false` (outputs
/// untouched) when the series is not small-domain.
///
/// Why the artifacts are identical to a stable comparator sort plus tie
/// walk:
///
/// * distinct integral values differ by ≥ 1, so each bucket holds exactly
///   one value — a bucket *is* a tie run (`-0.0` and `0.0` share bucket 0,
///   and they are one tie run under `==` too);
/// * the scatter fills each bucket in ascending input order (the four
///   streams are consecutive index blocks with bases laid out in stream
///   order), which is exactly stability;
/// * mid-ranks use the same `(start + end − 1) / 2 + 1` arithmetic on the
///   same run boundaries.
///
/// The first pass is an *optimistic fusion* of domain probe and histogram:
/// it counts into [`OPT_R`] clamped buckets (`v as i64`, clamped to the
/// table — the same conversion the integrality check needs anyway) while
/// folding four min/max/integral lanes. One validation afterwards decides
/// everything: non-integral input rejects the lane outright; integral input
/// already inside `[0, OPT_R)` — the overwhelmingly common case — uses the
/// histogram as is; integral input that is merely *offset* (all values
/// shifted away from zero, or negative) rebuilds the histogram once against
/// base `min` and proceeds identically. Histogram and scatter run four
/// independent streams so the hot-bucket increments (bursty traffic
/// concentrates in a handful of values) pipeline instead of serializing on
/// store-to-load forwarding.
pub fn rank_small_domain(
    xs: &[f64],
    order: &mut Vec<u32>,
    ranks: &mut Vec<f64>,
    ties: &mut Vec<usize>,
) -> bool {
    let n = xs.len();
    assert!(n <= u32::MAX as usize, "series too long for u32 order");
    if n == 0 {
        order.clear();
        ranks.clear();
        ties.clear();
        return true;
    }
    // Quarter streams: consecutive index blocks of length q, q, q, n − 3q.
    let q = n / 4;
    let (o1, o2, o3) = (q, 2 * q, 3 * q);
    // Fused probe + histogram. The min/max folds and the `i64` round-trip
    // integrality checks run four independent lanes each, so none of the
    // latency chains serializes the loop; the clamp keeps every store in
    // bounds while the lanes decide whether the counts are usable at all.
    let inf = f64::INFINITY;
    let (mut mn0, mut mn1, mut mn2, mut mn3) = (inf, inf, inf, inf);
    let (mut mx0, mut mx1, mut mx2, mut mx3) = (-inf, -inf, -inf, -inf);
    let (mut i0, mut i1, mut i2, mut i3) = (true, true, true, true);
    let mut hist = vec![0u32; 4 * OPT_R];
    {
        let (h0, rest) = hist.split_at_mut(OPT_R);
        let (h1, rest) = rest.split_at_mut(OPT_R);
        let (h2, h3) = rest.split_at_mut(OPT_R);
        for t in 0..q {
            let (a, b, c, d) = (xs[t], xs[o1 + t], xs[o2 + t], xs[o3 + t]);
            let (ka, kb, kc, kd) = (a as i64, b as i64, c as i64, d as i64);
            i0 &= ka as f64 == a;
            i1 &= kb as f64 == b;
            i2 &= kc as f64 == c;
            i3 &= kd as f64 == d;
            mn0 = if a < mn0 { a } else { mn0 };
            mx0 = if a > mx0 { a } else { mx0 };
            mn1 = if b < mn1 { b } else { mn1 };
            mx1 = if b > mx1 { b } else { mx1 };
            mn2 = if c < mn2 { c } else { mn2 };
            mx2 = if c > mx2 { c } else { mx2 };
            mn3 = if d < mn3 { d } else { mn3 };
            mx3 = if d > mx3 { d } else { mx3 };
            h0[(ka.max(0) as usize).min(OPT_R - 1)] += 1;
            h1[(kb.max(0) as usize).min(OPT_R - 1)] += 1;
            h2[(kc.max(0) as usize).min(OPT_R - 1)] += 1;
            h3[(kd.max(0) as usize).min(OPT_R - 1)] += 1;
        }
        for &v in &xs[o3 + q..] {
            let k = v as i64;
            i3 &= k as f64 == v;
            mn3 = if v < mn3 { v } else { mn3 };
            mx3 = if v > mx3 { v } else { mx3 };
            h3[(k.max(0) as usize).min(OPT_R - 1)] += 1;
        }
    }
    // NaN and ±∞ fail the round-trip, so passing this gate also certifies
    // every value finite (the caller skips its own finite scan).
    if !(i0 & i1 & i2 & i3) {
        return false;
    }
    let mn01 = if mn1 < mn0 { mn1 } else { mn0 };
    let mn23 = if mn3 < mn2 { mn3 } else { mn2 };
    let mn = if mn23 < mn01 { mn23 } else { mn01 };
    let mx01 = if mx1 > mx0 { mx1 } else { mx0 };
    let mx23 = if mx3 > mx2 { mx3 } else { mx2 };
    let mx = if mx23 > mx01 { mx23 } else { mx01 };
    let range = mx - mn;
    if range.is_nan() || range < 0.0 || range >= n.max(512) as f64 {
        return false;
    }
    // `off` maps a value to its bucket as `(v − off) as usize`; the fused
    // histogram used `off = 0`, valid exactly when the values sat inside
    // the clamp-free window. Offset or negative small-domain series rebuild
    // the counts against base `mn` (one extra pass; rare in practice).
    let (off, r, stride) = if mn >= 0.0 && mx < OPT_R as f64 {
        (0.0, mx as usize + 1, OPT_R)
    } else {
        let r = range as usize + 1;
        hist = vec![0u32; 4 * r];
        let (h0, rest) = hist.split_at_mut(r);
        let (h1, rest) = rest.split_at_mut(r);
        let (h2, h3) = rest.split_at_mut(r);
        for t in 0..q {
            h0[(xs[t] - mn) as usize] += 1;
            h1[(xs[o1 + t] - mn) as usize] += 1;
            h2[(xs[o2 + t] - mn) as usize] += 1;
            h3[(xs[o3 + t] - mn) as usize] += 1;
        }
        for &v in &xs[o3 + q..] {
            h3[(v - mn) as usize] += 1;
        }
        (mn, r, r)
    };
    // Exclusive prefix over (bucket, stream): each stream's slot becomes its
    // scatter base, preserving input order within every bucket. A bucket is
    // a tie run, so its mid-rank `(start + end − 1) / 2 + 1` — the same
    // integer-exact arithmetic as the sorted tie walk — is known here too;
    // memoizing it per bucket lets the scatter below emit ranks in the same
    // pass (a sequential store) instead of a second walk of the permutation.
    ties.clear();
    let mut avgs = vec![0.0f64; r];
    {
        let (h0, rest) = hist.split_at_mut(stride);
        let (h1, rest) = rest.split_at_mut(stride);
        let (h2, h3) = rest.split_at_mut(stride);
        let mut sum = 0u32;
        for b in 0..r {
            let (c0, c1, c2, c3) = (h0[b], h1[b], h2[b], h3[b]);
            let c = c0 + c1 + c2 + c3;
            h0[b] = sum;
            h1[b] = sum + c0;
            h2[b] = sum + c0 + c1;
            h3[b] = sum + c0 + c1 + c2;
            if c != 0 {
                avgs[b] = (2 * sum as usize + c as usize - 1) as f64 / 2.0 + 1.0;
                if c > 1 {
                    ties.push(c as usize);
                }
            }
            sum += c;
        }
    }
    order.clear();
    order.resize(n, 0);
    ranks.clear();
    ranks.resize(n, 0.0);
    {
        let ord = order.as_mut_slice();
        let rk = ranks.as_mut_slice();
        let (h0, rest) = hist.split_at_mut(stride);
        let (h1, rest) = rest.split_at_mut(stride);
        let (h2, h3) = rest.split_at_mut(stride);
        for t in 0..q {
            let b0 = (xs[t] - off) as usize;
            let b1 = (xs[o1 + t] - off) as usize;
            let b2 = (xs[o2 + t] - off) as usize;
            let b3 = (xs[o3 + t] - off) as usize;
            ord[h0[b0] as usize] = t as u32;
            h0[b0] += 1;
            rk[t] = avgs[b0];
            ord[h1[b1] as usize] = (o1 + t) as u32;
            h1[b1] += 1;
            rk[o1 + t] = avgs[b1];
            ord[h2[b2] as usize] = (o2 + t) as u32;
            h2[b2] += 1;
            rk[o2 + t] = avgs[b2];
            ord[h3[b3] as usize] = (o3 + t) as u32;
            h3[b3] += 1;
            rk[o3 + t] = avgs[b3];
        }
        for i in o3 + q..n {
            let b = (xs[i] - off) as usize;
            ord[h3[b] as usize] = i as u32;
            h3[b] += 1;
            rk[i] = avgs[b];
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Kendall inversion counting (kernel C)
// ---------------------------------------------------------------------------

/// Runs at or below this length are sorted (and inversion-counted) by
/// insertion; also the base run width of the bottom-up merge.
const MERGE_BASE: usize = 32;

/// Counts inversions (pairs `i < j` with `v[i] > v[j]`) and sorts `v`
/// ascending. Equal values are *not* inversions, matching discordance in
/// τ-b. The count is an exact integer, so τ is bit-identical no matter how
/// the counting is organized — which frees the algorithm to be fast:
///
/// * width-[`MERGE_BASE`] base runs are built by counting insertion sort
///   (each element's shift distance is exactly its inversion count within
///   the run), replacing the five all-branchy narrow merge levels;
/// * merge levels ping-pong between `v` and `tmp` instead of copying back
///   per level;
/// * a merge whose halves are already ordered (`src[mid−1] ≤ src[mid]`)
///   contributes no cross inversions and degrades to one `memcpy`.
///
/// `tmp` is resized to `v.len()` and reused across calls — no per-call
/// allocation once the scratch has grown.
pub fn count_inversions(v: &mut [f64], tmp: &mut Vec<f64>) -> u64 {
    let n = v.len();
    if n < 2 {
        return 0;
    }
    if let Some(inv) = inversions_small_domain(v, tmp) {
        return inv;
    }
    tmp.clear();
    tmp.resize(n, 0.0);
    let mut inv = 0u64;
    for block in v.chunks_mut(MERGE_BASE) {
        inv += insertion_count(block);
    }
    let mut width = MERGE_BASE;
    let mut in_v = true;
    while width < n {
        inv += if in_v {
            merge_pass(v, tmp, width)
        } else {
            merge_pass(tmp, v, width)
        };
        in_v = !in_v;
        width *= 2;
    }
    if !in_v {
        v.copy_from_slice(tmp);
    }
    inv
}

/// [`small_domain`] fast path for [`count_inversions`]: a Fenwick tree over
/// the value buckets counts, for each element, how many strictly greater
/// values precede it — `i − (# previous values ≤ vᵢ)` — in O(n·log range)
/// with no comparison-dependent branches; a stable counting sort then
/// produces the ascending output. Both halves are exact:
///
/// * the inversion count is pure integer arithmetic, so it matches the
///   merge count no matter how the pairs are enumerated;
/// * the counting sort scatters the *original* `f64` values in input order
///   per bucket, reproducing the stable merge output bit for bit (equal
///   values — including a `-0.0`/`0.0` mix — keep input order under both).
///
/// Returns `None` (inputs untouched) when the series is not small-domain.
fn inversions_small_domain(v: &mut [f64], tmp: &mut Vec<f64>) -> Option<u64> {
    let n = v.len();
    let (mn, r) = small_domain(v)?;
    // Fenwick prefix-count tree, 1-indexed over the value buckets.
    let mut tree = vec![0u32; r + 1];
    let mut inv = 0u64;
    for (i, &x) in v.iter().enumerate() {
        let b = (x - mn) as usize + 1;
        let mut idx = b;
        let mut at_most = 0u32;
        while idx > 0 {
            at_most += tree[idx];
            idx &= idx - 1;
        }
        inv += (i as u32 - at_most) as u64;
        let mut idx = b;
        while idx <= r {
            tree[idx] += 1;
            idx += idx & idx.wrapping_neg();
        }
    }
    // Stable counting sort of the values themselves into `tmp`, then copy
    // back: `count_inversions` promises `v` sorted ascending on return.
    let mut counts = vec![0u32; r];
    for &x in v.iter() {
        counts[(x - mn) as usize] += 1;
    }
    let mut sum = 0u32;
    for c in counts.iter_mut() {
        let t = *c;
        *c = sum;
        sum += t;
    }
    tmp.clear();
    tmp.resize(n, 0.0);
    for &x in v.iter() {
        let b = (x - mn) as usize;
        tmp[counts[b] as usize] = x;
        counts[b] += 1;
    }
    v.copy_from_slice(tmp);
    Some(inv)
}

/// Insertion-sorts a short run, returning its exact inversion count: each
/// element's shift distance is the number of earlier, strictly greater
/// elements.
fn insertion_count(b: &mut [f64]) -> u64 {
    let mut inv = 0u64;
    for i in 1..b.len() {
        let x = b[i];
        let mut j = i;
        while j > 0 && b[j - 1] > x {
            b[j] = b[j - 1];
            j -= 1;
        }
        inv += (i - j) as u64;
        b[j] = x;
    }
    inv
}

/// One merge level: pairs of sorted width-`width` runs in `src` merge into
/// `dst`, counting cross inversions. Lone tails and already-ordered pairs
/// copy through.
fn merge_pass(src: &[f64], dst: &mut [f64], width: usize) -> u64 {
    let n = src.len();
    let mut inv = 0u64;
    let mut lo = 0;
    while lo < n {
        let mid = (lo + width).min(n);
        let hi = (lo + 2 * width).min(n);
        if mid == hi || src[mid - 1] <= src[mid] {
            // Lone tail run, or left max ≤ right min: no cross inversions.
            dst[lo..hi].copy_from_slice(&src[lo..hi]);
        } else {
            inv += merge_into(&src[lo..hi], mid - lo, &mut dst[lo..hi]);
        }
        lo = hi;
    }
    inv
}

/// Stable two-run merge counting cross inversions: when the right side
/// wins strictly, it is smaller than every remaining left element.
///
/// The comparison stays a branch on purpose: a conditional-move variant
/// was measured slower here, because branchless selects chain every
/// iteration's loads behind the previous comparison, while the predicted
/// branch lets the out-of-order core run several iterations ahead. Once
/// either run empties, the rest is two tail copies (one of them empty).
fn merge_into(src: &[f64], mid: usize, dst: &mut [f64]) -> u64 {
    let (left, right) = src.split_at(mid);
    let (ll, rl) = (left.len(), right.len());
    let mut i = 0;
    let mut j = 0;
    let mut k = 0;
    let mut inv = 0u64;
    while i < ll && j < rl {
        let l = left[i];
        let r = right[j];
        if l <= r {
            dst[k] = l;
            i += 1;
        } else {
            inv += (ll - i) as u64;
            dst[k] = r;
            j += 1;
        }
        k += 1;
    }
    dst[k..k + (ll - i)].copy_from_slice(&left[i..]);
    dst[k + (ll - i)..].copy_from_slice(&right[j..]);
    inv
}

/// Kendall's y-refinement: stably sorts `y` inside each x-tie run and
/// counts the joint ties (equal-y runs inside x-tie runs) — Σ g(g−1)/2.
/// Short runs (the overwhelmingly common case for traffic values) use
/// insertion sort instead of the general pattern-defeating sort; an empty
/// `tie_runs` (the `tie_free()` case) skips everything, touching no memory.
///
/// Sorted segments are value-identical regardless of sort algorithm (equal
/// keys have equal bits under `partial_cmp`, and both sorts are stable for
/// the `-0.0`/`0.0` case), so the downstream inversion count is unchanged.
pub fn refine_tie_runs(y: &mut [f64], tie_runs: &[(u32, u32)]) -> u64 {
    let mut n3 = 0u64;
    for &(start, len) in tie_runs {
        let seg = &mut y[start as usize..(start + len) as usize];
        if seg.len() <= MERGE_BASE {
            insertion_count(seg);
        } else {
            seg.sort_by(|p, q| p.partial_cmp(q).expect("finite values compare"));
        }
        let mut i = 0;
        while i < seg.len() {
            let mut j = i;
            while j + 1 < seg.len() && seg[j + 1] == seg[i] {
                j += 1;
            }
            let g = (j - i + 1) as u64;
            n3 += g * (g - 1) / 2;
            i = j + 1;
        }
    }
    n3
}

// ---------------------------------------------------------------------------
// KS sup-scan (kernel D)
// ---------------------------------------------------------------------------

/// Above this product of sample sizes the integer-gated scan's monotonicity
/// argument loses its safety margin and [`ks_sup_scan`] falls back to the
/// reference scan. 2⁴⁸ is ~2.8·10¹⁴ — far beyond any real window pair.
const KS_INT_GUARD: u128 = 1 << 48;

/// Supremum CDF distance between two finite-only, ascending-sorted samples
/// — the D statistic of the two-sample KS test, bit-identical to
/// [`ks_sup_scan_reference`].
///
/// Two mechanics beat the reference loop:
///
/// * **Quad-stride advance.** The cursors move past a tie run one element
///   per compare in the reference. Sorted input means `a[i+3] ≤ t` already
///   proves the whole quad qualifies, so the advance strides four elements
///   per compare first and finishes with the single-step loop — landing on
///   exactly the same cursor positions with ~4× fewer iterations inside
///   runs (traffic samples repeat values heavily, so runs are long).
/// * **Integer-gated evaluation.** The reference pays two `f64` divisions
///   per step point for `|i/n1 − j/n2|`. This scan tracks the *integer*
///   cross-multiple `s = |i·n2 − j·n1|` instead (exact, and proportional
///   to the real gap) and evaluates the `f64` gap only at weak records
///   `s ≥ s_best` — after the first few steps of similar samples, almost
///   never.
///
/// Why the result is bit-identical and not merely close: distinct real gaps
/// differ by at least `1/(n1·n2)`, while the `f64` evaluation of a gap errs
/// by at most `3·2⁻⁵³`. For `n1·n2 ≤ 2⁴⁸` the spacing exceeds the combined
/// error 4×, so the computed-gap order agrees with the real-gap order, and
/// every point tied for the real maximum *is* evaluated (the record test
/// uses `≥`) in the same left-to-right order `max` would have folded them.
/// Larger samples take the reference scan.
pub fn ks_sup_scan(a: &[f64], b: &[f64]) -> f64 {
    let (n1, n2) = (a.len(), b.len());
    if (n1 as u128) * (n2 as u128) > KS_INT_GUARD {
        return ks_sup_scan_reference(a, b);
    }
    let (w1, w2) = (n2 as i64, n1 as i64);
    let mut i = 0usize;
    let mut j = 0usize;
    let mut best = -1i64;
    let mut d: f64 = 0.0;
    while i < n1 && j < n2 {
        let t = a[i].min(b[j]);
        while i + 4 <= n1 && a[i + 3] <= t {
            i += 4;
        }
        while i < n1 && a[i] <= t {
            i += 1;
        }
        while j + 4 <= n2 && b[j + 3] <= t {
            j += 4;
        }
        while j < n2 && b[j] <= t {
            j += 1;
        }
        let s = (i as i64 * w1 - j as i64 * w2).abs();
        if s >= best {
            best = s;
            let f1 = i as f64 / n1 as f64;
            let f2 = j as f64 / n2 as f64;
            d = d.max((f1 - f2).abs());
        }
    }
    d
}

/// The classic sup-scan: per step point, advance both sides past the tie
/// run and fold the `f64` CDF gap into the running max. This is the exact
/// loop `ks_two_sample_sorted` has always run — kept as the guard fallback
/// for astronomically large samples and as the differential baseline.
pub fn ks_sup_scan_reference(a: &[f64], b: &[f64]) -> f64 {
    let (n1, n2) = (a.len(), b.len());
    let mut i = 0;
    let mut j = 0;
    let mut d: f64 = 0.0;
    while i < n1 && j < n2 {
        let t = a[i].min(b[j]);
        while i < n1 && a[i] <= t {
            i += 1;
        }
        while j < n2 && b[j] <= t {
            j += 1;
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn random_vec(n: usize, modulo: u64, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n).map(|_| (lcg(&mut state) % modulo) as f64).collect()
    }

    fn naive_inversions(v: &[f64]) -> u64 {
        let mut inv = 0u64;
        for i in 0..v.len() {
            for j in i + 1..v.len() {
                if v[i] > v[j] {
                    inv += 1;
                }
            }
        }
        inv
    }

    #[test]
    fn count_inversions_matches_naive_and_sorts() {
        for (n, modulo, seed) in [
            (0usize, 7u64, 1u64),
            (1, 7, 2),
            (2, 7, 3),
            (31, 5, 4),
            (32, 5, 5),
            (33, 5, 6),
            (63, 1000, 7),
            (64, 1000, 8),
            (65, 3, 9),
            (200, 12, 10),
            (257, 1_000_000, 11),
        ] {
            let v = random_vec(n, modulo, seed);
            let expect = naive_inversions(&v);
            let mut work = v.clone();
            let mut tmp = Vec::new();
            let got = count_inversions(&mut work, &mut tmp);
            assert_eq!(got, expect, "n={n} modulo={modulo}");
            let mut sorted = v.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(work, sorted, "n={n}: output must be sorted");
        }
    }

    #[test]
    fn count_inversions_extremes() {
        let mut tmp = Vec::new();
        let mut asc: Vec<f64> = (0..100).map(f64::from).collect();
        assert_eq!(count_inversions(&mut asc, &mut tmp), 0);
        let mut desc: Vec<f64> = (0..100).rev().map(f64::from).collect();
        assert_eq!(count_inversions(&mut desc, &mut tmp), 100 * 99 / 2);
        let mut tied = vec![4.0; 80];
        assert_eq!(count_inversions(&mut tied, &mut tmp), 0);
    }

    #[test]
    fn ks_scan_matches_reference() {
        for (n1, n2, m1, m2, s1, s2) in [
            (5usize, 7usize, 4u64, 4u64, 21u64, 22u64),
            (100, 80, 10, 10, 23, 24),
            (64, 64, 1_000_000, 1_000_000, 25, 26),
            (1, 9, 3, 3, 27, 28),
            (50, 50, 1, 1, 29, 30),
        ] {
            let mut a = random_vec(n1, m1, s1);
            let mut b = random_vec(n2, m2, s2);
            a.sort_by(|p, q| p.partial_cmp(q).unwrap());
            b.sort_by(|p, q| p.partial_cmp(q).unwrap());
            let fast = ks_sup_scan(&a, &b);
            let reference = ks_sup_scan_reference(&a, &b);
            assert_eq!(
                fast.to_bits(),
                reference.to_bits(),
                "n1={n1} n2={n2} m1={m1}"
            );
        }
    }

    #[test]
    fn sxy_fold2_matches_two_separate_folds() {
        let vx = random_vec(257, 1000, 41);
        let vy = random_vec(257, 1000, 42);
        let rx = random_vec(257, 50, 43);
        let ry = random_vec(257, 50, 44);
        let (sv, sr) = sxy_fold2(&vx, &vy, 3.25, 4.5, &rx, &ry, 10.0, 11.0);
        assert_eq!(sv.to_bits(), sxy_fold(&vx, &vy, 3.25, 4.5).to_bits());
        assert_eq!(sr.to_bits(), sxy_fold(&rx, &ry, 10.0, 11.0).to_bits());
    }

    #[test]
    fn dot_lags_batch_matches_per_lag_dot() {
        let a = random_vec(300, 1000, 51);
        let b = random_vec(300, 1000, 52);
        let lags: Vec<i64> = vec![-7, -3, -1, 0, 1, 2, 5, 11, 299];
        let mut out = Vec::new();
        dot_lags_batch(&a, &b, &lags, &mut out);
        assert_eq!(out.len(), lags.len());
        for (idx, &lag) in lags.iter().enumerate() {
            let k = lag.unsigned_abs() as usize;
            let expect = if lag >= 0 {
                dot(&a[k..], &b[..300 - k])
            } else {
                dot(&a[..300 - k], &b[k..])
            };
            assert_eq!(out[idx].to_bits(), expect.to_bits(), "lag={lag}");
        }
    }

    #[test]
    fn refine_tie_runs_counts_joint_ties() {
        // Two x-tie runs; joint ties only inside them.
        let mut y = vec![5.0, 2.0, 2.0, 9.0, 1.0, 1.0, 1.0, 4.0];
        let runs = vec![(1u32, 2u32), (4u32, 3u32)];
        let n3 = refine_tie_runs(&mut y, &runs);
        // Run 1: [2,2] -> 1 joint pair; run 2: [1,1,1] -> 3 joint pairs.
        assert_eq!(n3, 4);
        assert_eq!(y, vec![5.0, 2.0, 2.0, 9.0, 1.0, 1.0, 1.0, 4.0]);
        // Empty runs touch nothing.
        assert_eq!(refine_tie_runs(&mut y, &[]), 0);
    }

    #[test]
    fn order_stats_gather_handles_both_index_types() {
        let values = [3.0, 1.0, 3.0, 2.0];
        let order_u32: Vec<u32> = vec![1, 3, 0, 2];
        let mut sorted = Vec::new();
        let mut ranks = Vec::new();
        let mut runs = Vec::new();
        let ties = order_stats_gather(
            &order_u32,
            &values,
            &mut sorted,
            Some(&mut ranks),
            Some(&mut runs),
        );
        assert_eq!(sorted, vec![1.0, 2.0, 3.0, 3.0]);
        assert_eq!(ranks, vec![3.5, 1.0, 3.5, 2.0]);
        assert_eq!(runs, vec![(2, 2)]);
        assert_eq!(ties.n_tied_pairs, 1);
        let order_usize: Vec<usize> = vec![1, 3, 0, 2];
        let mut sorted2 = Vec::new();
        let ties2 = order_stats_gather(&order_usize, &values, &mut sorted2, None, None);
        assert_eq!(sorted2, sorted);
        assert_eq!(ties2, ties);
    }

    #[test]
    fn filter_order_into_is_a_filter() {
        let order: Vec<u32> = vec![4, 2, 0, 3, 1];
        let pos: Vec<u32> = vec![9, u32::MAX, 7, u32::MAX, 5];
        let mut out = Vec::new();
        filter_order_into(&order, &pos, &mut out);
        assert_eq!(out, vec![5, 7, 9]);
        filter_order_into(&[], &pos, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn welford_and_kahan_agree_with_exact_on_benign_data() {
        let vals = random_vec(1000, 10_000, 61);
        let (m0, s0) = mean_and_sxx(&vals);
        for (m, s) in [mean_and_sxx_welford(&vals), mean_and_sxx_kahan(&vals)] {
            assert!((m - m0).abs() <= 1e-9 * m0.abs().max(1.0));
            assert!((s - s0).abs() <= 1e-9 * s0.abs().max(1.0));
        }
        assert_eq!(mean_and_sxx_welford(&[]), (0.0, 0.0));
        assert_eq!(mean_and_sxx_kahan(&[]), (0.0, 0.0));
    }

    #[test]
    fn fast_lane_decision_bands() {
        assert_eq!(fast_lane_decision(0.9, 0.5, 1e-3), FastDecision::AtLeast);
        assert_eq!(fast_lane_decision(0.1, 0.5, 1e-3), FastDecision::Below);
        assert_eq!(
            fast_lane_decision(0.5005, 0.5, 1e-3),
            FastDecision::Reverify
        );
        assert_eq!(
            fast_lane_decision(0.4995, 0.5, 1e-3),
            FastDecision::Reverify
        );
        assert_eq!(fast_lane_decision(0.5, 0.5, 0.0), FastDecision::Reverify);
    }

    #[test]
    fn pearson_r_f32_close_to_exact() {
        let xs = random_vec(1440, 1000, 71);
        let ys: Vec<f64> = xs
            .iter()
            .zip(random_vec(1440, 200, 72))
            .map(|(&x, noise)| 0.7 * x + noise)
            .collect();
        let (mx, sxx) = mean_and_sxx(&xs);
        let (my, syy) = mean_and_sxx(&ys);
        let exact = {
            let sxy = sxy_fold(&xs, &ys, mx, my);
            (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
        };
        let approx = pearson_r_f32(&xs, &ys, mx, my, sxx, syy);
        assert!(
            (approx - exact).abs() <= f32_lane_band(1440),
            "approx={approx} exact={exact} band={}",
            f32_lane_band(1440)
        );
    }

    #[test]
    fn stable_value_sort_matches_index_sort() {
        let xs = [2.0, 1.0, 2.0, 0.5, 1.0];
        let mut kv = Vec::new();
        stable_value_sort(&xs, &mut kv);
        let idx: Vec<u32> = kv.iter().map(|p| p.1).collect();
        assert_eq!(idx, vec![3, 1, 4, 0, 2]);
        let mut ranks = Vec::new();
        let mut ties = Vec::new();
        ranks_from_sorted_pairs(&kv, &mut ranks, &mut ties);
        assert_eq!(ranks, vec![4.5, 2.5, 4.5, 1.0, 2.5]);
        assert_eq!(ties, vec![2, 2]);
    }
}
