//! Per-series pruning sketches with provable upper bounds on Definition 1.
//!
//! Every pairwise surface of the framework — correlation matrices, motif
//! discovery, clustering — is O(n²) in series count, and Definition 1's
//! exact evaluation (up to three coefficients with significance tests) is
//! the expensive inner loop. Following the sketch-and-prune playbook of
//! multi-scale correlation search, a [`CorSketch`] condenses each series
//! into a few dozen bytes from which *upper bounds* on all three
//! coefficients of any same-mask pair can be computed in O(w) for w
//! segments. A pair whose bounds all fall below the similarity threshold φ
//! is provably below threshold and can be discarded without any pairwise
//! exact work; survivors go through the unchanged exact path, so pruning
//! never changes a reported value — it only skips pairs that could not
//! reach φ ("zero false dismissals").
//!
//! # The bounds
//!
//! **Pearson.** Population-z-normalize the finite values: `z_i = (v_i −
//! mean) / sqrt(sxx / n)`, so `Σ z_i² = n` and `r = 1 − ‖z_x − z_y‖² /
//! (2n)`. Partition `0..n` into `w` disjoint segments; by Cauchy–Schwarz,
//! within each segment `Σ (z_xi − z_yi)² ≥ |s| · (z̄_xs − z̄_ys)²`, hence
//!
//! ```text
//! r ≤ UB_p = 1 − (1 / 2n) · Σ_s |s| · (z̄_xs − z̄_ys)²
//! ```
//!
//! The sketch stores the per-segment means `z̄_s` (the "moment
//! signature"). A still cheaper tier symbolizes those means with SAX
//! Gaussian breakpoints: when two symbols differ by ≥ 2 alphabet cells the
//! segment means are separated by at least the gap between the two cells'
//! breakpoints (the classic MINDIST argument), giving a weaker bound from
//! byte compares and a precomputed `alphabet × alphabet` gap table.
//!
//! **Spearman.** Identical machinery applied to the mid-ranks (the profile
//! caches them), since ρ is Pearson on ranks.
//!
//! **Kendall.** Two complementary bounds:
//! * both series tie-free → Daniels' inequality `−1 ≤ 3τ − 2ρ ≤ 1` gives
//!   `τ ≤ (2·UB_s + 1) / 3`;
//! * otherwise, with `P = n(n−1)/2` pairs and `n1`/`n2` tied pairs per
//!   side, `S ≤ P − n1 − n2 + n3 ≤ P − max(n1, n2) = min(u, v)` for
//!   `u = P − n1`, `v = P − n2`, so `τ_b = S / sqrt(u·v) ≤
//!   sqrt(min(u, v) / max(u, v))`; `u·v = 0` degenerates τ to 0.
//!
//! # Soundness conditions
//!
//! * Bounds require the two series to share one finite mask (pairwise
//!   deletion can change every cached statistic); callers must fall back
//!   to exact evaluation when masks differ. [`prune_pair`] asserts equal
//!   `n` but cannot see masks.
//! * `cor` is 0 when no coefficient is significant, so pruning against
//!   φ ≤ 0 would falsely dismiss such pairs; [`prune_pair`] refuses to
//!   prune (returns `None`) unless φ > 0.
//! * Bounds are compared as `ub + PRUNE_MARGIN < φ`. The margin (1e-7)
//!   dwarfs f64 accumulation error in the bound arithmetic (≲ 1e-12 for
//!   realistic lengths) and the f32 rounding of downstream matrices
//!   (≲ 6e-8), so a pruned pair's exact value — in f64 *and* rounded to
//!   f32 — is strictly below φ.
//!
//! After z-normalization every sketch has the same ℓ² norm (√n), so the
//! "bucketed norm" of generic sketch schemes carries no information here;
//! its role is taken by the degeneracy flag (constant series) and the
//! tie-mass bucket (`n_tied_pairs`), which feed the degenerate tier and
//! the Kendall bound respectively.

use std::sync::OnceLock;

use crate::corprofile::CorProfile;

/// Safety margin for bound-vs-threshold comparisons: prune only when
/// `upper_bound + PRUNE_MARGIN < φ`. See the module docs for why 1e-7
/// strictly dominates both f64 bound arithmetic error and downstream f32
/// rounding.
pub const PRUNE_MARGIN: f64 = 1e-7;

/// Gaussian breakpoints dividing N(0,1) into `alphabet` equiprobable
/// regions (Lin et al. 2007, Table 3), for alphabet sizes 2–10. Shared by
/// classic SAX in `wtts-core` and the sketch symbolizer here so both
/// representations agree cell for cell.
///
/// # Panics
/// Panics when `alphabet` is outside `2..=10`.
pub fn gaussian_breakpoints(alphabet: usize) -> &'static [f64] {
    match alphabet {
        2 => &[0.0],
        3 => &[-0.43, 0.43],
        4 => &[-0.67, 0.0, 0.67],
        5 => &[-0.84, -0.25, 0.25, 0.84],
        6 => &[-0.97, -0.43, 0.0, 0.43, 0.97],
        7 => &[-1.07, -0.57, -0.18, 0.18, 0.57, 1.07],
        8 => &[-1.15, -0.67, -0.32, 0.0, 0.32, 0.67, 1.15],
        9 => &[-1.22, -0.76, -0.43, -0.14, 0.14, 0.43, 0.76, 1.22],
        10 => &[-1.28, -0.84, -0.52, -0.25, 0.0, 0.25, 0.52, 0.84, 1.28],
        _ => panic!("SAX alphabet size must be in 2..=10, got {alphabet}"),
    }
}

/// Precomputed MINDIST cell-gap table for `alphabet`: the entry at
/// `a * alphabet + b` is the minimal distance between a value in
/// breakpoint cell `a` and one in cell `b` — `0` for equal or adjacent
/// cells, otherwise the gap between the cells' nearest breakpoints. Built
/// once per alphabet and cached for the life of the process, so neither
/// SAX MINDIST nor the sketch bounds recompute breakpoint arithmetic per
/// call.
///
/// # Panics
/// Panics when `alphabet` is outside `2..=10`.
pub fn mindist_cell_gaps(alphabet: usize) -> &'static [f64] {
    assert!(
        (2..=10).contains(&alphabet),
        "SAX alphabet size must be in 2..=10, got {alphabet}"
    );
    static TABLES: OnceLock<Vec<Vec<f64>>> = OnceLock::new();
    let all = TABLES.get_or_init(|| {
        (0..=10usize)
            .map(|a| {
                if a < 2 {
                    return Vec::new();
                }
                let bp = gaussian_breakpoints(a);
                let mut t = vec![0.0; a * a];
                for lo in 0..a {
                    for hi in lo + 2..a {
                        let gap = bp[hi - 1] - bp[lo];
                        t[lo * a + hi] = gap;
                        t[hi * a + lo] = gap;
                    }
                }
                t
            })
            .collect()
    });
    &all[alphabet]
}

/// Sketch parameters: how many disjoint segments the moment signature
/// uses and how many symbols the SAX tier quantizes them into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchConfig {
    /// Number of disjoint segments covering the compacted series. More
    /// segments tighten the bounds at the cost of per-pair work.
    pub segments: usize,
    /// SAX alphabet size for the symbolized tier (2..=10).
    pub alphabet: usize,
}

impl Default for SketchConfig {
    /// 64 segments and the largest well-conditioned alphabet.
    ///
    /// The paper's calendar windows are short — 8 bins per day, 56 per
    /// week — so 64 segments means full resolution (one sample per
    /// segment, surplus segments stay empty) and the moment bounds are
    /// exact Pearson/Spearman values rather than PAA relaxations. That
    /// tightness is what lets the Daniels bound `τ ≤ (2ρ + 1)/3` get
    /// under moderate thresholds: rank profiles of low-traffic stretches
    /// are noise-ordered, and any coarser averaging discards exactly the
    /// rank variance the Spearman bound needs. The signature stays an
    /// order of magnitude cheaper than an exact evaluation, which pays
    /// for significance tests and Kendall's pair statistics on top.
    fn default() -> SketchConfig {
        SketchConfig {
            segments: 64,
            alphabet: 8,
        }
    }
}

/// Which tier of the pruning cascade dismissed a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneTier {
    /// Fewer than 3 shared observations or a constant side — every
    /// coefficient degenerates, so `cor = 0 < φ`.
    Degenerate,
    /// The symbolized (SAX MINDIST-style) bounds already fall below φ.
    Sax,
    /// The exact segment-mean (moment signature) bounds fall below φ.
    Moment,
}

/// A per-series pruning sketch derived from a [`CorProfile`]: per-segment
/// means of the population-z-normalized values and mid-ranks, their SAX
/// symbolizations, and the degeneracy/tie facts the Kendall bound needs.
#[derive(Debug, Clone)]
pub struct CorSketch {
    /// Number of finite observations (pair-shared when masks agree).
    n: usize,
    /// SAX alphabet the words were symbolized with.
    alphabet: usize,
    /// Segment lengths `|s|` (disjoint, covering `0..n`; may contain 0).
    seg_len: Vec<u32>,
    /// Per-segment means of population-z-normalized values.
    z_means: Vec<f64>,
    /// `z_means` symbolized with the Gaussian breakpoints.
    z_word: Vec<u8>,
    /// Per-segment means of population-z-normalized mid-ranks.
    r_means: Vec<f64>,
    /// `r_means` symbolized with the Gaussian breakpoints.
    r_word: Vec<u8>,
    /// Constant series (or `n < 3`): all three coefficients degenerate.
    degenerate: bool,
    /// No ties anywhere — enables Daniels' inequality for Kendall.
    tie_free: bool,
    /// Tied-pair count Σ t(t−1)/2 for the τ-b denominator bound.
    tied_pairs: u64,
}

impl CorSketch {
    /// Builds the sketch for one profiled series. O(n) given the profile.
    pub fn from_profile(p: &CorProfile, config: &SketchConfig) -> CorSketch {
        let n = p.n_finite();
        let w = config.segments.max(1);
        let degenerate = n < 3 || p.sxx() == 0.0;
        let mut seg_len = vec![0u32; w];
        let mut z_means = vec![0.0; w];
        let mut r_means = vec![0.0; w];
        if !degenerate {
            let vals = p.values();
            let ranks = p.ranks();
            // Population normalization: Σ z² = n exactly, which is what
            // the r = 1 − ‖Δz‖²/(2n) identity needs.
            let v_scale = (p.sxx() / n as f64).sqrt();
            // A non-constant series has at least two distinct values,
            // hence at least two distinct mid-ranks: rank_sxx > 0.
            let r_scale = (p.rank_sxx() / n as f64).sqrt();
            for s in 0..w {
                let lo = s * n / w;
                let hi = (s + 1) * n / w;
                seg_len[s] = (hi - lo) as u32;
                if hi > lo {
                    let inv = 1.0 / (hi - lo) as f64;
                    let mv = vals[lo..hi].iter().sum::<f64>() * inv;
                    let mr = ranks[lo..hi].iter().sum::<f64>() * inv;
                    z_means[s] = (mv - p.mean()) / v_scale;
                    r_means[s] = (mr - p.rank_mean()) / r_scale;
                }
            }
        }
        let bp = gaussian_breakpoints(config.alphabet);
        let sym = |v: f64| bp.iter().take_while(|&&b| v > b).count() as u8;
        let z_word = z_means.iter().map(|&v| sym(v)).collect();
        let r_word = r_means.iter().map(|&v| sym(v)).collect();
        CorSketch {
            n,
            alphabet: config.alphabet,
            seg_len,
            z_means,
            z_word,
            r_means,
            r_word,
            degenerate,
            tie_free: p.tie_free(),
            tied_pairs: p.n_tied_pairs(),
        }
    }

    /// Number of finite observations the sketch summarizes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether the series degenerates every coefficient on its own
    /// (constant values or fewer than 3 observations).
    pub fn is_degenerate(&self) -> bool {
        self.degenerate
    }

    /// The SAX word over the z-normalized segment means.
    pub fn z_word(&self) -> &[u8] {
        &self.z_word
    }
}

/// Σ_s |s| · gap(word_a[s], word_b[s])² from the precomputed cell-gap
/// table — a lower bound on Σ_s |s| · (mean_a[s] − mean_b[s])².
fn sax_dist2(seg_len: &[u32], a: &[u8], b: &[u8], gaps: &[f64], alphabet: usize) -> f64 {
    let mut d2 = 0.0;
    for ((&l, &sa), &sb) in seg_len.iter().zip(a).zip(b) {
        let g = gaps[sa as usize * alphabet + sb as usize];
        d2 += l as f64 * g * g;
    }
    d2
}

/// Σ_s |s| · (mean_a[s] − mean_b[s])² over the exact segment means.
fn moment_dist2(seg_len: &[u32], a: &[f64], b: &[f64]) -> f64 {
    let mut d2 = 0.0;
    for ((&l, &ma), &mb) in seg_len.iter().zip(a).zip(b) {
        let d = ma - mb;
        d2 += l as f64 * d * d;
    }
    d2
}

/// Upper bound on Kendall's τ-b given an upper bound on Spearman's ρ and
/// both sides' tie facts. See the module docs for the two cases.
fn kendall_ub(a: &CorSketch, b: &CorSketch, ub_s: f64) -> f64 {
    let n = a.n as u64;
    let pairs = n * (n - 1) / 2;
    let u = pairs - a.tied_pairs;
    let v = pairs - b.tied_pairs;
    if u == 0 || v == 0 {
        // τ-b's denominator vanishes: the coefficient is degenerate (0).
        return 0.0;
    }
    let tie_unbalance = ((u.min(v) as f64) / (u.max(v) as f64)).sqrt();
    if a.tie_free && b.tie_free {
        tie_unbalance.min((2.0 * ub_s + 1.0) / 3.0)
    } else {
        tie_unbalance
    }
}

/// Decides whether a same-mask pair can be pruned at similarity threshold
/// `phi`: returns the tier that proved `cor(a, b) < phi`, or `None` when
/// the pair must be evaluated exactly.
///
/// Soundness requires the two series to share one finite mask (the caller
/// checks [`CorProfile::same_mask`]) and `phi > 0` (otherwise `None` is
/// returned unconditionally — insignificant pairs have `cor = 0`).
///
/// # Panics
/// Panics when the sketches disagree on length, segment count or
/// alphabet.
pub fn prune_pair(a: &CorSketch, b: &CorSketch, phi: f64) -> Option<PruneTier> {
    if phi <= 0.0 {
        return None;
    }
    assert_eq!(a.n, b.n, "pruning requires a shared finite mask");
    if a.degenerate || b.degenerate {
        return Some(PruneTier::Degenerate);
    }
    assert_eq!(a.seg_len.len(), b.seg_len.len(), "segment counts differ");
    assert_eq!(a.alphabet, b.alphabet, "alphabets differ");
    let inv2n = 1.0 / (2.0 * a.n as f64);
    let cut = phi - PRUNE_MARGIN;

    // Tier 1: symbolized bounds — byte compares and one table lookup per
    // segment. Weaker than the moment bounds (cell gaps under-estimate
    // mean separation), so anything pruned here would also be pruned
    // below; the point is skipping the f64 arithmetic for far pairs.
    let gaps = mindist_cell_gaps(a.alphabet);
    let ub_p = 1.0 - sax_dist2(&a.seg_len, &a.z_word, &b.z_word, gaps, a.alphabet) * inv2n;
    if ub_p < cut {
        let ub_s = 1.0 - sax_dist2(&a.seg_len, &a.r_word, &b.r_word, gaps, a.alphabet) * inv2n;
        if ub_s < cut && kendall_ub(a, b, ub_s) < cut {
            return Some(PruneTier::Sax);
        }
    }

    // Tier 2: exact segment-mean (moment) bounds.
    let ub_p = 1.0 - moment_dist2(&a.seg_len, &a.z_means, &b.z_means) * inv2n;
    if ub_p < cut {
        let ub_s = 1.0 - moment_dist2(&a.seg_len, &a.r_means, &b.r_means) * inv2n;
        if ub_s < cut && kendall_ub(a, b, ub_s) < cut {
            return Some(PruneTier::Moment);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corprofile::{cor_tests_profiled, CorScratch};
    use crate::ALPHA;

    fn max_significant(x: &[f64], y: &[f64]) -> f64 {
        let (pa, pb) = (CorProfile::new(x), CorProfile::new(y));
        let mut scratch = CorScratch::new();
        let (p, s, k) = cor_tests_profiled(&pa, &pb, &mut scratch);
        [p, s, k]
            .iter()
            .filter(|t| t.significant(ALPHA))
            .map(|t| t.value)
            .fold(0.0f64, f64::max)
    }

    fn sketch(x: &[f64], cfg: &SketchConfig) -> CorSketch {
        CorSketch::from_profile(&CorProfile::new(x), cfg)
    }

    #[test]
    fn gap_tables_are_symmetric_with_zero_adjacent_cells() {
        for a in 2..=10usize {
            let t = mindist_cell_gaps(a);
            assert_eq!(t.len(), a * a);
            for i in 0..a {
                for j in 0..a {
                    assert_eq!(t[i * a + j], t[j * a + i]);
                    if i.abs_diff(j) <= 1 {
                        assert_eq!(t[i * a + j], 0.0);
                    } else {
                        assert!(t[i * a + j] > 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn antiphase_sines_prune_at_moderate_threshold() {
        let n = 56;
        let x: Vec<f64> = (0..n)
            .map(|i| (i as f64 * std::f64::consts::TAU / 8.0).sin() + i as f64 * 1e-4)
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| -(i as f64 * std::f64::consts::TAU / 8.0).sin() + i as f64 * 1.1e-4)
            .collect();
        let cfg = SketchConfig::default();
        let (sx, sy) = (sketch(&x, &cfg), sketch(&y, &cfg));
        let tier = prune_pair(&sx, &sy, 0.6);
        assert!(tier.is_some(), "anti-phase pair must prune");
        // And the prune is honest: the exact Definition-1 value is below.
        assert!(max_significant(&x, &y) < 0.6);
    }

    #[test]
    fn identical_series_never_prune() {
        let x: Vec<f64> = (0..40).map(|i| ((i * 37) % 41) as f64).collect();
        let cfg = SketchConfig::default();
        let (sx, sy) = (sketch(&x, &cfg), sketch(&x, &cfg));
        assert_eq!(prune_pair(&sx, &sy, 0.99), None);
    }

    #[test]
    fn degenerate_sides_prune_immediately() {
        let cfg = SketchConfig::default();
        let constant = sketch(&[5.0; 20], &cfg);
        let varied = sketch(&(0..20).map(|i| i as f64).collect::<Vec<_>>(), &cfg);
        assert_eq!(
            prune_pair(&constant, &varied, 0.5),
            Some(PruneTier::Degenerate)
        );
        let short = sketch(&[1.0, 2.0], &cfg);
        assert_eq!(
            prune_pair(&short, &sketch(&[2.0, 1.0], &cfg), 0.5),
            Some(PruneTier::Degenerate)
        );
    }

    #[test]
    fn non_positive_threshold_disables_pruning() {
        let cfg = SketchConfig::default();
        let constant = sketch(&[5.0; 20], &cfg);
        assert_eq!(prune_pair(&constant, &constant.clone(), 0.0), None);
        assert_eq!(prune_pair(&constant, &constant.clone(), -0.5), None);
    }

    /// The load-bearing property: for a spread of same-mask pairs, every
    /// coefficient upper bound dominates the exact Definition-1 value, so
    /// a pruned pair is always truly below threshold.
    #[test]
    fn bounds_dominate_exact_cor() {
        let n = 48;
        let cfg = SketchConfig {
            segments: 12,
            alphabet: 6,
        };
        let mk = |phase: f64, tie_every: usize| -> Vec<f64> {
            (0..n)
                .map(|i| {
                    let t = i as f64;
                    let v = (t * std::f64::consts::TAU / 12.0 + phase).sin() * 100.0
                        + (t * 0.37).cos() * 9.0;
                    if tie_every > 0 && i % tie_every == 0 {
                        (v / 25.0).round() * 25.0
                    } else {
                        v
                    }
                })
                .collect()
        };
        let series: Vec<Vec<f64>> = (0..8)
            .map(|k| mk(k as f64 * 0.9, if k % 3 == 0 { 4 } else { 0 }))
            .collect();
        for i in 0..series.len() {
            for j in i + 1..series.len() {
                let exact = max_significant(&series[i], &series[j]);
                let (si, sj) = (sketch(&series[i], &cfg), sketch(&series[j], &cfg));
                // Search for the smallest φ at which this pair prunes;
                // exact cor must sit strictly below it.
                for phi in [0.05, 0.2, 0.4, 0.6, 0.8, 0.95] {
                    if prune_pair(&si, &sj, phi).is_some() {
                        assert!(
                            exact < phi,
                            "pair ({i},{j}) pruned at {phi} but cor = {exact}"
                        );
                    }
                }
            }
        }
    }
}
