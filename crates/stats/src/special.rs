//! Special functions and distribution functions.
//!
//! Implemented from standard references (Lanczos log-gamma, the Numerical
//! Recipes continued fraction for the regularized incomplete beta, the
//! Abramowitz & Stegun 7.1.26 rational approximation of `erf`). Accuracy is
//! ~1e-7 absolute or better everywhere, far tighter than anything a p-value
//! threshold of 0.05 can resolve.

/// Natural log of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Lanczos approximation (g = 5, n = 6); relative error below `2e-10`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const COEF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COEF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `0 <= x <= 1`.
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "inc_beta requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "inc_beta requires x in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function `erf(x)`.
///
/// Abramowitz & Stegun 7.1.26; absolute error below `1.5e-7`.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal survival function `1 − Φ(x)`.
pub fn normal_sf(x: f64) -> f64 {
    normal_cdf(-x)
}

/// Two-sided p-value of a standard-normal z statistic.
pub fn normal_two_sided_p(z: f64) -> f64 {
    (2.0 * normal_sf(z.abs())).min(1.0)
}

/// Survival function of Student's *t* distribution with `df` degrees of
/// freedom: `P(T > t)` for `t >= 0` (symmetric for `t < 0`).
pub fn student_t_sf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    let x = df / (df + t * t);
    let p = 0.5 * inc_beta(0.5 * df, 0.5, x);
    if t >= 0.0 {
        p
    } else {
        1.0 - p
    }
}

/// Two-sided p-value of a *t* statistic with `df` degrees of freedom.
pub fn student_t_two_sided_p(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    (2.0 * student_t_sf(t.abs(), df)).min(1.0)
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x)/Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes `gammp`).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    1.0 - gamma_p(a, x)
}

fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 3e-14 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_cf(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 3e-14 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Survival function of the chi-squared distribution with `df` degrees of
/// freedom: `P(X > x)`.
pub fn chi_squared_sf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(0.5 * df, 0.5 * x)
}

/// Kolmogorov distribution survival function
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2 k² λ²)`.
///
/// Used for the asymptotic p-value of the two-sample KS statistic.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-10);
        close(ln_gamma(2.0), 0.0, 1e-10);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-9);
        close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-9);
        // Γ(1/2) = sqrt(pi)
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-9);
    }

    #[test]
    fn inc_beta_boundaries_and_symmetry() {
        close(inc_beta(2.0, 3.0, 0.0), 0.0, 1e-12);
        close(inc_beta(2.0, 3.0, 1.0), 1.0, 1e-12);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let v = inc_beta(2.5, 1.5, 0.3);
        let w = 1.0 - inc_beta(1.5, 2.5, 0.7);
        close(v, w, 1e-10);
        // I_x(1,1) = x (uniform CDF).
        close(inc_beta(1.0, 1.0, 0.42), 0.42, 1e-10);
    }

    #[test]
    fn inc_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry.
        close(inc_beta(2.0, 2.0, 0.5), 0.5, 1e-10);
        // Beta(2,3) CDF at 0.4: 1 - (1-x)^3 (1+3x) ... cross-checked with R:
        // pbeta(0.4, 2, 3) = 0.5248
        close(inc_beta(2.0, 3.0, 0.4), 0.5248, 1e-6);
    }

    #[test]
    fn erf_reference_values() {
        close(erf(0.0), 0.0, 2e-7);
        close(erf(1.0), 0.842_700_79, 2e-7);
        close(erf(-1.0), -0.842_700_79, 2e-7);
        close(erf(2.0), 0.995_322_27, 2e-7);
    }

    #[test]
    fn normal_cdf_reference_values() {
        close(normal_cdf(0.0), 0.5, 1e-9);
        close(normal_cdf(1.96), 0.975, 1e-4);
        close(normal_cdf(-1.96), 0.025, 1e-4);
        close(normal_two_sided_p(1.96), 0.05, 2e-4);
    }

    #[test]
    fn student_t_reference_values() {
        // With df -> large, t approaches normal.
        close(student_t_sf(1.96, 1e6), 0.025, 1e-4);
        // R: pt(2.0, df=10, lower.tail=FALSE) = 0.03669402
        close(student_t_sf(2.0, 10.0), 0.036_694_02, 1e-6);
        // Symmetry.
        close(
            student_t_sf(-2.0, 10.0),
            1.0 - student_t_sf(2.0, 10.0),
            1e-10,
        );
        // R: 2*pt(2.228, df=10, lower.tail=FALSE) = 0.0500
        close(student_t_two_sided_p(2.228, 10.0), 0.05, 2e-4);
    }

    #[test]
    fn incomplete_gamma_reference_values() {
        // P(1, x) = 1 - exp(-x).
        for x in [0.1, 0.5, 1.0, 3.0, 10.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-10);
        }
        // P + Q = 1.
        close(gamma_p(2.5, 1.7) + gamma_q(2.5, 1.7), 1.0, 1e-12);
        // R: pgamma(2, shape=3) = 0.3233236
        close(gamma_p(3.0, 2.0), 0.323_323_6, 1e-6);
        close(gamma_p(3.0, 0.0), 0.0, 1e-12);
    }

    #[test]
    fn chi_squared_reference_values() {
        // Classic critical value: P(X2_1 > 3.841) = 0.05.
        close(chi_squared_sf(3.841, 1.0), 0.05, 1e-3);
        // P(X2_10 > 18.307) = 0.05.
        close(chi_squared_sf(18.307, 10.0), 0.05, 1e-3);
        close(chi_squared_sf(0.0, 4.0), 1.0, 1e-12);
        assert!(chi_squared_sf(100.0, 2.0) < 1e-10);
    }

    #[test]
    fn kolmogorov_reference_values() {
        // Q(1.36) ~ 0.049 (the classic 5% critical value).
        close(kolmogorov_sf(1.36), 0.049, 2e-3);
        close(kolmogorov_sf(0.0), 1.0, 1e-12);
        assert!(kolmogorov_sf(3.0) < 1e-6);
        // Monotone decreasing.
        assert!(kolmogorov_sf(0.5) > kolmogorov_sf(1.0));
        assert!(kolmogorov_sf(1.0) > kolmogorov_sf(1.5));
    }

    #[test]
    fn infinite_t_gives_zero_p() {
        assert_eq!(student_t_two_sided_p(f64::INFINITY, 5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}
