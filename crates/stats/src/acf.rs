//! Autocorrelation and cross-correlation functions.
//!
//! Section 4.2 of the paper evaluates the predictive power of gateway
//! traffic via the ACF of individual gateways and lagged cross-correlations
//! between gateway pairs (Figure 2).

use crate::descriptive::mean;

/// Sample autocorrelation of `x` at lags `0..=max_lag`.
///
/// Uses the standard biased estimator
/// `r_k = Σ_t (x_t − x̄)(x_{t+k} − x̄) / Σ_t (x_t − x̄)²`
/// (the same normalization as R's `acf`), which guarantees `|r_k| ≤ 1` and a
/// positive semi-definite sequence. Missing values contribute zero deviation
/// — the mean is taken over observed samples only.
///
/// Returns an empty vector for a series with no variance.
pub fn acf(x: &[f64], max_lag: usize) -> Vec<f64> {
    let m = mean(x);
    if !m.is_finite() {
        return Vec::new();
    }
    let dev: Vec<f64> = x
        .iter()
        .map(|&v| if v.is_finite() { v - m } else { 0.0 })
        .collect();
    let denom: f64 = dev.iter().map(|d| d * d).sum();
    if denom == 0.0 {
        return Vec::new();
    }
    let n = x.len();
    (0..=max_lag.min(n.saturating_sub(1)))
        .map(|k| {
            let num: f64 = (0..n - k).map(|t| dev[t] * dev[t + k]).sum();
            num / denom
        })
        .collect()
}

/// Sample cross-correlation of `x` and `y` at lags `-max_lag..=max_lag`.
///
/// `ccf[k + max_lag]` estimates `corr(x_{t+k}, y_t)`: positive lags mean `x`
/// leads `y`. Normalized by the geometric mean of the two series' total
/// sums of squares, matching R's `ccf`.
///
/// # Panics
/// Panics if the series lengths differ.
pub fn ccf(x: &[f64], y: &[f64], max_lag: usize) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "ccf requires equal-length series");
    let mx = mean(x);
    let my = mean(y);
    if !mx.is_finite() || !my.is_finite() {
        return Vec::new();
    }
    let dx: Vec<f64> = x
        .iter()
        .map(|&v| if v.is_finite() { v - mx } else { 0.0 })
        .collect();
    let dy: Vec<f64> = y
        .iter()
        .map(|&v| if v.is_finite() { v - my } else { 0.0 })
        .collect();
    let sx: f64 = dx.iter().map(|d| d * d).sum();
    let sy: f64 = dy.iter().map(|d| d * d).sum();
    let denom = (sx * sy).sqrt();
    if denom == 0.0 {
        return Vec::new();
    }
    let n = x.len();
    let max_lag = max_lag.min(n.saturating_sub(1));
    let mut out = Vec::with_capacity(2 * max_lag + 1);
    for lag in -(max_lag as i64)..=(max_lag as i64) {
        let num: f64 = if lag >= 0 {
            let k = lag as usize;
            (0..n - k).map(|t| dx[t + k] * dy[t]).sum()
        } else {
            let k = (-lag) as usize;
            (0..n - k).map(|t| dx[t] * dy[t + k]).sum()
        };
        out.push(num / denom);
    }
    out
}

/// The ±bound outside which a sample (cross-)correlation at any nonzero lag
/// is significant at 5% under white noise: `1.96 / √n`.
pub fn significance_bound(n: usize) -> f64 {
    if n == 0 {
        f64::INFINITY
    } else {
        1.96 / (n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acf_lag_zero_is_one() {
        let x: Vec<f64> = (0..50).map(|i| ((i * 13) % 7) as f64).collect();
        let r = acf(&x, 10);
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert!(r.iter().all(|v| v.abs() <= 1.0 + 1e-12));
    }

    #[test]
    fn acf_of_periodic_signal_peaks_at_period() {
        let x: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let r = acf(&x, 20);
        assert!(r[10] > 0.8, "ACF at the period must be high: {}", r[10]);
        assert!(r[10] > r[5], "period lag beats off-period lag");
        assert!((r[20] - r[10]).abs() < 0.1, "period multiples similar");
    }

    #[test]
    fn acf_of_alternating_signal_is_negative_at_lag_one() {
        let x: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r = acf(&x, 2);
        assert!(r[1] < -0.9);
        assert!(r[2] > 0.9);
    }

    #[test]
    fn acf_constant_series_empty() {
        assert!(acf(&[3.0; 10], 5).is_empty());
        assert!(acf(&[], 5).is_empty());
    }

    #[test]
    fn acf_truncates_lag_to_series_length() {
        let x = [1.0, 2.0, 3.0];
        let r = acf(&x, 10);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn ccf_detects_lagged_copy() {
        // y is x delayed by 3: the CCF must peak at lag +3 (x leads y).
        let n = 100;
        let base: Vec<f64> = (0..n + 3).map(|i| ((i * 31) % 17) as f64).collect();
        let x: Vec<f64> = base[3..].to_vec();
        let y: Vec<f64> = base[..n].to_vec();
        let max_lag = 5;
        let c = ccf(&x, &y, max_lag);
        let peak_idx = c
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak_idx as i64 - max_lag as i64, -3);
        // x_{t} = base_{t+3} = y_{t+3}: corr(x_{t+k}, y_t) peaks when
        // t + 3 = t + k... i.e. x lags y by -3. Verify the symmetric case too.
        let c2 = ccf(&y, &x, max_lag);
        let peak2 = c2
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak2 as i64 - max_lag as i64, 3);
    }

    #[test]
    fn ccf_identical_series_peaks_at_zero() {
        let x: Vec<f64> = (0..60).map(|i| ((i * 7) % 11) as f64).collect();
        let c = ccf(&x, &x, 4);
        assert!((c[4] - 1.0).abs() < 1e-12, "lag 0 of self-CCF is 1");
    }

    #[test]
    fn significance_bound_shrinks_with_n() {
        assert!(significance_bound(100) < significance_bound(10));
        assert!((significance_bound(100) - 0.196).abs() < 1e-12);
        assert!(significance_bound(0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn ccf_rejects_mismatched_lengths() {
        let _ = ccf(&[1.0], &[1.0, 2.0], 1);
    }
}
