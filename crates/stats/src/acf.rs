//! Autocorrelation and cross-correlation functions.
//!
//! Section 4.2 of the paper evaluates the predictive power of gateway
//! traffic via the ACF of individual gateways and lagged cross-correlations
//! between gateway pairs (Figure 2).
//!
//! # Missing data
//!
//! Both estimators are **pairwise-complete**: at lag `k` only positions
//! where *both* samples of a pair are finite enter the numerator, and the
//! numerator is scaled by the number of such observed pairs rather than by
//! the nominal series length. A gap therefore removes its pairs from the
//! estimate instead of injecting zero deviations — the historical behavior,
//! which kept every missing position in the denominator while zeroing its
//! numerator contribution, shrank every coefficient toward zero as gaps
//! grew. The biased-estimator taper `(n − k) / n` of R's `acf`/`ccf` is
//! retained so the fully-observed case reproduces the classic estimator
//! **bit for bit** (the complete path runs the exact legacy summations).
//! Under heavy, adversarially placed gaps a pairwise-complete coefficient
//! can slightly exceed 1 in magnitude; lags with no observed pair at all
//! come back as `NaN`.
//!
//! Degenerate inputs are typed ([`CorrelogramError`]) so callers can tell
//! "no data" from "no variance" — previously both came back as an empty
//! vector.

use crate::corprofile::CorProfile;
use crate::descriptive::mean;

/// Why an ACF/CCF estimate could not be produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelogramError {
    /// The input is empty or every sample is missing: no mean exists.
    NoObservations,
    /// Every observed sample is equal: zero variance, correlations are
    /// undefined.
    ZeroVariance,
}

impl std::fmt::Display for CorrelogramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorrelogramError::NoObservations => write!(f, "no finite observations"),
            CorrelogramError::ZeroVariance => write!(f, "zero variance"),
        }
    }
}

/// When both series fail, report the more fundamental failure: a series
/// with no observations at all outranks one that is merely constant.
fn combine(a: CorrelogramError, b: CorrelogramError) -> CorrelogramError {
    if a == CorrelogramError::NoObservations || b == CorrelogramError::NoObservations {
        CorrelogramError::NoObservations
    } else {
        CorrelogramError::ZeroVariance
    }
}

/// One series' prepared state for cross-correlation: the zero-filled
/// deviation vector, the finite-position mask and the observed moments.
///
/// Preparing a side once and evaluating many [`ccf_cell`] lags against it is
/// exactly what [`ccf`] does internally, so engines that cache a `CcfSide`
/// per series (the multi-scale lag search) produce **bit-identical** values
/// to a fresh `ccf` call on the same slices.
#[derive(Debug, Clone)]
pub struct CcfSide {
    /// Full series length, including missing positions.
    n: usize,
    /// Number of finite observations.
    n_obs: usize,
    /// Mean over the finite observations.
    mean: f64,
    /// Centered second moment Σ(x − mean)² over the finite observations.
    sxx: f64,
    /// Observed standard deviation `sqrt(sxx / n_obs)` (the biased one, to
    /// match the estimator's normalization).
    sd: f64,
    /// `x − mean` at finite positions, `0.0` at missing ones.
    dev: Vec<f64>,
    /// Finite-position mask; empty when the series is complete.
    finite: Vec<bool>,
}

impl CcfSide {
    /// Prepares a series: mean, deviations, mask and moments.
    pub fn new(x: &[f64]) -> Result<CcfSide, CorrelogramError> {
        let m = mean(x);
        if !m.is_finite() {
            return Err(CorrelogramError::NoObservations);
        }
        CcfSide::from_mean(x, m)
    }

    /// Prepares a series reusing the moments a [`CorProfile`] already
    /// cached. The profile accumulates its mean and `sxx` over the finite
    /// values in series order — the same order [`CcfSide::new`] uses — so
    /// this constructor is bit-identical to it while skipping one pass.
    ///
    /// # Panics
    /// Panics if the profile was built from a different-length series.
    pub fn from_profile(x: &[f64], profile: &CorProfile) -> Result<CcfSide, CorrelogramError> {
        assert_eq!(profile.len(), x.len(), "profile belongs to another series");
        if profile.n_finite() == 0 {
            return Err(CorrelogramError::NoObservations);
        }
        CcfSide::from_mean(x, profile.mean())
    }

    fn from_mean(x: &[f64], m: f64) -> Result<CcfSide, CorrelogramError> {
        let n = x.len();
        let mut dev = Vec::with_capacity(n);
        let mut finite = Vec::with_capacity(n);
        let mut sxx = 0.0;
        let mut n_obs = 0usize;
        for &v in x {
            if v.is_finite() {
                let d = v - m;
                dev.push(d);
                finite.push(true);
                sxx += d * d;
                n_obs += 1;
            } else {
                dev.push(0.0);
                finite.push(false);
            }
        }
        if sxx == 0.0 {
            return Err(CorrelogramError::ZeroVariance);
        }
        if n_obs == n {
            finite = Vec::new();
        }
        Ok(CcfSide {
            n,
            n_obs,
            mean: m,
            sxx,
            sd: (sxx / n_obs as f64).sqrt(),
            dev,
            finite,
        })
    }

    /// Full series length, including missing positions.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of finite observations.
    pub fn n_obs(&self) -> usize {
        self.n_obs
    }

    /// Mean over the finite observations.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Centered second moment over the finite observations.
    pub fn sxx(&self) -> f64 {
        self.sxx
    }

    /// Observed standard deviation `sqrt(sxx / n_obs)` — the gap path's
    /// normalizer (lag-search bounds divide by it too).
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Whether every position holds a finite value.
    pub fn is_complete(&self) -> bool {
        self.finite.is_empty()
    }

    /// The deviation vector: `x − mean` at finite positions, `0.0` at
    /// missing ones.
    pub fn dev(&self) -> &[f64] {
        &self.dev
    }

    /// Whether position `t` holds a finite value.
    #[inline]
    pub fn is_finite_at(&self, t: usize) -> bool {
        self.finite.is_empty() || self.finite[t]
    }
}

/// One cross-correlation cell: the pairwise-complete estimate of
/// `corr(x_{t+lag}, y_t)` (positive lags mean `x` leads `y`), plus the
/// number of observed pairs it rests on.
///
/// For two complete sides this is the classic biased estimator
/// `Σ dx[t+k] dy[t] / sqrt(sx · sy)`, evaluated in the legacy summation
/// order; with gaps the observed-pair mean cross-product is normalized by
/// the observed standard deviations and the `(n − |lag|) / n` taper. A lag
/// with no observed pair yields `NaN` with a count of 0.
///
/// # Panics
/// Panics if the sides have different lengths or `|lag|` is not smaller
/// than that length.
pub fn ccf_cell_counted(a: &CcfSide, b: &CcfSide, lag: i64) -> (f64, usize) {
    assert_eq!(a.n, b.n, "ccf requires equal-length series");
    let n = a.n;
    let k = lag.unsigned_abs() as usize;
    assert!(k < n, "lag must be smaller than the series length");
    if a.is_complete() && b.is_complete() {
        // The kernel fold sums the same products in the same t-ascending
        // order as the legacy `(0..n-k).map(..).sum()` — bit-identical.
        let num: f64 = if lag >= 0 {
            crate::kernels::dot(&a.dev[k..], &b.dev[..n - k])
        } else {
            crate::kernels::dot(&a.dev[..n - k], &b.dev[k..])
        };
        return (num / (a.sxx * b.sxx).sqrt(), n - k);
    }
    let mut num = 0.0;
    let mut m = 0usize;
    for t in 0..n - k {
        let (xi, yi) = if lag >= 0 { (t + k, t) } else { (t, t + k) };
        if a.is_finite_at(xi) && b.is_finite_at(yi) {
            num += a.dev[xi] * b.dev[yi];
            m += 1;
        }
    }
    if m == 0 {
        return (f64::NAN, 0);
    }
    let taper = (n - k) as f64 / n as f64;
    ((num / m as f64) * taper / (a.sd * b.sd), m)
}

/// [`ccf_cell_counted`] without the pair count.
pub fn ccf_cell(a: &CcfSide, b: &CcfSide, lag: i64) -> f64 {
    ccf_cell_counted(a, b, lag).0
}

/// Batch of complete-series CCF cells: `out[l]` equals
/// `ccf_cell(a, b, lags[l])` **bit for bit**, via the grouped multi-lag
/// kernel fold ([`crate::kernels::dot_lags_batch`]): up to four lags'
/// independent accumulator chains share one sweep of the deviation arrays,
/// each chain in its own t-ascending order, then each numerator divides by
/// the same `sqrt(sx · sy)` the per-cell path computes.
///
/// Lag-search rows batch their prune-surviving lags through this instead of
/// re-walking the overlap once per lag.
///
/// # Panics
/// Panics if the sides have different lengths, either side has gaps (the
/// pairwise-complete gap path stays per-cell), or any `|lag|` is not
/// smaller than the length.
pub fn ccf_cells_batch(a: &CcfSide, b: &CcfSide, lags: &[i64], out: &mut Vec<f64>) {
    assert_eq!(a.n, b.n, "ccf requires equal-length series");
    assert!(
        a.is_complete() && b.is_complete(),
        "ccf_cells_batch requires complete sides"
    );
    assert!(
        lags.iter().all(|lag| (lag.unsigned_abs() as usize) < a.n),
        "lag must be smaller than the series length"
    );
    crate::kernels::dot_lags_batch(&a.dev, &b.dev, lags, out);
    let denom = (a.sxx * b.sxx).sqrt();
    for cell in out.iter_mut() {
        *cell /= denom;
    }
}

/// Sample autocorrelation of `x` at lags `0..=max_lag`.
///
/// Uses the biased estimator
/// `r_k = Σ_t (x_t − x̄)(x_{t+k} − x̄) / Σ_t (x_t − x̄)²`
/// (the same normalization as R's `acf`) for fully-observed series, which
/// guarantees `|r_k| ≤ 1` and a positive semi-definite sequence. Gaps are
/// handled pairwise-complete (see the module docs): per lag, only pairs
/// with both samples observed contribute, scaled back to the biased
/// estimator's `(n − k) / n` taper.
///
/// Errors are typed: [`CorrelogramError::NoObservations`] for an empty or
/// all-missing series, [`CorrelogramError::ZeroVariance`] for a constant
/// one.
pub fn acf(x: &[f64], max_lag: usize) -> Result<Vec<f64>, CorrelogramError> {
    let side = CcfSide::new(x)?;
    let n = side.n;
    let lags = 0..=max_lag.min(n.saturating_sub(1));
    if side.is_complete() {
        return Ok(lags
            .map(|k| {
                let num: f64 = (0..n - k).map(|t| side.dev[t] * side.dev[t + k]).sum();
                num / side.sxx
            })
            .collect());
    }
    let var = side.sxx / side.n_obs as f64;
    Ok(lags
        .map(|k| {
            let mut num = 0.0;
            let mut m = 0usize;
            for t in 0..n - k {
                if side.is_finite_at(t) && side.is_finite_at(t + k) {
                    num += side.dev[t] * side.dev[t + k];
                    m += 1;
                }
            }
            if m == 0 {
                return f64::NAN;
            }
            (num / m as f64) * ((n - k) as f64 / n as f64) / var
        })
        .collect())
}

/// Sample cross-correlation of `x` and `y` at lags `-max_lag..=max_lag`.
///
/// `ccf[k + max_lag]` estimates `corr(x_{t+k}, y_t)`: positive lags mean
/// `x` leads `y`. Fully-observed series are normalized by the geometric
/// mean of the two series' total sums of squares, matching R's `ccf`; gaps
/// are handled pairwise-complete per lag (see [`ccf_cell_counted`]).
///
/// Errors are typed and consistent with [`acf`]: when either series has no
/// finite sample the result is [`CorrelogramError::NoObservations`]
/// (whichever else holds), otherwise a constant series yields
/// [`CorrelogramError::ZeroVariance`].
///
/// # Panics
/// Panics if the series lengths differ.
pub fn ccf(x: &[f64], y: &[f64], max_lag: usize) -> Result<Vec<f64>, CorrelogramError> {
    assert_eq!(x.len(), y.len(), "ccf requires equal-length series");
    let (a, b) = match (CcfSide::new(x), CcfSide::new(y)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(ea), Err(eb)) => return Err(combine(ea, eb)),
        (Err(e), Ok(_)) | (Ok(_), Err(e)) => return Err(e),
    };
    let max_lag = max_lag.min(a.n.saturating_sub(1)) as i64;
    Ok((-max_lag..=max_lag)
        .map(|lag| ccf_cell(&a, &b, lag))
        .collect())
}

/// The ±bound outside which a sample (cross-)correlation at any nonzero lag
/// is significant at 5% under white noise: `1.96 / √n`.
pub fn significance_bound(n: usize) -> f64 {
    if n == 0 {
        f64::INFINITY
    } else {
        1.96 / (n as f64).sqrt()
    }
}

/// Number of finite samples in `x` — the effective sample size a gappy
/// series actually contributes to a correlogram.
pub fn effective_sample_size(x: &[f64]) -> usize {
    x.iter().filter(|v| v.is_finite()).count()
}

/// Gap-aware [`significance_bound`]: `1.96 / √n_observed`. The raw-length
/// bound overstates significance for sparse series — a week-long series
/// with a day of observations has the white-noise band of one day, not one
/// week.
pub fn significance_bound_effective(x: &[f64]) -> f64 {
    significance_bound(effective_sample_size(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acf_lag_zero_is_one() {
        let x: Vec<f64> = (0..50).map(|i| ((i * 13) % 7) as f64).collect();
        let r = acf(&x, 10).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert!(r.iter().all(|v| v.abs() <= 1.0 + 1e-12));
    }

    #[test]
    fn acf_lag_zero_is_one_with_gaps() {
        let x: Vec<f64> = (0..60)
            .map(|i| {
                if i % 7 == 3 {
                    f64::NAN
                } else {
                    ((i * 13) % 11) as f64
                }
            })
            .collect();
        let r = acf(&x, 5).unwrap();
        assert_eq!(r[0], 1.0, "pairwise-complete lag 0 is exactly 1");
    }

    #[test]
    fn acf_of_periodic_signal_peaks_at_period() {
        let x: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let r = acf(&x, 20).unwrap();
        assert!(r[10] > 0.8, "ACF at the period must be high: {}", r[10]);
        assert!(r[10] > r[5], "period lag beats off-period lag");
        assert!((r[20] - r[10]).abs() < 0.1, "period multiples similar");
    }

    #[test]
    fn acf_of_alternating_signal_is_negative_at_lag_one() {
        let x: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r = acf(&x, 2).unwrap();
        assert!(r[1] < -0.9);
        assert!(r[2] > 0.9);
    }

    #[test]
    fn degenerate_inputs_are_typed() {
        assert_eq!(acf(&[3.0; 10], 5), Err(CorrelogramError::ZeroVariance));
        assert_eq!(acf(&[], 5), Err(CorrelogramError::NoObservations));
        assert_eq!(
            acf(&[f64::NAN; 4], 2),
            Err(CorrelogramError::NoObservations)
        );
        let live: Vec<f64> = (0..10).map(|i| (i % 3) as f64).collect();
        assert_eq!(
            ccf(&live, &[2.0; 10], 3),
            Err(CorrelogramError::ZeroVariance)
        );
        assert_eq!(
            ccf(&[2.0; 10], &live, 3),
            Err(CorrelogramError::ZeroVariance)
        );
        assert_eq!(
            ccf(&[f64::NAN; 10], &[2.0; 10], 3),
            Err(CorrelogramError::NoObservations),
            "missing everything outranks missing variance"
        );
        assert_eq!(ccf(&[], &[], 3), Err(CorrelogramError::NoObservations));
    }

    #[test]
    fn acf_truncates_lag_to_series_length() {
        let x = [1.0, 2.0, 3.0];
        let r = acf(&x, 10).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn gap_bias_is_removed() {
        // A clean periodic signal, then the same signal with a quarter of
        // its samples knocked out. The zeroed-deviation estimator shrank
        // r_period toward zero; pairwise-complete keeps it high.
        let clean: Vec<f64> = (0..240).map(|i| (i % 12) as f64).collect();
        let gappy: Vec<f64> = clean
            .iter()
            .enumerate()
            .map(|(i, &v)| if i % 4 == 1 { f64::NAN } else { v })
            .collect();
        let r_clean = acf(&clean, 12).unwrap()[12];
        let r_gappy = acf(&gappy, 12).unwrap()[12];
        assert!(
            (r_clean - r_gappy).abs() < 0.05,
            "gaps must not dilute the estimate: clean {r_clean} vs gappy {r_gappy}"
        );
    }

    #[test]
    fn acf_lag_with_no_pairs_is_nan() {
        // Observations only at even positions: odd lags pair an observed
        // sample with a missing one every time.
        let x: Vec<f64> = (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    ((i * 7) % 13) as f64
                } else {
                    f64::NAN
                }
            })
            .collect();
        let r = acf(&x, 4).unwrap();
        assert!(r[1].is_nan());
        assert!(r[3].is_nan());
        assert!(r[2].is_finite() && r[4].is_finite());
    }

    #[test]
    fn ccf_detects_lagged_copy() {
        // y is x delayed by 3: the CCF must peak at lag +3 (x leads y).
        let n = 100;
        let base: Vec<f64> = (0..n + 3).map(|i| ((i * 31) % 17) as f64).collect();
        let x: Vec<f64> = base[3..].to_vec();
        let y: Vec<f64> = base[..n].to_vec();
        let max_lag = 5;
        let c = ccf(&x, &y, max_lag).unwrap();
        let peak_idx = c
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak_idx as i64 - max_lag as i64, -3);
        // x_{t} = base_{t+3} = y_{t+3}: corr(x_{t+k}, y_t) peaks when
        // t + 3 = t + k... i.e. x lags y by -3. Verify the symmetric case too.
        let c2 = ccf(&y, &x, max_lag).unwrap();
        let peak2 = c2
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak2 as i64 - max_lag as i64, 3);
    }

    #[test]
    fn ccf_detects_lagged_copy_through_gaps() {
        let n = 160;
        let base: Vec<f64> = (0..n + 4).map(|i| ((i * 29) % 23) as f64).collect();
        let x: Vec<f64> = base[4..]
            .iter()
            .enumerate()
            .map(|(i, &v)| if i % 5 == 2 { f64::NAN } else { v })
            .collect();
        let y: Vec<f64> = base[..n]
            .iter()
            .enumerate()
            .map(|(i, &v)| if i % 7 == 1 { f64::NAN } else { v })
            .collect();
        let c = ccf(&x, &y, 6).unwrap();
        let peak_idx = c
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak_idx as i64 - 6, -4, "gaps must not move the peak");
        assert!(c[2] > 0.95, "the peak stays near 1: {}", c[2]);
    }

    #[test]
    fn ccf_identical_series_peaks_at_zero() {
        let x: Vec<f64> = (0..60).map(|i| ((i * 7) % 11) as f64).collect();
        let c = ccf(&x, &x, 4).unwrap();
        assert!((c[4] - 1.0).abs() < 1e-12, "lag 0 of self-CCF is 1");
    }

    #[test]
    fn ccf_cell_matches_dense_ccf() {
        let x: Vec<f64> = (0..80)
            .map(|i| {
                if i % 9 == 4 {
                    f64::NAN
                } else {
                    ((i * 31) % 19) as f64
                }
            })
            .collect();
        let y: Vec<f64> = (0..80).map(|i| ((i * 17) % 13) as f64).collect();
        let dense = ccf(&x, &y, 7).unwrap();
        let a = CcfSide::new(&x).unwrap();
        let b = CcfSide::new(&y).unwrap();
        for (i, &v) in dense.iter().enumerate() {
            let lag = i as i64 - 7;
            let (cell, m) = ccf_cell_counted(&a, &b, lag);
            assert_eq!(v.to_bits(), cell.to_bits(), "lag {lag}");
            assert!(m > 0 && m <= 80 - lag.unsigned_abs() as usize);
        }
    }

    #[test]
    fn ccf_cells_batch_matches_per_cell() {
        let x: Vec<f64> = (0..90).map(|i| ((i * 13) % 23) as f64).collect();
        let y: Vec<f64> = (0..90).map(|i| ((i * 29) % 17) as f64).collect();
        let a = CcfSide::new(&x).unwrap();
        let b = CcfSide::new(&y).unwrap();
        // Odd-sized batches exercise both the 4-wide groups and the tail.
        let lags: Vec<i64> = (-11..=11).collect();
        let mut out = Vec::new();
        ccf_cells_batch(&a, &b, &lags, &mut out);
        assert_eq!(out.len(), lags.len());
        for (cell, &lag) in out.iter().zip(&lags) {
            let single = ccf_cell(&a, &b, lag);
            assert_eq!(cell.to_bits(), single.to_bits(), "lag {lag}");
        }
    }

    #[test]
    #[should_panic(expected = "complete sides")]
    fn ccf_cells_batch_rejects_gappy_sides() {
        let x: Vec<f64> = (0..40)
            .map(|i| if i == 7 { f64::NAN } else { i as f64 })
            .collect();
        let y: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let a = CcfSide::new(&x).unwrap();
        let b = CcfSide::new(&y).unwrap();
        let mut out = Vec::new();
        ccf_cells_batch(&a, &b, &[0, 1], &mut out);
    }

    #[test]
    fn significance_bound_shrinks_with_n() {
        assert!(significance_bound(100) < significance_bound(10));
        assert!((significance_bound(100) - 0.196).abs() < 1e-12);
        assert!(significance_bound(0).is_infinite());
    }

    #[test]
    fn effective_bound_counts_observations_only() {
        let mut x = vec![1.0; 100];
        for v in x.iter_mut().skip(25) {
            *v = f64::NAN;
        }
        assert_eq!(effective_sample_size(&x), 25);
        assert_eq!(
            significance_bound_effective(&x).to_bits(),
            significance_bound(25).to_bits()
        );
        assert!(significance_bound_effective(&x) > significance_bound(x.len()));
        assert!(significance_bound_effective(&[]).is_infinite());
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn ccf_rejects_mismatched_lengths() {
        let _ = ccf(&[1.0], &[1.0, 2.0], 1);
    }
}
