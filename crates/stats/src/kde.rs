//! Gaussian kernel density estimation.
//!
//! Figure 1a of the paper visualizes the probability density of a gateway's
//! traffic values via KDE, showing the huge spike of low-valued background
//! traffic that motivates thresholding.

use crate::descriptive::{quantile, std_dev};

/// A Gaussian kernel density estimator over a fixed sample.
#[derive(Debug, Clone)]
pub struct Kde {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Builds an estimator over the finite values of `xs` using Silverman's
    /// rule-of-thumb bandwidth
    /// `h = 0.9 · min(σ̂, IQR/1.34) · n^{−1/5}`.
    ///
    /// Returns `None` if fewer than two finite values exist or the sample is
    /// constant (no scale to estimate a bandwidth from).
    pub fn from_samples(xs: &[f64]) -> Option<Kde> {
        let samples: Vec<f64> = xs.iter().copied().filter(|v| v.is_finite()).collect();
        if samples.len() < 2 {
            return None;
        }
        let sd = std_dev(&samples);
        let iqr = quantile(&samples, 0.75) - quantile(&samples, 0.25);
        let scale = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
        if !scale.is_finite() || scale <= 0.0 {
            return None;
        }
        let h = 0.9 * scale * (samples.len() as f64).powf(-0.2);
        Some(Kde::with_bandwidth(samples, h))
    }

    /// Builds an estimator with an explicit bandwidth.
    ///
    /// # Panics
    /// Panics if `bandwidth` is not positive.
    pub fn with_bandwidth(samples: Vec<f64>, bandwidth: f64) -> Kde {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        Kde { samples, bandwidth }
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of samples.
    pub fn n(&self) -> usize {
        self.samples.len()
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / (self.samples.len() as f64 * h * (2.0 * std::f64::consts::PI).sqrt());
        self.samples
            .iter()
            .map(|&s| {
                let u = (x - s) / h;
                (-0.5 * u * u).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Density evaluated on `n_points` equally spaced points spanning
    /// `[lo, hi]`; returns `(x, f(x))` pairs.
    pub fn grid(&self, lo: f64, hi: f64, n_points: usize) -> Vec<(f64, f64)> {
        assert!(n_points >= 2, "grid needs at least two points");
        assert!(hi > lo, "grid range must be non-empty");
        let step = (hi - lo) / (n_points - 1) as f64;
        (0..n_points)
            .map(|i| {
                let x = lo + i as f64 * step;
                (x, self.density(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_integrates_to_one() {
        let xs: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let kde = Kde::from_samples(&xs).unwrap();
        // Trapezoid rule over a wide range.
        let grid = kde.grid(-20.0, 30.0, 2000);
        let mut integral = 0.0;
        for w in grid.windows(2) {
            integral += 0.5 * (w[0].1 + w[1].1) * (w[1].0 - w[0].0);
        }
        assert!((integral - 1.0).abs() < 0.01, "integral = {integral}");
    }

    #[test]
    fn density_peaks_at_the_mode() {
        // Heavily skewed sample: 90 zeros, 10 large values — like traffic.
        let mut xs = vec![0.0; 90];
        xs.extend((0..10).map(|i| 100.0 + i as f64));
        let kde = Kde::from_samples(&xs).unwrap();
        assert!(kde.density(0.0) > kde.density(50.0));
        assert!(kde.density(0.0) > kde.density(105.0));
        assert!(kde.density(105.0) > kde.density(50.0));
    }

    #[test]
    fn silverman_bandwidth_shrinks_with_n() {
        let small: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..2000).map(|i| (i % 20) as f64).collect();
        let k1 = Kde::from_samples(&small).unwrap();
        let k2 = Kde::from_samples(&large).unwrap();
        assert!(k2.bandwidth() < k1.bandwidth());
    }

    #[test]
    fn constant_sample_is_none() {
        assert!(Kde::from_samples(&[3.0; 10]).is_none());
        assert!(Kde::from_samples(&[1.0]).is_none());
        assert!(Kde::from_samples(&[]).is_none());
    }

    #[test]
    fn missing_values_ignored() {
        let xs = [1.0, f64::NAN, 2.0, 3.0, f64::NAN, 4.0];
        let kde = Kde::from_samples(&xs).unwrap();
        assert_eq!(kde.n(), 4);
    }

    #[test]
    fn explicit_bandwidth() {
        let kde = Kde::with_bandwidth(vec![0.0, 10.0], 1.0);
        assert_eq!(kde.bandwidth(), 1.0);
        // Two Gaussians of weight 1/2: density at a sample is about
        // 0.5 / sqrt(2 pi).
        let expected = 0.5 / (2.0 * std::f64::consts::PI).sqrt();
        assert!((kde.density(0.0) - expected).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Kde::with_bandwidth(vec![1.0, 2.0], 0.0);
    }
}
