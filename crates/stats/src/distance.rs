//! Baseline distance measures: Euclidean, z-normalization and Dynamic Time
//! Warping.
//!
//! Section 6.2 of the paper compares correlation-based dominance against
//! Euclidean-distance and raw-traffic-volume rankings; Section 5 argues why
//! Euclidean distance and DTW do not fit the application (absolute-value
//! sensitivity, and DTW's tolerance of time shifts which ISP analytics must
//! *not* tolerate). These baselines let the experiments make that comparison
//! quantitatively.

use crate::descriptive::{mean, std_dev};

/// Euclidean distance between two equal-length series.
///
/// Missing values are skipped pairwise (both samples must be present for an
/// index to contribute), matching the paper's treatment of gaps.
///
/// # Panics
/// Panics if the lengths differ.
pub fn euclidean(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "euclidean requires equal-length series");
    x.iter()
        .zip(y)
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Z-normalizes the finite values of a series (mean 0, standard deviation 1).
///
/// Missing values stay missing. A constant series maps to all zeros —
/// there is no scale to divide by.
pub fn z_normalize(x: &[f64]) -> Vec<f64> {
    let m = mean(x);
    let sd = std_dev(x);
    x.iter()
        .map(|&v| {
            if !v.is_finite() {
                f64::NAN
            } else if !sd.is_finite() || sd <= 0.0 {
                0.0
            } else {
                (v - m) / sd
            }
        })
        .collect()
}

/// Dynamic Time Warping distance with squared-difference local cost and no
/// warping constraint.
///
/// Returns the square root of the accumulated cost along the optimal path,
/// so `dtw(x, x) == 0` and DTW of alignment-free shifts stays small — the
/// very property Section 5 of the paper rejects for traffic analytics.
/// Missing values are not supported here (DTW on gapped series is
/// ill-defined); filter them out first.
///
/// # Panics
/// Panics if either series is empty or contains non-finite values.
pub fn dtw(x: &[f64], y: &[f64]) -> f64 {
    dtw_impl(x, y, None)
}

/// DTW with a Sakoe–Chiba band of half-width `band` (in samples).
///
/// The band constrains warping to `|i − j| ≤ band`; `band = 0` degenerates
/// to the (squared-cost) Euclidean alignment on equal-length inputs.
pub fn dtw_banded(x: &[f64], y: &[f64], band: usize) -> f64 {
    dtw_impl(x, y, Some(band))
}

fn dtw_impl(x: &[f64], y: &[f64], band: Option<usize>) -> f64 {
    assert!(
        !x.is_empty() && !y.is_empty(),
        "dtw requires non-empty series"
    );
    assert!(
        x.iter().chain(y).all(|v| v.is_finite()),
        "dtw requires finite values"
    );
    let n = x.len();
    let m = y.len();
    // Effective band must at least cover the length difference or no path
    // exists.
    let band = band.map(|b| b.max(n.abs_diff(m)));

    // Rolling two-row DP.
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut cur = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        cur[0] = f64::INFINITY;
        let (j_lo, j_hi) = match band {
            Some(b) => (i.saturating_sub(b).max(1), (i + b).min(m)),
            None => (1, m),
        };
        for slot in cur.iter_mut().take(j_lo).skip(1) {
            *slot = f64::INFINITY;
        }
        for j in j_lo..=j_hi {
            let d = x[i - 1] - y[j - 1];
            let cost = d * d;
            let best = prev[j].min(cur[j - 1]).min(prev[j - 1]);
            cur[j] = cost + best;
        }
        for slot in cur.iter_mut().take(m + 1).skip(j_hi + 1) {
            *slot = f64::INFINITY;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m].sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basic() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn euclidean_skips_missing_pairs() {
        let x = [3.0, f64::NAN, 1.0];
        let y = [0.0, 5.0, f64::NAN];
        assert_eq!(euclidean(&x, &y), 3.0);
    }

    #[test]
    fn z_normalize_moments() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let z = z_normalize(&x);
        assert!(mean(&z).abs() < 1e-12);
        assert!((std_dev(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_normalize_constant_is_zero() {
        assert_eq!(z_normalize(&[4.0; 3]), vec![0.0; 3]);
    }

    #[test]
    fn z_normalize_preserves_missing() {
        let z = z_normalize(&[1.0, f64::NAN, 3.0]);
        assert!(z[1].is_nan());
        assert!(z[0].is_finite() && z[2].is_finite());
    }

    #[test]
    fn z_normalization_does_not_gaussianize_zipf() {
        // The paper (Section 2) notes that z-normalization cannot make a
        // Zipfian sample normal: the huge spike at the low end survives.
        let mut xs = vec![1.0; 900];
        xs.extend(vec![1_000_000.0; 10]);
        let z = z_normalize(&xs);
        // 90%+ of the mass is still a point mass at one value.
        let first = z[0];
        let same = z.iter().filter(|&&v| (v - first).abs() < 1e-12).count();
        assert!(same >= 900);
    }

    #[test]
    fn dtw_identical_is_zero() {
        let x = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw(&x, &x), 0.0);
    }

    #[test]
    fn dtw_tolerates_time_shift_euclidean_does_not() {
        // A pulse and the same pulse shifted by two samples.
        let x = [0.0, 0.0, 5.0, 5.0, 0.0, 0.0, 0.0, 0.0];
        let y = [0.0, 0.0, 0.0, 0.0, 5.0, 5.0, 0.0, 0.0];
        let d_dtw = dtw(&x, &y);
        let d_euc = euclidean(&x, &y);
        assert!(
            d_dtw < d_euc / 2.0,
            "DTW ({d_dtw}) must absorb the shift that Euclidean ({d_euc}) punishes"
        );
    }

    #[test]
    fn dtw_different_lengths() {
        let x = [1.0, 2.0, 3.0];
        let y = [1.0, 1.5, 2.0, 2.5, 3.0];
        let d = dtw(&x, &y);
        assert!(d.is_finite());
        assert!(d < 1.0, "stretched copy stays close: {d}");
    }

    #[test]
    fn banded_dtw_at_least_unconstrained() {
        let x = [0.0, 1.0, 4.0, 1.0, 0.0, 2.0];
        let y = [0.0, 0.0, 1.0, 4.0, 1.0, 0.0];
        let full = dtw(&x, &y);
        for band in 0..6 {
            let b = dtw_banded(&x, &y, band);
            assert!(
                b >= full - 1e-12,
                "band {band} produced {b} below unconstrained {full}"
            );
        }
        // A wide band equals the unconstrained distance.
        assert!((dtw_banded(&x, &y, 6) - full).abs() < 1e-12);
    }

    #[test]
    fn banded_dtw_zero_band_is_pointwise() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 2.0, 2.0];
        let d = dtw_banded(&x, &y, 0);
        // Squared cost path along the diagonal: (1 + 0 + 1).sqrt()
        assert!((d - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn dtw_rejects_empty() {
        let _ = dtw(&[], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn dtw_rejects_missing() {
        let _ = dtw(&[1.0, f64::NAN], &[1.0, 2.0]);
    }
}
