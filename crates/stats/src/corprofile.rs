//! Per-series correlation profiles for batch pairwise computation.
//!
//! Definition 1 of the paper compares every pair of series with up to
//! three coefficients, and every framework primitive built on it (motifs,
//! clustering, stationarity, granularity scoring) is `O(n²)` in the number
//! of series. Computing each coefficient from scratch repeats a large
//! amount of *per-series* work per pair: compaction of finite values,
//! means and second moments, mid-ranks, sort permutations and tie-group
//! statistics. A [`CorProfile`] hoists all of that out of the pair loop,
//! so a pair costs only the genuinely pairwise parts — one cross-moment
//! pass for Pearson, one for Spearman, and a per-run refinement plus
//! merge-count for Kendall.
//!
//! **Exactness.** The profiled functions return results bit-identical to
//! [`pearson`](crate::pearson) / [`spearman`](crate::spearman) /
//! [`kendall`](crate::kendall) on the same inputs. The fast path applies
//! when two profiles share the same finite mask (in particular whenever
//! both series are complete): then "pairwise-complete observations" are
//! exactly the profiles' compacted values and every cached statistic is
//! valid. When masks differ, the pair falls back to pairwise deletion:
//! the intersected observations are gathered from the two compactions,
//! and each side's cached sort permutation — filtered down to the
//! intersection — replaces the per-pair sorts the from-scratch routines
//! perform. A stable sort of a subsequence is the filtered stable sort of
//! the full sequence, so the filtered orders, the mid-ranks walked from
//! them and the tie groups they delimit are exactly what sorting the
//! gathered values would produce. Accumulation orders match the
//! from-scratch loops term for term (see `pearson_from_moments` and
//! `kendall_from_parts`), which is what makes bit-equality hold rather
//! than mere approximation.

use crate::correlation::{
    kendall_from_parts, kendall_ties, pearson_complete, pearson_from_moments, pearson_from_sxy,
    CorrelationCoefficient, CorrelationTest, KendallTies,
};
use crate::kernels;
use crate::rank::rank_series;

/// Everything about one series that pairwise correlation can reuse:
/// finite-value mask, compacted values, Pearson moments, mid-ranks with
/// their moments, the stable sort permutation and tie statistics.
///
/// Build once per series with [`CorProfile::new`], then hand pairs to
/// [`pearson_profiled`], [`spearman_profiled`] and [`kendall_profiled`].
#[derive(Debug, Clone)]
pub struct CorProfile {
    /// Original series length (including non-finite positions).
    len: usize,
    /// Finite-position bitmask, 64 positions per word, LSB-first.
    mask: Vec<u64>,
    /// Whether every position is finite.
    complete: bool,
    /// The finite values, in series order.
    vals: Vec<f64>,
    /// Mean of `vals`, accumulated exactly like `pearson`'s.
    mean: f64,
    /// Centered second moment Σ(v − mean)², in `pearson`'s order.
    sxx: f64,
    /// Mid-ranks of `vals` (1-based, ties averaged).
    ranks: Vec<f64>,
    /// Mean of `ranks`.
    rank_mean: f64,
    /// Centered second moment of `ranks`.
    rank_sxx: f64,
    /// Stable sort permutation of `vals` (ascending; ties keep order).
    order: Vec<u32>,
    /// `(start, len)` of each tie run (len > 1) in the sorted sequence.
    tie_runs: Vec<(u32, u32)>,
    /// Tie aggregates for τ-b's denominator and variance.
    ties: KendallTies,
}

impl CorProfile {
    /// Profiles `series`, treating non-finite values as missing.
    pub fn new(series: &[f64]) -> CorProfile {
        let len = series.len();
        let mut mask = vec![0u64; len.div_ceil(64)];
        let mut vals = Vec::with_capacity(len);
        for (i, &v) in series.iter().enumerate() {
            if v.is_finite() {
                mask[i / 64] |= 1u64 << (i % 64);
                vals.push(v);
            }
        }
        let complete = vals.len() == len;
        let (mean, sxx) = mean_and_sxx(&vals);
        let ranked = rank_series(&vals);
        let (rank_mean, rank_sxx) = mean_and_sxx(&ranked.ranks);
        let ties = kendall_ties(&ranked.ties);
        let order = ranked.order;
        // Tie runs in the sorted sequence; singleton runs need no per-pair
        // refinement, so only len > 1 runs are kept.
        let mut tie_runs = Vec::with_capacity(ranked.ties.len());
        let mut i = 0;
        while i < vals.len() {
            let mut j = i;
            while j + 1 < vals.len() && vals[order[j + 1] as usize] == vals[order[i] as usize] {
                j += 1;
            }
            if j > i {
                tie_runs.push((i as u32, (j - i + 1) as u32));
            }
            i = j + 1;
        }
        CorProfile {
            len,
            mask,
            complete,
            vals,
            mean,
            sxx,
            ranks: ranked.ranks,
            rank_mean,
            rank_sxx,
            order,
            tie_runs,
            ties,
        }
    }

    /// Original series length, including missing positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the original series was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of finite observations.
    pub fn n_finite(&self) -> usize {
        self.vals.len()
    }

    /// Whether every position holds a finite value.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Whether `self` and `other` have finite values at exactly the same
    /// positions — the precondition for the cached fast path.
    pub fn same_mask(&self, other: &CorProfile) -> bool {
        self.len == other.len && ((self.complete && other.complete) || self.mask == other.mask)
    }

    /// The finite values in ascending order, gathered from the cached stable
    /// sort permutation. Bit-identical — including the relative order of
    /// `-0.0`/`0.0` ties — to what sorting the finite values with
    /// `sort_by(partial_cmp)` produces, so the result can feed
    /// [`ks_two_sample_sorted`](crate::ks_two_sample_sorted) in place of a
    /// per-pair sort.
    pub fn sorted_values(&self) -> Vec<f64> {
        let mut out = Vec::new();
        kernels::gather_values(&self.order, &self.vals, &mut out);
        out
    }

    /// The finite values in series order (the profile's compaction).
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Mean of the finite values.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Centered second moment Σ(v − mean)² of the finite values. Zero iff
    /// the series is constant (which degenerates all three coefficients).
    pub fn sxx(&self) -> f64 {
        self.sxx
    }

    /// Mid-ranks of the finite values (1-based, ties averaged).
    pub fn ranks(&self) -> &[f64] {
        &self.ranks
    }

    /// Mean of the mid-ranks.
    pub fn rank_mean(&self) -> f64 {
        self.rank_mean
    }

    /// Centered second moment of the mid-ranks.
    pub fn rank_sxx(&self) -> f64 {
        self.rank_sxx
    }

    /// Whether the finite values contain no ties at all. When both sides of
    /// a pair are tie-free, Kendall's τ and Spearman's ρ are linked by
    /// Daniels' inequality −1 ≤ 3τ − 2ρ ≤ 1, which the pruning sketches
    /// exploit.
    pub fn tie_free(&self) -> bool {
        self.tie_runs.is_empty()
    }

    /// Number of tied pairs Σ t(t−1)/2 over the tie groups — the `n1`/`n2`
    /// term of τ-b's denominator.
    pub fn n_tied_pairs(&self) -> u64 {
        self.ties.n_tied_pairs
    }
}

/// Per-series mean and centered second moment in `pearson_complete`'s exact
/// accumulation order — see [`kernels::mean_and_sxx`] for why the order is
/// pinned.
fn mean_and_sxx(vals: &[f64]) -> (f64, f64) {
    kernels::mean_and_sxx(vals)
}

/// Reusable per-thread buffers for the profiled coefficient functions: the
/// merge-count scratch of the fast path plus the gathered values, filtered
/// sort orders and rank vectors of the pairwise-deletion fallback. Reusing
/// them across a batch removes every per-pair allocation.
#[derive(Debug, Default)]
pub struct CorScratch {
    /// Partner values in x-sorted order (Kendall's merge-count input).
    y: Vec<f64>,
    /// Merge-count auxiliary buffer.
    tmp: Vec<f64>,
    /// Gathered x values on the mask intersection.
    xs: Vec<f64>,
    /// Gathered y values on the mask intersection.
    ys: Vec<f64>,
    /// `a.vals` index → gathered position (`u32::MAX` when dropped).
    a_pos: Vec<u32>,
    /// `b.vals` index → gathered position (`u32::MAX` when dropped).
    b_pos: Vec<u32>,
    /// `a`'s sort order filtered down to the intersection.
    a_order: Vec<u32>,
    /// `b`'s sort order filtered down to the intersection.
    b_order: Vec<u32>,
    /// Mid-ranks of the gathered x values.
    rx: Vec<f64>,
    /// Mid-ranks of the gathered y values.
    ry: Vec<f64>,
    /// `(start, len)` tie runs of the filtered x order.
    runs_a: Vec<(u32, u32)>,
    /// `(start, len)` tie runs of the filtered y order.
    runs_b: Vec<(u32, u32)>,
    /// Sorted-values gather scratch for the order-walk kernel.
    sv: Vec<f64>,
}

impl CorScratch {
    pub fn new() -> CorScratch {
        CorScratch::default()
    }
}

/// Gathers the pairwise-complete observations of two profiles whose masks
/// differ into `scratch.xs`/`scratch.ys`, recording each compacted index's
/// gathered position in `scratch.a_pos`/`scratch.b_pos`.
///
/// Walks the mask intersection word by word; within a word, the index of a
/// value inside a profile's compaction is the running popcount of that
/// profile's mask below the bit. The gathered vectors are exactly what
/// [`pairwise_complete`](crate::pairwise_complete) would produce on the raw
/// series, and the position maps let the profiles' cached sort orders be
/// filtered down to the intersection without re-sorting.
///
/// Returns the two sides' value sums, accumulated in gather order — the
/// same order `pearson_complete` sums them, so `sum / m` is its mean
/// bit for bit.
#[allow(clippy::too_many_arguments)]
fn gather_pairwise(
    a: &CorProfile,
    b: &CorProfile,
    xs: &mut Vec<f64>,
    ys: &mut Vec<f64>,
    a_pos: &mut Vec<u32>,
    b_pos: &mut Vec<u32>,
) -> (f64, f64) {
    assert_eq!(a.len, b.len, "paired samples must have equal length");
    xs.clear();
    ys.clear();
    a_pos.clear();
    a_pos.resize(a.vals.len(), u32::MAX);
    b_pos.clear();
    b_pos.resize(b.vals.len(), u32::MAX);
    let mut base_a = 0usize;
    let mut base_b = 0usize;
    let mut sum_x = 0.0;
    let mut sum_y = 0.0;
    for (&wa, &wb) in a.mask.iter().zip(&b.mask) {
        let mut both = wa & wb;
        while both != 0 {
            let bit = both.trailing_zeros();
            let below = (1u64 << bit) - 1;
            let ia = base_a + (wa & below).count_ones() as usize;
            let ib = base_b + (wb & below).count_ones() as usize;
            a_pos[ia] = xs.len() as u32;
            b_pos[ib] = ys.len() as u32;
            sum_x += a.vals[ia];
            sum_y += b.vals[ib];
            xs.push(a.vals[ia]);
            ys.push(b.vals[ib]);
            both &= both - 1;
        }
        base_a += wa.count_ones() as usize;
        base_b += wb.count_ones() as usize;
    }
    (sum_x, sum_y)
}

/// Whether `sub`'s finite positions are a subset of `sup`'s. Then the
/// pair's intersection is exactly `sub`'s mask, `sub`'s compaction survives
/// pairwise deletion verbatim, and every statistic cached on `sub` stays
/// valid. Both profiles must have equal `len`.
fn mask_subset(sub: &CorProfile, sup: &CorProfile) -> bool {
    sup.complete || sub.mask.iter().zip(&sup.mask).all(|(&s, &p)| s & !p == 0)
}

/// Gathers `sup`'s values at `sub`'s finite positions (requires
/// [`mask_subset`]`(sub, sup)`), recording each `sup.vals` index's gathered
/// position in `pos`. Gathered positions coincide with `sub`'s compaction
/// indices, which is what lets `sub`'s cached artifacts index the result.
///
/// Returns the gathered values' sum, accumulated in gather order (see
/// [`gather_pairwise`]).
fn gather_superset(
    sub: &CorProfile,
    sup: &CorProfile,
    out: &mut Vec<f64>,
    pos: &mut Vec<u32>,
) -> f64 {
    out.clear();
    pos.clear();
    pos.resize(sup.vals.len(), u32::MAX);
    let mut base = 0usize;
    let mut sum = 0.0;
    for (&ws, &wp) in sub.mask.iter().zip(&sup.mask) {
        let mut bits = ws;
        while bits != 0 {
            let bit = bits.trailing_zeros();
            let below = (1u64 << bit) - 1;
            let ip = base + (wp & below).count_ones() as usize;
            pos[ip] = out.len() as u32;
            sum += sup.vals[ip];
            out.push(sup.vals[ip]);
            bits &= bits - 1;
        }
        base += wp.count_ones() as usize;
    }
    sum
}

/// Kendall's per-pair counting over values already arranged in x-sorted
/// order: y-refinement inside x-tie runs, the joint-tie count, and the
/// discordant (inversion) count — both delegated to the
/// [`kernels`] layer ([`kernels::refine_tie_runs`],
/// [`kernels::count_inversions`]), whose counts are exact integers.
///
/// The from-scratch path sorts each pair by `(x, y)` lexicographically;
/// stably sorting `y` inside each x-tie run of an x-stable order reproduces
/// that permutation, and joint ties can only occur inside an x-tie run,
/// where they are the equal-y runs of the refined segment. An empty
/// `tie_runs` — the `tie_free()` case — skips the refinement outright.
fn kendall_refine(y: &mut [f64], tie_runs: &[(u32, u32)], tmp: &mut Vec<f64>) -> (u64, u64) {
    let n3 = kernels::refine_tie_runs(y, tie_runs);
    let discordant = kernels::count_inversions(y, tmp);
    (n3, discordant)
}

/// [`pearson`](crate::pearson) over two profiles; bit-identical, with the
/// means and second moments cached when the masks agree.
pub fn pearson_profiled(
    a: &CorProfile,
    b: &CorProfile,
    scratch: &mut CorScratch,
) -> CorrelationTest {
    if !a.same_mask(b) {
        let s = &mut *scratch;
        gather_pairwise(a, b, &mut s.xs, &mut s.ys, &mut s.a_pos, &mut s.b_pos);
        return pearson_complete(&s.xs, &s.ys);
    }
    let n = a.vals.len();
    if n < 3 || a.sxx == 0.0 || b.sxx == 0.0 {
        return CorrelationTest::degenerate(CorrelationCoefficient::Pearson, n);
    }
    pearson_from_moments(
        CorrelationCoefficient::Pearson,
        &a.vals,
        &b.vals,
        a.mean,
        b.mean,
        a.sxx,
        b.sxx,
    )
}

/// [`spearman`](crate::spearman) over two profiles; bit-identical, with
/// mid-ranks and their moments cached when the masks agree. On differing
/// masks the mid-ranks of the intersection are walked from the profiles'
/// filtered sort orders instead of re-sorting.
pub fn spearman_profiled(
    a: &CorProfile,
    b: &CorProfile,
    scratch: &mut CorScratch,
) -> CorrelationTest {
    if !a.same_mask(b) {
        let s = &mut *scratch;
        gather_pairwise(a, b, &mut s.xs, &mut s.ys, &mut s.a_pos, &mut s.b_pos);
        let m = s.xs.len();
        if m < 3 {
            return CorrelationTest::degenerate(CorrelationCoefficient::Spearman, m);
        }
        kernels::filter_order_into(&a.order, &s.a_pos, &mut s.a_order);
        kernels::order_stats_gather(&s.a_order, &s.xs, &mut s.sv, Some(&mut s.rx), None);
        kernels::filter_order_into(&b.order, &s.b_pos, &mut s.b_order);
        kernels::order_stats_gather(&s.b_order, &s.ys, &mut s.sv, Some(&mut s.ry), None);
        let p = pearson_complete(&s.rx, &s.ry);
        return CorrelationTest {
            coefficient: CorrelationCoefficient::Spearman,
            value: p.value,
            p_value: p.p_value,
            n: p.n,
        };
    }
    let n = a.vals.len();
    if n < 3 || a.rank_sxx == 0.0 || b.rank_sxx == 0.0 {
        return CorrelationTest::degenerate(CorrelationCoefficient::Spearman, n);
    }
    pearson_from_moments(
        CorrelationCoefficient::Spearman,
        &a.ranks,
        &b.ranks,
        a.rank_mean,
        b.rank_mean,
        a.rank_sxx,
        b.rank_sxx,
    )
}

/// [`kendall`](crate::kendall) over two profiles; bit-identical, with the
/// sort permutation and tie aggregates cached when the masks agree and
/// filtered down to the intersection when they differ.
///
/// Either way `a`'s stable x-order (possibly filtered) replaces the
/// from-scratch `(x, y)` sort: gathering `b`'s values in that order and
/// stably sorting only inside x-tie runs reproduces the same permutation —
/// singleton runs (the common case for traffic values) skip the refinement
/// entirely.
pub fn kendall_profiled(
    a: &CorProfile,
    b: &CorProfile,
    scratch: &mut CorScratch,
) -> CorrelationTest {
    if !a.same_mask(b) {
        let s = &mut *scratch;
        gather_pairwise(a, b, &mut s.xs, &mut s.ys, &mut s.a_pos, &mut s.b_pos);
        let m = s.xs.len();
        if m < 3 {
            return CorrelationTest::degenerate(CorrelationCoefficient::Kendall, m);
        }
        // x ties and runs from a's filtered order, y ties from b's.
        kernels::filter_order_into(&a.order, &s.a_pos, &mut s.a_order);
        let tx =
            kernels::order_stats_gather(&s.a_order, &s.xs, &mut s.sv, None, Some(&mut s.runs_a));
        kernels::gather_values(&s.a_order, &s.ys, &mut s.y);
        let (n3, discordant) = kendall_refine(&mut s.y, &s.runs_a, &mut s.tmp);
        kernels::filter_order_into(&b.order, &s.b_pos, &mut s.b_order);
        let ty = kernels::order_stats_gather(&s.b_order, &s.ys, &mut s.sv, None, None);
        return kendall_from_parts(m, n3, discordant, &tx, &ty);
    }
    let n = a.vals.len();
    if n < 3 {
        return CorrelationTest::degenerate(CorrelationCoefficient::Kendall, n);
    }

    // Partner values in x-sorted order, then y-refined within x-tie runs.
    kernels::gather_values(&a.order, &b.vals, &mut scratch.y);
    let (n3, discordant) = kendall_refine(&mut scratch.y, &a.tie_runs, &mut scratch.tmp);

    kendall_from_parts(n, n3, discordant, &a.ties, &b.ties)
}

/// One side of a pair, resolved down to the mask intersection: either the
/// profile's cached artifacts verbatim (when its own mask *is* the
/// intersection) or statistics recomputed into scratch buffers from the
/// filtered sort order.
struct SideView<'v> {
    vals: &'v [f64],
    mean: f64,
    sxx: f64,
    ranks: &'v [f64],
    rank_mean: f64,
    rank_sxx: f64,
    /// Stable ascending order of `vals` (positions into `vals`).
    order: &'v [u32],
    /// `(start, len)` tie runs (len > 1) of `order`.
    runs: &'v [(u32, u32)],
    ties: KendallTies,
}

impl CorProfile {
    /// The profile's cached statistics as a [`SideView`] — valid whenever
    /// the pair's intersection equals this profile's own mask.
    fn as_view(&self) -> SideView<'_> {
        SideView {
            vals: &self.vals,
            mean: self.mean,
            sxx: self.sxx,
            ranks: &self.ranks,
            rank_mean: self.rank_mean,
            rank_sxx: self.rank_sxx,
            order: &self.order,
            runs: &self.tie_runs,
            ties: self.ties,
        }
    }
}

/// Resolves a profile whose mask is strictly wider than the intersection:
/// filters its sort order down to the `gathered` values and rebuilds ranks,
/// tie runs, tie aggregates and moments — all without sorting, and with the
/// from-scratch accumulation orders.
#[allow(clippy::too_many_arguments)]
fn resolve_filtered<'v>(
    p: &CorProfile,
    gathered: &'v [f64],
    sum: f64,
    pos: &[u32],
    order_buf: &'v mut Vec<u32>,
    ranks_buf: &'v mut Vec<f64>,
    runs_buf: &'v mut Vec<(u32, u32)>,
    sv_buf: &mut Vec<f64>,
) -> SideView<'v> {
    kernels::filter_order_into(&p.order, pos, order_buf);
    let ties = kernels::order_stats_gather(
        order_buf,
        gathered,
        sv_buf,
        Some(&mut *ranks_buf),
        Some(&mut *runs_buf),
    );
    // The gather already summed the values in `pearson_complete`'s order;
    // only the centered second moment needs its own pass.
    let m = gathered.len();
    let mean = if m == 0 { 0.0 } else { sum / m as f64 };
    let sxx = kernels::sxx_given_mean(gathered, mean);
    let (rank_mean, rank_sxx) = mean_and_sxx(ranks_buf);
    SideView {
        vals: gathered,
        mean,
        sxx,
        ranks: ranks_buf,
        rank_mean,
        rank_sxx,
        order: order_buf,
        runs: runs_buf,
        ties,
    }
}

/// Assembles the three coefficient tests from two resolved sides, with the
/// from-scratch routines' exact degenerate handling and arithmetic.
fn assemble(
    x: &SideView<'_>,
    y: &SideView<'_>,
    ybuf: &mut Vec<f64>,
    tmp: &mut Vec<f64>,
) -> (CorrelationTest, CorrelationTest, CorrelationTest) {
    let m = x.vals.len();
    if m < 3 {
        return (
            CorrelationTest::degenerate(CorrelationCoefficient::Pearson, m),
            CorrelationTest::degenerate(CorrelationCoefficient::Spearman, m),
            CorrelationTest::degenerate(CorrelationCoefficient::Kendall, m),
        );
    }
    let pearson_ok = x.sxx != 0.0 && y.sxx != 0.0;
    let spearman_ok = x.rank_sxx != 0.0 && y.rank_sxx != 0.0;
    let (p, s) = if pearson_ok && spearman_ok {
        // The hot case: both coefficients live, so the values chain and the
        // ranks chain fuse into one walk of the four streams. Each chain's
        // own accumulation order is untouched (see `kernels::sxy_fold2`),
        // so both results match the separate `pearson_from_moments` passes
        // bit for bit.
        let (sv, sr) = kernels::sxy_fold2(
            x.vals,
            y.vals,
            x.mean,
            y.mean,
            x.ranks,
            y.ranks,
            x.rank_mean,
            y.rank_mean,
        );
        (
            pearson_from_sxy(CorrelationCoefficient::Pearson, sv, x.sxx, y.sxx, m),
            pearson_from_sxy(
                CorrelationCoefficient::Spearman,
                sr,
                x.rank_sxx,
                y.rank_sxx,
                m,
            ),
        )
    } else {
        let p = if !pearson_ok {
            CorrelationTest::degenerate(CorrelationCoefficient::Pearson, m)
        } else {
            pearson_from_moments(
                CorrelationCoefficient::Pearson,
                x.vals,
                y.vals,
                x.mean,
                y.mean,
                x.sxx,
                y.sxx,
            )
        };
        let s = if !spearman_ok {
            CorrelationTest::degenerate(CorrelationCoefficient::Spearman, m)
        } else {
            pearson_from_moments(
                CorrelationCoefficient::Spearman,
                x.ranks,
                y.ranks,
                x.rank_mean,
                y.rank_mean,
                x.rank_sxx,
                y.rank_sxx,
            )
        };
        (p, s)
    };
    kernels::gather_values(x.order, y.vals, ybuf);
    let (n3, discordant) = kendall_refine(ybuf, x.runs, tmp);
    let k = kendall_from_parts(m, n3, discordant, &x.ties, &y.ties);
    (p, s, k)
}

/// All three coefficients of a pair at once — the batch engine's per-pair
/// entry point. Bit-identical to calling [`pearson_profiled`],
/// [`spearman_profiled`] and [`kendall_profiled`] in turn, but sharing all
/// per-pair work across the three tests, with three tiers of reuse:
///
/// 1. equal masks — every cached statistic of both profiles applies;
/// 2. one mask a subset of the other (a complete series against one with
///    holes is the common case) — the subset side's cache applies verbatim
///    and only the wider side is filtered;
/// 3. incomparable masks — both sides are filtered, still without sorting.
pub fn cor_tests_profiled(
    a: &CorProfile,
    b: &CorProfile,
    scratch: &mut CorScratch,
) -> (CorrelationTest, CorrelationTest, CorrelationTest) {
    let s = &mut *scratch;
    if a.same_mask(b) {
        // Equal masks: both profiles' caches are views of the intersection
        // already, and `assemble` fuses the Pearson and Spearman folds into
        // one pass — bit-identical to the three `*_profiled` calls (same
        // degenerate ladder, same per-chain accumulation orders).
        return assemble(&a.as_view(), &b.as_view(), &mut s.y, &mut s.tmp);
    }
    assert_eq!(a.len, b.len, "paired samples must have equal length");
    if mask_subset(a, b) {
        let sum = gather_superset(a, b, &mut s.ys, &mut s.b_pos);
        let y = resolve_filtered(
            b,
            &s.ys,
            sum,
            &s.b_pos,
            &mut s.b_order,
            &mut s.ry,
            &mut s.runs_b,
            &mut s.sv,
        );
        assemble(&a.as_view(), &y, &mut s.y, &mut s.tmp)
    } else if mask_subset(b, a) {
        let sum = gather_superset(b, a, &mut s.xs, &mut s.a_pos);
        let x = resolve_filtered(
            a,
            &s.xs,
            sum,
            &s.a_pos,
            &mut s.a_order,
            &mut s.rx,
            &mut s.runs_a,
            &mut s.sv,
        );
        assemble(&x, &b.as_view(), &mut s.y, &mut s.tmp)
    } else {
        let (sum_x, sum_y) =
            gather_pairwise(a, b, &mut s.xs, &mut s.ys, &mut s.a_pos, &mut s.b_pos);
        let x = resolve_filtered(
            a,
            &s.xs,
            sum_x,
            &s.a_pos,
            &mut s.a_order,
            &mut s.rx,
            &mut s.runs_a,
            &mut s.sv,
        );
        let y = resolve_filtered(
            b,
            &s.ys,
            sum_y,
            &s.b_pos,
            &mut s.b_order,
            &mut s.ry,
            &mut s.runs_b,
            &mut s.sv,
        );
        assemble(&x, &y, &mut s.y, &mut s.tmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::{kendall, pearson, spearman};

    fn assert_bit_identical(x: &[f64], y: &[f64]) {
        let (pa, pb) = (CorProfile::new(x), CorProfile::new(y));
        let mut scratch = CorScratch::new();
        let cases = [
            (pearson(x, y), pearson_profiled(&pa, &pb, &mut scratch)),
            (spearman(x, y), spearman_profiled(&pa, &pb, &mut scratch)),
            (kendall(x, y), kendall_profiled(&pa, &pb, &mut scratch)),
        ];
        for (reference, profiled) in cases {
            assert_eq!(reference.coefficient, profiled.coefficient);
            assert_eq!(reference.n, profiled.n);
            assert_eq!(
                reference.value.to_bits(),
                profiled.value.to_bits(),
                "value mismatch: {} vs {} ({})",
                reference.value,
                profiled.value,
                reference.coefficient
            );
            assert_eq!(
                reference.p_value.to_bits(),
                profiled.p_value.to_bits(),
                "p mismatch: {} vs {} ({})",
                reference.p_value,
                profiled.p_value,
                reference.coefficient
            );
        }
    }

    #[test]
    fn complete_series_match_scratch_path() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let y = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0, 8.0];
        assert_bit_identical(&x, &y);
    }

    #[test]
    fn tied_series_match_scratch_path() {
        let x = [1.0, 2.0, 2.0, 3.0, 2.0, 1.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0, 2.0, 2.0, 4.0];
        assert_bit_identical(&x, &y);
    }

    #[test]
    fn equal_masks_take_the_fast_path() {
        let x = [1.0, f64::NAN, 3.0, 4.0, 5.0, f64::NAN, 7.0];
        let y = [2.0, f64::NAN, 6.0, 8.0, 11.0, f64::NAN, 14.0];
        let (pa, pb) = (CorProfile::new(&x), CorProfile::new(&y));
        assert!(pa.same_mask(&pb));
        assert_bit_identical(&x, &y);
    }

    #[test]
    fn differing_masks_fall_back_to_pairwise_deletion() {
        let x = [1.0, 2.0, f64::NAN, 4.0, 5.0, 6.0, 7.0, 8.0];
        let y = [2.0, 4.0, 6.0, f64::NAN, 10.0, 12.0, 15.0, 16.0];
        let (pa, pb) = (CorProfile::new(&x), CorProfile::new(&y));
        assert!(!pa.same_mask(&pb));
        assert_bit_identical(&x, &y);
    }

    #[test]
    fn degenerate_cases_match() {
        // Constant series, all-tied, and too-few-observations.
        assert_bit_identical(&[1.0; 6], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_bit_identical(&[2.0; 5], &[3.0; 5]);
        assert_bit_identical(&[1.0, 2.0], &[3.0, 4.0]);
        assert_bit_identical(
            &[1.0, f64::NAN, f64::NAN, 2.0],
            &[f64::NAN, 1.0, 2.0, f64::NAN],
        );
    }

    fn assert_combined_matches(x: &[f64], y: &[f64]) {
        let (pa, pb) = (CorProfile::new(x), CorProfile::new(y));
        let mut scratch = CorScratch::new();
        let (p, s, k) = cor_tests_profiled(&pa, &pb, &mut scratch);
        for (combined, reference) in [(p, pearson(x, y)), (s, spearman(x, y)), (k, kendall(x, y))] {
            assert_eq!(combined.coefficient, reference.coefficient);
            assert_eq!(combined.n, reference.n);
            assert_eq!(combined.value.to_bits(), reference.value.to_bits());
            assert_eq!(combined.p_value.to_bits(), reference.p_value.to_bits());
        }
    }

    #[test]
    fn subset_masks_reuse_the_narrow_side() {
        // Complete against holey, both directions.
        let complete = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0, 8.0];
        let holey = [3.0, f64::NAN, 4.0, 1.0, f64::NAN, 9.0, 2.0, 6.0];
        assert!(mask_subset(
            &CorProfile::new(&holey),
            &CorProfile::new(&complete)
        ));
        assert_combined_matches(&holey, &complete);
        assert_combined_matches(&complete, &holey);
        // Strictly nested holes, neither side complete.
        let narrow = [3.0, f64::NAN, 4.0, 1.0, f64::NAN, 9.0, 2.0, 2.0];
        let wide = [1.0, f64::NAN, 3.0, 4.0, 5.0, 6.0, 7.0, 7.0];
        assert!(mask_subset(
            &CorProfile::new(&narrow),
            &CorProfile::new(&wide)
        ));
        assert!(!mask_subset(
            &CorProfile::new(&wide),
            &CorProfile::new(&narrow)
        ));
        assert_combined_matches(&narrow, &wide);
        assert_combined_matches(&wide, &narrow);
        // Incomparable masks still go through the two-sided fallback.
        let left = [1.0, f64::NAN, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let right = [2.0, 4.0, 6.0, f64::NAN, 10.0, 12.0, 15.0, 16.0];
        assert!(!mask_subset(
            &CorProfile::new(&left),
            &CorProfile::new(&right)
        ));
        assert_combined_matches(&left, &right);
    }

    #[test]
    fn combined_tests_match_individual_functions() {
        let x = [1.0, 2.0, f64::NAN, 4.0, 4.0, 6.0, 7.0, 8.0];
        let y = [2.0, 4.0, 6.0, f64::NAN, 10.0, 10.0, 15.0, 16.0];
        let (pa, pb) = (CorProfile::new(&x), CorProfile::new(&y));
        let mut scratch = CorScratch::new();
        let (p, s, k) = cor_tests_profiled(&pa, &pb, &mut scratch);
        for (combined, individual) in [
            (p, pearson_profiled(&pa, &pb, &mut scratch)),
            (s, spearman_profiled(&pa, &pb, &mut scratch)),
            (k, kendall_profiled(&pa, &pb, &mut scratch)),
        ] {
            assert_eq!(combined.coefficient, individual.coefficient);
            assert_eq!(combined.n, individual.n);
            assert_eq!(combined.value.to_bits(), individual.value.to_bits());
            assert_eq!(combined.p_value.to_bits(), individual.p_value.to_bits());
        }
        // Too few shared observations degenerate every coefficient.
        let (pa, pb) = (
            CorProfile::new(&[1.0, f64::NAN, 3.0, 4.0]),
            CorProfile::new(&[1.0, 2.0, f64::NAN, 4.0]),
        );
        let (p, s, k) = cor_tests_profiled(&pa, &pb, &mut scratch);
        assert_eq!((p.value, p.n), (0.0, 2));
        assert_eq!((s.value, s.n), (0.0, 2));
        assert_eq!((k.value, k.n), (0.0, 2));
    }

    #[test]
    fn sorted_values_match_direct_sort() {
        let x = [5.0, f64::NAN, 1.0, 3.0, -0.0, 0.0, 3.0, 8.0, f64::NAN];
        let p = CorProfile::new(&x);
        let mut expect: Vec<f64> = x.iter().copied().filter(|v| v.is_finite()).collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let got = p.sorted_values();
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn profile_reports_mask_facts() {
        let p = CorProfile::new(&[1.0, f64::NAN, 3.0]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.n_finite(), 2);
        assert!(!p.is_complete());
        assert!(!p.is_empty());
        let q = CorProfile::new(&[1.0, 2.0, 3.0]);
        assert!(q.is_complete());
        assert!(!p.same_mask(&q));
        assert!(q.same_mask(&q.clone()));
    }
}
