//! Ordinary least squares for small dense problems.
//!
//! The Augmented Dickey–Fuller test regresses the differenced series on its
//! lagged level and lagged differences; the design matrices involved are
//! tall and thin (thousands of rows, a handful of columns), so a normal
//! -equations solve with Cholesky factorization is both simple and fast.

/// A fitted least-squares model `y ≈ X β`.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// Estimated coefficients, one per design column.
    pub coefficients: Vec<f64>,
    /// Standard error of each coefficient.
    pub std_errors: Vec<f64>,
    /// Residual variance `σ̂² = RSS / (n − k)`.
    pub residual_variance: f64,
    /// Number of observations.
    pub n: usize,
}

impl OlsFit {
    /// The t statistic of coefficient `j`.
    pub fn t_statistic(&self, j: usize) -> f64 {
        self.coefficients[j] / self.std_errors[j]
    }
}

/// Fits `y ≈ X β` by ordinary least squares.
///
/// `x` is row-major with `k` columns per row. Returns `None` when the normal
/// equations are singular (collinear design) or there are not more rows than
/// columns.
pub fn ols(x: &[f64], k: usize, y: &[f64]) -> Option<OlsFit> {
    assert!(k > 0, "design matrix needs at least one column");
    assert_eq!(x.len() % k, 0, "design matrix shape mismatch");
    let n = x.len() / k;
    assert_eq!(n, y.len(), "row count must match y length");
    if n <= k {
        return None;
    }

    // Normal equations: A = X'X (k x k), b = X'y.
    let mut a = vec![0.0; k * k];
    let mut b = vec![0.0; k];
    for row in 0..n {
        let xr = &x[row * k..(row + 1) * k];
        for i in 0..k {
            b[i] += xr[i] * y[row];
            for j in i..k {
                a[i * k + j] += xr[i] * xr[j];
            }
        }
    }
    for i in 0..k {
        for j in 0..i {
            a[i * k + j] = a[j * k + i];
        }
    }

    // Cholesky factorization A = L L'.
    let mut l = vec![0.0; k * k];
    for i in 0..k {
        for j in 0..=i {
            let mut sum = a[i * k + j];
            for p in 0..j {
                sum -= l[i * k + p] * l[j * k + p];
            }
            if i == j {
                if sum <= 1e-12 * a[i * k + i].abs().max(1.0) {
                    return None; // Singular or near-singular.
                }
                l[i * k + i] = sum.sqrt();
            } else {
                l[i * k + j] = sum / l[j * k + j];
            }
        }
    }

    // Solve L z = b, then L' beta = z.
    let mut z = vec![0.0; k];
    for i in 0..k {
        let mut sum = b[i];
        for p in 0..i {
            sum -= l[i * k + p] * z[p];
        }
        z[i] = sum / l[i * k + i];
    }
    let mut beta = vec![0.0; k];
    for i in (0..k).rev() {
        let mut sum = z[i];
        for p in (i + 1)..k {
            sum -= l[p * k + i] * beta[p];
        }
        beta[i] = sum / l[i * k + i];
    }

    // Residual variance.
    let mut rss = 0.0;
    for row in 0..n {
        let xr = &x[row * k..(row + 1) * k];
        let pred: f64 = xr.iter().zip(&beta).map(|(a, b)| a * b).sum();
        let e = y[row] - pred;
        rss += e * e;
    }
    let sigma2 = rss / (n - k) as f64;

    // Var(beta) = sigma^2 (X'X)^{-1}; we need only the diagonal. Solve
    // A c_j = e_j for each j via the Cholesky factors.
    let mut std_errors = vec![0.0; k];
    for j in 0..k {
        let mut e = vec![0.0; k];
        e[j] = 1.0;
        // L z = e_j
        let mut zz = vec![0.0; k];
        for i in 0..k {
            let mut sum = e[i];
            for p in 0..i {
                sum -= l[i * k + p] * zz[p];
            }
            zz[i] = sum / l[i * k + i];
        }
        // L' c = z
        let mut c = vec![0.0; k];
        for i in (0..k).rev() {
            let mut sum = zz[i];
            for p in (i + 1)..k {
                sum -= l[p * k + i] * c[p];
            }
            c[i] = sum / l[i * k + i];
        }
        std_errors[j] = (sigma2 * c[j]).sqrt();
    }

    Some(OlsFit {
        coefficients: beta,
        std_errors,
        residual_variance: sigma2,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn fits_exact_line() {
        // y = 2 + 3x, no noise.
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let design: Vec<f64> = xs.iter().flat_map(|&x| [1.0, x]).collect();
        let y: Vec<f64> = xs.iter().map(|&x| 2.0 + 3.0 * x).collect();
        let fit = ols(&design, 2, &y).unwrap();
        close(fit.coefficients[0], 2.0, 1e-10);
        close(fit.coefficients[1], 3.0, 1e-10);
        close(fit.residual_variance, 0.0, 1e-10);
    }

    #[test]
    fn fits_noisy_line_with_reference() {
        // Deterministic "noise", solved by hand with the closed-form simple
        // -regression formulas: x̄ = 4.5, ȳ = 10, Sxx = 42, Sxy = 82.2 ⇒
        // slope = 82.2/42 = 1.9571429, intercept = 10 − slope·4.5 =
        // 1.1928571; σ̂² = RSS/6, se(slope) = √(σ̂²/Sxx),
        // se(intercept) = √(σ̂²(1/n + x̄²/Sxx)).
        let xs: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let e = [0.5, -0.3, 0.2, -0.4, 0.1, 0.3, -0.2, -0.2];
        let y: Vec<f64> = xs.iter().zip(e).map(|(&x, e)| 1.0 + 2.0 * x + e).collect();
        let design: Vec<f64> = xs.iter().flat_map(|&x| [1.0, x]).collect();
        let fit = ols(&design, 2, &y).unwrap();
        let slope = 82.2 / 42.0;
        let intercept = 10.0 - slope * 4.5;
        close(fit.coefficients[0], intercept, 1e-10);
        close(fit.coefficients[1], slope, 1e-10);
        let rss: f64 = xs
            .iter()
            .zip(&y)
            .map(|(&x, &yv)| {
                let r = yv - (intercept + slope * x);
                r * r
            })
            .sum();
        let sigma2 = rss / 6.0;
        close(fit.residual_variance, sigma2, 1e-10);
        close(fit.std_errors[1], (sigma2 / 42.0).sqrt(), 1e-10);
        close(
            fit.std_errors[0],
            (sigma2 * (1.0 / 8.0 + 4.5 * 4.5 / 42.0)).sqrt(),
            1e-10,
        );
    }

    #[test]
    fn three_column_fit() {
        // y = 1 + 2a - 3b exactly.
        let rows = 20;
        let mut design = Vec::new();
        let mut y = Vec::new();
        for i in 0..rows {
            let a = (i as f64 * 0.7).sin() + i as f64 * 0.1;
            let b = (i as f64 * 1.3).cos();
            design.extend([1.0, a, b]);
            y.push(1.0 + 2.0 * a - 3.0 * b);
        }
        let fit = ols(&design, 3, &y).unwrap();
        close(fit.coefficients[0], 1.0, 1e-8);
        close(fit.coefficients[1], 2.0, 1e-8);
        close(fit.coefficients[2], -3.0, 1e-8);
    }

    #[test]
    fn collinear_design_is_none() {
        // Second column is twice the first.
        let design = vec![1.0, 2.0, 2.0, 4.0, 3.0, 6.0, 4.0, 8.0];
        let y = vec![1.0, 2.0, 3.0, 4.0];
        assert!(ols(&design, 2, &y).is_none());
    }

    #[test]
    fn underdetermined_is_none() {
        let design = vec![1.0, 2.0, 1.0, 3.0];
        let y = vec![1.0, 2.0];
        assert!(ols(&design, 2, &y).is_none());
    }

    #[test]
    fn t_statistics() {
        let xs: Vec<f64> = (1..=30).map(|i| i as f64).collect();
        let design: Vec<f64> = xs.iter().flat_map(|&x| [1.0, x]).collect();
        let y: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 5.0 * x + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = ols(&design, 2, &y).unwrap();
        assert!(
            fit.t_statistic(1) > 100.0,
            "strong slope must be significant"
        );
        assert!(fit.t_statistic(0).abs() < 2.0, "intercept ~0");
    }
}
