//! Descriptive statistics: moments, quantiles, histograms and boxplots.
//!
//! The boxplot statistics here drive the paper's background-traffic
//! thresholding (Section 6.1): the per-device threshold τ is the *upper
//! whisker* of the device's traffic distribution.

/// Arithmetic mean of the finite values in `xs`; `NaN` if there are none.
pub fn mean(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &x in xs {
        if x.is_finite() {
            sum += x;
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// Unbiased sample variance of the finite values; `NaN` with fewer than two.
pub fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m.is_nan() {
        return f64::NAN;
    }
    let mut ss = 0.0;
    let mut n = 0usize;
    for &x in xs {
        if x.is_finite() {
            ss += (x - m) * (x - m);
            n += 1;
        }
    }
    if n < 2 {
        f64::NAN
    } else {
        ss / (n - 1) as f64
    }
}

/// Sample standard deviation; `NaN` with fewer than two finite values.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Quantile of the finite values using linear interpolation between order
/// statistics (R's default "type 7", the same convention as NumPy).
///
/// `q` must lie in `[0, 1]`. Returns `NaN` for an all-missing input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile q must be in [0, 1]");
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    quantile_sorted(&v, q)
}

/// Type-7 quantile over an already ascending-sorted, all-finite slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Median of the finite values.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Tukey boxplot statistics: quartiles, IQR whiskers and outliers.
///
/// The whiskers extend to the most extreme data points within
/// `1.5 × IQR` of the quartiles; everything beyond is an outlier. The paper
/// uses the **upper whisker** as the per-device background-traffic threshold
/// τ, because background traffic dominates the probability mass and active
/// traffic shows up as outliers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxplotStats {
    /// Minimum finite value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum finite value.
    pub max: f64,
    /// Largest data point `<= q3 + 1.5*IQR`.
    pub upper_whisker: f64,
    /// Smallest data point `>= q1 - 1.5*IQR`.
    pub lower_whisker: f64,
    /// Number of points above the upper whisker.
    pub upper_outliers: usize,
    /// Number of points below the lower whisker.
    pub lower_outliers: usize,
    /// Number of finite observations.
    pub n: usize,
}

impl BoxplotStats {
    /// Computes boxplot statistics over the finite values of `xs`.
    ///
    /// Returns `None` if there is no finite value.
    pub fn from_samples(xs: &[f64]) -> Option<BoxplotStats> {
        let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let q1 = quantile_sorted(&v, 0.25);
        let q3 = quantile_sorted(&v, 0.75);
        let iqr = q3 - q1;
        let hi_fence = q3 + 1.5 * iqr;
        let lo_fence = q1 - 1.5 * iqr;
        // Largest point within the upper fence; quartile itself if none is.
        let upper_whisker = v.iter().copied().rfind(|&x| x <= hi_fence).unwrap_or(q3);
        let lower_whisker = v.iter().copied().find(|&x| x >= lo_fence).unwrap_or(q1);
        let upper_outliers = v.iter().filter(|&&x| x > upper_whisker).count();
        let lower_outliers = v.iter().filter(|&&x| x < lower_whisker).count();
        Some(BoxplotStats {
            min: v[0],
            q1,
            median: quantile_sorted(&v, 0.5),
            q3,
            max: *v.last().expect("non-empty"),
            upper_whisker,
            lower_whisker,
            upper_outliers,
            lower_outliers,
            n: v.len(),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Total outlier count.
    pub fn outliers(&self) -> usize {
        self.upper_outliers + self.lower_outliers
    }
}

/// A fixed-width histogram over `[min, max)` with an overflow bin.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub min: f64,
    /// Bin width.
    pub width: f64,
    /// Count of values in each bin `[min + i*width, min + (i+1)*width)`.
    pub counts: Vec<usize>,
    /// Values below `min`.
    pub underflow: usize,
    /// Values at or above the last edge.
    pub overflow: usize,
}

impl Histogram {
    /// Total number of counted values, including under/overflow.
    pub fn total(&self) -> usize {
        self.counts.iter().sum::<usize>() + self.underflow + self.overflow
    }

    /// The `(left_edge, count)` pairs of the regular bins.
    pub fn bins(&self) -> impl Iterator<Item = (f64, usize)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.min + i as f64 * self.width, c))
    }
}

/// Builds a histogram of the finite values with `n_bins` equal bins covering
/// `[min, max)`.
///
/// # Panics
/// Panics if `n_bins == 0` or `max <= min`.
pub fn histogram(xs: &[f64], min: f64, max: f64, n_bins: usize) -> Histogram {
    assert!(n_bins > 0, "histogram needs at least one bin");
    assert!(max > min, "histogram range must be non-empty");
    let width = (max - min) / n_bins as f64;
    let mut counts = vec![0usize; n_bins];
    let mut underflow = 0;
    let mut overflow = 0;
    for &x in xs {
        if !x.is_finite() {
            continue;
        }
        if x < min {
            underflow += 1;
        } else if x >= max {
            overflow += 1;
        } else {
            let i = (((x - min) / width) as usize).min(n_bins - 1);
            counts[i] += 1;
        }
    }
    Histogram {
        min,
        width,
        counts,
        underflow,
        overflow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_skip_missing() {
        let xs = [1.0, 2.0, f64::NAN, 3.0];
        assert_eq!(mean(&xs), 2.0);
        assert!((variance(&xs) - 1.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_moments() {
        assert!(mean(&[]).is_nan());
        assert!(mean(&[f64::NAN]).is_nan());
        assert!(variance(&[1.0]).is_nan());
    }

    #[test]
    fn quantile_type7_matches_r() {
        // R: quantile(c(1,2,3,4), probs=c(0.25, 0.5, 0.75)) -> 1.75 2.50 3.25
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.75) - 3.25).abs() < 1e-12);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((median(&xs) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn boxplot_detects_outliers() {
        // 20 small values and one huge spike: the spike must sit above the
        // upper whisker, like a burst of active traffic.
        let mut xs: Vec<f64> = (0..20).map(|i| (i % 5) as f64).collect();
        xs.push(1_000_000.0);
        let b = BoxplotStats::from_samples(&xs).unwrap();
        assert_eq!(b.upper_outliers, 1);
        assert!(b.upper_whisker <= 4.0 + 1.5 * b.iqr());
        assert_eq!(b.max, 1_000_000.0);
        assert_eq!(b.n, 21);
    }

    #[test]
    fn boxplot_no_outliers() {
        let xs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let b = BoxplotStats::from_samples(&xs).unwrap();
        assert_eq!(b.outliers(), 0);
        assert_eq!(b.upper_whisker, 9.0);
        assert_eq!(b.lower_whisker, 1.0);
        assert_eq!(b.median, 5.0);
    }

    #[test]
    fn boxplot_all_missing_is_none() {
        assert!(BoxplotStats::from_samples(&[f64::NAN, f64::NAN]).is_none());
        assert!(BoxplotStats::from_samples(&[]).is_none());
    }

    #[test]
    fn boxplot_single_value() {
        let b = BoxplotStats::from_samples(&[7.0]).unwrap();
        assert_eq!(b.median, 7.0);
        assert_eq!(b.upper_whisker, 7.0);
        assert_eq!(b.outliers(), 0);
    }

    #[test]
    fn histogram_counts_and_edges() {
        let xs = [0.0, 0.5, 1.0, 1.5, 2.5, -1.0, 10.0, f64::NAN];
        let h = histogram(&xs, 0.0, 3.0, 3);
        assert_eq!(h.counts, vec![2, 2, 1]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 7);
        let bins: Vec<(f64, usize)> = h.bins().collect();
        assert_eq!(bins[0], (0.0, 2));
        assert_eq!(bins[2], (2.0, 1));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = histogram(&[1.0], 0.0, 1.0, 0);
    }
}
