//! Correlation coefficients with significance tests.
//!
//! The paper's similarity measure (Definition 1) takes the maximum of the
//! *statistically significant* Pearson, Spearman and Kendall coefficients.
//! Each function here returns a [`CorrelationTest`] carrying both the
//! coefficient and its two-sided p-value against `H0: no association`:
//!
//! * **Pearson's r** — linear dependence; t-test with `n − 2` degrees of
//!   freedom.
//! * **Spearman's ρ** — monotone dependence; Pearson's r over mid-ranks,
//!   with the same t approximation (the standard large-sample test).
//! * **Kendall's τ-b** — concordance with tie correction; computed in
//!   `O(n log n)` via Knight's algorithm, tested with the tie-adjusted
//!   normal approximation of the S statistic.
//!
//! Missing data: all three operate on pairwise-complete observations.
//! Degenerate inputs (fewer than three complete pairs, or a constant series)
//! yield a zero coefficient with p-value 1 — "no significant correlation",
//! which is exactly how Definition 1 treats them.

use crate::pairwise_complete;
use crate::rank::{mid_ranks, tie_group_sizes};
use crate::special::{normal_two_sided_p, student_t_two_sided_p};

/// Which correlation coefficient a result refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorrelationCoefficient {
    /// Pearson's product-moment r.
    Pearson,
    /// Spearman's rank ρ.
    Spearman,
    /// Kendall's τ-b.
    Kendall,
}

impl std::fmt::Display for CorrelationCoefficient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CorrelationCoefficient::Pearson => "pearson",
            CorrelationCoefficient::Spearman => "spearman",
            CorrelationCoefficient::Kendall => "kendall",
        })
    }
}

/// A correlation estimate together with its significance test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelationTest {
    /// Which coefficient this is.
    pub coefficient: CorrelationCoefficient,
    /// The estimate, in `[-1, 1]`.
    pub value: f64,
    /// Two-sided p-value against `H0: coefficient = 0`.
    pub p_value: f64,
    /// Number of pairwise-complete observations used.
    pub n: usize,
}

impl CorrelationTest {
    /// Whether the coefficient is significant at level `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }

    pub(crate) fn degenerate(coefficient: CorrelationCoefficient, n: usize) -> CorrelationTest {
        CorrelationTest {
            coefficient,
            value: 0.0,
            p_value: 1.0,
            n,
        }
    }
}

/// Pearson's product-moment correlation with a two-sided t-test.
///
/// ```
/// use wtts_stats::pearson;
///
/// let x: Vec<f64> = (0..20).map(f64::from).collect();
/// let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
/// let r = pearson(&x, &y);
/// assert!((r.value - 1.0).abs() < 1e-12);
/// assert!(r.significant(0.05));
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> CorrelationTest {
    let (xs, ys) = pairwise_complete(x, y);
    pearson_complete(&xs, &ys)
}

/// Pearson over already-complete samples (no missing values).
pub(crate) fn pearson_complete(xs: &[f64], ys: &[f64]) -> CorrelationTest {
    let n = xs.len();
    if n < 3 {
        return CorrelationTest::degenerate(CorrelationCoefficient::Pearson, n);
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in xs.iter().zip(ys) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        // A constant series carries no dependence information.
        return CorrelationTest::degenerate(CorrelationCoefficient::Pearson, n);
    }
    let r = (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0);
    let p = r_to_p(r, n);
    CorrelationTest {
        coefficient: CorrelationCoefficient::Pearson,
        value: r,
        p_value: p,
        n,
    }
}

/// Finishes a Pearson-style coefficient from precomputed first and second
/// moments, accumulating only the cross term.
///
/// The `sxy` loop adds the exact terms `pearson_complete`'s interleaved
/// loop adds, in the same order, so the result is bit-identical to the
/// from-scratch computation — this is what lets batch profiles cache
/// `mean`/`sxx` per series. Callers must have handled the degenerate cases
/// (`n < 3`, zero `sxx`/`syy`) already.
pub(crate) fn pearson_from_moments(
    coefficient: CorrelationCoefficient,
    xs: &[f64],
    ys: &[f64],
    mx: f64,
    my: f64,
    sxx: f64,
    syy: f64,
) -> CorrelationTest {
    let sxy = crate::kernels::sxy_fold(xs, ys, mx, my);
    pearson_from_sxy(coefficient, sxy, sxx, syy, xs.len())
}

/// Finishes a Pearson-style coefficient from a fully precomputed cross
/// moment — the tail of [`pearson_from_moments`], split out so fused
/// multi-chain folds ([`crate::kernels::sxy_fold2`]) can share the exact
/// clamp/t-test arithmetic.
pub(crate) fn pearson_from_sxy(
    coefficient: CorrelationCoefficient,
    sxy: f64,
    sxx: f64,
    syy: f64,
    n: usize,
) -> CorrelationTest {
    let r = (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0);
    CorrelationTest {
        coefficient,
        value: r,
        p_value: r_to_p(r, n),
        n,
    }
}

/// Two-sided p-value of a correlation `r` over `n` pairs via the t
/// transformation `t = r sqrt((n-2)/(1-r²))`.
///
/// Total over its domain: `n < 3` (no degrees of freedom for the t test)
/// reports "not significant" (`p = 1`) rather than underflowing `n − 2` or
/// asserting inside the t distribution; `|r| ≥ 1` pins the perfectly
/// determined case to `p = 0`; and the t statistic is clamped to a large
/// finite magnitude so `|r| → 1` can never push `Inf`/`NaN` into the
/// incomplete-beta evaluation.
fn r_to_p(r: f64, n: usize) -> f64 {
    if n < 3 {
        return 1.0;
    }
    if !r.is_finite() {
        return 1.0;
    }
    if r.abs() >= 1.0 {
        return 0.0;
    }
    let df = (n - 2) as f64;
    let denom = 1.0 - r * r;
    if denom <= 0.0 {
        return 0.0;
    }
    // |t| ≤ 1e15 keeps t² and the beta arguments finite; the two-sided
    // p-value at that magnitude is ≪ f64::MIN_POSITIVE anyway.
    let t = (r * (df / denom).sqrt()).clamp(-1e15, 1e15);
    student_t_two_sided_p(t, df)
}

/// Spearman's rank correlation: Pearson's r over mid-ranks, tested with the
/// same t approximation.
pub fn spearman(x: &[f64], y: &[f64]) -> CorrelationTest {
    let (xs, ys) = pairwise_complete(x, y);
    spearman_complete(&xs, &ys)
}

/// Spearman over already-complete samples (no missing values).
pub(crate) fn spearman_complete(xs: &[f64], ys: &[f64]) -> CorrelationTest {
    if xs.len() < 3 {
        return CorrelationTest::degenerate(CorrelationCoefficient::Spearman, xs.len());
    }
    let rx = mid_ranks(xs);
    let ry = mid_ranks(ys);
    let p = pearson_complete(&rx, &ry);
    CorrelationTest {
        coefficient: CorrelationCoefficient::Spearman,
        value: p.value,
        p_value: p.p_value,
        n: p.n,
    }
}

/// Kendall's τ-b with tie correction, computed in `O(n log n)`.
///
/// The significance test uses the tie-adjusted normal approximation of the
/// S statistic (the same approximation SciPy and R use for n beyond the
/// exact-table range):
///
/// ```text
/// var(S) = (v0 − vt − vu)/18 + v1 + v2
/// v0 = n(n−1)(2n+5),  vt/vu analogous over tie groups,
/// v1 = Σt(t−1) · Σu(u−1) / (2n(n−1)),
/// v2 = Σt(t−1)(t−2) · Σu(u−1)(u−2) / (9n(n−1)(n−2)).
/// ```
pub fn kendall(x: &[f64], y: &[f64]) -> CorrelationTest {
    let (xs, ys) = pairwise_complete(x, y);
    kendall_complete(&xs, &ys)
}

/// Kendall's τ-b over already-complete samples (no missing values).
pub(crate) fn kendall_complete(xs: &[f64], ys: &[f64]) -> CorrelationTest {
    let n = xs.len();
    if n < 3 {
        return CorrelationTest::degenerate(CorrelationCoefficient::Kendall, n);
    }

    // Sort by x, breaking ties by y (Knight's algorithm).
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .expect("finite values compare")
            .then(ys[a].partial_cmp(&ys[b]).expect("finite values compare"))
    });
    let y_sorted: Vec<f64> = idx.iter().map(|&i| ys[i]).collect();
    let x_sorted: Vec<f64> = idx.iter().map(|&i| xs[i]).collect();

    // Joint ties (pairs tied in both x and y).
    let mut n3 = 0u64; // Σ over joint tie groups of g(g-1)/2
    {
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && x_sorted[j + 1] == x_sorted[i] && y_sorted[j + 1] == y_sorted[i] {
                j += 1;
            }
            let g = (j - i + 1) as u64;
            n3 += g * (g - 1) / 2;
            i = j + 1;
        }
    }

    let tx = kendall_ties(&tie_group_sizes(xs));
    let ty = kendall_ties(&tie_group_sizes(ys));

    // Discordant pairs = swaps needed to sort y_sorted (counted by merge sort).
    let mut buf = y_sorted.clone();
    let mut tmp = Vec::new();
    let discordant = crate::kernels::count_inversions(&mut buf, &mut tmp);

    kendall_from_parts(n, n3, discordant, &tx, &ty)
}

/// Per-series tie aggregates feeding τ-b's denominator and the tie-adjusted
/// variance of S. Depending only on one side's tie-group sizes, they are
/// precomputable per series and reusable across every pairing. Public so
/// the [`crate::kernels`] order walk can produce them (and benches can
/// check them); construct via [`kendall_ties`]-style group aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KendallTies {
    /// Number of tied pairs: Σ t(t−1)/2.
    pub n_tied_pairs: u64,
    /// Σ t(t−1)(2t+5), the tie term of var(S).
    pub vt: f64,
    /// Σ t(t−1).
    pub sum_t2: f64,
    /// Σ t(t−1)(t−2).
    pub sum_t3: f64,
}

/// Aggregates tie-group sizes (from [`tie_group_sizes`]) into the sums τ-b
/// needs.
pub(crate) fn kendall_ties(groups: &[usize]) -> KendallTies {
    KendallTies {
        n_tied_pairs: groups
            .iter()
            .map(|&t| (t as u64) * (t as u64 - 1) / 2)
            .sum(),
        vt: groups
            .iter()
            .map(|&t| {
                let t = t as f64;
                t * (t - 1.0) * (2.0 * t + 5.0)
            })
            .sum(),
        sum_t2: groups.iter().map(|&t| (t as f64) * (t as f64 - 1.0)).sum(),
        sum_t3: groups
            .iter()
            .map(|&t| (t as f64) * (t as f64 - 1.0) * (t as f64 - 2.0))
            .sum(),
    }
}

/// Finishes τ-b from the pair-level counts (joint ties, discordant pairs)
/// and the two sides' precomputed tie aggregates. Shared by the
/// from-scratch path above and the profiled batch path, so both produce
/// bit-identical results by construction.
pub(crate) fn kendall_from_parts(
    n: usize,
    n3: u64,
    discordant: u64,
    tx: &KendallTies,
    ty: &KendallTies,
) -> CorrelationTest {
    let n_pairs = n as u64 * (n as u64 - 1) / 2;
    let (n1, n2) = (tx.n_tied_pairs, ty.n_tied_pairs);

    // S = concordant - discordant. With ties:
    // concordant + discordant = n_pairs - n1 - n2 + n3
    let total_comparable = n_pairs as i64 - n1 as i64 - n2 as i64 + n3 as i64;
    let s = total_comparable - 2 * discordant as i64;

    let denom = ((n_pairs - n1) as f64 * (n_pairs - n2) as f64).sqrt();
    if denom == 0.0 {
        return CorrelationTest::degenerate(CorrelationCoefficient::Kendall, n);
    }
    let tau = (s as f64 / denom).clamp(-1.0, 1.0);

    // Tie-adjusted variance of S.
    let nf = n as f64;
    let v0 = nf * (nf - 1.0) * (2.0 * nf + 5.0);
    let v1 = tx.sum_t2 * ty.sum_t2 / (2.0 * nf * (nf - 1.0));
    let v2 = tx.sum_t3 * ty.sum_t3 / (9.0 * nf * (nf - 1.0) * (nf - 2.0));
    let var_s = (v0 - tx.vt - ty.vt) / 18.0 + v1 + v2;
    if var_s <= 0.0 {
        return CorrelationTest::degenerate(CorrelationCoefficient::Kendall, n);
    }
    let z = s as f64 / var_s.sqrt();
    CorrelationTest {
        coefficient: CorrelationCoefficient::Kendall,
        value: tau,
        p_value: normal_two_sided_p(z),
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn pearson_perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 4.0, 6.0, 8.0, 10.0];
        let r = pearson(&x, &y);
        close(r.value, 1.0, 1e-12);
        assert!(r.p_value < 1e-10, "p = {}", r.p_value);
        let y_neg: Vec<f64> = y.iter().map(|v| -v).collect();
        close(pearson(&x, &y_neg).value, -1.0, 1e-12);
    }

    #[test]
    fn pearson_reference_value() {
        // Hand-checked: r = 16/sqrt(17.5 * 70/3) = 0.7917947,
        // t = 2.5927 (df = 4), two-sided p = 0.060511 (numeric integration).
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [2.0, 1.0, 4.0, 3.0, 7.0, 5.0];
        let r = pearson(&x, &y);
        close(r.value, 0.791_794_7, 1e-6);
        close(r.p_value, 0.060_511, 1e-4);
        assert!(!r.significant(0.05));
        assert!(r.significant(0.10));
    }

    #[test]
    fn pearson_constant_series_degenerate() {
        let x = [1.0; 5];
        let y = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = pearson(&x, &y);
        assert_eq!(r.value, 0.0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn pearson_too_few_pairs() {
        let r = pearson(&[1.0, 2.0], &[1.0, 2.0]);
        assert_eq!(r.value, 0.0);
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.n, 2);
    }

    #[test]
    fn pearson_with_missing_values() {
        let x = [1.0, 2.0, f64::NAN, 4.0, 5.0, 6.0, 7.0];
        let y = [2.0, 4.0, 6.0, f64::NAN, 10.0, 12.0, 14.0];
        let r = pearson(&x, &y);
        close(r.value, 1.0, 1e-12);
        assert_eq!(r.n, 5);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        // Exponential growth is perfectly monotone: rho = 1, r < 1.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        let rho = spearman(&x, &y);
        close(rho.value, 1.0, 1e-12);
        let r = pearson(&x, &y);
        assert!(r.value < 1.0);
    }

    #[test]
    fn spearman_reference_value() {
        // Hand-checked: rank differences d = (±1)^6, Σd² = 6, so
        // ρ = 1 − 6·6/(6·35) = 0.8285714.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [2.0, 1.0, 4.0, 3.0, 7.0, 5.0];
        let rho = spearman(&x, &y);
        close(rho.value, 0.828_571_4, 1e-6);
        // The t approximation differs slightly from R's exact test; accept
        // the approximate range.
        assert!(
            rho.p_value > 0.02 && rho.p_value < 0.10,
            "p={}",
            rho.p_value
        );
    }

    #[test]
    fn spearman_with_ties() {
        // Hand-checked: mid-ranks of x are (1, 2.5, 2.5, 4); Pearson over
        // ranks is 4.5/sqrt(4.5·5) = 0.9486833.
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let rho = spearman(&x, &y);
        close(rho.value, 0.948_683_3, 1e-6);
    }

    #[test]
    fn kendall_perfect_and_reversed() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [10.0, 20.0, 30.0, 40.0, 50.0];
        close(kendall(&x, &y).value, 1.0, 1e-12);
        let y_rev = [50.0, 40.0, 30.0, 20.0, 10.0];
        close(kendall(&x, &y_rev).value, -1.0, 1e-12);
    }

    #[test]
    fn kendall_reference_value() {
        // R: cor(c(1,2,3,4,5,6), c(2,1,4,3,7,5), method="kendall")
        //    = 0.6, p (exact) = 0.1361; normal approx p ~ 0.09
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [2.0, 1.0, 4.0, 3.0, 7.0, 5.0];
        let tau = kendall(&x, &y);
        close(tau.value, 0.6, 1e-12);
        assert!(tau.p_value > 0.05, "p={}", tau.p_value);
    }

    #[test]
    fn kendall_tau_b_with_ties() {
        // SciPy: kendalltau([1,2,2,3], [1,2,3,4]).statistic = 0.9128709
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let tau = kendall(&x, &y);
        close(tau.value, 0.912_870_9, 1e-6);
    }

    #[test]
    fn kendall_matches_naive_on_random_data() {
        // Pseudo-random (deterministic) data with ties; compare Knight's
        // algorithm against the O(n^2) definition.
        let n = 200;
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let mut state = 0x2545F4914F6CDD1Du64;
        for _ in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x.push(((state >> 33) % 17) as f64);
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            y.push(((state >> 33) % 11) as f64);
        }
        let fast = kendall(&x, &y).value;
        let naive = naive_tau_b(&x, &y);
        close(fast, naive, 1e-12);
    }

    fn naive_tau_b(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        let mut concordant = 0i64;
        let mut discordant = 0i64;
        let mut tx = 0i64;
        let mut ty = 0i64;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = x[i] - x[j];
                let dy = y[i] - y[j];
                if dx == 0.0 && dy == 0.0 {
                    continue;
                } else if dx == 0.0 {
                    tx += 1;
                } else if dy == 0.0 {
                    ty += 1;
                } else if dx * dy > 0.0 {
                    concordant += 1;
                } else {
                    discordant += 1;
                }
            }
        }
        let n0 = (n * (n - 1) / 2) as i64;
        let s = (concordant - discordant) as f64;
        // n1/n2 are total tied-in-x / tied-in-y pairs, *including* joint ties.
        let joint = n0 - concordant - discordant - tx - ty;
        let n1 = tx + joint;
        let n2 = ty + joint;
        s / (((n0 - n1) as f64) * ((n0 - n2) as f64)).sqrt()
    }

    #[test]
    fn kendall_all_tied_degenerate() {
        let tau = kendall(&[1.0; 5], &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(tau.value, 0.0);
        assert_eq!(tau.p_value, 1.0);
    }

    #[test]
    fn large_sample_significance() {
        // A modest correlation over many points must be significant.
        let n = 500;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| i as f64 + ((i * 7919) % 101) as f64 * 5.0)
            .collect();
        for test in [pearson(&x, &y), spearman(&x, &y), kendall(&x, &y)] {
            assert!(test.value > 0.5, "{:?}", test);
            assert!(test.significant(0.05), "{:?}", test);
        }
    }

    #[test]
    fn coefficients_are_symmetric() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let y = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0, 8.0];
        for f in [pearson, spearman, kendall] {
            let a = f(&x, &y);
            let b = f(&y, &x);
            close(a.value, b.value, 1e-12);
            close(a.p_value, b.p_value, 1e-12);
        }
    }

    #[test]
    fn r_to_p_is_zero_at_perfect_correlation() {
        for n in [3, 4, 10, 1000] {
            assert_eq!(r_to_p(1.0, n), 0.0, "r=1, n={n}");
            assert_eq!(r_to_p(-1.0, n), 0.0, "r=-1, n={n}");
        }
    }

    #[test]
    fn r_to_p_is_finite_arbitrarily_close_to_one() {
        // 1 − 1e-16 rounds to the largest f64 below 1 (1 − 2⁻⁵³); the t
        // statistic is enormous but must stay finite, and the p-value a
        // genuine number in [0, 1] — not NaN from Inf entering the beta
        // function.
        let r = 1.0 - 1e-16;
        assert!(r < 1.0, "test premise: r is representable below 1");
        for n in [3, 5, 50] {
            for sign in [1.0, -1.0] {
                let p = r_to_p(sign * r, n);
                assert!(p.is_finite(), "n={n} sign={sign}: p={p}");
                assert!((0.0..=1.0).contains(&p), "n={n} sign={sign}: p={p}");
            }
        }
        // With real degrees of freedom such an r is overwhelming evidence.
        assert!(r_to_p(r, 50) < 1e-10);
    }

    #[test]
    fn r_to_p_without_degrees_of_freedom_is_not_significant() {
        // n < 3 used to underflow `n - 2` (n ≤ 1) or assert df > 0 inside
        // the t distribution (n = 2); all must report p = 1 instead.
        for n in [0, 1, 2] {
            for r in [0.0, 0.5, 1.0, -1.0] {
                assert_eq!(r_to_p(r, n), 1.0, "r={r}, n={n}");
            }
        }
    }

    #[test]
    fn r_to_p_non_finite_r_is_not_significant() {
        assert_eq!(r_to_p(f64::NAN, 10), 1.0);
        assert_eq!(r_to_p(f64::INFINITY, 10), 1.0);
    }

    #[test]
    fn pearson_at_exact_linearity_is_significant() {
        // End-to-end: a perfectly linear relation whose moment square
        // roots are exact (sxx = 4, syy = 36/16) reaches r = ±1 exactly and
        // must come out maximally significant, not NaN.
        let x = [0.0, 0.0, 2.0, 2.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let up = pearson(&x, &y);
        assert_eq!(up.value, 1.0);
        assert_eq!(up.p_value, 0.0);
        let y_down: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        let down = pearson(&x, &y_down);
        assert_eq!(down.value, -1.0);
        assert_eq!(down.p_value, 0.0);
    }
}
