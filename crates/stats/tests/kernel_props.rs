//! Property tests for the `kernels` layer: the fast lanes must never
//! silently diverge from the exact paths they replace.
//!
//! Four contracts are pinned here:
//!
//! 1. the moment folds ([`mean_and_sxx`], [`mean_and_sxx_welford`]) stay
//!    within analytic error bounds of the Kahan-compensated reference on
//!    adversarial magnitude mixes (1e±12) and on gappy series;
//! 2. the `f32` fast lane plus its re-verification band never *decides*
//!    against the exact `f64` comparison — near-threshold cases must come
//!    back [`FastDecision::Reverify`], everything else must agree;
//! 3. the Kendall tie-run refinement (exercised through
//!    [`kendall_profiled`]) matches a naive O(n²) concordance count on
//!    every tie shape — all-tied heads and tails, singleton runs, and runs
//!    spanning the merge kernel's chunk boundary;
//! 4. the small-domain counting lanes behind [`rank_series`] and
//!    [`count_inversions`], and the strided KS sup-scan, are bit-identical
//!    to their comparison-based fallbacks on inputs that straddle the lane
//!    boundary (negatives, offsets past the fused probe's window,
//!    `-0.0`/`0.0` mixes, non-integral values).

use proptest::prelude::*;
use wtts_stats::corprofile::{kendall_profiled, CorProfile, CorScratch};
use wtts_stats::kernels::{
    count_inversions, f32_lane_band, fast_lane_decision, ks_sup_scan, ks_sup_scan_reference,
    mean_and_sxx, mean_and_sxx_kahan, mean_and_sxx_welford, pearson_r_f32, ranks_from_sorted_pairs,
    stable_value_sort, sxy_fold, FastDecision,
};
use wtts_stats::rank_series;

// ---------------------------------------------------------------------------
// Shared references
// ---------------------------------------------------------------------------

/// Naive O(n²) inversion count — pairs `i < j` with `v[i] > v[j]`.
fn naive_inversions(v: &[f64]) -> u64 {
    let mut inv = 0u64;
    for i in 0..v.len() {
        for j in i + 1..v.len() {
            if v[i] > v[j] {
                inv += 1;
            }
        }
    }
    inv
}

/// Naive O(n²) Kendall τ-b over complete pairs.
fn naive_tau_b(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len();
    let (mut concordant, mut discordant) = (0i64, 0i64);
    let (mut tied_x, mut tied_y) = (0i64, 0i64);
    // NB: not `f64::signum` — that maps ±0.0 to ±1.0, which would count
    // tied pairs as concordant.
    let sign = |a: f64, b: f64| (a > b) as i64 - (a < b) as i64;
    for i in 0..n {
        for j in i + 1..n {
            let dx = sign(xs[i], xs[j]);
            let dy = sign(ys[i], ys[j]);
            if dx == 0 && dy == 0 {
                continue;
            } else if dx == 0 {
                tied_x += 1;
            } else if dy == 0 {
                tied_y += 1;
            } else if dx == dy {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let nx = concordant + discordant + tied_x;
    let ny = concordant + discordant + tied_y;
    if nx == 0 || ny == 0 {
        return f64::NAN;
    }
    (concordant - discordant) as f64 / ((nx as f64) * (ny as f64)).sqrt()
}

/// Rank artifacts through the frozen pair-sort path, bypassing the
/// counting lane — the differential reference for `rank_series`.
fn rank_reference(xs: &[f64]) -> (Vec<u32>, Vec<f64>, Vec<usize>) {
    let mut kv = Vec::new();
    stable_value_sort(xs, &mut kv);
    let mut ranks = Vec::new();
    let mut ties = Vec::new();
    ranks_from_sorted_pairs(&kv, &mut ranks, &mut ties);
    (kv.iter().map(|p| p.1).collect(), ranks, ties)
}

fn assert_rank_matches(xs: &[f64], label: &str) {
    let ranked = rank_series(xs);
    let (order_ref, ranks_ref, ties_ref) = rank_reference(xs);
    assert_eq!(ranked.order, order_ref, "order: {label}");
    assert_eq!(ranked.ranks.len(), ranks_ref.len(), "rank len: {label}");
    for (i, (a, b)) in ranked.ranks.iter().zip(&ranks_ref).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "rank {i}: {label}");
    }
    assert_eq!(ranked.ties, ties_ref, "ties: {label}");
}

fn assert_kendall_matches(xs: &[f64], ys: &[f64], label: &str) {
    let (a, b) = (CorProfile::new(xs), CorProfile::new(ys));
    let mut scratch = CorScratch::new();
    let fast = kendall_profiled(&a, &b, &mut scratch);
    let naive = naive_tau_b(xs, ys);
    if naive.is_nan() {
        // Degenerate convention: value 0.0, p 1.0 (CorrelationTest::degenerate).
        assert_eq!(fast.value, 0.0, "degenerate tau convention: {label}");
        assert_eq!(fast.p_value, 1.0, "degenerate p convention: {label}");
    } else {
        assert!(
            (fast.value - naive).abs() < 1e-12,
            "tau mismatch: {} vs {naive}: {label}",
            fast.value
        );
    }
}

// ---------------------------------------------------------------------------
// Targeted tie-shape edge cases (satellite: kendall_refine)
// ---------------------------------------------------------------------------

/// All-tied head: the first tie run starts at index 0 and spans past the
/// merge kernel's 32-wide chunk base.
#[test]
fn kendall_all_tied_head() {
    let n = 80;
    let xs: Vec<f64> = (0..n)
        .map(|i| if i < 40 { 1.0 } else { i as f64 })
        .collect();
    let ys: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64).collect();
    assert_kendall_matches(&xs, &ys, "all-tied head");
}

/// All-tied tail: the last tie run runs to the end of the series.
#[test]
fn kendall_all_tied_tail() {
    let n = 80;
    let xs: Vec<f64> = (0..n)
        .map(|i| if i >= 30 { 99.0 } else { i as f64 })
        .collect();
    let ys: Vec<f64> = (0..n).map(|i| ((i * 5) % 11) as f64).collect();
    assert_kendall_matches(&xs, &ys, "all-tied tail");
}

/// Fully tied x: every pair is an x-tie; τ-b is degenerate (nx = 0).
#[test]
fn kendall_fully_tied_x() {
    let xs = vec![3.0; 40];
    let ys: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
    assert_kendall_matches(&xs, &ys, "fully tied x");
}

/// Singleton runs only: strictly increasing x skips refinement entirely.
#[test]
fn kendall_singleton_runs() {
    let xs: Vec<f64> = (0..64).map(|i| i as f64).collect();
    let ys: Vec<f64> = (0..64).map(|i| ((i * 29) % 64) as f64).collect();
    assert_kendall_matches(&xs, &ys, "singleton runs");
}

/// A tie run straddling the 32-wide insertion-sort chunk boundary of the
/// inversion merge (indices 24..40 share one x value).
#[test]
fn kendall_run_spanning_chunk_boundary() {
    let n = 72;
    let xs: Vec<f64> = (0..n)
        .map(|i| if (24..40).contains(&i) { 5.0 } else { i as f64 })
        .collect();
    let ys: Vec<f64> = (0..n).map(|i| ((i * 13) % 17) as f64).collect();
    assert_kendall_matches(&xs, &ys, "run spanning chunk boundary");
}

/// Alternating two-value x: maximal run count with runs of length n/2.
#[test]
fn kendall_two_value_x() {
    let n = 66;
    let xs: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
    let ys: Vec<f64> = (0..n).map(|i| ((i * 19) % 23) as f64).collect();
    assert_kendall_matches(&xs, &ys, "two-value x");
}

// ---------------------------------------------------------------------------
// Targeted small-domain lane boundaries (rank + inversions)
// ---------------------------------------------------------------------------

/// Signed zeros share a bucket and a tie run; the counting lane must keep
/// the input's `-0.0` bits in the same stable positions the sort would.
#[test]
fn rank_signed_zero_mix() {
    let xs = [0.0, -0.0, 1.0, -0.0, 0.0, 2.0, -0.0];
    assert_rank_matches(&xs, "signed zero mix");
    let mut v = xs.to_vec();
    let mut tmp = Vec::new();
    let inv = count_inversions(&mut v, &mut tmp);
    assert_eq!(inv, naive_inversions(&xs));
    // Sorted output preserves the sign bits of the zeros, in input order.
    let zeros: Vec<u64> = v[..5].iter().map(|z| z.to_bits()).collect();
    let expected: Vec<u64> = [0.0f64, -0.0, -0.0, 0.0, -0.0]
        .iter()
        .map(|z| z.to_bits())
        .collect();
    assert_eq!(zeros, expected, "stable counting sort must keep zero signs");
}

/// Values offset far past the fused probe's 512-bucket window exercise the
/// histogram rebuild path; negatives exercise it too.
#[test]
fn rank_offset_and_negative_domains() {
    let offset: Vec<f64> = (0..200)
        .map(|i| 100_000.0 + ((i * 37) % 90) as f64)
        .collect();
    assert_rank_matches(&offset, "offset domain");
    let negative: Vec<f64> = (0..200).map(|i| -250.0 + ((i * 53) % 400) as f64).collect();
    assert_rank_matches(&negative, "negative domain");
    for base in [&offset, &negative] {
        let mut v = base.clone();
        let mut tmp = Vec::new();
        assert_eq!(count_inversions(&mut v, &mut tmp), naive_inversions(base));
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }
}

/// Range exactly at the acceptance boundary (`range = max(n, 512) − 1`
/// accepted, anything wider takes the comparison path) — both sides must
/// agree bit for bit.
#[test]
fn rank_range_boundary() {
    let n = 64usize;
    let cap = n.max(512) as f64;
    let accepted: Vec<f64> = (0..n)
        .map(|i| {
            if i == 0 {
                0.0
            } else {
                cap - 1.0 - (i % 7) as f64
            }
        })
        .collect();
    assert_rank_matches(&accepted, "range just inside");
    let rejected: Vec<f64> = (0..n)
        .map(|i| {
            if i == 0 {
                0.0
            } else {
                cap + 1.0 - (i % 7) as f64
            }
        })
        .collect();
    assert_rank_matches(&rejected, "range just outside");
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

/// Values spanning twelve orders of magnitude in both signs.
fn adversarial(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![-1e12f64..1e12, -1e-12f64..1e-12, -1e6f64..1e6, Just(0.0f64),],
        len,
    )
}

/// Integral series whose domain straddles every counting-lane boundary:
/// dense-small (fused probe), offset (rebuild), negative (rebuild), and
/// wide (comparison fallback).
fn lane_straddling(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop_oneof![
        prop::collection::vec((0i64..400).prop_map(|v| v as f64), len.clone()),
        prop::collection::vec((900i64..1300).prop_map(|v| v as f64), len.clone()),
        prop::collection::vec((-200i64..200).prop_map(|v| v as f64), len.clone()),
        prop::collection::vec((0i64..100_000).prop_map(|v| v as f64), len.clone()),
        prop::collection::vec(-1e3f64..1e3, len),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Exact and Welford folds stay within the analytic error bound of the
    /// Kahan reference on adversarial magnitude mixes.
    #[test]
    fn moment_folds_pin_to_kahan(vals in adversarial(1..400)) {
        let (m_exact, s_exact) = mean_and_sxx(&vals);
        let (m_welford, s_welford) = mean_and_sxx_welford(&vals);
        let (m_ref, s_ref) = mean_and_sxx_kahan(&vals);
        let n = vals.len() as f64;
        let scale = vals.iter().map(|v| v.abs()).fold(0.0f64, f64::max).max(1.0);
        let mean_tol = n * scale * f64::EPSILON * 4.0;
        prop_assert!((m_exact - m_ref).abs() <= mean_tol, "exact mean {m_exact} vs {m_ref}");
        prop_assert!((m_welford - m_ref).abs() <= mean_tol, "welford mean {m_welford} vs {m_ref}");
        let sxx_tol = n * scale * scale * f64::EPSILON * 8.0 + s_ref * n * f64::EPSILON * 8.0;
        prop_assert!((s_exact - s_ref).abs() <= sxx_tol, "exact sxx {s_exact} vs {s_ref}");
        prop_assert!((s_welford - s_ref).abs() <= sxx_tol, "welford sxx {s_welford} vs {s_ref}");
        prop_assert!(s_exact >= -sxx_tol && s_welford >= 0.0, "sxx must not go negative");
    }

    /// NaN gaps: the profile's finite filter composes with the folds — a
    /// gappy series' profile moments equal the folds over the compacted
    /// values exactly.
    #[test]
    fn moment_folds_through_nan_gaps(
        vals in adversarial(4..200),
        gaps in prop::collection::vec((0u8..2).prop_map(|v| v == 1), 4..200),
    ) {
        let gappy: Vec<f64> = vals
            .iter()
            .zip(gaps.iter().cycle())
            .map(|(&v, &g)| if g { f64::NAN } else { v })
            .collect();
        let kept: Vec<f64> = gappy.iter().copied().filter(|v| v.is_finite()).collect();
        let profile = CorProfile::new(&gappy);
        let (m, s) = mean_and_sxx(&kept);
        prop_assert_eq!(profile.mean().to_bits(), m.to_bits());
        prop_assert_eq!(profile.sxx().to_bits(), s.to_bits());
    }

    /// Zero silent divergence: whenever the f32 lane *decides* (does not
    /// ask for re-verification), the exact f64 comparison agrees.
    #[test]
    fn f32_lane_never_silently_diverges(
        pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 8..300),
        threshold in -1.0f64..1.0,
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let (mx, sxx) = mean_and_sxx(&xs);
        let (my, syy) = mean_and_sxx(&ys);
        if !(sxx > 1e-9 && syy > 1e-9) {
            continue;
        }
        let r_exact = sxy_fold(&xs, &ys, mx, my) / (sxx * syy).sqrt();
        let r_fast = pearson_r_f32(&xs, &ys, mx, my, sxx, syy);
        let band = f32_lane_band(xs.len());
        prop_assert!((r_fast - r_exact).abs() <= band,
            "f32 lane drifted outside its band: {r_fast} vs {r_exact}");
        match fast_lane_decision(r_fast, threshold, band) {
            FastDecision::AtLeast => prop_assert!(r_exact >= threshold,
                "silent divergence: fast said AtLeast, exact {r_exact} < {threshold}"),
            FastDecision::Below => prop_assert!(r_exact < threshold,
                "silent divergence: fast said Below, exact {r_exact} >= {threshold}"),
            FastDecision::Reverify => {}
        }
    }

    /// The profiled Kendall path (gather + tie-run refinement + Knight
    /// inversion count) matches the naive O(n²) τ-b on arbitrary tie
    /// shapes.
    #[test]
    fn kendall_refinement_matches_naive(
        xs in prop::collection::vec((0i64..8).prop_map(|v| v as f64), 3..60),
        ys in prop::collection::vec((0i64..8).prop_map(|v| v as f64), 3..60),
    ) {
        let n = xs.len().min(ys.len());
        assert_kendall_matches(&xs[..n], &ys[..n], "proptest tie shapes");
    }

    /// `rank_series` is bit-identical to the pair-sort reference across
    /// every lane boundary.
    #[test]
    fn rank_lanes_agree(xs in lane_straddling(0..300)) {
        assert_rank_matches(&xs, "lane straddling");
    }

    /// `count_inversions` (small-domain Fenwick lane or merge fallback)
    /// matches the naive count and sorts ascending.
    #[test]
    fn inversion_lanes_agree(xs in lane_straddling(0..200)) {
        let expected = naive_inversions(&xs);
        let mut v = xs.clone();
        let mut tmp = Vec::new();
        prop_assert_eq!(count_inversions(&mut v, &mut tmp), expected);
        prop_assert!(v.windows(2).all(|w| w[0] <= w[1]), "output must be sorted");
    }

    /// The strided, integer-gated KS sup-scan is bit-identical to the
    /// per-step reference on tied, unequal-length sorted samples.
    #[test]
    fn ks_scan_lanes_agree(
        a in prop::collection::vec((0i64..40).prop_map(|v| v as f64 * 0.5), 1..200),
        b in prop::collection::vec((0i64..40).prop_map(|v| v as f64 * 0.7), 1..150),
    ) {
        let mut a = a;
        let mut b = b;
        a.sort_by(|p, q| p.partial_cmp(q).unwrap());
        b.sort_by(|p, q| p.partial_cmp(q).unwrap());
        let fast = ks_sup_scan(&a, &b);
        let reference = ks_sup_scan_reference(&a, &b);
        prop_assert_eq!(fast.to_bits(), reference.to_bits());
    }
}
