//! Property-based tests for the statistical primitives.

use proptest::prelude::*;
use wtts_stats::rank::{mid_ranks, tie_group_sizes};
use wtts_stats::special::{
    inc_beta, kolmogorov_sf, ln_gamma, normal_cdf, student_t_sf, student_t_two_sided_p,
};
use wtts_stats::{fit_ar, kendall, ks_two_sample, mean, pearson, quantile, spearman, BoxplotStats};

fn finite(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ln Γ satisfies the recurrence Γ(x+1) = x Γ(x).
    #[test]
    fn ln_gamma_recurrence(x in 0.1f64..50.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        prop_assert!((lhs - rhs).abs() < 1e-8, "x = {x}: {lhs} vs {rhs}");
    }

    /// The regularized incomplete beta is a CDF in x: bounded and monotone.
    #[test]
    fn inc_beta_is_a_cdf(a in 0.2f64..20.0, b in 0.2f64..20.0, x in 0.0f64..1.0, y in 0.0f64..1.0) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        let fl = inc_beta(a, b, lo);
        let fh = inc_beta(a, b, hi);
        prop_assert!((0.0..=1.0).contains(&fl));
        prop_assert!((0.0..=1.0).contains(&fh));
        prop_assert!(fh >= fl - 1e-9, "not monotone at a={a} b={b}: {fl} > {fh}");
        // Symmetry identity.
        let sym = 1.0 - inc_beta(b, a, 1.0 - lo);
        prop_assert!((fl - sym).abs() < 1e-7);
    }

    /// Distribution functions stay in [0, 1] and are monotone.
    #[test]
    fn distribution_functions_bounded(t in -50.0f64..50.0, df in 1.0f64..200.0) {
        let p = student_t_sf(t, df);
        prop_assert!((0.0..=1.0).contains(&p));
        let p2 = student_t_two_sided_p(t, df);
        prop_assert!((0.0..=1.0).contains(&p2));
        let c = normal_cdf(t);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&c));
        let k = kolmogorov_sf(t.abs());
        prop_assert!((0.0..=1.0).contains(&k));
    }

    /// Student-t survival is antisymmetric: sf(t) + sf(-t) = 1.
    #[test]
    fn student_t_antisymmetric(t in -20.0f64..20.0, df in 1.0f64..100.0) {
        let s = student_t_sf(t, df) + student_t_sf(-t, df);
        prop_assert!((s - 1.0).abs() < 1e-9);
    }

    /// Mid-ranks are a permutation-invariant bijection onto rank mass:
    /// they sum to n(n+1)/2 and lie in [1, n].
    #[test]
    fn ranks_sum_invariant(xs in finite(1..200)) {
        let r = mid_ranks(&xs);
        let n = xs.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        for &v in &r {
            prop_assert!(v >= 1.0 && v <= n);
        }
        // Tie groups sizes sum to at most n.
        let ties = tie_group_sizes(&xs);
        prop_assert!(ties.iter().sum::<usize>() <= xs.len());
    }

    /// All coefficients respect monotone transformations for Spearman and
    /// Kendall: applying exp() to both sides changes nothing.
    #[test]
    fn rank_coefficients_monotone_invariant(xs in finite(4..60), ys in finite(4..60)) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        let ex: Vec<f64> = xs.iter().map(|v| (v / 1e6).exp()).collect();
        let ey: Vec<f64> = ys.iter().map(|v| (v / 1e6).exp()).collect();
        let s1 = spearman(xs, ys).value;
        let s2 = spearman(&ex, &ey).value;
        prop_assert!((s1 - s2).abs() < 1e-6, "spearman {s1} vs {s2}");
        let k1 = kendall(xs, ys).value;
        let k2 = kendall(&ex, &ey).value;
        prop_assert!((k1 - k2).abs() < 1e-6, "kendall {k1} vs {k2}");
    }

    /// Pearson of a series with itself is 1 (when non-constant).
    #[test]
    fn pearson_self_is_one(xs in finite(3..100)) {
        let constant = xs.iter().all(|&v| v == xs[0]);
        let r = pearson(&xs, &xs);
        if constant {
            prop_assert_eq!(r.value, 0.0);
        } else {
            prop_assert!((r.value - 1.0).abs() < 1e-9);
        }
    }

    /// KS statistic is bounded in [0, 1], zero for identical samples.
    #[test]
    fn ks_bounds(xs in finite(1..100), ys in finite(1..100)) {
        if let Some(t) = ks_two_sample(&xs, &ys) {
            prop_assert!((0.0..=1.0).contains(&t.statistic));
            prop_assert!((0.0..=1.0).contains(&t.p_value));
        }
        let same = ks_two_sample(&xs, &xs).unwrap();
        prop_assert_eq!(same.statistic, 0.0);
    }

    /// The KS statistic equals the brute-force supremum of |F1 - F2| over
    /// all observed values, on tie-heavy integer samples — the regime where
    /// a sloppy single-sweep implementation miscounts tied runs.
    #[test]
    fn ks_statistic_matches_brute_force_on_ties(
        xs in prop::collection::vec(0i32..12, 1..60),
        ys in prop::collection::vec(0i32..12, 1..60),
    ) {
        let a: Vec<f64> = xs.iter().map(|&v| v as f64).collect();
        let b: Vec<f64> = ys.iter().map(|&v| v as f64).collect();
        let t = ks_two_sample(&a, &b).unwrap();

        // Brute force: evaluate both empirical CDFs at every observed value.
        let mut points: Vec<f64> = a.iter().chain(&b).copied().collect();
        points.sort_by(|p, q| p.partial_cmp(q).unwrap());
        points.dedup();
        let cdf = |sample: &[f64], v: f64| {
            sample.iter().filter(|&&s| s <= v).count() as f64 / sample.len() as f64
        };
        let d_max = points
            .iter()
            .map(|&v| (cdf(&a, v) - cdf(&b, v)).abs())
            .fold(0.0f64, f64::max);
        prop_assert!(
            (t.statistic - d_max).abs() < 1e-12,
            "sweep D = {} vs brute-force D = {}",
            t.statistic,
            d_max
        );
    }

    /// Brute-force KS agreement when both samples share a run of trailing
    /// equal values (a flat window tail): the tie sweep must drain the
    /// shared plateau from both samples before measuring any CDF gap.
    #[test]
    fn ks_statistic_matches_brute_force_on_trailing_equals(
        xs in prop::collection::vec(0i32..12, 1..40),
        ys in prop::collection::vec(0i32..12, 1..40),
        tail_val in 12i32..15,
        tail in 1usize..6,
    ) {
        // Append the same above-range plateau to both samples so it is
        // guaranteed to be the trailing run after sorting.
        let a: Vec<f64> = xs.iter().map(|&v| v as f64)
            .chain(std::iter::repeat_n(tail_val as f64, tail))
            .collect();
        let b: Vec<f64> = ys.iter().map(|&v| v as f64)
            .chain(std::iter::repeat_n(tail_val as f64, tail))
            .collect();
        let t = ks_two_sample(&a, &b).unwrap();

        let mut points: Vec<f64> = a.iter().chain(&b).copied().collect();
        points.sort_by(|p, q| p.partial_cmp(q).unwrap());
        points.dedup();
        let cdf = |sample: &[f64], v: f64| {
            sample.iter().filter(|&&s| s <= v).count() as f64 / sample.len() as f64
        };
        let d_max = points
            .iter()
            .map(|&v| (cdf(&a, v) - cdf(&b, v)).abs())
            .fold(0.0f64, f64::max);
        prop_assert!(
            (t.statistic - d_max).abs() < 1e-12,
            "sweep D = {} vs brute-force D = {}",
            t.statistic,
            d_max
        );
    }

    /// Brute-force KS agreement with a singleton sample (n = 1) on either
    /// side — the smallest window stationarity can ever hand the test.
    #[test]
    fn ks_statistic_matches_brute_force_on_singletons(
        x0 in 0i32..12,
        ys in prop::collection::vec(0i32..12, 1..40),
    ) {
        let a = vec![x0 as f64];
        let b: Vec<f64> = ys.iter().map(|&v| v as f64).collect();
        for (s1, s2) in [(&a, &b), (&b, &a)] {
            let t = ks_two_sample(s1, s2).unwrap();
            let mut points: Vec<f64> = s1.iter().chain(s2.iter()).copied().collect();
            points.sort_by(|p, q| p.partial_cmp(q).unwrap());
            points.dedup();
            let cdf = |sample: &[f64], v: f64| {
                sample.iter().filter(|&&s| s <= v).count() as f64 / sample.len() as f64
            };
            let d_max = points
                .iter()
                .map(|&v| (cdf(s1, v) - cdf(s2, v)).abs())
                .fold(0.0f64, f64::max);
            prop_assert!(
                (t.statistic - d_max).abs() < 1e-12,
                "sweep D = {} vs brute-force D = {}",
                t.statistic,
                d_max
            );
            prop_assert!((0.0..=1.0).contains(&t.p_value));
        }
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantiles_monotone(xs in finite(1..150), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo);
        let b = quantile(&xs, hi);
        prop_assert!(a <= b + 1e-12);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
    }

    /// Boxplot invariants. Note the whiskers are *data points* while the
    /// quartiles are type-7 interpolations, so a whisker may cross its
    /// quartile on small samples; the robust invariants are the orderings
    /// below plus fence consistency.
    #[test]
    fn boxplot_invariants(xs in finite(1..200)) {
        let b = BoxplotStats::from_samples(&xs).unwrap();
        prop_assert!(b.min <= b.lower_whisker + 1e-9);
        prop_assert!(b.lower_whisker <= b.upper_whisker + 1e-9);
        prop_assert!(b.upper_whisker <= b.max + 1e-9);
        prop_assert!(b.q1 <= b.median + 1e-9);
        prop_assert!(b.median <= b.q3 + 1e-9);
        // Whiskers respect the 1.5 IQR fences.
        let iqr = b.iqr();
        prop_assert!(b.upper_whisker <= b.q3 + 1.5 * iqr + 1e-9);
        prop_assert!(b.lower_whisker >= b.q1 - 1.5 * iqr - 1e-9);
        prop_assert!(b.outliers() < b.n);
    }

    /// AR fitting yields finite coefficients and forecasts.
    #[test]
    fn ar_fit_is_finite(xs in finite(20..300), p in 1usize..5) {
        if let Some(model) = fit_ar(&xs, p) {
            for c in &model.coefficients {
                prop_assert!(c.is_finite());
            }
            prop_assert!(model.noise_variance >= 0.0);
            let f = model.forecast_one(&xs);
            prop_assert!(f.is_finite());
            prop_assert!((0.0..=1.0).contains(&model.explained_variance()));
        }
    }

    /// mean() of finite data is bracketed by min and max.
    #[test]
    fn mean_bracketed(xs in finite(1..100)) {
        let m = mean(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min - 1e-9 && m <= max + 1e-9);
    }
}
