//! Property-based tests for the gap-aware correlogram estimators.
//!
//! The implementation in `acf.rs` shares one prepared-side kernel between
//! [`acf`], [`ccf`] and the multi-scale lag search. These properties pin it
//! against a *direct transcription of the estimator definitions* — per lag,
//! walk the series, keep only pairwise-complete positions, apply the
//! documented normalization — with **zero tolerance**: every comparison is
//! on raw bits. Any reordering of the arithmetic, however harmless it
//! looks, fails here.

use proptest::prelude::*;
use wtts_stats::{
    acf, ccf, ccf_cell_counted, effective_sample_size, mean, significance_bound,
    significance_bound_effective, CcfSide, CorrelogramError,
};

/// A finite series with 0–4 NaN runs punched into it — the shape real
/// gateway outages take (contiguous reporting gaps, not salted singletons).
/// Run starts are sampled over a fixed span and folded into the series
/// length, so short and long series see the same gap pressure.
fn gappy(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    let values = prop::collection::vec(-1e3f64..1e3, len);
    let runs = prop::collection::vec((0usize..1 << 16, 1usize..10), 0..5);
    (values, runs).prop_map(|(mut v, runs)| {
        let n = v.len();
        for (start, len) in runs {
            let start = start % n;
            let end = (start + len).min(n);
            for x in &mut v[start..end] {
                *x = f64::NAN;
            }
        }
        v
    })
}

/// A fully-observed series.
fn complete(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, len)
}

/// The estimator definition, transcribed: observed mean, zero-filled
/// deviations, observed second moment.
fn side_moments(x: &[f64]) -> Result<(Vec<f64>, f64, usize), CorrelogramError> {
    let m = mean(x);
    if !m.is_finite() {
        return Err(CorrelogramError::NoObservations);
    }
    let dev: Vec<f64> = x
        .iter()
        .map(|&v| if v.is_finite() { v - m } else { 0.0 })
        .collect();
    let mut sxx = 0.0;
    let mut n_obs = 0usize;
    for &v in x {
        if v.is_finite() {
            sxx += (v - m) * (v - m);
            n_obs += 1;
        }
    }
    if sxx == 0.0 {
        return Err(CorrelogramError::ZeroVariance);
    }
    Ok((dev, sxx, n_obs))
}

/// Pairwise-complete ACF straight from the definition: per lag `k`, sum the
/// deviation products over positions where both samples are observed,
/// rescale the observed-pair mean by the `(n − k)/n` taper, and normalize
/// by the observed variance. Fully-observed series use the legacy
/// `num / sxx` form verbatim.
fn reference_acf(x: &[f64], max_lag: usize) -> Result<Vec<f64>, CorrelogramError> {
    let (dev, sxx, n_obs) = side_moments(x)?;
    let n = x.len();
    let var = sxx / n_obs as f64;
    Ok((0..=max_lag.min(n - 1))
        .map(|k| {
            if n_obs == n {
                let mut num = 0.0;
                for t in 0..n - k {
                    num += dev[t] * dev[t + k];
                }
                return num / sxx;
            }
            let mut num = 0.0;
            let mut m = 0usize;
            for t in 0..n - k {
                if x[t].is_finite() && x[t + k].is_finite() {
                    num += dev[t] * dev[t + k];
                    m += 1;
                }
            }
            if m == 0 {
                f64::NAN
            } else {
                (num / m as f64) * ((n - k) as f64 / n as f64) / var
            }
        })
        .collect())
}

/// Pairwise-complete CCF straight from the definition (see
/// [`reference_acf`]); `cell(k)` estimates `corr(x_{t+k}, y_t)`.
fn reference_ccf(x: &[f64], y: &[f64], max_lag: usize) -> Result<Vec<f64>, CorrelogramError> {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let (a, b) = match (side_moments(x), side_moments(y)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(ea), Err(eb)) => {
            return Err(
                if ea == CorrelogramError::NoObservations || eb == CorrelogramError::NoObservations
                {
                    CorrelogramError::NoObservations
                } else {
                    CorrelogramError::ZeroVariance
                },
            )
        }
        (Err(e), Ok(_)) | (Ok(_), Err(e)) => return Err(e),
    };
    let (dev_a, sxx_a, obs_a) = a;
    let (dev_b, sxx_b, obs_b) = b;
    let complete = obs_a == n && obs_b == n;
    let sd_a = (sxx_a / obs_a as f64).sqrt();
    let sd_b = (sxx_b / obs_b as f64).sqrt();
    let max_lag = max_lag.min(n - 1) as i64;
    Ok((-max_lag..=max_lag)
        .map(|lag| {
            let k = lag.unsigned_abs() as usize;
            if complete {
                let mut num = 0.0;
                for t in 0..n - k {
                    let (xi, yi) = if lag >= 0 { (t + k, t) } else { (t, t + k) };
                    num += dev_a[xi] * dev_b[yi];
                }
                return num / (sxx_a * sxx_b).sqrt();
            }
            let mut num = 0.0;
            let mut m = 0usize;
            for t in 0..n - k {
                let (xi, yi) = if lag >= 0 { (t + k, t) } else { (t, t + k) };
                if x[xi].is_finite() && y[yi].is_finite() {
                    num += dev_a[xi] * dev_b[yi];
                    m += 1;
                }
            }
            if m == 0 {
                f64::NAN
            } else {
                (num / m as f64) * ((n - k) as f64 / n as f64) / (sd_a * sd_b)
            }
        })
        .collect())
}

/// Bitwise equality that also equates NaN cells (same-position gaps).
fn assert_bits(got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len());
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits() || (g.is_nan() && w.is_nan()),
            "index {i}: got {g:?} want {w:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Gap-injected ACF is bit-identical to the transcribed
    /// pairwise-complete definition — values *and* typed errors.
    #[test]
    fn acf_matches_pairwise_complete_reference(x in gappy(2..150), max_lag in 0usize..24) {
        match (acf(&x, max_lag), reference_acf(&x, max_lag)) {
            (Ok(got), Ok(want)) => assert_bits(&got, &want),
            (Err(got), Err(want)) => prop_assert_eq!(got, want),
            other => prop_assert!(false, "Ok/Err mismatch: {:?}", other),
        }
    }

    /// Gap-injected CCF is bit-identical to the transcribed
    /// pairwise-complete definition — values *and* typed errors.
    #[test]
    fn ccf_matches_pairwise_complete_reference(
        x in gappy(2..120),
        y in gappy(2..120),
        max_lag in 0usize..24,
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        match (ccf(x, y, max_lag), reference_ccf(x, y, max_lag)) {
            (Ok(got), Ok(want)) => assert_bits(&got, &want),
            (Err(got), Err(want)) => prop_assert_eq!(got, want),
            other => prop_assert!(false, "Ok/Err mismatch: {:?}", other),
        }
    }

    /// Regression pin: on fully-observed series the estimators reproduce
    /// the classic biased formulas **bit for bit** — the gap handling is
    /// provably invisible when there are no gaps.
    #[test]
    fn complete_series_reproduce_legacy_estimators(
        x in complete(2..150),
        y in complete(2..150),
        max_lag in 0usize..24,
    ) {
        if let Ok(got) = acf(&x, max_lag) {
            assert_bits(&got, &reference_acf(&x, max_lag).unwrap());
            // A complete series has no NaN cells and |r_k| ≤ 1.
            for &r in &got {
                prop_assert!(r.is_finite() && r.abs() <= 1.0 + 1e-12);
            }
            prop_assert_eq!(got[0].to_bits(), 1.0f64.to_bits());
        }
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        if let Ok(got) = ccf(x, y, max_lag) {
            assert_bits(&got, &reference_ccf(x, y, max_lag).unwrap());
        }
    }

    /// CCF is bitwise antisymmetric in its arguments:
    /// `ccf(x, y)[L + k] == ccf(y, x)[L − k]` (every float op involved is
    /// commutative, so this holds on bits, not just in exact arithmetic).
    #[test]
    fn ccf_argument_swap_mirrors_the_lag_axis(
        x in gappy(2..100),
        y in gappy(2..100),
        max_lag in 0usize..16,
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        if let (Ok(xy), Ok(yx)) = (ccf(x, y, max_lag), ccf(y, x, max_lag)) {
            let mirrored: Vec<f64> = yx.iter().rev().copied().collect();
            assert_bits(&xy, &mirrored);
        }
    }

    /// [`ccf_cell_counted`] on cached sides is bit-identical to the dense
    /// [`ccf`] sweep, and its pair counts obey the pairwise-complete
    /// bookkeeping: `NaN ⇔ count 0`, count ≤ overlap, and the count at
    /// lag 0 is the number of joint observations.
    #[test]
    fn cached_sides_match_dense_sweep_with_consistent_counts(
        x in gappy(3..100),
        y in gappy(3..100),
        max_lag in 0usize..16,
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        if let (Ok(dense), Ok(a), Ok(b)) = (ccf(x, y, max_lag), CcfSide::new(x), CcfSide::new(y)) {
            let l = max_lag.min(n - 1) as i64;
            for (i, &want) in dense.iter().enumerate() {
                let lag = i as i64 - l;
                let (value, count) = ccf_cell_counted(&a, &b, lag);
                prop_assert!(
                    value.to_bits() == want.to_bits() || (value.is_nan() && want.is_nan())
                );
                prop_assert_eq!(value.is_nan(), count == 0, "NaN iff no observed pair");
                prop_assert!(count <= n - lag.unsigned_abs() as usize);
            }
            let joint = (0..n).filter(|&t| x[t].is_finite() && y[t].is_finite()).count();
            if joint > 0 {
                let (_, m0) = ccf_cell_counted(&a, &b, 0);
                prop_assert_eq!(m0, joint);
            }
        }
    }

    /// The effective significance band never claims more confidence than
    /// the raw-length band, and collapses to it exactly when complete.
    #[test]
    fn effective_band_is_honest(x in gappy(1..150)) {
        let eff = effective_sample_size(&x);
        prop_assert!(eff <= x.len());
        prop_assert!(significance_bound_effective(&x) >= significance_bound(x.len()));
        if eff == x.len() {
            prop_assert_eq!(
                significance_bound_effective(&x).to_bits(),
                significance_bound(x.len()).to_bits()
            );
        }
    }
}
