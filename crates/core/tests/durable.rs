//! Crash-recovery tests: gwsim fleet → chaos channel → durable pipeline →
//! kill → recover → bit-identical results.
//!
//! The headline scenario kills the ingest mid-week at several injected
//! crash points, recovers from the WAL + snapshot each time, finishes the
//! stream and demands the exact results of an uninterrupted run: the same
//! per-gateway summaries, the same motif support, the same shard-state
//! digest, and metrics books equal under the replay invariant. A proptest
//! then repeats the exercise at arbitrary kill points over arbitrary
//! report streams.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use wtts_core::ingest::{IngestConfig, IngestReport};
use wtts_core::motif::{discover_motifs, MotifConfig};
use wtts_core::streaming::MotifTemplate;
use wtts_core::{
    segment_files, snapshot_coverage, Durability, DurableConfig, DurableError, DurablePipeline,
    DurableRun, FaultKind, FaultSpec, FaultyFs, IngestSummary, IoPolicy, KillPoint, LockError,
    LOCK_FILE,
};
use wtts_gwsim::{
    fault_schedule, gateway_reports, kill_points, ChannelConfig, FaultOp, Fleet, FleetConfig,
    TaggedReport,
};
use wtts_timeseries::{aggregate, daily_windows, Granularity, Minute};

fn envelope(t: &TaggedReport) -> IngestReport {
    IngestReport {
        gateway: t.gateway as u64,
        device: t.device as u32,
        at: t.report.at,
        cum_in: t.report.cum_in,
        cum_out: t.report.cum_out,
    }
}

fn chaos() -> ChannelConfig {
    ChannelConfig {
        loss: 0.02,
        duplication: 0.01,
        reorder: 0.01,
    }
}

fn fleet_reports(n_gateways: usize) -> Vec<IngestReport> {
    let fleet = Fleet::new(FleetConfig {
        n_gateways,
        weeks: 1,
        ..FleetConfig::default()
    });
    let mut out = Vec::new();
    for id in 0..n_gateways {
        let gw = fleet.gateway(id);
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE + id as u64);
        out.extend(gateway_reports(&gw, chaos(), &mut rng).iter().map(envelope));
    }
    out
}

/// A handful of daily motif templates from a small training fleet, so the
/// online matcher (and hence the state digest) has real work to do.
fn templates() -> Vec<MotifTemplate> {
    let training = Fleet::new(FleetConfig {
        n_gateways: 6,
        weeks: 1,
        seed: 3,
        ..FleetConfig::default()
    });
    let mut windows = Vec::new();
    for gw in training.iter() {
        let agg = aggregate(&gw.aggregate_total(), Granularity::hours(3), 0);
        for w in daily_windows(&agg, 2, 0) {
            windows.push(w.series.into_values());
        }
    }
    discover_motifs(&windows, &MotifConfig::default())
        .iter()
        .filter(|m| m.support() >= 2)
        .enumerate()
        .map(|(k, m)| m.to_template(format!("motif-{}", k + 1), &windows))
        .collect()
}

fn config(shards: usize) -> IngestConfig {
    IngestConfig {
        shards,
        ..IngestConfig::default()
    }
}

/// A unique scratch directory per call; collisions across concurrent test
/// processes are avoided by pid, within a process by a counter.
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("wtts-durable-it-{tag}-{}-{n}", std::process::id()))
}

fn durable_cfg(dir: &std::path::Path, snapshot_every: u64) -> DurableConfig {
    DurableConfig {
        snapshot_every_reports: snapshot_every,
        ..DurableConfig::new(dir.to_path_buf())
    }
}

/// Maps the simulator's filesystem-agnostic fault kinds onto the durable
/// layer's injector (the two crates stay decoupled on purpose).
fn fault_kind(op: FaultOp) -> FaultKind {
    match op {
        FaultOp::WriteEio => FaultKind::WriteEio,
        FaultOp::WriteShort => FaultKind::WriteShort,
        FaultOp::WriteEnospc => FaultKind::WriteEnospc,
        FaultOp::SyncLies => FaultKind::SyncLies,
        FaultOp::RenameTorn => FaultKind::RenameTorn,
    }
}

/// One uninterrupted durable run: `(summary, state digest)`.
fn live_run(
    reports: &[IngestReport],
    config: &IngestConfig,
    templates: &[MotifTemplate],
    snapshot_every: u64,
) -> (IngestSummary, u64) {
    let dir = scratch("live");
    let mut p = DurablePipeline::create(
        config.clone(),
        templates.to_vec(),
        durable_cfg(&dir, snapshot_every),
    )
    .expect("create");
    let run = p.run(reports.iter().copied(), None).expect("run");
    std::fs::remove_dir_all(&dir).ok();
    match run {
        DurableRun::Completed {
            summary,
            state_digest,
            durability,
        } => {
            assert_eq!(durability, Durability::Durable, "clean run must not gap");
            (*summary, state_digest)
        }
        DurableRun::Killed => unreachable!("no kill switch armed"),
    }
}

/// The headline acceptance scenario: crash the fleet-week ingest at three
/// seeded kill points, recover after each, finish the stream, and demand
/// results bit-identical to never having crashed at all.
#[test]
fn killed_mid_week_recovery_is_bit_identical() {
    let reports = fleet_reports(8);
    assert!(reports.len() > 100_000, "expected a substantial stream");
    let templates = templates();
    assert!(templates.len() >= 2, "training produced no templates");
    let config = config(3);
    let snapshot_every = 10_000;
    let (live_summary, live_digest) = live_run(&reports, &config, &templates, snapshot_every);
    assert!(live_summary.metrics.windows_matched > 0, "templates unused");

    // Each kill threshold counts reports offered *within its leg*, and a
    // leg offers at most its threshold — so with three thresholds of at
    // most a quarter-stream each, the final leg always has work left.
    let schedule = kill_points(0xD15C, reports.len() as u64 / 4, 3);
    assert_eq!(schedule.len(), 3, "stream large enough for 3 points");

    let dir = scratch("headline");
    for (leg, &kill_after) in schedule.iter().enumerate() {
        let mut p = if leg == 0 {
            DurablePipeline::create(
                config.clone(),
                templates.clone(),
                durable_cfg(&dir, snapshot_every),
            )
            .expect("create")
        } else {
            DurablePipeline::recover(
                config.clone(),
                templates.clone(),
                durable_cfg(&dir, snapshot_every),
            )
            .expect("recover")
        };
        if leg > 0 {
            let m = p.metrics().snapshot();
            assert_eq!(m.recoveries, 1, "leg {leg}: one recovery on its books");
            // The prefix may legitimately be empty after an early kill:
            // unflushed WAL bytes die with the process, by design.
            assert!(
                m.durably_accounted(),
                "leg {leg}: replayed books must balance"
            );
        }
        let run = p
            .run(reports.iter().copied(), Some(KillPoint::after(kill_after)))
            .expect("killed leg");
        assert!(
            matches!(run, DurableRun::Killed),
            "leg {leg} must die at {kill_after}"
        );
    }

    // The final recovery finishes the stream.
    let mut p = DurablePipeline::recover(
        config.clone(),
        templates.clone(),
        durable_cfg(&dir, snapshot_every),
    )
    .expect("final recover");
    assert!(
        p.metrics().snapshot().wal_records > 0,
        "three legs later the durable prefix must be non-empty"
    );
    let run = p.run(reports.iter().copied(), None).expect("final run");
    std::fs::remove_dir_all(&dir).ok();
    let (summary, digest) = match run {
        DurableRun::Completed {
            summary,
            state_digest,
            durability,
        } => {
            assert_eq!(durability, Durability::Durable);
            (summary, state_digest)
        }
        DurableRun::Killed => unreachable!("no kill switch armed"),
    };

    assert_eq!(digest, live_digest, "shard state digests diverged");
    assert_eq!(summary.gateways, live_summary.gateways);
    assert_eq!(summary.support, live_summary.support);
    assert_eq!(
        summary.metrics.replay_invariant_core(),
        live_summary.metrics.replay_invariant_core(),
        "metrics books diverged beyond durability bookkeeping"
    );
    let m = &summary.metrics;
    assert!(m.fully_accounted());
    assert!(m.durably_accounted(), "wal_records must equal offered");
    assert!(m.wal_replayed > 0, "recovery never skipped durable reports");
    assert!(m.snapshots_written > 0, "snapshot cadence never fired");
}

/// After a crash, feeding only the stream suffix from `resume_seq()` is
/// equivalent to re-feeding everything.
#[test]
fn suffix_resume_from_resume_seq_is_exact() {
    let reports = fleet_reports(3);
    let templates = templates();
    let config = config(2);
    let (live_summary, live_digest) = live_run(&reports, &config, &templates, 5_000);

    let dir = scratch("suffix");
    let mut p =
        DurablePipeline::create(config.clone(), templates.clone(), durable_cfg(&dir, 5_000))
            .expect("create");
    let kill_after = reports.len() as u64 / 3;
    let run = p
        .run(reports.iter().copied(), Some(KillPoint::after(kill_after)))
        .expect("killed run");
    assert!(matches!(run, DurableRun::Killed));

    let mut p =
        DurablePipeline::recover(config.clone(), templates.clone(), durable_cfg(&dir, 5_000))
            .expect("recover");
    let resume = p.resume_seq();
    assert!(resume > 1, "a durable prefix must advance resume_seq");
    assert!(resume <= reports.len() as u64 + 1);
    let suffix = reports[(resume - 1) as usize..].iter().copied();
    let run = p.run_from(suffix, resume, None).expect("suffix run");
    std::fs::remove_dir_all(&dir).ok();
    match run {
        DurableRun::Completed {
            summary,
            state_digest,
            ..
        } => {
            assert_eq!(state_digest, live_digest);
            assert_eq!(summary.gateways, live_summary.gateways);
            assert_eq!(
                summary.metrics.replay_invariant_core(),
                live_summary.metrics.replay_invariant_core()
            );
        }
        DurableRun::Killed => unreachable!("no kill switch armed"),
    }
}

/// A crash that tears the WAL tail (a half-written record) is healed by
/// recovery: the torn record is counted, truncated, and the finished run
/// still matches the uninterrupted one exactly.
#[test]
fn torn_wal_tail_heals_and_finishes_identically() {
    let reports = fleet_reports(2);
    let config = config(2);
    let (live_summary, live_digest) = live_run(&reports, &config, &[], 2_000);

    let dir = scratch("torn");
    let mut p = DurablePipeline::create(config.clone(), Vec::new(), durable_cfg(&dir, 2_000))
        .expect("create");
    let run = p
        .run(
            reports.iter().copied(),
            Some(KillPoint::after(reports.len() as u64 / 2)),
        )
        .expect("killed run");
    assert!(matches!(run, DurableRun::Killed));

    // Tear shard 0's WAL: a record header promising more bytes than exist,
    // appended to the newest segment.
    let segs = segment_files(&dir, 0).expect("list shard 0 segments");
    let (_, wal0) = segs.last().expect("shard 0 has a segment");
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(wal0)
        .expect("open wal");
    f.write_all(&48u32.to_le_bytes()).expect("torn header");
    f.write_all(&[0xAB; 7]).expect("torn partial payload");
    drop(f);

    let mut p = DurablePipeline::recover(config.clone(), Vec::new(), durable_cfg(&dir, 2_000))
        .expect("recover over torn tail");
    let m = p.metrics().snapshot();
    assert_eq!(m.wal_torn_records, 1, "the torn record must be counted");
    assert!(m.durably_accounted());
    let run = p.run(reports.iter().copied(), None).expect("final run");
    std::fs::remove_dir_all(&dir).ok();
    match run {
        DurableRun::Completed {
            summary,
            state_digest,
            ..
        } => {
            assert_eq!(state_digest, live_digest);
            assert_eq!(summary.gateways, live_summary.gateways);
        }
        DurableRun::Killed => unreachable!("no kill switch armed"),
    }
}

// ---------------------------------------------------------------------------
// Property: recovery is exact at *any* kill point on *any* stream.
// ---------------------------------------------------------------------------

/// An arbitrary raw report: a small gateway/device space and a bounded
/// clock so streams collide — duplicates, regressions, future jumps and
/// resets all arise naturally.
fn arb_report() -> impl Strategy<Value = IngestReport> {
    (0u64..5, 0u32..3, 0u32..4000, 0u64..1 << 34, 0u64..1 << 34).prop_map(
        |(gateway, device, at, cum_in, cum_out)| IngestReport {
            gateway,
            device,
            at: Minute(at),
            cum_in,
            cum_out,
        },
    )
}

fn prop_config() -> IngestConfig {
    IngestConfig {
        shards: 2,
        queue_batches: 2,
        batch_reports: 8,
        ..IngestConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any report stream and any kill point, crash + recover + finish
    /// equals the uninterrupted run: same digest, same summaries, same
    /// replay-invariant metrics.
    #[test]
    fn recovery_is_exact_at_any_kill_point(
        reports in prop::collection::vec(arb_report(), 1..250),
        kill_frac in 0.0f64..1.2,
    ) {
        let config = prop_config();
        let snapshot_every = 40;
        let (live_summary, live_digest) =
            live_run(&reports, &config, &[], snapshot_every);

        let kill_after = 1 + (kill_frac * reports.len() as f64) as u64;
        let dir = scratch("prop");
        let mut p = DurablePipeline::create(
            config.clone(), Vec::new(), durable_cfg(&dir, snapshot_every),
        ).expect("create");
        let first = p
            .run(reports.iter().copied(), Some(KillPoint::after(kill_after)))
            .expect("first leg");
        let (summary, digest) = match first {
            // The kill point can land beyond the stream; then the first
            // run simply completes and there is nothing to recover.
            DurableRun::Completed { summary, state_digest, .. } => (summary, state_digest),
            DurableRun::Killed => {
                let mut p = DurablePipeline::recover(
                    config.clone(), Vec::new(), durable_cfg(&dir, snapshot_every),
                ).expect("recover");
                prop_assert_eq!(p.metrics().snapshot().recoveries, 1);
                match p.run(reports.iter().copied(), None).expect("final run") {
                    DurableRun::Completed { summary, state_digest, .. } => (summary, state_digest),
                    DurableRun::Killed => unreachable!("no kill switch armed"),
                }
            }
        };
        std::fs::remove_dir_all(&dir).ok();

        prop_assert_eq!(digest, live_digest);
        prop_assert_eq!(&summary.gateways, &live_summary.gateways);
        prop_assert_eq!(&summary.support, &live_summary.support);
        prop_assert_eq!(
            summary.metrics.replay_invariant_core(),
            live_summary.metrics.replay_invariant_core()
        );
        prop_assert!(summary.metrics.fully_accounted());
        prop_assert!(summary.metrics.durably_accounted());
    }
}

/// A stale lock (the aftermath of a real SIGKILL: the owner is dead but
/// its lock file survives) refuses plain recovery with a typed error and
/// recovers bit-identically under `takeover`.
#[test]
fn stale_lock_requires_takeover_and_recovers_exactly() {
    let reports = fleet_reports(2);
    let config = config(2);
    let (live_summary, live_digest) = live_run(&reports, &config, &[], 2_000);

    let dir = scratch("takeover");
    let mut p = DurablePipeline::create(config.clone(), Vec::new(), durable_cfg(&dir, 2_000))
        .expect("create");
    let fingerprint = p.fingerprint();
    let run = p
        .run(
            reports.iter().copied(),
            Some(KillPoint::after(reports.len() as u64 / 2)),
        )
        .expect("killed run");
    assert!(matches!(run, DurableRun::Killed));
    drop(p);

    // The cooperative kill released the lock (same PID); forge the stale
    // lock a genuine SIGKILL would have left: a dead owner, our config.
    std::fs::write(
        dir.join(LOCK_FILE),
        format!("pid={}\nfingerprint={fingerprint:016x}\n", u32::MAX - 1),
    )
    .expect("forge stale lock");

    match DurablePipeline::recover(config.clone(), Vec::new(), durable_cfg(&dir, 2_000)) {
        Err(DurableError::Lock(LockError::Stale { pid, .. })) => assert_eq!(pid, u32::MAX - 1),
        Ok(_) => panic!("recovery under a stale lock must demand takeover"),
        Err(e) => panic!("expected Stale, got {e:?}"),
    }

    let takeover_cfg = DurableConfig {
        takeover: true,
        ..durable_cfg(&dir, 2_000)
    };
    let mut p =
        DurablePipeline::recover(config.clone(), Vec::new(), takeover_cfg).expect("takeover");
    assert_eq!(p.metrics().snapshot().lock_takeovers, 1);
    let run = p.run(reports.iter().copied(), None).expect("final run");
    std::fs::remove_dir_all(&dir).ok();
    match run {
        DurableRun::Completed {
            summary,
            state_digest,
            durability,
        } => {
            assert_eq!(durability, Durability::Durable);
            assert_eq!(state_digest, live_digest, "takeover recovery diverged");
            assert_eq!(summary.gateways, live_summary.gateways);
        }
        DurableRun::Killed => unreachable!("no kill switch armed"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole proof obligation: for any stream, any kill point and
    /// any seeded fault schedule over rotating + compacting segments, the
    /// finished run either reproduces the uninterrupted digest bit-for-bit
    /// or reports a typed, counted durability gap — and the conservation
    /// laws hold either way. Compaction never leaves a surviving sealed
    /// segment fully covered by the live snapshot.
    #[test]
    fn faulted_recovery_matches_or_reports_typed_gap(
        reports in prop::collection::vec(arb_report(), 1..200),
        kill_frac in 0.0f64..1.2,
        fault_seed in 0u64..(1 << 48),
        n_faults in 0usize..10,
    ) {
        let config = prop_config();
        let snapshot_every = 30;
        let (live_summary, live_digest) =
            live_run(&reports, &config, &[], snapshot_every);

        let specs: Vec<FaultSpec> = fault_schedule(fault_seed, 300, n_faults)
            .iter()
            .map(|e| FaultSpec { op: e.op, kind: fault_kind(e.kind) })
            .collect();
        let dir = scratch("fault");
        // Tiny segments force rotation + compaction under the storm; the
        // shared FaultyFs op counter spans both legs.
        let dcfg = DurableConfig {
            snapshot_every_reports: snapshot_every,
            segment_bytes: 600,
            io: IoPolicy::no_backoff(2),
            fs: Arc::new(FaultyFs::new(&specs)),
            ..DurableConfig::new(dir.clone())
        };
        let mut p = DurablePipeline::create(config.clone(), Vec::new(), dcfg.clone())
            .expect("create");
        let kill_after = 1 + (kill_frac * reports.len() as f64) as u64;
        let first = p
            .run(reports.iter().copied(), Some(KillPoint::after(kill_after)))
            .expect("first leg");
        let (summary, digest, durability) = match first {
            DurableRun::Completed { summary, state_digest, durability } => {
                (summary, state_digest, durability)
            }
            DurableRun::Killed => {
                drop(p);
                let mut p = DurablePipeline::recover(config.clone(), Vec::new(), dcfg.clone())
                    .expect("recover");
                // Mid-stream state can hold unclassified in-flight
                // reports (fully_accounted is a quiescence law), but the
                // durability books must balance immediately.
                let m = p.metrics().snapshot();
                prop_assert!(m.durably_accounted(), "recovered gap must be typed");
                match p.run(reports.iter().copied(), None).expect("final run") {
                    DurableRun::Completed { summary, state_digest, durability } => {
                        (summary, state_digest, durability)
                    }
                    DurableRun::Killed => unreachable!("no kill switch armed"),
                }
            }
        };

        // Zero false loss: bit-identical, or a typed gap with balanced books.
        let m = &summary.metrics;
        prop_assert!(m.fully_accounted());
        prop_assert!(m.durably_accounted());
        match durability {
            Durability::Durable => {
                prop_assert_eq!(m.durability_gap(), 0);
                prop_assert_eq!(digest, live_digest, "no gap, so no divergence");
                prop_assert_eq!(&summary.gateways, &live_summary.gateways);
                prop_assert_eq!(&summary.support, &live_summary.support);
            }
            Durability::Degraded { gap } => {
                prop_assert!(gap > 0, "degraded must name a non-zero gap");
                prop_assert_eq!(m.durability_gap(), gap);
            }
        }

        // Compaction invariant: every surviving sealed segment (all but
        // the newest per shard) holds a record past the live snapshot's
        // coverage. Record layout: u32 len + u32 crc + payload, seq first.
        for shard in 0..config.shards {
            let coverage = match snapshot_coverage(&dir, shard) {
                Ok(Some(c)) => c,
                _ => continue, // snapshot dead or absent: nothing covered
            };
            let segs = segment_files(&dir, shard).expect("list segments");
            if segs.len() < 2 {
                continue;
            }
            for (_, path) in &segs[..segs.len() - 1] {
                let bytes = std::fs::read(path).expect("read segment");
                let whole = (bytes.len().saturating_sub(36)) / 48;
                prop_assert!(whole > 0, "sealed segments are never empty shells");
                let off = 36 + (whole - 1) * 48 + 8;
                let last_seq = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
                prop_assert!(
                    last_seq > coverage,
                    "covered segment {} survived compaction (last {} <= {})",
                    path.display(), last_seq, coverage
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
