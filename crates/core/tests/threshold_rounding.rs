//! Regression tests for `CondensedMatrix` f32 quantization at decision
//! thresholds, plus the observability bit-identity and conservation
//! guarantees.
//!
//! The condensed similarity matrix stores `f64` correlations rounded to
//! `f32`. Near a decision threshold that rounding is one-sided trouble: an
//! exact similarity in the half-ULP band just *below* φ = 0.8 (or 0.6)
//! rounds **up** across the threshold, so a pre-fix `≥ φ` comparison on the
//! `f32` admits a pair the paper's Definition 5 excludes. The tests here
//! construct such pairs by bisection and assert motif discovery now rejects
//! them (re-verifying near-threshold comparisons in `f64`), while pairs
//! comfortably over the threshold still join.

use wtts_core::motif::{discover_motifs, discover_motifs_observed, MotifConfig};
use wtts_core::obs::PipelineObs;
use wtts_core::stationarity::strong_stationarity_at;
use wtts_core::{
    cor, cor_matrix, cor_matrix_observed, profile_series, profile_series_observed,
    strong_stationarity_observed, CorMatrixConfig,
};

/// The base window: one large outlier followed by scrambled small values.
/// Paired with [`probe_window`], the Pearson coefficient is a smooth,
/// monotone function of the probe's outlier `t` — ideal for bisection.
fn anchor_window(n: usize) -> Vec<f64> {
    let mut w = vec![1000.0];
    w.extend((1..n).map(|k| ((k * 37) % 19) as f64));
    w
}

/// The probe window: outlier `t` at the anchor's outlier position, then a
/// *differently* scrambled small tail, so the rank-based coefficients stay
/// fixed (and low) for every `t` above the tail's maximum of 16.
fn probe_window(n: usize, t: f64) -> Vec<f64> {
    let mut w = vec![t];
    w.extend((1..n).map(|k| ((k * 53) % 17) as f64));
    w
}

/// Bisects the probe outlier until `cor(anchor, probe)` lands in the f64
/// band just below `threshold` that rounds *up* to an f32 `≥ threshold` —
/// the exact inputs on which a verdict taken off the f32 matrix flips.
fn pair_rounding_up_across(threshold: f64, n: usize) -> (Vec<f64>, Vec<f64>) {
    let x = anchor_window(n);
    // Keep t above the probe tail's value range so ranks never change.
    let mut lo = 20.0f64;
    let mut hi = 1e7f64;
    let c_lo = cor(&x, &probe_window(n, lo));
    let c_hi = cor(&x, &probe_window(n, hi));
    assert!(
        c_lo < threshold && c_hi > threshold,
        "bisection bracket broken: cor({lo}) = {c_lo}, cor({hi}) = {c_hi}"
    );
    for _ in 0..200 {
        let mid = lo + (hi - lo) / 2.0;
        if mid == lo || mid == hi {
            break;
        }
        if cor(&x, &probe_window(n, mid)) < threshold {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let y = probe_window(n, lo);
    let exact = cor(&x, &y);
    assert!(
        exact < threshold,
        "premise: exact f64 similarity {exact} must sit below {threshold}"
    );
    assert!(
        (exact as f32) as f64 >= threshold,
        "premise: f32 rounding must carry {exact} up across {threshold} \
         (rounded to {})",
        exact as f32
    );
    (x, y)
}

/// A probe pair comfortably above the threshold (no rounding ambiguity).
fn pair_clearly_above(threshold: f64, n: usize) -> (Vec<f64>, Vec<f64>) {
    let x = anchor_window(n);
    let mut lo = 20.0f64;
    let mut hi = 1e7f64;
    // Aim mid-way between the threshold and 1 — far outside any band.
    let target = (threshold + 1.0) / 2.0;
    for _ in 0..200 {
        let mid = lo + (hi - lo) / 2.0;
        if mid == lo || mid == hi {
            break;
        }
        if cor(&x, &probe_window(n, mid)) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let y = probe_window(n, hi);
    let exact = cor(&x, &y);
    assert!(exact >= target && exact < 0.99, "control pair at {exact}");
    (x, y)
}

/// A pair whose exact similarity sits a half f32 ULP below φ = 0.8 must not
/// form a motif: the pre-fix code admitted it off the rounded-up f32.
#[test]
fn f32_round_up_at_phi_does_not_flip_membership() {
    let (x, y) = pair_rounding_up_across(0.8, 24);
    let motifs = discover_motifs(&[x, y], &MotifConfig::default());
    assert!(
        motifs.is_empty(),
        "pair below φ in f64 formed a motif off the rounded f32: {motifs:?}"
    );
}

/// The same construction at the merge/group threshold value 0.6 (¾φ, the
/// dominance threshold and the stationarity threshold share it).
#[test]
fn f32_round_up_at_group_threshold_does_not_flip_membership() {
    let (x, y) = pair_rounding_up_across(0.6, 24);
    let motifs = discover_motifs(
        &[x, y],
        &MotifConfig {
            phi: 0.6,
            ..MotifConfig::default()
        },
    );
    assert!(
        motifs.is_empty(),
        "pair below 0.6 in f64 formed a motif off the rounded f32: {motifs:?}"
    );
}

/// Positive control: the re-verification guard must not reject pairs that
/// genuinely clear the threshold.
#[test]
fn clearly_similar_pair_still_forms_a_motif() {
    let (x, y) = pair_clearly_above(0.8, 24);
    let motifs = discover_motifs(&[x, y], &MotifConfig::default());
    assert_eq!(motifs.len(), 1, "control pair must form one motif");
    assert_eq!(motifs[0].support(), 2);
}

/// The near-threshold pair is exactly what the observability layer's
/// `f64_reverified` counter instruments: discovering over it must trigger
/// at least one f64 re-verification, and the books must balance.
#[test]
fn near_threshold_pair_is_reverified_and_counted() {
    let (x, y) = pair_rounding_up_across(0.8, 24);
    let obs = PipelineObs::new();
    let motifs = discover_motifs_observed(&[x, y], &MotifConfig::default(), Some(&obs));
    assert!(motifs.is_empty());
    let snap = obs.snapshot();
    assert!(snap.quiescent(), "all stages quiescent after a run");
    assert!(
        snap.counter("f64_reverified") >= 1,
        "the constructed pair must land in the re-verification band"
    );
    assert_eq!(snap.counter("pairs_evaluated"), 1);
    assert_eq!(
        snap.counter("candidate_pairs") + snap.counter("pairs_pruned"),
        snap.counter("pairs_evaluated"),
        "every evaluated pair is either a candidate or pruned"
    );
    assert_eq!(
        snap.counter("near_phi"),
        1,
        "the pair sits within 1e-3 of φ"
    );
}

/// Fixture for the bit-identity checks: three clusters plus noise and a
/// NaN-holed window, big enough to exercise candidate, growth and merge
/// phases.
fn mixed_windows() -> Vec<Vec<f64>> {
    let mut windows: Vec<Vec<f64>> = (0..6)
        .map(|s| {
            (0..24)
                .map(|b| {
                    let base = if b >= 18 { 900.0 } else { 8.0 };
                    base + ((b * 7 + s * 13) % 11) as f64
                })
                .collect()
        })
        .collect();
    windows.extend((0..5).map(|s| {
        (0..24)
            .map(|b| {
                let base = if (6..9).contains(&b) { 700.0 } else { 5.0 };
                base + ((b * 5 + s * 17) % 13) as f64
            })
            .collect()
    }));
    windows.extend((0..4).map(|s: usize| {
        (0..24)
            .map(|b: usize| ((b * 7919 + s * 104729) % 997) as f64)
            .collect()
    }));
    let mut holey: Vec<f64> = (0..24).map(|b| (b % 7) as f64).collect();
    holey[3] = f64::NAN;
    holey[15] = f64::NAN;
    windows.push(holey);
    windows
}

/// Enabling observability must not change a single output bit: the metrics
/// layer only observes, never decides.
#[test]
fn observed_runs_are_bit_identical_to_unobserved() {
    let windows = mixed_windows();
    let obs = PipelineObs::new();

    // Motif discovery.
    let plain = discover_motifs(&windows, &MotifConfig::default());
    let observed = discover_motifs_observed(&windows, &MotifConfig::default(), Some(&obs));
    assert_eq!(plain, observed);

    // The condensed matrix, compared bit for bit.
    let profiles = profile_series(&windows);
    let profiles_obs = profile_series_observed(&windows, Some(&obs));
    let config = CorMatrixConfig::default();
    let m_plain = cor_matrix(&profiles, &config);
    let m_obs = cor_matrix_observed(&profiles_obs, &config, Some(&obs));
    assert_eq!(m_plain.n(), m_obs.n());
    for (a, b) in m_plain.values().iter().zip(m_obs.values()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // Stationarity sweeps, min_cor compared bit for bit.
    let refs: Vec<&[f64]> = windows.iter().map(|w| w.as_slice()).collect();
    let s_plain = strong_stationarity_at(&refs, 0.6, 0.05).unwrap();
    let s_obs = strong_stationarity_observed(&refs, 0.6, 0.05, Some(&obs)).unwrap();
    assert_eq!(s_plain.min_cor.to_bits(), s_obs.min_cor.to_bits());
    assert_eq!(s_plain, s_obs);

    // And the registry that watched all three is coherent.
    let snap = obs.snapshot();
    assert!(snap.quiescent());
    assert!(snap.counter("pairs_evaluated") > 0);
    assert!(snap.counter("ks_tests") > 0);
    assert!(snap.stationarity_sim_millis.total() > 0);
}

/// The snapshot's conservation law holds at quiescence after a
/// multi-threaded matrix fill.
#[test]
fn row_fill_stages_conserve_across_threads() {
    let windows = mixed_windows();
    let obs = PipelineObs::new();
    let profiles = profile_series(&windows);
    let config = CorMatrixConfig {
        threads: Some(4),
        ..CorMatrixConfig::default()
    };
    let _ = cor_matrix_observed(&profiles, &config, Some(&obs));
    let snap = obs.snapshot();
    assert!(snap.quiescent(), "{snap:?}");
    let row_fill = &snap
        .stages
        .iter()
        .find(|(n, _)| *n == "row_fill")
        .unwrap()
        .1;
    assert_eq!(row_fill.entered, (windows.len() - 1) as u64);
    assert_eq!(row_fill.latency_ns.total(), row_fill.exited);
}
