//! Property-based tests of the framework's invariants.

use proptest::prelude::*;
use wtts_core::background::{capped_tau, estimate_tau, remove_background, TAU_CAP};
use wtts_core::clustering::average_linkage;
use wtts_core::engine::{
    cor_matrix, cor_matrix_pruned, correlation_similarity_profiled, profile_series, sketch_series,
    CorMatrixConfig, PruneConfig,
};
use wtts_core::motif::{discover_motifs, discover_motifs_pruned, MotifConfig};
use wtts_core::sax::{alphabet_utilization, dominant_symbol_share, paa, sax_word};
use wtts_core::similarity::{cor, correlation_similarity};
use wtts_core::stationarity::strong_stationarity;
use wtts_core::streaming::OnlinePearson;
use wtts_stats::{CorProfile, CorScratch, ALPHA};
use wtts_timeseries::TimeSeries;

fn traffic(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e7, len)
}

/// A traffic sample that may be a NaN hole (missing minute) or a quantized
/// value (heavy ties) — the two regimes that exercise the engine's
/// pairwise-deletion fallback and tie corrections.
fn holey_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        5 => 0.0f64..1e7,
        2 => Just(f64::NAN),
        3 => (0u32..4).prop_map(|q| (q * 250) as f64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// cor() always lies in [-1, 1] and equals 0 or a significant
    /// coefficient.
    #[test]
    fn cor_is_bounded_and_consistent(x in traffic(3..50), y in traffic(3..50)) {
        let n = x.len().min(y.len());
        let sim = correlation_similarity(&x[..n], &y[..n]);
        prop_assert!((-1.0..=1.0).contains(&sim.value));
        match sim.best {
            None => prop_assert_eq!(sim.value, 0.0),
            Some(_) => {
                let candidates = [sim.pearson.value, sim.spearman.value, sim.kendall.value];
                prop_assert!(candidates.iter().any(|c| (c - sim.value).abs() < 1e-12));
            }
        }
    }

    /// Background removal is idempotent and never increases totals.
    #[test]
    fn background_removal_idempotent(values in traffic(5..300), tau in 0.0f64..1e5) {
        let s = TimeSeries::per_minute(values);
        let once = remove_background(&s, tau);
        let twice = remove_background(&once, tau);
        prop_assert_eq!(once.values(), twice.values());
        prop_assert!(once.total() <= s.total() + 1e-9);
        prop_assert!(capped_tau(tau) <= TAU_CAP);
    }

    /// The estimated tau always lies within the observed value range.
    #[test]
    fn tau_within_range(values in traffic(5..300)) {
        let s = TimeSeries::per_minute(values.clone());
        let tau = estimate_tau(&s).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(tau >= min - 1e-9 && tau <= max + 1e-9);
    }

    /// Strong stationarity of any window set against itself holds whenever
    /// the windows carry signal.
    #[test]
    fn stationarity_reflexive(w in traffic(8..60)) {
        let constant = w.iter().all(|&v| v == w[0]);
        if let Some(check) = strong_stationarity(&[&w, &w]) {
            if !constant {
                prop_assert!(!check.ks_rejected, "identical distributions");
                prop_assert!((check.min_cor - 1.0).abs() < 1e-9 || !check.correlations_pass);
            }
        }
    }

    /// Average-linkage dendrograms have monotone non-decreasing heights for
    /// ultrametric-ish inputs and always n-1 merges.
    #[test]
    fn dendrogram_merge_count(n in 2usize..10) {
        // Symmetric random-ish distance matrix from a deterministic hash.
        let mut dist = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = (((i * 31 + j * 17) % 97) as f64 + 1.0) / 97.0;
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        let dendro = average_linkage(&dist, n);
        prop_assert_eq!(dendro.steps.len(), n - 1);
        // Cutting at the maximum height yields a single cluster.
        let clusters = dendro.cut(2.0);
        prop_assert_eq!(clusters.len(), 1);
        prop_assert_eq!(clusters[0].len(), n);
        // Cutting below zero keeps singletons.
        prop_assert_eq!(dendro.cut(-1.0).len(), n);
    }

    /// SAX words always use a valid alphabet and PAA has the right length.
    #[test]
    fn sax_word_valid(values in traffic(8..200), segments in 2usize..32, alphabet in 2usize..10) {
        let p = paa(&values, segments);
        prop_assert_eq!(p.len(), segments);
        let word = sax_word(&values, segments, alphabet);
        prop_assert_eq!(word.len(), segments);
        for &s in &word {
            prop_assert!((s as usize) < alphabet);
        }
        let util = alphabet_utilization(&word, alphabet);
        prop_assert!(util > 0.0 && util <= 1.0);
        let share = dominant_symbol_share(&word);
        prop_assert!(share >= 1.0 / segments as f64 && share <= 1.0);
    }

    /// Online Pearson agrees with the batch Definition 1 Pearson component.
    #[test]
    fn online_matches_batch_pearson(x in traffic(3..100), y in traffic(3..100)) {
        let n = x.len().min(y.len());
        let mut online = OnlinePearson::new();
        for i in 0..n {
            online.push(x[i], y[i]);
        }
        let batch = wtts_stats::pearson(&x[..n], &y[..n]);
        match online.correlation() {
            Some(r) => prop_assert!((r - batch.value).abs() < 1e-6),
            None => prop_assert_eq!(batch.value, 0.0),
        }
    }

    /// cor distance is within [0, 2] and zero-distance implies similarity 1.
    #[test]
    fn cor_distance_bounds(x in traffic(5..60)) {
        let d = 1.0 - cor(&x, &x);
        prop_assert!((0.0..=2.0).contains(&d));
        let constant = x.iter().all(|&v| v == x[0]);
        if !constant {
            prop_assert!(d < 1e-9, "self-distance must vanish: {d}");
        }
    }

    /// Every cor_matrix entry is bit-identical to the per-pair Definition 1
    /// measure, including series with NaN holes and tie-heavy values.
    #[test]
    fn cor_matrix_bit_identical(data in prop::collection::vec(holey_value(), 30..120), len in 5usize..15) {
        let series: Vec<Vec<f64>> = data.chunks_exact(len).map(|c| c.to_vec()).collect();
        if series.len() < 2 {
            continue;
        }
        let profiles = profile_series(&series);
        let matrix = cor_matrix(&profiles, &CorMatrixConfig::default());
        for i in 0..series.len() {
            for j in (i + 1)..series.len() {
                let reference = cor(&series[i], &series[j]) as f32;
                prop_assert_eq!(
                    matrix.get(i, j).to_bits(),
                    reference.to_bits(),
                    "pair ({}, {}): engine {} vs per-pair {}",
                    i, j, matrix.get(i, j), reference
                );
            }
        }
    }

    /// All-tied (constant) series take the degenerate path in every
    /// coefficient; the engine must reproduce it exactly, at any thread
    /// count.
    #[test]
    fn cor_matrix_handles_all_tied(v in 0.0f64..1e7, len in 3usize..20) {
        let constant = vec![v; len];
        let ramp: Vec<f64> = (0..len).map(|i| i as f64).collect();
        let series = [constant.clone(), ramp, constant];
        let profiles = profile_series(&series);
        for threads in [1, 4] {
            let matrix = cor_matrix(
                &profiles,
                &CorMatrixConfig { threads: Some(threads), ..CorMatrixConfig::default() },
            );
            for i in 0..series.len() {
                for j in (i + 1)..series.len() {
                    let reference = cor(&series[i], &series[j]) as f32;
                    prop_assert_eq!(matrix.get(i, j).to_bits(), reference.to_bits());
                }
            }
        }
    }

    /// Merging shard-local OnlinePearson accumulators is equivalent to one
    /// sequential pass, for ANY split of the stream — the invariant that
    /// makes the sharded ingest pipeline's dominance tracking independent
    /// of how gateways are partitioned.
    #[test]
    fn online_pearson_merge_matches_sequential(
        data in prop::collection::vec((0.0f64..1e7, 0.0f64..1e7), 4..120),
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let mut sequential = OnlinePearson::new();
        for &(x, y) in &data {
            sequential.push(x, y);
        }
        // Split into three runs at arbitrary points.
        let (lo, hi) = if cut_a <= cut_b { (cut_a, cut_b) } else { (cut_b, cut_a) };
        let i = (lo * data.len() as f64) as usize;
        let j = ((hi * data.len() as f64) as usize).max(i);
        let mut parts: Vec<OnlinePearson> = [&data[..i], &data[i..j], &data[j..]]
            .iter()
            .map(|chunk| {
                let mut p = OnlinePearson::new();
                for &(x, y) in *chunk {
                    p.push(x, y);
                }
                p
            })
            .collect();
        let mut merged = OnlinePearson::new();
        for p in &parts {
            merged.merge(p);
        }
        match (sequential.correlation(), merged.correlation()) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}"),
            (a, b) => prop_assert_eq!(a, b),
        }

        // Merge order must not matter either (associativity/commutativity up
        // to floating-point tolerance): fold right-to-left.
        let mut reversed = OnlinePearson::new();
        parts.reverse();
        for p in &parts {
            reversed.merge(p);
        }
        match (merged.correlation(), reversed.correlation()) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}"),
            (a, b) => prop_assert_eq!(a, b),
        }
    }

    /// Merging with NaN holes in the stream still matches sequential
    /// pairwise-complete semantics.
    #[test]
    fn online_pearson_merge_with_holes(data in prop::collection::vec((holey_value(), holey_value()), 4..80), split in 0.0f64..1.0) {
        let mut sequential = OnlinePearson::new();
        for &(x, y) in &data {
            sequential.push(x, y);
        }
        let i = (split * data.len() as f64) as usize;
        let mut left = OnlinePearson::new();
        let mut right = OnlinePearson::new();
        for &(x, y) in &data[..i] {
            left.push(x, y);
        }
        for &(x, y) in &data[i..] {
            right.push(x, y);
        }
        left.merge(&right);
        match (sequential.correlation(), left.correlation()) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}"),
            (a, b) => prop_assert_eq!(a, b),
        }
    }

    /// Zero false dismissals: the sketch-pruned sparse matrix agrees with
    /// the dense matrix on every pair at or above the threshold — survivor
    /// values bit-identical, absent pairs certifiably below φ — and the
    /// tier counters conserve, for arbitrary series (NaN holes, ties) and
    /// arbitrary thresholds.
    #[test]
    fn pruned_matrix_never_dismisses_falsely(
        data in prop::collection::vec(holey_value(), 40..160),
        len in 5usize..16,
        phi in 0.05f64..0.95,
    ) {
        let series: Vec<Vec<f64>> = data.chunks_exact(len).map(|c| c.to_vec()).collect();
        if series.len() < 2 {
            continue;
        }
        let profiles = profile_series(&series);
        let config = PruneConfig::at_threshold(phi);
        let sketches = sketch_series(&profiles, &config.sketch);
        let (sparse, stats) = cor_matrix_pruned(&profiles, &sketches, &config);
        let dense = cor_matrix(&profiles, &CorMatrixConfig::default());
        prop_assert!(stats.conserved(), "tier counters must balance");
        prop_assert_eq!(stats.pairs_total, (series.len() * (series.len() - 1) / 2) as u64);
        for i in 0..series.len() {
            for j in (i + 1)..series.len() {
                let d = dense.get(i, j);
                match sparse.get(i, j) {
                    Some(s) => prop_assert_eq!(
                        s.to_bits(), d.to_bits(),
                        "survivor ({}, {}) differs: {} vs {}", i, j, s, d
                    ),
                    None => prop_assert!(
                        (d as f64) < phi,
                        "pair ({}, {}) pruned at phi {} but dense is {}", i, j, phi, d
                    ),
                }
            }
        }
    }

    /// Sketch-pruned motif discovery returns exactly the motifs of the
    /// dense path — same members, same order — for arbitrary window sets
    /// and thresholds.
    #[test]
    fn pruned_motifs_match_dense(
        data in prop::collection::vec(holey_value(), 40..120),
        len in 6usize..12,
        phi in 0.2f64..0.95,
        merge in 0.1f64..0.9,
    ) {
        let windows: Vec<Vec<f64>> = data.chunks_exact(len).map(|c| c.to_vec()).collect();
        if windows.len() < 2 {
            continue;
        }
        let config = MotifConfig { phi, merge_threshold: merge, ..MotifConfig::default() };
        prop_assert_eq!(
            discover_motifs(&windows, &config),
            discover_motifs_pruned(&windows, &config)
        );
    }

    /// The profiled Definition 1 result matches correlation_similarity
    /// field for field (f64 bits) on inputs with NaN holes and ties.
    #[test]
    fn profiled_similarity_bit_identical(data in prop::collection::vec(holey_value(), 6..100)) {
        let len = data.len() / 2;
        let x = data[..len].to_vec();
        let y = data[len..2 * len].to_vec();
        let plain = correlation_similarity(&x, &y);
        let pa = CorProfile::new(&x);
        let pb = CorProfile::new(&y);
        let mut scratch = CorScratch::new();
        let fast = correlation_similarity_profiled(&pa, &pb, &mut scratch, ALPHA);
        prop_assert_eq!(plain.value.to_bits(), fast.value.to_bits());
        prop_assert_eq!(plain.best, fast.best);
        prop_assert_eq!(plain.pearson, fast.pearson);
        prop_assert_eq!(plain.spearman, fast.spearman);
        prop_assert_eq!(plain.kendall, fast.kendall);
    }
}
