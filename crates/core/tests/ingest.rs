//! End-to-end ingest tests: gwsim fleet → chaos channel → sharded pipeline.
//!
//! These exercise the whole chain the module exists for — simulated
//! household traffic uploaded as cumulative counter reports through a lossy,
//! duplicating, reordering channel, ingested without a single panic, with
//! every dropped report accounted for and results independent of the shard
//! count.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wtts_core::estimate_tau;
use wtts_core::ingest::{IngestConfig, IngestPipeline, IngestReport};
use wtts_gwsim::{gateway_reports, ChannelConfig, Fleet, FleetConfig, TaggedReport};
use wtts_timeseries::{CounterTrace, Minute, MINUTES_PER_WEEK};

fn envelope(t: &TaggedReport) -> IngestReport {
    IngestReport {
        gateway: t.gateway as u64,
        device: t.device as u32,
        at: t.report.at,
        cum_in: t.report.cum_in,
        cum_out: t.report.cum_out,
    }
}

/// A channel with everything wrong at once: loss (→ gaps and reset-spanning
/// resets), duplication (→ duplicate drops) and reordering (→ late drops).
fn chaos() -> ChannelConfig {
    ChannelConfig {
        loss: 0.02,
        duplication: 0.01,
        reorder: 0.01,
    }
}

fn fleet_reports(n_gateways: usize, channel: ChannelConfig) -> Vec<IngestReport> {
    let fleet = Fleet::new(FleetConfig {
        n_gateways,
        weeks: 1,
        ..FleetConfig::default()
    });
    let mut out = Vec::new();
    for id in 0..n_gateways {
        let gw = fleet.gateway(id);
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE + id as u64);
        out.extend(gateway_reports(&gw, channel, &mut rng).iter().map(envelope));
    }
    out
}

fn config(shards: usize) -> IngestConfig {
    IngestConfig {
        shards,
        ..IngestConfig::default()
    }
}

/// The headline acceptance run: a 200-gateway fleet week through the chaos
/// channel — zero panics, every malformed report a counted outcome, the
/// conservation law closed.
#[test]
fn two_hundred_gateway_week_fully_accounted() {
    let reports = fleet_reports(200, chaos());
    let offered = reports.len() as u64;
    assert!(offered > 1_000_000, "expected a substantial stream");
    // Some simulated gateways are offline for the whole week and upload
    // nothing; only reporting gateways can grow a lane.
    let reporting: std::collections::HashSet<u64> = reports.iter().map(|r| r.gateway).collect();
    assert!(
        reporting.len() > 150,
        "only {} gateways report",
        reporting.len()
    );

    let pipeline = IngestPipeline::new(config(3), Vec::new());
    let summary = pipeline.run(reports);
    let m = &summary.metrics;

    assert_eq!(m.offered, offered);
    assert!(
        m.fully_accounted(),
        "ingested {} + dropped {} != offered {}",
        m.ingested,
        m.dropped(),
        m.offered
    );
    // The chaos channel must actually have exercised every degradation path.
    assert!(m.dropped_duplicate > 0, "no duplicates seen");
    assert!(m.dropped_late > 0, "no late reports seen");
    // gwsim resets counters only at re-association, which always follows a
    // multi-minute absence — so resets surface as reset-spanning gaps here
    // (adjacent-minute resets are covered by the unit tests).
    assert!(m.reset_spanning_gaps > 0, "no reset-spanning gaps seen");

    assert_eq!(summary.gateways.len(), reporting.len());
    let routed: u64 = summary.gateways.iter().map(|g| g.reports).sum();
    assert_eq!(routed, offered, "every report reached exactly one lane");
    // Fleet-wide, plenty of full days seal (some simulated gateways have
    // multi-day outages, so per-gateway counts vary).
    assert!(m.windows_sealed >= 200 * 2, "sealed {}", m.windows_sealed);
    let lane_sealed: u64 = summary.gateways.iter().map(|g| g.windows_sealed).sum();
    assert_eq!(lane_sealed, m.windows_sealed);
    assert!(summary.gateways.iter().all(|g| g.devices > 0));

    // Per-shard batch-stage conservation at quiescence: every batch that
    // entered a shard worker exited it, nothing is in flight, every batch
    // left a latency sample, and the shards together processed the stream.
    assert_eq!(m.per_shard.len(), 3);
    let mut batches_total = 0;
    for (shard, s) in m.per_shard.iter().enumerate() {
        let stage = &s.batch_stage;
        assert!(stage.quiescent(), "shard {shard} not quiescent: {stage:?}");
        assert!(stage.entered > 0, "shard {shard} saw no batches");
        assert_eq!(
            stage.latency_ns.total(),
            stage.exited,
            "shard {shard}: one latency sample per exited batch"
        );
        assert_eq!(s.queue_depth, 0, "shard {shard} queue drained");
        batches_total += stage.entered;
    }
    let processed: u64 = m.per_shard.iter().map(|s| s.processed).sum();
    assert_eq!(processed, offered, "shards processed the whole stream");
    // Batching is bounded by the configured batch size.
    let batch_reports = IngestConfig::default().batch_reports as u64;
    assert!(
        batches_total >= offered / batch_reports,
        "{batches_total} batches cannot carry {offered} reports"
    );

    // The emitted JSON carries the same books the assertions above checked.
    let json = m.to_json();
    assert!(json.contains("\"fully_accounted\":true"));
    assert!(json.contains("\"batches_in_flight\":0"));
}

/// Shard-count invariance on a chaotic stream: the partitioning is pure
/// routing, never semantics.
#[test]
fn chaotic_stream_is_shard_invariant() {
    let reports = fleet_reports(12, chaos());
    let run = |shards| IngestPipeline::new(config(shards), Vec::new()).run(reports.clone());
    let one = run(1);
    assert!(one.metrics.fully_accounted());
    assert!(one.metrics.dropped() > 0, "chaos must cause drops");
    for shards in [2, 4] {
        let many = run(shards);
        assert_eq!(one.gateways, many.gateways, "shards={shards}");
        assert_eq!(one.metrics.ingested, many.metrics.ingested);
        assert_eq!(one.metrics.dropped_late, many.metrics.dropped_late);
        assert_eq!(
            one.metrics.dropped_duplicate,
            many.metrics.dropped_duplicate
        );
        assert_eq!(one.metrics.windows_sealed, many.metrics.windows_sealed);
    }
}

/// On a perfect channel nothing is dropped — not even across the simulated
/// overnight disconnections and multi-day gateway outages, which the
/// future-jump corroboration logic must recognize as genuine.
#[test]
fn lossless_week_drops_nothing() {
    let reports = fleet_reports(6, ChannelConfig::lossless());
    let pipeline = IngestPipeline::new(config(2), Vec::new());
    let summary = pipeline.run(reports);
    let m = &summary.metrics;
    assert_eq!(m.dropped(), 0, "lossless channel must drop nothing");
    assert!(m.fully_accounted());
    assert!(m.windows_sealed > 0);
}

/// Regression guard at the application level for the counter-reset decoding
/// fix: a counter reset hidden inside a multi-minute outage must not leak a
/// phantom mega-delta into the background-threshold estimate (Section 6.1's
/// upper whisker), which feeds every `τ_back` in the paper's pipeline.
#[test]
fn reset_spanning_gap_does_not_poison_background_threshold() {
    let mut trace = CounterTrace::new();
    // A steady 400 B/min device for two days...
    let mut cum = 0u64;
    for m in 0..2880u32 {
        cum += 400;
        trace.push(Minute(m), cum);
    }
    // ...then a 6-hour outage over which the gateway rebooted (counter
    // restarts near zero) and steady reporting resumes.
    let mut cum = 150u64;
    for m in 3240..4320u32 {
        trace.push(Minute(m), cum);
        cum += 400;
    }
    let series = trace.to_per_minute(Minute(0), MINUTES_PER_WEEK as usize);
    let tau = estimate_tau(&series).expect("plenty of observations");
    // Before the fix the whole post-reset cumulative was charged to one
    // minute, dragging the whisker far above any real per-minute value.
    assert!(tau <= 800.0, "whisker inflated to {tau}");
}
