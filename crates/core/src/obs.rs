//! Lock-free pipeline observability: per-stage counters, log-bucketed
//! histograms and span timers.
//!
//! The paper's conclusions rest on exact threshold comparisons (`cor ≥ φ`,
//! group similarity ¾φ, α = 0.05), yet a fleet-scale pipeline needs to
//! *see* how many comparisons land within rounding distance of a threshold,
//! where time goes inside a sweep, and which degenerate-statistics paths
//! fire — without perturbing the measurement. This module provides the
//! primitives, mirroring the design of [`crate::ingest::IngestMetrics`]:
//!
//! * [`Counter`] — a relaxed atomic `u64` event counter.
//! * [`LogHistogram`] — power-of-two-bucketed atomic histogram for
//!   latencies (nanoseconds) and values; `record` is one relaxed
//!   `fetch_add`, no locks anywhere on the hot path.
//! * [`Stage`] — entered/exited/in-flight counters plus a latency
//!   histogram; [`Stage::enter`] returns a [`Span`] guard that times the
//!   stage and closes the books on drop. The per-stage conservation law
//!   `entered == exited + in_flight` holds at every instant (checked by
//!   [`StageSnapshot::conserved`]) and tightens to `entered == exited` at
//!   quiescence ([`StageSnapshot::quiescent`]).
//! * [`PipelineObs`] — the registry wired through the batch analysis
//!   pipeline: correlation-engine profile build and row fill, motif
//!   discovery (candidate pairs evaluated / pruned / grown / merged, the
//!   near-threshold instrument), and stationarity sweeps.
//!
//! **Zero cost when disabled.** Instrumented entry points take
//! `Option<&PipelineObs>`; with `None` no atomic is touched and no clock is
//! read, and results are bit-identical either way (the registry only
//! *observes* — it never feeds back into a decision).
//!
//! [`PipelineObs::snapshot`] is a handful of relaxed loads producing a
//! serializable [`ObsSnapshot`]; [`ObsSnapshot::to_json`] emits the report
//! the `--metrics-json` example flags print.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of histogram buckets: one for zero plus one per power of two up
/// to `2^63`.
const BUCKETS: usize = 65;

/// A lock-free event counter (relaxed atomic increments).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count (relaxed load).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram over `u64` samples: bucket 0 counts exact
/// zeros, bucket `k ≥ 1` counts samples in `[2^(k-1), 2^k)`. Recording is a
/// single relaxed `fetch_add`; the bucket index is the sample's bit length,
/// so no search and no floating point on the hot path.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of the bucket counts (relaxed loads).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Formats an `f64` as a JSON number, or `null` when it is not finite.
///
/// Hand-rolled JSON emitters must never print `NaN`/`inf` — `{"mean":NaN}`
/// is not JSON and breaks every strict parser downstream (the CI smoke
/// parses these reports with `parse_constant` set to raise). Every float
/// that reaches a JSON report goes through this guard.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Inclusive upper bound of histogram bucket `k` (0, 1, 3, 7, …).
fn bucket_upper(k: usize) -> u64 {
    if k == 0 {
        0
    } else if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// Point-in-time copy of a [`LogHistogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per bucket; index = sample bit length (see [`LogHistogram`]).
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Upper bound of the bucket containing quantile `q` (a conservative
    /// estimate: the true quantile is at most this). Returns 0 for an empty
    /// histogram.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(k);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Mean of the bucket upper bounds weighted by count — a coarse,
    /// conservative central estimate. `NaN` for an empty histogram (the
    /// JSON report renders it as `null` via [`json_f64`]).
    pub fn mean_upper(&self) -> f64 {
        let total = self.total();
        let weighted: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(k, &c)| bucket_upper(k) as f64 * c as f64)
            .sum();
        weighted / total as f64
    }

    /// JSON fragment: totals, conservative p50/p99/mean and the non-empty
    /// buckets as `[upper_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| format!("[{},{}]", bucket_upper(k), c))
            .collect();
        format!(
            "{{\"count\":{},\"p50_le\":{},\"p99_le\":{},\"mean_le\":{},\"buckets\":[{}]}}",
            self.total(),
            self.quantile_upper(0.5),
            self.quantile_upper(0.99),
            json_f64(self.mean_upper()),
            buckets.join(",")
        )
    }
}

/// One pipeline stage: how many work items entered, how many exited, how
/// many are in flight right now, and a log-bucketed latency histogram in
/// nanoseconds. All updates are relaxed atomics; [`Stage::enter`] is the
/// only place a clock is read.
#[derive(Debug, Default)]
pub struct Stage {
    entered: Counter,
    exited: Counter,
    in_flight: Counter,
    latency_ns: LogHistogram,
}

impl Stage {
    /// Opens a span: increments `entered`/`in_flight` and starts the timer.
    /// Dropping the returned [`Span`] records the latency and moves the
    /// item from `in_flight` to `exited`.
    #[inline]
    pub fn enter(&self) -> Span<'_> {
        self.entered.incr();
        self.in_flight.incr();
        Span {
            stage: self,
            started: Instant::now(),
        }
    }

    /// Point-in-time copy of the stage counters.
    pub fn snapshot(&self) -> StageSnapshot {
        // Load in an order that keeps the conservation check sound under
        // concurrent spans: `exited` first, `entered` last, so a span
        // closing mid-snapshot can only make `exited + in_flight` over-count
        // relative to `entered` — never under-count below it at quiescence.
        let exited = self.exited.get();
        let in_flight = self.in_flight.0.load(Ordering::Relaxed);
        let entered = self.entered.get();
        StageSnapshot {
            entered,
            exited,
            in_flight,
            latency_ns: self.latency_ns.snapshot(),
        }
    }
}

/// RAII span timer returned by [`Stage::enter`].
#[derive(Debug)]
pub struct Span<'a> {
    stage: &'a Stage,
    started: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let ns = self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.stage.latency_ns.record(ns);
        self.stage.in_flight.0.fetch_sub(1, Ordering::Relaxed);
        self.stage.exited.incr();
    }
}

/// Point-in-time copy of one [`Stage`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Work items that entered the stage.
    pub entered: u64,
    /// Work items that exited the stage.
    pub exited: u64,
    /// Work items currently inside the stage.
    pub in_flight: u64,
    /// Stage latency histogram (nanoseconds).
    pub latency_ns: HistogramSnapshot,
}

impl StageSnapshot {
    /// The per-stage conservation law: every entered item is either done or
    /// in flight. (A snapshot taken while spans are closing may transiently
    /// over-count the right-hand side; at quiescence equality is exact.)
    pub fn conserved(&self) -> bool {
        self.entered <= self.exited + self.in_flight
            && self.exited + self.in_flight <= self.entered + self.in_flight
    }

    /// Quiescent conservation: nothing in flight and books balanced.
    pub fn quiescent(&self) -> bool {
        self.in_flight == 0 && self.entered == self.exited
    }

    /// The stage as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"entered\":{},\"exited\":{},\"in_flight\":{},\"latency_ns\":{}}}",
            self.entered,
            self.exited,
            self.in_flight,
            self.latency_ns.to_json()
        )
    }
}

/// Scales a similarity in `[-1, 1]` to an integer number of thousandths for
/// the value histogram (negative similarities clamp to bucket zero — the
/// thresholds the pipeline cares about are all positive).
pub fn sim_millis(sim: f64) -> u64 {
    (sim.clamp(0.0, 1.0) * 1000.0).round() as u64
}

/// Band around a decision threshold that counts as "near": the
/// near-threshold instrument reports comparisons within `1e-3` of φ or ¾φ,
/// the population whose verdicts rounding error could plausibly flip.
pub const NEAR_THRESHOLD_BAND: f64 = 1e-3;

/// The observability registry wired through the batch analysis pipeline.
///
/// One instance is shared by every thread of a run (all fields are atomic;
/// the struct is `Sync`). Every instrumented entry point takes
/// `Option<&PipelineObs>` — pass `None` and the pipeline runs exactly as
/// before, bit for bit.
#[derive(Debug, Default)]
pub struct PipelineObs {
    /// Per-series profile construction ([`crate::engine::profile_series`]).
    pub profile_build: Stage,
    /// Condensed-matrix row fill ([`crate::engine::cor_matrix`]); one span
    /// per row, across all worker threads.
    pub row_fill: Stage,
    /// One whole motif-discovery run.
    pub motif_discovery: Stage,
    /// One strong-stationarity sweep over a window set.
    pub stationarity_sweep: Stage,
    /// One granularity-pyramid construction (prefix sums plus levels) for a
    /// series entering the Definition-3 sweep.
    pub pyramid_build: Stage,
    /// One `(granularity, offset)` re-binning inside the sweep, whichever
    /// path served it.
    pub rebin: Stage,
    /// One window-set scoring pass (profiles plus the fused pair loop) for
    /// one sweep cell.
    pub window_score: Stage,
    /// Per-series pruning-sketch construction
    /// ([`crate::engine::sketch_series`]).
    pub sketch_build: Stage,
    /// One `(series, scale)` lag-search preparation: the correlation kernel
    /// side, pruning sketch and energy/missingness prefixes built on top of
    /// the re-binned series ([`crate::lagsearch`]).
    pub lag_prepare: Stage,
    /// One `(pair, scale)` lag-search scan: the prune cascade plus the
    /// exact cells across the whole lag range.
    pub lag_pair_scan: Stage,
    /// Pairs whose similarity was compared against a motif threshold.
    pub pairs_evaluated: Counter,
    /// Pairs accepted as motif candidates (`cor ≥ φ`).
    pub candidate_pairs: Counter,
    /// Pairs pruned below φ in the candidate scan.
    pub pairs_pruned: Counter,
    /// Windows added to an existing motif during greedy growth.
    pub members_grown: Counter,
    /// Motif pairs unified in the merge phase.
    pub motifs_merged: Counter,
    /// Comparisons landing within [`NEAR_THRESHOLD_BAND`] of φ.
    pub near_phi: Counter,
    /// Comparisons landing within [`NEAR_THRESHOLD_BAND`] of ¾φ.
    pub near_group: Counter,
    /// Near-threshold comparisons re-verified in f64 (the
    /// `CondensedMatrix` f32 quantization guard).
    pub f64_reverified: Counter,
    /// Two-sample KS tests run by stationarity sweeps.
    pub ks_tests: Counter,
    /// Re-binnings served from prefix sums (pyramid base or a level).
    pub rebins_pyramid: Counter,
    /// Re-binnings that fell back to direct summation (non-integer series).
    pub rebins_direct: Counter,
    /// Pyramid re-binnings that folded from a coarse level rather than the
    /// per-sample base (a subset of `rebins_pyramid`).
    pub level_folds: Counter,
    /// Pairs a pruned matrix build considered (its conservation total:
    /// the three prune tiers plus exact evaluations sum to this).
    pub prune_pairs_total: Counter,
    /// Pairs dismissed by the degenerate tier (constant side or too few
    /// shared observations).
    pub pairs_pruned_degenerate: Counter,
    /// Pairs dismissed by the symbolized (SAX MINDIST) bound tier.
    pub pairs_pruned_sax: Counter,
    /// Pairs dismissed by the segment-mean (moment signature) bound tier.
    pub pairs_pruned_moment: Counter,
    /// Pairs that fell through pruning and were evaluated exactly.
    pub prune_pairs_evaluated: Counter,
    /// Exactly-evaluated pairs that were ineligible for pruning because
    /// their finite masks differ (a subset of `prune_pairs_evaluated`).
    pub prune_mask_fallthrough: Counter,
    /// Lag-search `(pair, scale, lag)` cells considered — the conservation
    /// total: the three prune tiers plus exact evaluations sum to this.
    pub lag_cells_total: Counter,
    /// Lag cells dismissed wholesale because a side is degenerate at that
    /// scale (no observations or zero variance).
    pub lag_cells_pruned_degenerate: Counter,
    /// Lag-0 cells dismissed by the [`wtts_stats::prune_pair`] coefficient
    /// upper bounds on a shared finite mask.
    pub lag_cells_pruned_sketch: Counter,
    /// Lag cells dismissed by the segmented Cauchy–Schwarz energy bound.
    pub lag_cells_pruned_energy: Counter,
    /// Lag cells that fell through pruning and were evaluated exactly.
    pub lag_cells_evaluated: Counter,
    /// Pairwise similarities observed by stationarity sweeps, in
    /// thousandths (see [`sim_millis`]).
    pub stationarity_sim_millis: LogHistogram,
}

impl PipelineObs {
    /// An empty registry.
    pub fn new() -> PipelineObs {
        PipelineObs::default()
    }

    /// Point-in-time copy of every stage and counter (relaxed loads; cheap
    /// enough to poll while the pipeline runs).
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            stages: vec![
                ("profile_build", self.profile_build.snapshot()),
                ("row_fill", self.row_fill.snapshot()),
                ("motif_discovery", self.motif_discovery.snapshot()),
                ("stationarity_sweep", self.stationarity_sweep.snapshot()),
                ("pyramid_build", self.pyramid_build.snapshot()),
                ("rebin", self.rebin.snapshot()),
                ("window_score", self.window_score.snapshot()),
                ("sketch_build", self.sketch_build.snapshot()),
                ("lag_prepare", self.lag_prepare.snapshot()),
                ("lag_pair_scan", self.lag_pair_scan.snapshot()),
            ],
            counters: vec![
                ("pairs_evaluated", self.pairs_evaluated.get()),
                ("candidate_pairs", self.candidate_pairs.get()),
                ("pairs_pruned", self.pairs_pruned.get()),
                ("members_grown", self.members_grown.get()),
                ("motifs_merged", self.motifs_merged.get()),
                ("near_phi", self.near_phi.get()),
                ("near_group", self.near_group.get()),
                ("f64_reverified", self.f64_reverified.get()),
                ("ks_tests", self.ks_tests.get()),
                ("rebins_pyramid", self.rebins_pyramid.get()),
                ("rebins_direct", self.rebins_direct.get()),
                ("level_folds", self.level_folds.get()),
                ("prune_pairs_total", self.prune_pairs_total.get()),
                (
                    "pairs_pruned_degenerate",
                    self.pairs_pruned_degenerate.get(),
                ),
                ("pairs_pruned_sax", self.pairs_pruned_sax.get()),
                ("pairs_pruned_moment", self.pairs_pruned_moment.get()),
                ("prune_pairs_evaluated", self.prune_pairs_evaluated.get()),
                ("prune_mask_fallthrough", self.prune_mask_fallthrough.get()),
                ("lag_cells_total", self.lag_cells_total.get()),
                (
                    "lag_cells_pruned_degenerate",
                    self.lag_cells_pruned_degenerate.get(),
                ),
                (
                    "lag_cells_pruned_sketch",
                    self.lag_cells_pruned_sketch.get(),
                ),
                (
                    "lag_cells_pruned_energy",
                    self.lag_cells_pruned_energy.get(),
                ),
                ("lag_cells_evaluated", self.lag_cells_evaluated.get()),
            ],
            stationarity_sim_millis: self.stationarity_sim_millis.snapshot(),
        }
    }
}

/// Serializable point-in-time report of a [`PipelineObs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsSnapshot {
    /// Stage snapshots, in pipeline order, keyed by stage name.
    pub stages: Vec<(&'static str, StageSnapshot)>,
    /// Event counters, keyed by counter name.
    pub counters: Vec<(&'static str, u64)>,
    /// Value histogram of stationarity pair similarities (thousandths).
    pub stationarity_sim_millis: HistogramSnapshot,
}

impl ObsSnapshot {
    /// Whether every stage satisfies `entered == exited + in_flight`.
    pub fn conserved(&self) -> bool {
        self.stages.iter().all(|(_, s)| s.conserved())
    }

    /// Whether every stage is quiescent (`in_flight == 0`, books balanced).
    pub fn quiescent(&self) -> bool {
        self.stages.iter().all(|(_, s)| s.quiescent())
    }

    /// The value of a named counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// The full report as a JSON object.
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|(name, s)| format!("\"{name}\":{}", s.to_json()))
            .collect();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(name, v)| format!("\"{name}\":{v}"))
            .collect();
        format!(
            "{{\"stages\":{{{}}},\"counters\":{{{}}},\"stationarity_sim_millis\":{},\"conserved\":{},\"quiescent\":{}}}",
            stages.join(","),
            counters.join(","),
            self.stationarity_sim_millis.to_json(),
            self.conserved(),
            self.quiescent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = LogHistogram::new();
        for v in [0u64, 0] {
            h.record(v);
        }
        h.record(1); // bucket 1: [1, 2)
        h.record(2); // bucket 2: [2, 4)
        h.record(3);
        h.record(1024); // bucket 11
        let s = h.snapshot();
        assert_eq!(s.counts[0], 2);
        assert_eq!(s.counts[1], 1);
        assert_eq!(s.counts[2], 2);
        assert_eq!(s.counts[11], 1);
        assert_eq!(s.total(), 6);
    }

    #[test]
    fn quantile_upper_is_conservative() {
        let h = LogHistogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // True median 49/50 lives in bucket 6 ([32, 64)); upper bound 63.
        assert_eq!(s.quantile_upper(0.5), 63);
        assert_eq!(s.quantile_upper(1.0), 127);
        assert_eq!(
            HistogramSnapshot {
                counts: vec![0; BUCKETS]
            }
            .quantile_upper(0.5),
            0
        );
    }

    #[test]
    fn stage_conservation_through_span_lifecycle() {
        let stage = Stage::default();
        let before = stage.snapshot();
        assert!(before.quiescent());
        {
            let _span = stage.enter();
            let open = stage.snapshot();
            assert_eq!(open.entered, 1);
            assert_eq!(open.in_flight, 1);
            assert_eq!(open.exited, 0);
            assert!(open.conserved());
            assert!(!open.quiescent());
        }
        let after = stage.snapshot();
        assert!(after.quiescent());
        assert_eq!(after.entered, 1);
        assert_eq!(after.exited, 1);
        assert_eq!(after.latency_ns.total(), 1);
    }

    #[test]
    fn snapshot_json_is_well_formed_enough() {
        let obs = PipelineObs::new();
        {
            let _s = obs.row_fill.enter();
        }
        obs.near_phi.incr();
        let snap = obs.snapshot();
        assert!(snap.conserved());
        assert!(snap.quiescent());
        assert_eq!(snap.counter("near_phi"), 1);
        assert_eq!(snap.counter("no_such_counter"), 0);
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"row_fill\":{\"entered\":1,\"exited\":1,\"in_flight\":0"));
        assert!(json.contains("\"near_phi\":1"));
        assert!(json.contains("\"conserved\":true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
        // An empty histogram has no mean; the report must say null, never
        // a bare NaN token (which is not JSON).
        let empty = HistogramSnapshot {
            counts: vec![0; BUCKETS],
        };
        assert!(empty.mean_upper().is_nan());
        assert!(empty.to_json().contains("\"mean_le\":null"));
        let h = LogHistogram::new();
        h.record(3);
        assert_eq!(h.snapshot().mean_upper(), 3.0);
        assert!(h.snapshot().to_json().contains("\"mean_le\":3"));
    }

    #[test]
    fn sim_millis_scales_and_clamps() {
        assert_eq!(sim_millis(0.8), 800);
        assert_eq!(sim_millis(0.6004), 600);
        assert_eq!(sim_millis(-0.5), 0);
        assert_eq!(sim_millis(1.5), 1000);
    }

    #[test]
    fn counters_accumulate() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn spans_across_threads_stay_conserved() {
        let stage = Stage::default();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        let _span = stage.enter();
                    }
                });
            }
        });
        let s = stage.snapshot();
        assert!(s.quiescent());
        assert_eq!(s.entered, 800);
        assert_eq!(s.latency_ns.total(), 800);
    }
}
