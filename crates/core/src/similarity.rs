//! The correlation similarity measure (Definition 1).
//!
//! `cor(X, Y)` is the maximum of the *statistically significant* Pearson,
//! Spearman and Kendall correlation coefficients at level α = 0.05; when
//! none is significant, `cor(X, Y) = 0`. The three coefficients capture
//! complementary dependencies (linear, monotone, rank-concordance), share
//! the `[-1, 1]` domain and strength semantics, and taking the maximum keeps
//! whichever dependence is present. The measure is invariant to scaling —
//! it follows the *evolution* of traffic rather than its absolute volume.

use wtts_stats::sketch::{prune_pair, CorSketch, SketchConfig};
use wtts_stats::{
    kendall, pearson, spearman, CorProfile, CorrelationCoefficient, CorrelationTest, ALPHA,
};

/// Full result of evaluating the correlation similarity measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorSimilarity {
    /// The similarity value: the largest significant coefficient, or `0`.
    pub value: f64,
    /// Which coefficient supplied the value, `None` if none was significant.
    pub best: Option<CorrelationCoefficient>,
    /// The underlying Pearson test.
    pub pearson: CorrelationTest,
    /// The underlying Spearman test.
    pub spearman: CorrelationTest,
    /// The underlying Kendall test.
    pub kendall: CorrelationTest,
}

impl CorSimilarity {
    /// Whether any coefficient was significant.
    pub fn is_significant(&self) -> bool {
        self.best.is_some()
    }

    /// The distance form `1 − cor` used for clustering (Figure 3).
    pub fn distance(&self) -> f64 {
        1.0 - self.value
    }
}

/// Evaluates Definition 1 at significance level `alpha`.
///
/// Missing values are handled pairwise by the underlying tests.
pub fn correlation_similarity_at(x: &[f64], y: &[f64], alpha: f64) -> CorSimilarity {
    let p = pearson(x, y);
    let s = spearman(x, y);
    let k = kendall(x, y);
    let mut value = 0.0;
    let mut best = None;
    for test in [&p, &s, &k] {
        if test.significant(alpha) && (best.is_none() || test.value > value) {
            value = test.value;
            best = Some(test.coefficient);
        }
    }
    CorSimilarity {
        value,
        best,
        pearson: p,
        spearman: s,
        kendall: k,
    }
}

/// Evaluates Definition 1 at the paper's α = 0.05.
pub fn correlation_similarity(x: &[f64], y: &[f64]) -> CorSimilarity {
    correlation_similarity_at(x, y, ALPHA)
}

/// The similarity value alone: `cor(X, Y)` of Definition 1.
///
/// ```
/// use wtts_core::similarity::cor;
///
/// let x: Vec<f64> = (0..24).map(|h| if h >= 18 { 1000.0 + h as f64 } else { 5.0 }).collect();
/// let scaled: Vec<f64> = x.iter().map(|v| v * 3.0).collect();
/// assert!(cor(&x, &scaled) > 0.99); // invariant to scaling
/// assert_eq!(cor(&[1.0, 2.0], &[2.0, 4.0]), 0.0); // too short: not significant
/// ```
pub fn cor(x: &[f64], y: &[f64]) -> f64 {
    correlation_similarity(x, y).value
}

/// The derived distance `1 − cor(X, Y)` (`0` = identical evolution, `1` =
/// no significant dependence, up to `2` for perfect anti-correlation).
pub fn cor_distance(x: &[f64], y: &[f64]) -> f64 {
    1.0 - cor(x, y)
}

/// Whether `cor(x, y) ≥ threshold`, answered as cheaply as possible: a
/// sketch-bound check first (for same-mask pairs at a positive threshold),
/// exact Definition 1 only when the bounds cannot rule the pair out.
/// Always agrees with `cor(x, y) >= threshold`.
pub fn cor_at_least(x: &[f64], y: &[f64], threshold: f64) -> bool {
    let (px, py) = (CorProfile::new(x), CorProfile::new(y));
    if px.same_mask(&py) && threshold > 0.0 {
        let cfg = SketchConfig::default();
        let sx = CorSketch::from_profile(&px, &cfg);
        let sy = CorSketch::from_profile(&py, &cfg);
        if prune_pair(&sx, &sy, threshold).is_some() {
            return false;
        }
    }
    cor(x, y) >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_series_uses_pearson_or_equivalent() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 2.0).collect();
        let sim = correlation_similarity(&x, &y);
        assert!(sim.is_significant());
        assert!((sim.value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_invariance() {
        // The defining property: scaling traffic volume must not change the
        // similarity.
        let x: Vec<f64> = (0..40).map(|i| ((i * 13) % 23) as f64).collect();
        let y: Vec<f64> = (0..40).map(|i| ((i * 13) % 23) as f64 * 1e6).collect();
        assert!((cor(&x, &y) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monotone_nonlinear_prefers_rank_coefficients() {
        let x: Vec<f64> = (1..60).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v * v).collect();
        let sim = correlation_similarity(&x, &y);
        // Spearman/Kendall are exactly 1; Pearson is below 1.
        assert!((sim.value - 1.0).abs() < 1e-9);
        assert_eq!(sim.best, Some(CorrelationCoefficient::Spearman));
        assert!(sim.pearson.value < 1.0);
    }

    #[test]
    fn independent_noise_is_zero() {
        // Deterministic hash-style pseudo-noise with no real dependence.
        let hash = |i: usize, k: f64| ((i as f64 * k).sin() * 43758.5453).fract().abs();
        let x: Vec<f64> = (0..30).map(|i| hash(i, 12.9898)).collect();
        let y: Vec<f64> = (0..30).map(|i| hash(i, 78.233)).collect();
        let sim = correlation_similarity(&x, &y);
        if !sim.is_significant() {
            assert_eq!(sim.value, 0.0);
        } else {
            // If one squeaks under alpha it must still be weak.
            assert!(sim.value.abs() < 0.5);
        }
    }

    #[test]
    fn too_short_series_is_zero() {
        assert_eq!(cor(&[1.0, 2.0], &[2.0, 4.0]), 0.0);
        assert_eq!(cor(&[], &[]), 0.0);
    }

    #[test]
    fn constant_series_is_zero() {
        let x = [5.0; 20];
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert_eq!(cor(&x, &y), 0.0);
    }

    #[test]
    fn anti_correlation_is_negative_when_significant() {
        let x: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..30).map(|i| -(i as f64)).collect();
        let sim = correlation_similarity(&x, &y);
        assert!(sim.is_significant());
        assert!(sim.value < -0.99);
        assert!(sim.distance() > 1.99);
    }

    #[test]
    fn distance_complements_similarity() {
        let x: Vec<f64> = (0..25).map(|i| (i % 7) as f64).collect();
        let y: Vec<f64> = (0..25).map(|i| ((i % 7) * 3) as f64).collect();
        assert!((cor_distance(&x, &y) - (1.0 - cor(&x, &y))).abs() < 1e-12);
    }

    #[test]
    fn alpha_controls_significance() {
        // A weak-ish correlation on few points: significant at a loose alpha
        // only.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [2.0, 1.0, 4.0, 3.0, 7.0, 5.0];
        let strict = correlation_similarity_at(&x, &y, 0.01);
        let loose = correlation_similarity_at(&x, &y, 0.20);
        assert_eq!(strict.value, 0.0);
        assert!(loose.value > 0.5);
    }

    #[test]
    fn takes_the_maximum_significant_coefficient() {
        let x: Vec<f64> = (1..40).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.sqrt()).collect();
        let sim = correlation_similarity(&x, &y);
        let max = sim
            .pearson
            .value
            .max(sim.spearman.value)
            .max(sim.kendall.value);
        assert!((sim.value - max).abs() < 1e-12);
    }

    #[test]
    fn cor_at_least_agrees_with_exact() {
        let mk = |phase: f64| -> Vec<f64> {
            (0..48)
                .map(|i| (i as f64 * 0.3 + phase).sin() * 50.0 + i as f64 * 1e-3)
                .collect()
        };
        let series = [mk(0.0), mk(0.1), mk(1.6), mk(3.1)];
        for a in &series {
            for b in &series {
                for thr in [-0.5, 0.0, 0.3, 0.6, 0.9] {
                    assert_eq!(cor_at_least(a, b, thr), cor(a, b) >= thr, "threshold {thr}");
                }
            }
        }
        // Differing masks take the exact path and still agree.
        let mut holey = mk(0.2);
        holey[7] = f64::NAN;
        assert_eq!(
            cor_at_least(&holey, &series[0], 0.6),
            cor(&holey, &series[0]) >= 0.6
        );
    }

    #[test]
    fn missing_values_tolerated() {
        let mut x: Vec<f64> = (0..60).map(|i| (i % 11) as f64).collect();
        let y: Vec<f64> = (0..60).map(|i| ((i % 11) * 2) as f64).collect();
        x[5] = f64::NAN;
        x[17] = f64::NAN;
        assert!(cor(&x, &y) > 0.99);
    }
}
