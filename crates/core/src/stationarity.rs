//! Strong stationarity over non-overlapping windows (Definition 2).
//!
//! A gateway's series is *strongly stationary* for a window size when
//!
//! * the correlation similarity (Definition 1) exceeds `0.6` between **all**
//!   pairs of non-overlapping windows, and
//! * the two-sample Kolmogorov–Smirnov test is **not** rejected for any
//!   window pair (the value distributions are indistinguishable).
//!
//! Unlike classical wide-sense stationarity (which Section 4.2 shows fails
//! on every gateway), this notion asks for *repetitive behavior across
//! calendar windows* — exactly the regularity that motifs formalize.

use crate::engine::cor_profiled;
use crate::obs::{sim_millis, PipelineObs};
use wtts_stats::{ks_two_sample, CorProfile, CorScratch, ALPHA};

/// The paper's correlation threshold for strong stationarity.
pub const STATIONARITY_COR: f64 = 0.6;

/// Outcome of a strong-stationarity check over a set of windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationarityCheck {
    /// Smallest pairwise correlation similarity observed.
    pub min_cor: f64,
    /// Whether every pair exceeded the correlation threshold.
    pub correlations_pass: bool,
    /// Whether any KS test rejected distribution equality.
    pub ks_rejected: bool,
    /// Number of windows with observations that entered the check.
    pub n_windows: usize,
}

impl StationarityCheck {
    /// Definition 2 verdict.
    pub fn is_stationary(&self) -> bool {
        self.correlations_pass && !self.ks_rejected
    }
}

/// Checks strong stationarity across `windows` (each a slice of samples at
/// the same binning), using `cor_threshold` and significance `alpha`.
///
/// Windows with no finite observation are skipped — a gateway that missed a
/// whole week is judged on the weeks it reported. Returns `None` when fewer
/// than two windows carry observations (stationarity is then undefined).
pub fn strong_stationarity_at(
    windows: &[&[f64]],
    cor_threshold: f64,
    alpha: f64,
) -> Option<StationarityCheck> {
    strong_stationarity_observed(windows, cor_threshold, alpha, None)
}

/// [`strong_stationarity_at`] with optional observability: when `obs` is
/// `Some`, the sweep opens a span on [`PipelineObs::stationarity_sweep`],
/// counts each two-sample KS test on `ks_tests`, and records every pairwise
/// similarity (in thousandths) into `stationarity_sim_millis`. With `None`
/// the sweep is exactly `strong_stationarity_at`.
pub fn strong_stationarity_observed(
    windows: &[&[f64]],
    cor_threshold: f64,
    alpha: f64,
    obs: Option<&PipelineObs>,
) -> Option<StationarityCheck> {
    let observed: Vec<&&[f64]> = windows
        .iter()
        .filter(|w| w.iter().any(|v| v.is_finite()))
        .collect();
    if observed.len() < 2 {
        return None;
    }
    let _span = obs.map(|o| o.stationarity_sweep.enter());
    // Profile each window once; the quadratic pair loop then reuses the
    // per-window masks, moments and rank artifacts (full f64 precision, as
    // min_cor feeds threshold comparisons downstream).
    let profiles: Vec<CorProfile> = observed
        .iter()
        .map(|w| {
            let _p = obs.map(|o| o.profile_build.enter());
            CorProfile::new(w)
        })
        .collect();
    let mut scratch = CorScratch::new();
    let mut min_cor = f64::INFINITY;
    let mut correlations_pass = true;
    let mut ks_rejected = false;
    for i in 0..observed.len() {
        for j in (i + 1)..observed.len() {
            let c = cor_profiled(&profiles[i], &profiles[j], &mut scratch);
            min_cor = min_cor.min(c);
            if c <= cor_threshold {
                correlations_pass = false;
            }
            if let Some(o) = obs {
                o.stationarity_sim_millis.record(sim_millis(c));
            }
            if let Some(ks) = ks_two_sample(observed[i], observed[j]) {
                if let Some(o) = obs {
                    o.ks_tests.incr();
                }
                if ks.rejected(alpha) {
                    ks_rejected = true;
                }
            }
        }
    }
    Some(StationarityCheck {
        min_cor,
        correlations_pass,
        ks_rejected,
        n_windows: observed.len(),
    })
}

/// Definition 2 with the paper's thresholds (`cor > 0.6`, α = 0.05).
pub fn strong_stationarity(windows: &[&[f64]]) -> Option<StationarityCheck> {
    strong_stationarity_at(windows, STATIONARITY_COR, ALPHA)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::cor;

    /// A repeating daily-shaped window with slight deterministic variation.
    fn shaped_window(phase: usize) -> Vec<f64> {
        (0..24)
            .map(|h| {
                let base = if (18..23).contains(&h) { 100.0 } else { 5.0 };
                base + ((h * 7 + phase) % 5) as f64
            })
            .collect()
    }

    #[test]
    fn repeating_pattern_is_stationary() {
        let w: Vec<Vec<f64>> = (0..4).map(shaped_window).collect();
        let refs: Vec<&[f64]> = w.iter().map(|v| v.as_slice()).collect();
        let check = strong_stationarity(&refs).unwrap();
        assert!(check.is_stationary(), "{check:?}");
        assert!(check.min_cor > 0.9);
        assert_eq!(check.n_windows, 4);
    }

    #[test]
    fn shifted_behavior_fails_correlation() {
        // Morning window vs evening window: anti-aligned activity.
        let morning: Vec<f64> = (0..24)
            .map(|h| {
                if (6..10).contains(&h) {
                    100.0
                } else {
                    2.0 + (h % 3) as f64
                }
            })
            .collect();
        let evening: Vec<f64> = (0..24)
            .map(|h| {
                if (18..22).contains(&h) {
                    100.0
                } else {
                    2.0 + (h % 3) as f64
                }
            })
            .collect();
        let check = strong_stationarity(&[&morning, &evening]).unwrap();
        assert!(!check.is_stationary());
        assert!(!check.correlations_pass);
    }

    #[test]
    fn distribution_change_fails_ks() {
        // Same *shape* (perfectly correlated) but hugely different scale:
        // correlation passes, the KS distribution check must catch it.
        let small: Vec<f64> = (0..200).map(|i| (i % 24) as f64).collect();
        let large: Vec<f64> = small.iter().map(|v| v * 1000.0).collect();
        let check = strong_stationarity(&[&small, &large]).unwrap();
        assert!(check.correlations_pass, "shape identical");
        assert!(check.ks_rejected, "scale change must reject KS");
        assert!(!check.is_stationary());
    }

    #[test]
    fn empty_windows_are_skipped() {
        let w1 = shaped_window(0);
        let w2 = shaped_window(1);
        let missing = vec![f64::NAN; 24];
        let check = strong_stationarity(&[&w1, &missing, &w2]).unwrap();
        assert_eq!(check.n_windows, 2);
        assert!(check.is_stationary());
    }

    #[test]
    fn fewer_than_two_windows_is_none() {
        let w1 = shaped_window(0);
        let missing = vec![f64::NAN; 24];
        assert!(strong_stationarity(&[&w1, &missing]).is_none());
        assert!(strong_stationarity(&[]).is_none());
    }

    #[test]
    fn threshold_is_strict() {
        // Two windows correlating at ~exactly the threshold must fail (the
        // definition demands > 0.6).
        let w1 = shaped_window(0);
        let check = strong_stationarity_at(&[&w1, &w1], 1.1, 0.05).unwrap();
        assert!(!check.correlations_pass, "cor of 1.0 is not > 1.1");
    }

    #[test]
    fn min_cor_reported() {
        let w: Vec<Vec<f64>> = (0..3).map(shaped_window).collect();
        let refs: Vec<&[f64]> = w.iter().map(|v| v.as_slice()).collect();
        let check = strong_stationarity(&refs).unwrap();
        // min_cor is the weakest link; verify against a manual scan.
        let mut manual = f64::INFINITY;
        for i in 0..3 {
            for j in (i + 1)..3 {
                manual = manual.min(cor(&w[i], &w[j]));
            }
        }
        assert!((check.min_cor - manual).abs() < 1e-12);
    }
}
