//! Behavioral anomaly detection — the paper's troubleshooting use case.
//!
//! The introduction motivates motif extraction with remote diagnosis:
//! "extracting previously unknown recurring patterns … will bring strong
//! evidence of regular user activity in homes that can be contrasted to the
//! trouble description reported by users". This module implements that
//! contrast: a detector learns a gateway's historical daily windows and
//! scores new days by (a) how well they correlate with *any* historical day
//! of the same weekday class and (b) how far their volume deviates from the
//! historical range. A day that matches no known behavior — silent when the
//! home is normally busy, or flooding when it is normally quiet — is
//! exactly the evidence a support technician needs next to a trouble
//! ticket.

use crate::similarity::cor;
use wtts_timeseries::Weekday;

/// Verdict for one scored day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// The day resembles known behavior.
    Normal,
    /// The day deviates; the fields explain how.
    Anomalous {
        /// Best correlation similarity achieved against history.
        best_similarity: f64,
        /// Ratio of the day's volume to the historical median (same
        /// weekday class).
        volume_ratio: f64,
    },
    /// Not enough data on either side to judge.
    Insufficient,
}

impl Verdict {
    /// Whether the verdict flags the day.
    pub fn is_anomalous(&self) -> bool {
        matches!(self, Verdict::Anomalous { .. })
    }
}

/// Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyConfig {
    /// A day is shape-anomalous when its best correlation with same-class
    /// history falls below this (Definition 1 semantics: 0.6 = "high").
    pub min_similarity: f64,
    /// A day is volume-anomalous when its total falls outside
    /// `[median/volume_band, median*volume_band]` of same-class history.
    pub volume_band: f64,
    /// Minimum observed bins for a day to be judged.
    pub min_observations: usize,
}

impl Default for AnomalyConfig {
    fn default() -> AnomalyConfig {
        AnomalyConfig {
            min_similarity: 0.6,
            volume_band: 8.0,
            min_observations: 3,
        }
    }
}

/// A detector holding a gateway's historical daily windows, split into
/// weekday and weekend classes (the paper's strongest behavioral divide).
#[derive(Debug, Clone)]
pub struct AnomalyDetector {
    config: AnomalyConfig,
    workday_history: Vec<Vec<f64>>,
    weekend_history: Vec<Vec<f64>>,
}

impl AnomalyDetector {
    /// Creates a detector from historical daily windows, each tagged with
    /// its weekday.
    pub fn new(
        history: impl IntoIterator<Item = (Weekday, Vec<f64>)>,
        config: AnomalyConfig,
    ) -> AnomalyDetector {
        let mut workday_history = Vec::new();
        let mut weekend_history = Vec::new();
        for (day, window) in history {
            if window.iter().filter(|v| v.is_finite()).count() < config.min_observations {
                continue;
            }
            if day.is_weekend() {
                weekend_history.push(window);
            } else {
                workday_history.push(window);
            }
        }
        AnomalyDetector {
            config,
            workday_history,
            weekend_history,
        }
    }

    /// Number of usable historical windows (workdays, weekends).
    pub fn history_size(&self) -> (usize, usize) {
        (self.workday_history.len(), self.weekend_history.len())
    }

    /// Scores one day against the matching history class.
    pub fn score(&self, day: Weekday, window: &[f64]) -> Verdict {
        let history = if day.is_weekend() {
            &self.weekend_history
        } else {
            &self.workday_history
        };
        let observed = window.iter().filter(|v| v.is_finite()).count();
        if observed < self.config.min_observations || history.len() < 2 {
            return Verdict::Insufficient;
        }

        let best_similarity = history
            .iter()
            .map(|h| cor(h, window))
            .fold(f64::NEG_INFINITY, f64::max);

        let mut volumes: Vec<f64> = history
            .iter()
            .map(|h| h.iter().filter(|v| v.is_finite()).sum())
            .collect();
        volumes.sort_by(|a, b| a.partial_cmp(b).expect("finite volumes"));
        let median = volumes[volumes.len() / 2].max(1.0);
        let volume: f64 = window.iter().filter(|v| v.is_finite()).sum();
        let volume_ratio = volume / median;

        let shape_ok = best_similarity >= self.config.min_similarity;
        let volume_ok = volume_ratio <= self.config.volume_band
            && volume_ratio >= 1.0 / self.config.volume_band;
        if shape_ok && volume_ok {
            Verdict::Normal
        } else {
            Verdict::Anomalous {
                best_similarity,
                volume_ratio,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An evening-shaped day with mild deterministic variation.
    fn evening_day(seed: usize) -> Vec<f64> {
        (0..8)
            .map(|b| {
                if b >= 6 {
                    5_000.0 + ((b * 13 + seed * 7) % 100) as f64 * 10.0
                } else {
                    20.0 + ((b + seed) % 5) as f64
                }
            })
            .collect()
    }

    fn detector() -> AnomalyDetector {
        let history = (0..10).map(|k| {
            (
                Weekday::from_index((k % 5) as u8), // Workdays only.
                evening_day(k),
            )
        });
        AnomalyDetector::new(history, AnomalyConfig::default())
    }

    #[test]
    fn normal_day_passes() {
        let d = detector();
        assert_eq!(d.history_size(), (10, 0));
        let verdict = d.score(Weekday::Wednesday, &evening_day(42));
        assert_eq!(verdict, Verdict::Normal);
    }

    #[test]
    fn silent_day_is_anomalous() {
        // The home went dark: near-zero traffic all day — a dead radio or
        // upstream outage, the troubleshooting scenario.
        let d = detector();
        let silent = vec![1.0; 8];
        let verdict = d.score(Weekday::Tuesday, &silent);
        assert!(verdict.is_anomalous(), "{verdict:?}");
        if let Verdict::Anomalous { volume_ratio, .. } = verdict {
            assert!(volume_ratio < 0.01);
        }
    }

    #[test]
    fn flood_day_is_anomalous() {
        // Night-long flood at 100x the usual volume with an alien shape.
        let d = detector();
        let flood: Vec<f64> = (0..8).map(|b| if b < 3 { 2e6 } else { 50.0 }).collect();
        let verdict = d.score(Weekday::Monday, &flood);
        assert!(verdict.is_anomalous());
    }

    #[test]
    fn shape_shift_without_volume_change_detected() {
        // Same volume as usual but at completely different hours.
        let d = detector();
        let usual_volume: f64 = evening_day(1).iter().sum();
        let mut morning = vec![20.0; 8];
        morning[1] = usual_volume / 2.0;
        morning[2] = usual_volume / 2.0;
        let verdict = d.score(Weekday::Friday, &morning);
        assert!(verdict.is_anomalous(), "{verdict:?}");
        if let Verdict::Anomalous {
            best_similarity,
            volume_ratio,
        } = verdict
        {
            assert!(best_similarity < 0.6);
            assert!((0.5..2.0).contains(&volume_ratio), "volume looks normal");
        }
    }

    #[test]
    fn weekend_judged_against_weekend_history() {
        let d = detector(); // Workday history only.
        let verdict = d.score(Weekday::Saturday, &evening_day(3));
        assert_eq!(verdict, Verdict::Insufficient, "no weekend history");
    }

    #[test]
    fn sparse_day_is_insufficient() {
        let d = detector();
        let sparse = vec![f64::NAN; 8];
        assert_eq!(d.score(Weekday::Monday, &sparse), Verdict::Insufficient);
    }

    #[test]
    fn sparse_history_filtered_out() {
        let history = vec![
            (Weekday::Monday, vec![f64::NAN; 8]),
            (Weekday::Tuesday, evening_day(0)),
        ];
        let d = AnomalyDetector::new(history, AnomalyConfig::default());
        assert_eq!(d.history_size(), (1, 0));
    }
}
