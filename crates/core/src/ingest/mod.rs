//! Fleet-scale streaming ingest: raw counter reports → calendar windows →
//! online motif/dominance analysis, sharded and observable.
//!
//! The paper's stated future work is running its correlation and motif
//! framework "in a streaming big data analytics platform"; the ROADMAP
//! north-star is a production system serving millions of gateways. This
//! module is that deployment's ingest tier, built from the streaming
//! primitives ([`WindowAccumulator`], [`OnlinePearson`], the motif-template
//! matcher) and the counter-decoding rules of
//! [`wtts_timeseries::counter_delta`]:
//!
//! ```text
//!                      hash(gateway) % shards
//! (gateway, device, CounterReport) ──┬──▶ [bounded queue] ─▶ shard worker 0
//!        producer (any source)       ├──▶ [bounded queue] ─▶ shard worker 1
//!                                    └──▶ [bounded queue] ─▶ shard worker …
//!
//! each shard worker, per gateway "lane":
//!   cumulative counters ─▶ per-minute deltas ─▶ per-minute gateway totals
//!     ─▶ WindowAccumulator ─▶ completed windows ─▶ motif matching
//!     └▶ per-device OnlinePearson vs. the total ─▶ φ-dominance ranking
//! ```
//!
//! **Degradation over panics.** Real collection infrastructure produces
//! late, duplicated, clock-skewed and reset-spanning reports constantly. A
//! `panic!` on one bad report is a fleet-wide denial of service in a
//! long-running pipeline, so every malformed input becomes a typed, counted
//! outcome instead: [`DropReason::Late`], [`DropReason::Duplicate`],
//! [`DropReason::FutureJump`] for dropped reports, and
//! [`IngestOutcome::ResetSpanningGap`] for reports that are accepted but
//! whose byte delta is unattributable (see [`CounterDelta`]). The
//! invariant `ingested + dropped == offered` is maintained by construction
//! and checked by [`MetricsSnapshot::fully_accounted`].
//!
//! **Scale-out.** Gateways are hash-partitioned across worker shards run
//! under [`std::thread::scope`]; each shard owns its gateways exclusively,
//! so no lock is taken on the analysis state and results are *identical for
//! every shard count*. Queues are bounded — a slow shard back-pressures the
//! producer instead of buffering unbounded memory.
//!
//! **Observability.** All counters live in an atomic [`IngestMetrics`]
//! registry shared between producer, shards and any monitoring thread;
//! [`IngestMetrics::snapshot`] is a handful of relaxed loads and can be
//! called at any rate while ingest runs. Shard workers classify outcomes
//! into a plain per-shard [`ShardCounts`] ledger on the hot path and fold
//! the deltas into the atomic registry once per batch, so the live view
//! lags a batch at most and the ledger itself is what snapshots persist.
//!
//! **Durability.** The [`durable`] submodule adds a rotated, checksummed,
//! per-shard write-ahead log of consumed reports (length-bounded segments,
//! compacted once a snapshot covers them), periodic snapshots of the full
//! shard state, a single-writer lock, and a deterministic `recover()` path
//! that stitches segments and replays the tail. I/O faults are retried
//! under a bounded budget and then *degrade* the shard — the run keeps
//! computing and every unlogged report becomes a typed, counted durability
//! gap ([`MetricsSnapshot::durably_accounted`]) — see its docs for the
//! recovery invariants.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

pub mod durable;

use crate::dominance::{rank_dominants, DominantDevice, DOMINANCE_PHI};
use crate::obs::{Stage, StageSnapshot};
use crate::streaming::{best_match, MatchOutcome, MotifTemplate, OnlinePearson, WindowAccumulator};
use wtts_timeseries::{counter_delta, CounterDelta, CounterReport, Minute, WindowKind};

/// One raw report entering the pipeline: both directions of one device's
/// cumulative byte counters, tagged with its gateway.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestReport {
    /// Gateway identifier (the shard key).
    pub gateway: u64,
    /// Device identifier within the gateway.
    pub device: u32,
    /// Reporting minute.
    pub at: Minute,
    /// Cumulative incoming bytes since the counter was created or reset.
    pub cum_in: u64,
    /// Cumulative outgoing bytes since the counter was created or reset.
    pub cum_out: u64,
}

/// Why a report was dropped instead of ingested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The report precedes its device's last accepted report, or its minute
    /// was already finalized and fed to the window accumulator.
    Late,
    /// Same timestamp as the device's last accepted report (a retry); the
    /// first delivery wins — its delta may already be finalized.
    Duplicate,
    /// The report jumps implausibly far into the future (corrupt timestamp
    /// or clock skew). A *sustained* advance — a gateway resuming after an
    /// outage — is accepted once a second report corroborates it.
    FutureJump,
}

/// Typed outcome of offering one report to the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Decoded into a per-minute byte delta.
    Ingested,
    /// Accepted as a device's (new) baseline; no delta can be emitted yet.
    Baseline,
    /// Accepted, but the counter reset during a multi-minute gap: the delta
    /// is unattributable and the minute stays missing (the same rule as
    /// [`CounterDelta::ResetSpanningGap`] in batch decoding).
    ResetSpanningGap,
    /// Dropped for the given reason.
    Dropped(DropReason),
}

/// Configuration of the ingest pipeline.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Number of worker shards gateways are hash-partitioned across.
    pub shards: usize,
    /// Bounded queue capacity per shard, in batches; a full queue blocks
    /// the producer (backpressure) rather than buffering without bound.
    pub queue_batches: usize,
    /// Reports per batch handed from the producer to a shard.
    pub batch_reports: usize,
    /// Calendar window kind completed windows are cut into.
    pub window: WindowKind,
    /// Aggregation bin width in minutes (must divide the window length).
    pub bin_minutes: u32,
    /// How many minutes a gateway's per-minute total is held open for
    /// cross-device stragglers before it is finalized; contributions
    /// arriving later than this are dropped as [`DropReason::Late`].
    pub lateness_horizon: u32,
    /// A report more than this many minutes ahead of its device's last
    /// accepted report is dropped as [`DropReason::FutureJump`] unless a
    /// subsequent report corroborates the advance.
    pub max_future_jump: u32,
    /// Dominance threshold φ for the online per-device tracker.
    pub dominance_phi: f64,
    /// Similarity threshold for matching completed windows to templates.
    pub motif_threshold: f64,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig {
            shards: std::thread::available_parallelism()
                .map(|p| p.get().min(8))
                .unwrap_or(1),
            queue_batches: 8,
            batch_reports: 1024,
            window: WindowKind::Daily,
            bin_minutes: 180,
            lateness_horizon: 5,
            max_future_jump: 6 * 60,
            dominance_phi: DOMINANCE_PHI,
            motif_threshold: 0.8,
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Per-shard gauges and counters.
#[derive(Debug, Default)]
struct ShardMetrics {
    queue_depth: AtomicUsize,
    queue_peak: AtomicUsize,
    processed: AtomicU64,
    /// Batch-processing stage: entered/exited/in-flight batches plus a
    /// log-bucketed latency histogram (one span per popped batch).
    batch_stage: Stage,
    /// WAL append stage (durable runs): one span per appended record.
    wal_append: Stage,
    /// Snapshot-write stage (durable runs): one span per snapshot file.
    snapshot_write: Stage,
}

/// The plain (non-atomic) per-shard outcome ledger.
///
/// Shard workers classify every report into this struct on the hot path —
/// plain `u64` adds, no atomics — and fold the delta into the shared
/// [`IngestMetrics`] once per batch. Because the ledger is an ordinary
/// value owned by the shard, it serializes into durable snapshots and
/// restores exactly, which is what lets a recovered run's metrics books
/// match an uninterrupted run's bit for bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounts {
    /// Reports accepted (including baselines and reset-spanning gaps).
    pub ingested: u64,
    /// Accepted reports that only (re-)established a device baseline.
    pub baselines: u64,
    /// Accepted reports whose delta was voided by a reset-spanning gap.
    pub reset_spanning_gaps: u64,
    /// Adjacent-minute counter resets decoded.
    pub counter_resets: u64,
    /// Reports dropped as late.
    pub dropped_late: u64,
    /// Reports dropped as duplicates.
    pub dropped_duplicate: u64,
    /// Reports dropped as uncorroborated future jumps.
    pub dropped_future_jump: u64,
    /// Complete calendar windows sealed.
    pub windows_sealed: u64,
    /// Sealed windows that matched a motif template.
    pub windows_matched: u64,
    /// Sealed windows matching no template.
    pub windows_novel: u64,
    /// Sealed windows with too few observations to judge.
    pub windows_insufficient: u64,
    /// Trailing partial windows flushed at end of stream.
    pub partial_windows: u64,
}

impl ShardCounts {
    fn count(&mut self, outcome: IngestOutcome) {
        match outcome {
            IngestOutcome::Ingested => self.ingested += 1,
            IngestOutcome::Baseline => {
                self.baselines += 1;
                self.ingested += 1;
            }
            IngestOutcome::ResetSpanningGap => {
                self.reset_spanning_gaps += 1;
                self.ingested += 1;
            }
            IngestOutcome::Dropped(DropReason::Late) => self.dropped_late += 1,
            IngestOutcome::Dropped(DropReason::Duplicate) => self.dropped_duplicate += 1,
            IngestOutcome::Dropped(DropReason::FutureJump) => self.dropped_future_jump += 1,
        }
    }

    /// Field-wise difference `self - earlier` (the per-batch delta folded
    /// into the atomic registry). `earlier` must be a previous value of the
    /// same ledger, so every field of `self` is `>=` its counterpart.
    fn minus(&self, earlier: &ShardCounts) -> ShardCounts {
        ShardCounts {
            ingested: self.ingested - earlier.ingested,
            baselines: self.baselines - earlier.baselines,
            reset_spanning_gaps: self.reset_spanning_gaps - earlier.reset_spanning_gaps,
            counter_resets: self.counter_resets - earlier.counter_resets,
            dropped_late: self.dropped_late - earlier.dropped_late,
            dropped_duplicate: self.dropped_duplicate - earlier.dropped_duplicate,
            dropped_future_jump: self.dropped_future_jump - earlier.dropped_future_jump,
            windows_sealed: self.windows_sealed - earlier.windows_sealed,
            windows_matched: self.windows_matched - earlier.windows_matched,
            windows_novel: self.windows_novel - earlier.windows_novel,
            windows_insufficient: self.windows_insufficient - earlier.windows_insufficient,
            partial_windows: self.partial_windows - earlier.partial_windows,
        }
    }
}

/// Atomic metrics registry shared by the producer, every shard worker and
/// any observer thread. All updates are `Relaxed` single-counter increments;
/// [`IngestMetrics::snapshot`] never blocks ingest.
#[derive(Debug)]
pub struct IngestMetrics {
    offered: AtomicU64,
    ingested: AtomicU64,
    baselines: AtomicU64,
    reset_spanning_gaps: AtomicU64,
    counter_resets: AtomicU64,
    dropped_late: AtomicU64,
    dropped_duplicate: AtomicU64,
    dropped_future_jump: AtomicU64,
    dropped_queue_closed: AtomicU64,
    windows_sealed: AtomicU64,
    windows_matched: AtomicU64,
    windows_novel: AtomicU64,
    windows_insufficient: AtomicU64,
    partial_windows: AtomicU64,
    wal_records: AtomicU64,
    wal_torn_records: AtomicU64,
    wal_replayed: AtomicU64,
    wal_io_retries: AtomicU64,
    wal_io_gave_up: AtomicU64,
    wal_gap_records: AtomicU64,
    wal_lost_records: AtomicU64,
    wal_segments_created: AtomicU64,
    wal_segments_compacted: AtomicU64,
    snapshots_written: AtomicU64,
    snapshots_discarded: AtomicU64,
    snapshot_tmp_swept: AtomicU64,
    lock_takeovers: AtomicU64,
    recoveries: AtomicU64,
    /// WAL-tail replay stage (one span per shard recovered).
    replay: Stage,
    shards: Vec<ShardMetrics>,
}

impl IngestMetrics {
    fn new(shards: usize) -> IngestMetrics {
        IngestMetrics {
            offered: AtomicU64::new(0),
            ingested: AtomicU64::new(0),
            baselines: AtomicU64::new(0),
            reset_spanning_gaps: AtomicU64::new(0),
            counter_resets: AtomicU64::new(0),
            dropped_late: AtomicU64::new(0),
            dropped_duplicate: AtomicU64::new(0),
            dropped_future_jump: AtomicU64::new(0),
            dropped_queue_closed: AtomicU64::new(0),
            windows_sealed: AtomicU64::new(0),
            windows_matched: AtomicU64::new(0),
            windows_novel: AtomicU64::new(0),
            windows_insufficient: AtomicU64::new(0),
            partial_windows: AtomicU64::new(0),
            wal_records: AtomicU64::new(0),
            wal_torn_records: AtomicU64::new(0),
            wal_replayed: AtomicU64::new(0),
            wal_io_retries: AtomicU64::new(0),
            wal_io_gave_up: AtomicU64::new(0),
            wal_gap_records: AtomicU64::new(0),
            wal_lost_records: AtomicU64::new(0),
            wal_segments_created: AtomicU64::new(0),
            wal_segments_compacted: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            snapshots_discarded: AtomicU64::new(0),
            snapshot_tmp_swept: AtomicU64::new(0),
            lock_takeovers: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            replay: Stage::default(),
            shards: (0..shards).map(|_| ShardMetrics::default()).collect(),
        }
    }

    /// Folds a per-shard ledger delta into the atomic registry.
    fn apply(&self, d: &ShardCounts) {
        let add = |a: &AtomicU64, v: u64| {
            if v > 0 {
                a.fetch_add(v, Ordering::Relaxed);
            }
        };
        add(&self.ingested, d.ingested);
        add(&self.baselines, d.baselines);
        add(&self.reset_spanning_gaps, d.reset_spanning_gaps);
        add(&self.counter_resets, d.counter_resets);
        add(&self.dropped_late, d.dropped_late);
        add(&self.dropped_duplicate, d.dropped_duplicate);
        add(&self.dropped_future_jump, d.dropped_future_jump);
        add(&self.windows_sealed, d.windows_sealed);
        add(&self.windows_matched, d.windows_matched);
        add(&self.windows_novel, d.windows_novel);
        add(&self.windows_insufficient, d.windows_insufficient);
        add(&self.partial_windows, d.partial_windows);
    }

    /// A consistent-enough point-in-time copy of every counter (relaxed
    /// loads; cheap enough to poll at high rate while ingest runs).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            offered: load(&self.offered),
            ingested: load(&self.ingested),
            baselines: load(&self.baselines),
            reset_spanning_gaps: load(&self.reset_spanning_gaps),
            counter_resets: load(&self.counter_resets),
            dropped_late: load(&self.dropped_late),
            dropped_duplicate: load(&self.dropped_duplicate),
            dropped_future_jump: load(&self.dropped_future_jump),
            dropped_queue_closed: load(&self.dropped_queue_closed),
            windows_sealed: load(&self.windows_sealed),
            windows_matched: load(&self.windows_matched),
            windows_novel: load(&self.windows_novel),
            windows_insufficient: load(&self.windows_insufficient),
            partial_windows: load(&self.partial_windows),
            wal_records: load(&self.wal_records),
            wal_torn_records: load(&self.wal_torn_records),
            wal_replayed: load(&self.wal_replayed),
            wal_io_retries: load(&self.wal_io_retries),
            wal_io_gave_up: load(&self.wal_io_gave_up),
            wal_gap_records: load(&self.wal_gap_records),
            wal_lost_records: load(&self.wal_lost_records),
            wal_segments_created: load(&self.wal_segments_created),
            wal_segments_compacted: load(&self.wal_segments_compacted),
            snapshots_written: load(&self.snapshots_written),
            snapshots_discarded: load(&self.snapshots_discarded),
            snapshot_tmp_swept: load(&self.snapshot_tmp_swept),
            lock_takeovers: load(&self.lock_takeovers),
            recoveries: load(&self.recoveries),
            replay: self.replay.snapshot(),
            per_shard: self
                .shards
                .iter()
                .map(|s| ShardSnapshot {
                    queue_depth: s.queue_depth.load(Ordering::Relaxed),
                    queue_peak: s.queue_peak.load(Ordering::Relaxed),
                    processed: s.processed.load(Ordering::Relaxed),
                    batch_stage: s.batch_stage.snapshot(),
                    wal_append: s.wal_append.snapshot(),
                    snapshot_write: s.snapshot_write.snapshot(),
                })
                .collect(),
        }
    }
}

/// Point-in-time copy of one shard's gauges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Batches currently queued for the shard.
    pub queue_depth: usize,
    /// Highest queue depth observed (how close backpressure came).
    pub queue_peak: usize,
    /// Reports the shard has processed.
    pub processed: u64,
    /// Batch-processing stage counters and latency histogram; at quiescence
    /// `batch_stage.entered == batch_stage.exited` and nothing is in flight
    /// ([`StageSnapshot::quiescent`]).
    pub batch_stage: StageSnapshot,
    /// WAL append stage (all zeros for non-durable runs).
    pub wal_append: StageSnapshot,
    /// Snapshot-write stage (all zeros for non-durable runs).
    pub snapshot_write: StageSnapshot,
}

/// Point-in-time copy of the ingest counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Reports offered to the pipeline.
    pub offered: u64,
    /// Reports accepted (including baselines and reset-spanning gaps).
    pub ingested: u64,
    /// Accepted reports that only (re-)established a device baseline.
    pub baselines: u64,
    /// Accepted reports whose delta was voided by a reset-spanning gap.
    pub reset_spanning_gaps: u64,
    /// Adjacent-minute counter resets decoded (reboot / wrap / rejoin).
    pub counter_resets: u64,
    /// Reports dropped as late.
    pub dropped_late: u64,
    /// Reports dropped as duplicates.
    pub dropped_duplicate: u64,
    /// Reports dropped as uncorroborated future jumps.
    pub dropped_future_jump: u64,
    /// Reports rejected because the shard queue was already closed (a
    /// producer racing shutdown — the typed outcome that replaced a silent
    /// enqueue-past-close bug; no worker will ever pop them).
    pub dropped_queue_closed: u64,
    /// Complete calendar windows sealed across all gateways.
    pub windows_sealed: u64,
    /// Sealed windows that matched a motif template.
    pub windows_matched: u64,
    /// Sealed windows matching no template (novel behavior).
    pub windows_novel: u64,
    /// Sealed windows with too few observations to judge.
    pub windows_insufficient: u64,
    /// Trailing partial windows flushed at end of stream.
    pub partial_windows: u64,
    /// Reports appended to the write-ahead log (durable runs only).
    pub wal_records: u64,
    /// Torn trailing WAL records discarded during recovery.
    pub wal_torn_records: u64,
    /// Reports skipped on a resumed feed because the WAL already held them
    /// (they were replayed from disk instead of re-offered).
    pub wal_replayed: u64,
    /// WAL I/O operations retried after a transient failure.
    pub wal_io_retries: u64,
    /// WAL I/O operations abandoned after the retry budget (each entered
    /// or confirmed the degraded mode of its shard).
    pub wal_io_gave_up: u64,
    /// Reports consumed while a shard ran degraded — computed but never
    /// logged, a typed live durability gap.
    pub wal_gap_records: u64,
    /// Reports a recovery proved missing from the log (a hole between
    /// segment headers, or records only a now-dead snapshot covered).
    pub wal_lost_records: u64,
    /// WAL segments opened (rotation included).
    pub wal_segments_created: u64,
    /// Snapshot-covered segments deleted by compaction (plus recovery's
    /// removal of fully-covered segments).
    pub wal_segments_compacted: u64,
    /// Durable snapshots written.
    pub snapshots_written: u64,
    /// Snapshots discarded at recovery (checksum failure).
    pub snapshots_discarded: u64,
    /// Orphaned snapshot temp files swept at recovery.
    pub snapshot_tmp_swept: u64,
    /// Stale/corrupt single-writer locks fenced via takeover.
    pub lock_takeovers: u64,
    /// Recoveries performed (snapshot load + WAL tail replay).
    pub recoveries: u64,
    /// Replay stage counters (one span per shard recovered).
    pub replay: StageSnapshot,
    /// Per-shard queue/throughput gauges.
    pub per_shard: Vec<ShardSnapshot>,
}

impl MetricsSnapshot {
    /// Total dropped reports across all reasons.
    pub fn dropped(&self) -> u64 {
        self.dropped_late
            + self.dropped_duplicate
            + self.dropped_future_jump
            + self.dropped_queue_closed
    }

    /// The conservation law of the pipeline: every offered report is either
    /// ingested, dropped for a counted reason, or — on a recovered run —
    /// a proven WAL hole ([`MetricsSnapshot::wal_lost_records`]: offered in
    /// the original run, gone from the surviving log). (Only meaningful once
    /// the pipeline is quiescent — mid-flight reports are offered but not
    /// yet classified.)
    pub fn fully_accounted(&self) -> bool {
        self.ingested + self.dropped() + self.wal_lost_records == self.offered
    }

    /// The durability conservation law: at quiescence of a durable run,
    /// every offered report was logged to the WAL before it was consumed,
    /// or is part of a typed, counted durability gap — degraded-mode
    /// records the log could not take, or holes a recovery proved.
    /// Zero-false-loss: nothing disappears without a counter naming it.
    pub fn durably_accounted(&self) -> bool {
        self.wal_records + self.wal_gap_records + self.wal_lost_records == self.offered
    }

    /// Total typed durability gap: reports the pipeline consumed (or once
    /// held) that the durable log provably does not. Zero on a healthy run.
    pub fn durability_gap(&self) -> u64 {
        self.wal_gap_records + self.wal_lost_records
    }

    /// The deterministic projection of the snapshot: every field that is a
    /// pure function of the report stream, with the timing-dependent parts
    /// (latency histograms, queue gauges) and the durability bookkeeping
    /// that legitimately differs across a crash (snapshot/recovery counts)
    /// zeroed out. A recovered run and an uninterrupted run over the same
    /// stream must agree *exactly* on this projection — the headline
    /// invariant of [`durable`].
    pub fn replay_invariant_core(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            wal_torn_records: 0,
            wal_replayed: 0,
            wal_io_retries: 0,
            wal_io_gave_up: 0,
            wal_gap_records: 0,
            wal_lost_records: 0,
            wal_segments_created: 0,
            wal_segments_compacted: 0,
            snapshots_written: 0,
            snapshots_discarded: 0,
            snapshot_tmp_swept: 0,
            lock_takeovers: 0,
            recoveries: 0,
            replay: StageSnapshot::default(),
            per_shard: self
                .per_shard
                .iter()
                .map(|s| ShardSnapshot {
                    queue_depth: 0,
                    queue_peak: 0,
                    processed: s.processed,
                    batch_stage: StageSnapshot::default(),
                    wal_append: StageSnapshot::default(),
                    snapshot_write: StageSnapshot::default(),
                })
                .collect(),
            ..self.clone()
        }
    }

    /// The snapshot as a JSON object — what `fleet_ingest --metrics-json`
    /// emits and `scripts/ci.sh` validates against the conservation laws.
    pub fn to_json(&self) -> String {
        let shards: Vec<String> = self
            .per_shard
            .iter()
            .map(|s| {
                format!(
                    "{{\"queue_depth\":{},\"queue_peak\":{},\"processed\":{},\
                     \"batches_entered\":{},\"batches_exited\":{},\"batches_in_flight\":{},\
                     \"batch_latency_ns\":{},\"wal_append\":{},\"snapshot_write\":{}}}",
                    s.queue_depth,
                    s.queue_peak,
                    s.processed,
                    s.batch_stage.entered,
                    s.batch_stage.exited,
                    s.batch_stage.in_flight,
                    s.batch_stage.latency_ns.to_json(),
                    s.wal_append.to_json(),
                    s.snapshot_write.to_json()
                )
            })
            .collect();
        format!(
            "{{\"offered\":{},\"ingested\":{},\"baselines\":{},\"reset_spanning_gaps\":{},\
             \"counter_resets\":{},\"dropped_late\":{},\"dropped_duplicate\":{},\
             \"dropped_future_jump\":{},\"dropped_queue_closed\":{},\"windows_sealed\":{},\
             \"windows_matched\":{},\"windows_novel\":{},\"windows_insufficient\":{},\
             \"partial_windows\":{},\"wal_records\":{},\"wal_torn_records\":{},\
             \"wal_replayed\":{},\"wal_io_retries\":{},\"wal_io_gave_up\":{},\
             \"wal_gap_records\":{},\"wal_lost_records\":{},\"wal_segments_created\":{},\
             \"wal_segments_compacted\":{},\"snapshots_written\":{},\"snapshots_discarded\":{},\
             \"snapshot_tmp_swept\":{},\"lock_takeovers\":{},\"recoveries\":{},\"replay\":{},\
             \"fully_accounted\":{},\"durably_accounted\":{},\"durability_gap\":{},\
             \"per_shard\":[{}]}}",
            self.offered,
            self.ingested,
            self.baselines,
            self.reset_spanning_gaps,
            self.counter_resets,
            self.dropped_late,
            self.dropped_duplicate,
            self.dropped_future_jump,
            self.dropped_queue_closed,
            self.windows_sealed,
            self.windows_matched,
            self.windows_novel,
            self.windows_insufficient,
            self.partial_windows,
            self.wal_records,
            self.wal_torn_records,
            self.wal_replayed,
            self.wal_io_retries,
            self.wal_io_gave_up,
            self.wal_gap_records,
            self.wal_lost_records,
            self.wal_segments_created,
            self.wal_segments_compacted,
            self.snapshots_written,
            self.snapshots_discarded,
            self.snapshot_tmp_swept,
            self.lock_takeovers,
            self.recoveries,
            self.replay.to_json(),
            self.fully_accounted(),
            self.durably_accounted(),
            self.durability_gap(),
            shards.join(",")
        )
    }
}

// ---------------------------------------------------------------------------
// Bounded MPSC queue (std-only: Mutex + Condvar)
// ---------------------------------------------------------------------------

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Outcome of offering an item to a [`BoundedQueue`].
#[derive(Debug, PartialEq, Eq)]
enum Push<T> {
    /// Enqueued; the queue held this many items after the push.
    Pushed(usize),
    /// The queue was closed: nothing was enqueued and the item is handed
    /// back so the caller can account for it.
    Closed(T),
}

/// A bounded blocking queue of batches: `push` blocks while full (producer
/// backpressure), `pop` blocks while empty and returns `None` once the
/// queue is closed and drained.
struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks until there is room, then enqueues; returns the depth after
    /// the push so the caller can maintain gauges without re-locking, or
    /// [`Push::Closed`] with the item handed back if the queue closed.
    ///
    /// An earlier version waited with `while full && !closed` and then
    /// pushed *unconditionally* — so a `close()` racing a blocked producer
    /// woke it up and let it enqueue past capacity into a queue whose
    /// worker may already have drained and exited, silently losing the
    /// batch from the accounting. Closed is now a terminal verdict checked
    /// after every wakeup, before touching the buffer.
    fn push(&self, item: T) -> Push<T> {
        let mut state = self.state.lock().expect("ingest queue poisoned");
        loop {
            if state.closed {
                return Push::Closed(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                let depth = state.items.len();
                drop(state);
                self.not_empty.notify_one();
                return Push::Pushed(depth);
            }
            state = self.not_full.wait(state).expect("ingest queue poisoned");
        }
    }

    /// Blocks until an item is available; `None` once closed and drained.
    fn pop(&self) -> Option<(T, usize)> {
        let mut state = self.state.lock().expect("ingest queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                let depth = state.items.len();
                drop(state);
                self.not_full.notify_one();
                return Some((item, depth));
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("ingest queue poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("ingest queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Per-device decoding state
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct DeviceState {
    /// Last accepted report (timestamp + both cumulative counters).
    last: Option<(Minute, u64, u64)>,
    /// Tentative baseline from an uncorroborated future jump.
    suspect: Option<(Minute, u64, u64)>,
    /// Online Pearson of (device minute delta, gateway minute total) —
    /// the streaming version of Definition 4's per-device similarity.
    dominance: OnlinePearson,
}

/// What one accepted report contributes to its minute.
enum Decoded {
    /// Total byte delta (in + out) attributed to the report's minute.
    Delta {
        bytes: f64,
        reset: bool,
    },
    Baseline,
    ResetSpanningGap,
    /// The report jumped far into the future and is held as a suspect; its
    /// classification (baseline of a real outage recovery, or a dropped
    /// corrupt timestamp) is deferred until a later report resolves it.
    Held,
}

/// The decode verdict for one report, plus the deferred verdict for a
/// previously held suspect that this report just resolved.
struct DecodeStep {
    /// Classification of the *suspect* resolved by this arrival, if any:
    /// `Baseline` when corroborated, `Dropped(FutureJump)` when contradicted.
    resolved_suspect: Option<IngestOutcome>,
    decoded: Result<Decoded, DropReason>,
}

impl DecodeStep {
    fn now(decoded: Result<Decoded, DropReason>) -> DecodeStep {
        DecodeStep {
            resolved_suspect: None,
            decoded,
        }
    }
}

impl DeviceState {
    /// Applies timestamp sanity checks and counter decoding; updates the
    /// baseline on acceptance.
    fn decode(&mut self, r: &IngestReport, max_future_jump: u32) -> DecodeStep {
        let Some((last_at, last_in, last_out)) = self.last else {
            self.last = Some((r.at, r.cum_in, r.cum_out));
            return DecodeStep::now(Ok(Decoded::Baseline));
        };
        if r.at == last_at {
            return DecodeStep::now(Err(DropReason::Duplicate));
        }
        if r.at < last_at {
            return DecodeStep::now(Err(DropReason::Late));
        }
        if r.at.0 > last_at.0 + max_future_jump {
            // A lone wild timestamp is a corrupt report, but a sustained
            // advance — the gateway resuming after a long outage — is real.
            // Hold the first such report unclassified; a second report
            // agreeing on the new epoch corroborates it (it becomes the
            // post-outage baseline), a contradiction condemns it.
            match self.suspect {
                Some((s_at, s_in, s_out)) if r.at >= s_at && r.at.0 <= s_at.0 + max_future_jump => {
                    self.suspect = None;
                    self.last = Some((s_at, s_in, s_out));
                    // Decode the current report against the corroborated
                    // baseline (now a normal-range arrival).
                    let mut step = self.decode(r, max_future_jump);
                    step.resolved_suspect = Some(IngestOutcome::Baseline);
                    return step;
                }
                old => {
                    self.suspect = Some((r.at, r.cum_in, r.cum_out));
                    return DecodeStep {
                        resolved_suspect: old
                            .map(|_| IngestOutcome::Dropped(DropReason::FutureJump)),
                        decoded: Ok(Decoded::Held),
                    };
                }
            }
        }
        // A normal-range arrival refutes any pending suspect: time never
        // reached the suspect's epoch, so its timestamp was corrupt.
        let refuted = self
            .suspect
            .take()
            .map(|_| IngestOutcome::Dropped(DropReason::FutureJump));
        let mut step = self.decode_in_range(r, last_at, last_in, last_out);
        step.resolved_suspect = refuted;
        step
    }

    fn decode_in_range(
        &mut self,
        r: &IngestReport,
        last_at: Minute,
        last_in: u64,
        last_out: u64,
    ) -> DecodeStep {
        let prev = |cum| CounterReport {
            at: last_at,
            cumulative_bytes: cum,
        };
        let cur = |cum| CounterReport {
            at: r.at,
            cumulative_bytes: cum,
        };
        let din = counter_delta(prev(last_in), cur(r.cum_in));
        let dout = counter_delta(prev(last_out), cur(r.cum_out));
        self.last = Some((r.at, r.cum_in, r.cum_out));
        let (bytes_in, reset_in) = match din {
            CounterDelta::Advance(d) => (d, false),
            CounterDelta::Reset(d) => (d, true),
            CounterDelta::ResetSpanningGap => {
                return DecodeStep::now(Ok(Decoded::ResetSpanningGap))
            }
        };
        let (bytes_out, reset_out) = match dout {
            CounterDelta::Advance(d) => (d, false),
            CounterDelta::Reset(d) => (d, true),
            CounterDelta::ResetSpanningGap => {
                return DecodeStep::now(Ok(Decoded::ResetSpanningGap))
            }
        };
        DecodeStep::now(Ok(Decoded::Delta {
            bytes: (bytes_in + bytes_out) as f64,
            reset: reset_in || reset_out,
        }))
    }
}

// ---------------------------------------------------------------------------
// Per-gateway lane
// ---------------------------------------------------------------------------

/// One minute of one gateway still open for straggler contributions.
struct PendingMinute {
    minute: u32,
    /// `(device, byte delta)` contributions; devices absent this minute
    /// simply do not appear (missing, pairwise-complete semantics).
    contributions: Vec<(u32, f64)>,
}

/// All streaming state of one gateway, owned exclusively by one shard.
pub(crate) struct GatewayLane {
    gateway: u64,
    devices: HashMap<u32, DeviceState>,
    /// Sparse, minute-sorted ring of not-yet-finalized minutes.
    pending: VecDeque<PendingMinute>,
    /// First minute that may still accept contributions.
    watermark: u32,
    /// Highest minute accepted so far (the lane's stream clock).
    max_seen: u32,
    accumulator: WindowAccumulator,
    support: Vec<u64>,
    matched: u64,
    novel: u64,
    insufficient: u64,
    sealed: u64,
    reports: u64,
}

impl GatewayLane {
    fn new(gateway: u64, config: &IngestConfig, n_templates: usize) -> GatewayLane {
        GatewayLane {
            gateway,
            devices: HashMap::new(),
            pending: VecDeque::new(),
            watermark: 0,
            max_seen: 0,
            accumulator: WindowAccumulator::new(config.window, config.bin_minutes),
            support: vec![0; n_templates],
            matched: 0,
            novel: 0,
            insufficient: 0,
            sealed: 0,
            reports: 0,
        }
    }

    /// Processes one report, recording both its own outcome and the
    /// deferred outcome of any suspect it resolves. A report held as a
    /// future-jump suspect is counted only once its fate is known (here or
    /// in [`GatewayLane::finish`]), so quiescent accounting stays exact.
    fn ingest(
        &mut self,
        r: &IngestReport,
        config: &IngestConfig,
        templates: &[MotifTemplate],
        counts: &mut ShardCounts,
    ) {
        self.reports += 1;
        let device = self.devices.entry(r.device).or_default();
        let step = device.decode(r, config.max_future_jump);
        if let Some(outcome) = step.resolved_suspect {
            counts.count(outcome);
        }
        let decoded = match step.decoded {
            Ok(d) => d,
            Err(reason) => {
                counts.count(IngestOutcome::Dropped(reason));
                return;
            }
        };
        match decoded {
            Decoded::Held => {} // counted when resolved
            Decoded::Baseline => {
                self.advance_clock(r.at.0, config, templates, counts);
                counts.count(IngestOutcome::Baseline);
            }
            Decoded::ResetSpanningGap => {
                self.advance_clock(r.at.0, config, templates, counts);
                counts.count(IngestOutcome::ResetSpanningGap);
            }
            Decoded::Delta { bytes, reset } => {
                if reset {
                    counts.counter_resets += 1;
                }
                if r.at.0 < self.watermark {
                    // The minute was already finalized: a cross-device
                    // straggler beyond the lateness horizon.
                    counts.count(IngestOutcome::Dropped(DropReason::Late));
                    return;
                }
                self.add_contribution(r.at.0, r.device, bytes);
                self.advance_clock(r.at.0, config, templates, counts);
                counts.count(IngestOutcome::Ingested);
            }
        }
    }

    /// Inserts a contribution into the sparse minute ring, keeping it
    /// minute-sorted. The common case (the newest minute) is O(1).
    fn add_contribution(&mut self, minute: u32, device: u32, bytes: f64) {
        let pos = self
            .pending
            .iter()
            .rposition(|p| p.minute <= minute)
            .map(|i| (i, self.pending[i].minute == minute));
        match pos {
            Some((i, true)) => self.pending[i].contributions.push((device, bytes)),
            Some((i, false)) => self.pending.insert(
                i + 1,
                PendingMinute {
                    minute,
                    contributions: vec![(device, bytes)],
                },
            ),
            None => self.pending.push_front(PendingMinute {
                minute,
                contributions: vec![(device, bytes)],
            }),
        }
    }

    /// Advances the lane clock and finalizes every pending minute that has
    /// fallen out of the lateness horizon.
    fn advance_clock(
        &mut self,
        minute: u32,
        config: &IngestConfig,
        templates: &[MotifTemplate],
        counts: &mut ShardCounts,
    ) {
        self.max_seen = self.max_seen.max(minute);
        while self
            .pending
            .front()
            .is_some_and(|p| p.minute + config.lateness_horizon <= self.max_seen)
        {
            let pm = self.pending.pop_front().expect("front just checked");
            self.finalize_minute(pm, config, templates, counts);
        }
    }

    /// Seals one minute: its gateway total enters the window accumulator,
    /// each completed window is matched, and every contributing device's
    /// dominance tracker pairs its delta with the total.
    fn finalize_minute(
        &mut self,
        pm: PendingMinute,
        config: &IngestConfig,
        templates: &[MotifTemplate],
        counts: &mut ShardCounts,
    ) {
        self.watermark = pm.minute + 1;
        let total: f64 = pm.contributions.iter().map(|&(_, b)| b).sum();
        let completed = match self.accumulator.try_push(Minute(pm.minute), total) {
            Ok(windows) => windows,
            Err(_) => {
                // Unreachable by construction: minutes are finalized in
                // strictly increasing order. Degrade (skip) rather than
                // panic if the invariant is ever broken.
                debug_assert!(false, "finalized minutes must be ordered");
                Vec::new()
            }
        };
        for window in &completed {
            self.observe_window(&window.values, false, config, templates, counts);
        }
        for (device, bytes) in pm.contributions {
            if let Some(state) = self.devices.get_mut(&device) {
                state.dominance.push(bytes, total);
            }
        }
    }

    fn observe_window(
        &mut self,
        values: &[f64],
        partial: bool,
        config: &IngestConfig,
        templates: &[MotifTemplate],
        counts: &mut ShardCounts,
    ) {
        if partial {
            counts.partial_windows += 1;
        } else {
            self.sealed += 1;
            counts.windows_sealed += 1;
        }
        match best_match(templates, config.motif_threshold, values) {
            MatchOutcome::Matched { index, .. } => {
                self.support[index] += 1;
                self.matched += 1;
                counts.windows_matched += 1;
            }
            MatchOutcome::Novel => {
                self.novel += 1;
                counts.windows_novel += 1;
            }
            MatchOutcome::Insufficient => {
                self.insufficient += 1;
                counts.windows_insufficient += 1;
            }
        }
    }

    /// End of stream: drain the ring, flush the trailing partial window and
    /// rank the dominance trackers.
    fn finish(
        mut self,
        config: &IngestConfig,
        templates: &[MotifTemplate],
        counts: &mut ShardCounts,
    ) -> GatewaySummary {
        while let Some(pm) = self.pending.pop_front() {
            self.finalize_minute(pm, config, templates, counts);
        }
        // Suspects never corroborated by end of stream were corrupt.
        for state in self.devices.values_mut() {
            if state.suspect.take().is_some() {
                counts.count(IngestOutcome::Dropped(DropReason::FutureJump));
            }
        }
        let partial = self.accumulator.flush();
        if partial.values.iter().any(|v| v.is_finite()) {
            self.observe_window(&partial.values.clone(), true, config, templates, counts);
        }
        let hits: Vec<(usize, f64)> = self
            .devices
            .iter()
            .filter_map(|(&device, state)| {
                let c = state.dominance.correlation()?;
                (c > config.dominance_phi).then_some((device as usize, c))
            })
            .collect();
        GatewaySummary {
            gateway: self.gateway,
            reports: self.reports,
            devices: self.devices.len(),
            windows_sealed: self.sealed,
            windows_matched: self.matched,
            windows_novel: self.novel,
            windows_insufficient: self.insufficient,
            support: self.support,
            dominants: rank_dominants(hits),
        }
    }
}

// ---------------------------------------------------------------------------
// Shard state
// ---------------------------------------------------------------------------

/// All mutable state of one shard worker: the gateway lanes, the outcome
/// ledger, and the durable frontier. This is exactly what a durable
/// snapshot captures and what WAL replay rebuilds — the worker loop owns
/// one and nothing else mutates between reports.
pub(crate) struct ShardState {
    pub(crate) lanes: HashMap<u64, GatewayLane>,
    pub(crate) counts: ShardCounts,
    /// Global sequence number of the last report this shard consumed.
    pub(crate) last_seq: u64,
    /// Reports this shard has consumed (== its WAL record count when
    /// running durably: every consumed report is logged first).
    pub(crate) processed: u64,
}

impl ShardState {
    pub(crate) fn new() -> ShardState {
        ShardState {
            lanes: HashMap::new(),
            counts: ShardCounts::default(),
            last_seq: 0,
            processed: 0,
        }
    }

    /// Consumes one report: the single state transition of a shard. Live
    /// ingest and WAL replay both go through here, which is what makes
    /// recovery bit-identical — there is no second decode path to diverge.
    pub(crate) fn consume(
        &mut self,
        seq: u64,
        report: &IngestReport,
        config: &IngestConfig,
        templates: &[MotifTemplate],
    ) {
        debug_assert!(seq > self.last_seq, "per-shard seqs strictly increase");
        self.last_seq = seq;
        self.processed += 1;
        let lane = self
            .lanes
            .entry(report.gateway)
            .or_insert_with(|| GatewayLane::new(report.gateway, config, templates.len()));
        lane.ingest(report, config, templates, &mut self.counts);
    }

    /// End of stream: finishes every lane, folding the final outcomes into
    /// the ledger.
    fn finish(
        self,
        config: &IngestConfig,
        templates: &[MotifTemplate],
    ) -> (Vec<GatewaySummary>, ShardCounts) {
        let mut counts = self.counts;
        let summaries = self
            .lanes
            .into_values()
            .map(|lane| lane.finish(config, templates, &mut counts))
            .collect();
        (summaries, counts)
    }
}

/// How a shard worker ended.
enum WorkerEnd {
    /// Queue drained, lanes finished; per-shard state digest when durable.
    Finished(Vec<GatewaySummary>, Option<u64>),
    /// The kill switch fired: the worker aborted without finishing, exactly
    /// like a crashed process (unflushed WAL bytes are discarded).
    Killed,
}

/// How a pipeline run ended (crate-internal; the public surfaces are
/// [`IngestPipeline::run`] and [`durable::DurableRun`]).
pub(crate) enum RunEnd {
    /// Boxed: an [`IngestSummary`] dwarfs the `Killed` variant.
    Completed(Box<IngestSummary>, Option<u64>),
    Killed,
}

/// Crash injection for the durable pipeline (see [`durable::KillPoint`]).
pub(crate) struct KillSwitch {
    /// Fire after this many reports have been offered by this run.
    pub(crate) after_offered: u64,
    /// `true`: `std::process::abort()` (a real SIGKILL-equivalent, for the
    /// CI smoke). `false`: cooperative in-process abort via a shared flag.
    pub(crate) hard: bool,
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

/// Per-gateway results of one ingest run.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewaySummary {
    /// Gateway identifier.
    pub gateway: u64,
    /// Reports routed to this gateway (including dropped ones).
    pub reports: u64,
    /// Distinct devices seen.
    pub devices: usize,
    /// Complete windows sealed.
    pub windows_sealed: u64,
    /// Sealed windows that matched a template.
    pub windows_matched: u64,
    /// Sealed windows matching nothing.
    pub windows_novel: u64,
    /// Sealed windows with too few observations.
    pub windows_insufficient: u64,
    /// Per-template support counts (this gateway's windows only).
    pub support: Vec<u64>,
    /// φ-dominant devices under the online Pearson tracker, ranked.
    ///
    /// Online dominance uses plain Pearson (no significance gate, no
    /// Spearman/Kendall fallback), a documented degradation from the batch
    /// Definition 1 measure — O(1) per minute instead of O(n log n) per
    /// evaluation.
    pub dominants: Vec<DominantDevice>,
}

/// Fleet-level results of one ingest run.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestSummary {
    /// Per-gateway summaries, sorted by gateway id.
    pub gateways: Vec<GatewaySummary>,
    /// Fleet-wide per-template support (sum over gateways).
    pub support: Vec<u64>,
    /// Final metrics snapshot (quiescent, so
    /// [`MetricsSnapshot::fully_accounted`] must hold).
    pub metrics: MetricsSnapshot,
}

/// The sharded fleet ingest pipeline. See the [module docs](self) for the
/// architecture.
///
/// Results are deterministic in the shard count: each gateway is owned by
/// exactly one shard and processed in arrival order, so running the same
/// stream at 1 or 16 shards yields identical summaries.
#[derive(Debug)]
pub struct IngestPipeline {
    config: IngestConfig,
    templates: Arc<[MotifTemplate]>,
    metrics: Arc<IngestMetrics>,
}

impl IngestPipeline {
    /// Creates a pipeline matching completed windows against `templates`
    /// (discovered offline with [`crate::motif::discover_motifs`] and
    /// exported via [`crate::motif::Motif::to_template`]).
    ///
    /// # Panics
    /// Panics if `config.bin_minutes` does not divide the window length
    /// (a configuration error, not a data error).
    pub fn new(config: IngestConfig, templates: Vec<MotifTemplate>) -> IngestPipeline {
        // Validate eagerly so a bad configuration fails at construction,
        // not inside a worker thread.
        let _ = WindowAccumulator::new(config.window, config.bin_minutes);
        let shards = config.shards.max(1);
        IngestPipeline {
            metrics: Arc::new(IngestMetrics::new(shards)),
            templates: templates.into(),
            config,
        }
    }

    /// The live metrics registry; clone the `Arc` into a monitoring thread
    /// and call [`IngestMetrics::snapshot`] at any rate.
    pub fn metrics(&self) -> Arc<IngestMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// Which shard a gateway is routed to (Fibonacci multiplicative hash).
    pub fn shard_of(&self, gateway: u64) -> usize {
        let shards = self.config.shards.max(1);
        (gateway.wrapping_mul(0x9E3779B97F4A7C15) >> 32) as usize % shards
    }

    /// Runs the pipeline to completion over `reports`, consuming the stream
    /// on the calling thread (the producer) while shard workers ingest in
    /// parallel. Returns the merged fleet summary.
    pub fn run<I>(&self, reports: I) -> IngestSummary
    where
        I: IntoIterator<Item = IngestReport>,
    {
        let shards = self.config.shards.max(1);
        let states = (0..shards).map(|_| ShardState::new()).collect();
        let durability = (0..shards).map(|_| None).collect();
        match self.run_inner(reports, 1, vec![0; shards], states, durability, None) {
            Ok(RunEnd::Completed(summary, _)) => *summary,
            Ok(RunEnd::Killed) => unreachable!("no kill switch was armed"),
            Err(e) => unreachable!("non-durable ingest performs no I/O: {e}"),
        }
    }

    /// The engine behind both [`IngestPipeline::run`] and the durable
    /// pipeline: assigns global sequence numbers starting at `first_seq`,
    /// skips reports already durable in their shard (`seq <= cutoffs[shard]`,
    /// counted [`MetricsSnapshot::wal_replayed`]), feeds the rest through
    /// the bounded queues, and lets each worker drive its [`ShardState`] —
    /// appending to the WAL and writing snapshots when a durability hook is
    /// installed, aborting without finishing when the kill switch fires.
    pub(crate) fn run_inner<I>(
        &self,
        reports: I,
        first_seq: u64,
        cutoffs: Vec<u64>,
        states: Vec<ShardState>,
        durability: Vec<Option<durable::ShardDurability>>,
        kill: Option<KillSwitch>,
    ) -> std::io::Result<RunEnd>
    where
        I: IntoIterator<Item = IngestReport>,
    {
        let shards = self.config.shards.max(1);
        assert_eq!(cutoffs.len(), shards);
        assert_eq!(states.len(), shards);
        assert_eq!(durability.len(), shards);
        let queues: Vec<BoundedQueue<Vec<(u64, IngestReport)>>> = (0..shards)
            .map(|_| BoundedQueue::new(self.config.queue_batches))
            .collect();
        let killed = AtomicBool::new(false);

        let ends: Vec<std::io::Result<WorkerEnd>> = std::thread::scope(|scope| {
            let handles: Vec<_> = states
                .into_iter()
                .zip(durability)
                .enumerate()
                .map(|(shard, (state, dur))| {
                    let queue = &queues[shard];
                    let killed = &killed;
                    scope.spawn(move || self.worker(shard, queue, state, dur, killed))
                })
                .collect();

            let mut batches: Vec<Vec<(u64, IngestReport)>> = (0..shards)
                .map(|_| Vec::with_capacity(self.config.batch_reports))
                .collect();
            let mut offered_now = 0u64;
            for (report, this_seq) in reports.into_iter().zip(first_seq..) {
                let shard = self.shard_of(report.gateway);
                if this_seq <= cutoffs[shard] {
                    // Already durable in this shard's WAL: it was replayed
                    // from disk during recovery, not re-offered.
                    self.metrics.wal_replayed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                self.metrics.offered.fetch_add(1, Ordering::Relaxed);
                batches[shard].push((this_seq, report));
                if batches[shard].len() >= self.config.batch_reports {
                    let batch = std::mem::replace(
                        &mut batches[shard],
                        Vec::with_capacity(self.config.batch_reports),
                    );
                    self.offer_batch(shard, &queues[shard], batch);
                }
                offered_now += 1;
                if let Some(k) = &kill {
                    if offered_now >= k.after_offered {
                        if k.hard {
                            // A genuine unclean death for the crash smoke:
                            // no unwinding, no buffer flushing, no exit
                            // handlers — the closest in-process stand-in
                            // for `kill -9`.
                            std::process::abort();
                        }
                        killed.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
            if !killed.load(Ordering::Relaxed) {
                for (shard, batch) in batches.into_iter().enumerate() {
                    if !batch.is_empty() {
                        self.offer_batch(shard, &queues[shard], batch);
                    }
                }
            }
            for queue in &queues {
                queue.close();
            }

            handles
                .into_iter()
                .map(|h| h.join().expect("ingest shard worker panicked"))
                .collect()
        });

        let mut gateways = Vec::new();
        let mut digests = Vec::new();
        let mut any_killed = false;
        for end in ends {
            match end? {
                WorkerEnd::Finished(summaries, digest) => {
                    gateways.extend(summaries);
                    digests.push(digest);
                }
                WorkerEnd::Killed => any_killed = true,
            }
        }
        if any_killed {
            return Ok(RunEnd::Killed);
        }
        gateways.sort_by_key(|g| g.gateway);
        let mut support = vec![0u64; self.templates.len()];
        for g in &gateways {
            for (s, &c) in support.iter_mut().zip(&g.support) {
                *s += c;
            }
        }
        // Combine per-shard state digests (shard order) when all are durable.
        let digest = digests
            .iter()
            .copied()
            .try_fold(durable::FNV_OFFSET, |acc, d| {
                d.map(|d| durable::fnv1a64_u64(acc, d))
            });
        Ok(RunEnd::Completed(
            Box::new(IngestSummary {
                gateways,
                support,
                metrics: self.metrics.snapshot(),
            }),
            digest,
        ))
    }

    fn offer_batch(
        &self,
        shard: usize,
        queue: &BoundedQueue<Vec<(u64, IngestReport)>>,
        batch: Vec<(u64, IngestReport)>,
    ) {
        match queue.push(batch) {
            Push::Pushed(depth) => {
                let gauges = &self.metrics.shards[shard];
                gauges.queue_depth.store(depth, Ordering::Relaxed);
                gauges.queue_peak.fetch_max(depth, Ordering::Relaxed);
            }
            Push::Closed(batch) => {
                // The shard already shut down: nothing will pop this batch.
                // The reports were offered, so account for every one of
                // them — the conservation law must close even on shutdown
                // races.
                self.metrics
                    .dropped_queue_closed
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
            }
        }
    }

    fn worker(
        &self,
        shard: usize,
        queue: &BoundedQueue<Vec<(u64, IngestReport)>>,
        mut state: ShardState,
        mut durability: Option<durable::ShardDurability>,
        killed: &AtomicBool,
    ) -> std::io::Result<WorkerEnd> {
        let gauges = &self.metrics.shards[shard];
        // Seed the throughput gauge with the recovered count so a resumed
        // run's books start where the crashed run's left off.
        gauges.processed.store(state.processed, Ordering::Relaxed);
        while let Some((batch, depth)) = queue.pop() {
            if killed.load(Ordering::Relaxed) {
                // Crash simulation: die between batches, losing the popped
                // batch and any unflushed WAL bytes, exactly as SIGKILL
                // would.
                if let Some(d) = durability.as_mut() {
                    d.crash();
                }
                return Ok(WorkerEnd::Killed);
            }
            let _span = gauges.batch_stage.enter();
            gauges.queue_depth.store(depth, Ordering::Relaxed);
            gauges
                .processed
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            let before = state.counts;
            for (seq, report) in &batch {
                if let Some(d) = durability.as_mut() {
                    // Write-ahead: the report is logged before any state
                    // transition, so recovery can always replay exactly
                    // what was consumed. Infallible: an exhausted retry
                    // budget degrades the shard (a counted gap) instead of
                    // killing the worker.
                    let _wal_span = gauges.wal_append.enter();
                    d.append(*seq, report);
                }
                state.consume(*seq, report, &self.config, &self.templates);
            }
            self.metrics.apply(&state.counts.minus(&before));
            if let Some(d) = durability.as_mut() {
                if d.snapshot_due(state.processed) {
                    let _snap_span = gauges.snapshot_write.enter();
                    d.write_snapshot(&state);
                }
            }
        }
        // The queue is closed and drained; settle the depth gauge at 0.
        // (The producer's relaxed store after its *last* push can otherwise
        // race this worker's store for that pop and leave a stale non-zero
        // reading at quiescence. This store happens-after every producer
        // store via the queue mutex, so the final gauge is deterministic.)
        gauges.queue_depth.store(0, Ordering::Relaxed);
        if killed.load(Ordering::Relaxed) {
            if let Some(d) = durability.as_mut() {
                d.crash();
            }
            return Ok(WorkerEnd::Killed);
        }
        let digest = match durability.as_mut() {
            Some(d) => {
                // Everything consumed is on disk before the run completes
                // (or counted in the durability gap), and the pre-finish
                // state digest is what recovery must reproduce.
                d.finish();
                Some(durable::state_digest(&state))
            }
            None => None,
        };
        let before = state.counts;
        let (summaries, final_counts) = state.finish(&self.config, &self.templates);
        self.metrics.apply(&final_counts.minus(&before));
        Ok(WorkerEnd::Finished(summaries, digest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(gateway: u64, device: u32, at: u32, cum: u64) -> IngestReport {
        IngestReport {
            gateway,
            device,
            at: Minute(at),
            cum_in: cum,
            cum_out: 0,
        }
    }

    fn test_config(shards: usize) -> IngestConfig {
        IngestConfig {
            shards,
            batch_reports: 7, // tiny batches to exercise queue churn
            queue_batches: 2,
            lateness_horizon: 3,
            ..IngestConfig::default()
        }
    }

    /// A clean in-order stream: every report ingested, accounting closed.
    #[test]
    fn clean_stream_fully_ingested() {
        let pipeline = IngestPipeline::new(test_config(2), Vec::new());
        let reports = (0..4u64).flat_map(|gw| {
            (0..200u32).map(move |m| report(gw, 0, m, (m as u64 + 1) * 100 * (gw + 1)))
        });
        let summary = pipeline.run(reports);
        let m = &summary.metrics;
        assert_eq!(m.offered, 800);
        assert_eq!(m.ingested, 800);
        assert_eq!(m.dropped(), 0);
        assert_eq!(m.baselines, 4, "one baseline per device");
        assert!(m.fully_accounted());
        assert_eq!(summary.gateways.len(), 4);
        assert!(summary
            .gateways
            .windows(2)
            .all(|w| w[0].gateway < w[1].gateway));
    }

    /// Late, duplicate and future-jump reports are counted, not fatal.
    #[test]
    fn malformed_reports_become_counted_outcomes() {
        let pipeline = IngestPipeline::new(test_config(1), Vec::new());
        let reports = vec![
            report(7, 0, 10, 100),
            report(7, 0, 11, 200),
            report(7, 0, 11, 200), // duplicate
            report(7, 0, 5, 50),   // late (before the device baseline)
            report(7, 0, 12, 300),
            report(7, 0, 90_000, 10), // future jump, uncorroborated
            report(7, 0, 13, 400),
        ];
        let summary = pipeline.run(reports);
        let m = &summary.metrics;
        assert_eq!(m.offered, 7);
        assert_eq!(m.dropped_duplicate, 1);
        assert_eq!(m.dropped_late, 1);
        assert_eq!(m.dropped_future_jump, 1);
        assert_eq!(m.ingested, 4);
        assert!(m.fully_accounted());
    }

    /// A sustained clock advance (outage recovery) is accepted after one
    /// corroborating report; a lone wild timestamp is not.
    #[test]
    fn future_jump_corroboration() {
        let config = test_config(1);
        let pipeline = IngestPipeline::new(config.clone(), Vec::new());
        let jump = 10 + config.max_future_jump + 1000;
        let reports = vec![
            report(1, 0, 10, 100),
            report(1, 0, jump, 5_000),     // held as suspect
            report(1, 0, jump + 1, 5_100), // corroborates: suspect = baseline
            report(1, 0, jump + 2, 5_200),
        ];
        let summary = pipeline.run(reports);
        let m = &summary.metrics;
        // A real outage recovery loses nothing: the held report becomes the
        // post-outage baseline once corroborated.
        assert_eq!(m.dropped_future_jump, 0);
        assert_eq!(m.ingested, 4);
        assert_eq!(m.baselines, 2);
        assert!(m.fully_accounted());

        // A lone wild timestamp with no corroboration ever is condemned at
        // end of stream.
        let pipeline = IngestPipeline::new(config, Vec::new());
        let reports = vec![report(1, 0, 10, 100), report(1, 0, jump, 5_000)];
        let summary = pipeline.run(reports);
        let m = &summary.metrics;
        assert_eq!(m.dropped_future_jump, 1);
        assert_eq!(m.ingested, 1);
        assert!(m.fully_accounted());
    }

    /// A counter reset during a reporting gap voids the delta (counted),
    /// while an adjacent-minute reset decodes as bytes-since-reset.
    #[test]
    fn reset_outcomes_match_batch_rules() {
        let pipeline = IngestPipeline::new(test_config(1), Vec::new());
        let reports = vec![
            report(3, 0, 0, 1_000),
            report(3, 0, 1, 400), // adjacent reset: 400 bytes
            report(3, 0, 2, 500),
            report(3, 0, 60, 100), // reset across a 58-minute gap: voided
            report(3, 0, 61, 250),
        ];
        let summary = pipeline.run(reports);
        let m = &summary.metrics;
        assert_eq!(m.reset_spanning_gaps, 1);
        assert!(m.counter_resets >= 1);
        assert_eq!(m.ingested, 5, "reset-gap reports are accepted");
        assert!(m.fully_accounted());
        assert_eq!(summary.gateways[0].devices, 1);
    }

    /// The same stream produces identical summaries at any shard count.
    #[test]
    fn summaries_identical_across_shard_counts() {
        let mk_reports = || {
            (0..12u64).flat_map(|gw| {
                (0..500u32).flat_map(move |m| {
                    (0..3u32).filter_map(move |dev| {
                        // Deterministic per-device loss pattern.
                        if (m + dev * 7 + gw as u32).is_multiple_of(11) {
                            return None;
                        }
                        Some(report(
                            gw,
                            dev,
                            m,
                            (m as u64 + 1) * (100 + dev as u64 * 13 + gw % 5),
                        ))
                    })
                })
            })
        };
        let run =
            |shards: usize| IngestPipeline::new(test_config(shards), Vec::new()).run(mk_reports());
        let one = run(1);
        for shards in [2, 3, 5] {
            let many = run(shards);
            assert_eq!(one.gateways, many.gateways, "shards={shards}");
            assert_eq!(one.support, many.support);
            assert_eq!(one.metrics.ingested, many.metrics.ingested);
            assert_eq!(one.metrics.dropped(), many.metrics.dropped());
        }
    }

    /// Windows seal online and match templates exactly like the batch
    /// matcher would.
    #[test]
    fn windows_seal_and_match_templates() {
        // One device, constant 600 bytes/min for 3 days → flat daily
        // windows; one evening-shaped template that must NOT match, then
        // check novel counting.
        let template = MotifTemplate {
            name: "evening".into(),
            pattern: vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 900.0, 950.0],
        };
        let config = IngestConfig {
            bin_minutes: 180,
            ..test_config(1)
        };
        let pipeline = IngestPipeline::new(config, vec![template]);
        let day = wtts_timeseries::MINUTES_PER_DAY;
        let reports = (0..3 * day).map(|m| report(0, 0, m, (m as u64 + 1) * 600));
        let summary = pipeline.run(reports);
        let m = &summary.metrics;
        assert_eq!(m.windows_sealed, 2, "two complete days sealed by day 3");
        // Days 1 and 2 seal online; day 3 (never followed by a day-4 push)
        // surfaces as the flushed partial window — all three are matched,
        // and none resembles the evening template.
        assert_eq!(m.windows_novel, 3, "flat days match no evening template");
        assert_eq!(m.windows_matched, 0);
        assert_eq!(summary.gateways[0].support, vec![0]);
        // The trailing partial day was flushed non-destructively.
        assert_eq!(m.partial_windows, 1);
    }

    /// The online dominance tracker finds the shaping device.
    #[test]
    fn online_dominance_finds_shaper() {
        let config = IngestConfig {
            lateness_horizon: 1,
            ..test_config(1)
        };
        let pipeline = IngestPipeline::new(config, Vec::new());
        // Device 0 shapes the total (bursty), device 1 is a constant hum.
        let mut reports = Vec::new();
        let mut cum0 = 0u64;
        let mut cum1 = 0u64;
        for m in 0..600u32 {
            cum0 += if (m / 60) % 3 == 2 {
                50_000
            } else {
                10 + (m % 7) as u64
            };
            cum1 += 800;
            reports.push(report(5, 0, m, cum0));
            reports.push(report(5, 1, m, cum1));
        }
        let summary = pipeline.run(reports);
        let dom = &summary.gateways[0].dominants;
        assert!(!dom.is_empty(), "the shaper must be detected");
        assert_eq!(dom[0].device, 0);
        assert_eq!(dom[0].rank, 0);
        assert!(dom[0].similarity > 0.9);
    }

    /// Backpressure: a tiny queue still processes everything (the producer
    /// blocks instead of dropping or buffering unbounded).
    #[test]
    fn bounded_queue_backpressure_loses_nothing() {
        let config = IngestConfig {
            queue_batches: 1,
            batch_reports: 2,
            ..test_config(2)
        };
        let pipeline = IngestPipeline::new(config, Vec::new());
        let reports =
            (0..8u64).flat_map(|gw| (0..300u32).map(move |m| report(gw, 0, m, m as u64 * 50)));
        let summary = pipeline.run(reports);
        assert_eq!(summary.metrics.offered, 8 * 300);
        assert!(summary.metrics.fully_accounted());
        let processed: u64 = summary.metrics.per_shard.iter().map(|s| s.processed).sum();
        assert_eq!(processed, 8 * 300);
        assert!(summary.metrics.per_shard.iter().all(|s| s.queue_depth == 0));
    }

    /// Metrics can be observed live from another thread while running.
    #[test]
    fn metrics_observable_mid_run() {
        let pipeline = IngestPipeline::new(test_config(1), Vec::new());
        let metrics = pipeline.metrics();
        let before = metrics.snapshot();
        assert_eq!(before.offered, 0);
        let reports = (0..1000u32).map(|m| report(0, 0, m, m as u64 * 10));
        let summary = pipeline.run(reports);
        let after = metrics.snapshot();
        assert_eq!(after, summary.metrics);
        assert_eq!(after.offered, 1000);
    }

    /// Regression: push on a closed queue must refuse the item, not
    /// enqueue it. The old wait loop (`while full && !closed`) exited on
    /// close and pushed unconditionally — past capacity, into a queue
    /// whose worker may already have drained and gone.
    #[test]
    fn push_after_close_is_rejected() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        assert_eq!(q.push(1), Push::Pushed(1));
        q.close();
        assert_eq!(q.push(2), Push::Closed(2));
        // The item enqueued before the close still drains.
        assert!(matches!(q.pop(), Some((1, 0))));
        assert!(q.pop().is_none());
    }

    /// The racy variant of the bug: a producer *blocked on a full queue*
    /// when `close()` arrives must wake to a `Closed` verdict, not push.
    #[test]
    fn close_racing_blocked_push_rejects_item() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert_eq!(q.push(1), Push::Pushed(1));
        std::thread::scope(|scope| {
            let blocked = scope.spawn(|| q.push(2));
            // Give the producer time to block on the full queue before
            // closing; the assertion holds regardless of who wins.
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.close();
            assert_eq!(blocked.join().unwrap(), Push::Closed(2));
        });
        assert!(matches!(q.pop(), Some((1, 0))));
        assert!(q.pop().is_none());
        // Depth never exceeded capacity: the rejected item was handed back.
    }

    /// Reports offered into an already-closed shard queue are dropped for
    /// a counted reason; the conservation law closes even on a shutdown
    /// race.
    #[test]
    fn offered_reports_racing_shutdown_are_counted_dropped() {
        let pipeline = IngestPipeline::new(test_config(1), Vec::new());
        let queue: BoundedQueue<Vec<(u64, IngestReport)>> = BoundedQueue::new(1);
        queue.close();
        pipeline.metrics.offered.fetch_add(2, Ordering::Relaxed);
        pipeline.offer_batch(
            0,
            &queue,
            vec![(1, report(0, 0, 0, 10)), (2, report(0, 0, 1, 20))],
        );
        let m = pipeline.metrics.snapshot();
        assert_eq!(m.dropped_queue_closed, 2);
        assert_eq!(m.dropped(), 2);
        assert!(m.fully_accounted());
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let pipeline = IngestPipeline::new(test_config(3), Vec::new());
        for gw in 0..100u64 {
            let s = pipeline.shard_of(gw);
            assert!(s < 3);
            assert_eq!(s, pipeline.shard_of(gw));
        }
    }

    #[test]
    fn empty_stream_yields_empty_summary() {
        let pipeline = IngestPipeline::new(test_config(4), Vec::new());
        let summary = pipeline.run(Vec::new());
        assert!(summary.gateways.is_empty());
        assert_eq!(summary.metrics.offered, 0);
        assert!(summary.metrics.fully_accounted());
    }
}
