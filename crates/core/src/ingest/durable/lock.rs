//! Single-writer guard for a durable directory.
//!
//! Two `DurablePipeline`s appending to the same WAL directory would
//! interleave segments and corrupt each other's books, so every
//! create/recover first acquires `ingest.lock` — a small text file naming
//! the owner (`pid`) and the configuration fingerprint it runs under.
//!
//! Acquisition rules (tested in `mod tests` below and `tests/durable.rs`):
//!
//! * no lock file → acquire (atomic `O_EXCL` create);
//! * lock held under a **different fingerprint** → refuse, always — a
//!   takeover must not splice logs across configurations;
//! * owner **alive** → [`LockError::Held`], always — takeover never fences
//!   a live writer;
//! * owner **dead** (stale lock from a crash) → [`LockError::Stale`]
//!   unless takeover is requested, in which case the stale lock is
//!   replaced and recovery proceeds (counted `lock_takeovers`);
//! * unparseable lock file → [`LockError::Corrupt`] unless takeover is
//!   requested (an unreadable owner cannot be liveness-checked, so only
//!   an explicit operator decision may break it).
//!
//! Liveness is judged by `/proc/<pid>` on Linux; elsewhere an existing
//! lock is conservatively presumed alive (only takeover can break it).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use super::fs::WalFs;

/// The lock file name inside a durable directory.
pub const LOCK_FILE: &str = "ingest.lock";

/// Why the single-writer lock could not be acquired.
#[derive(Debug)]
pub enum LockError {
    /// The directory is owned by a live process.
    Held {
        /// The owner's PID as recorded in the lock file.
        pid: u32,
        /// The lock file path.
        path: PathBuf,
    },
    /// The directory is owned by a dead process and takeover was not
    /// requested — pass `takeover` to fence it and recover.
    Stale {
        /// The dead owner's PID.
        pid: u32,
        /// The lock file path.
        path: PathBuf,
    },
    /// The lock was written under a different configuration fingerprint;
    /// neither plain acquisition nor takeover may cross that line.
    FingerprintMismatch {
        /// Fingerprint recorded in the lock file.
        held: u64,
        /// Fingerprint of the acquiring pipeline.
        ours: u64,
    },
    /// The lock file exists but cannot be parsed (and takeover was not
    /// requested).
    Corrupt(PathBuf),
    /// An underlying filesystem error.
    Io(io::Error),
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Held { pid, path } => {
                write!(
                    f,
                    "durable dir locked by live pid {pid} ({})",
                    path.display()
                )
            }
            LockError::Stale { pid, path } => write!(
                f,
                "durable dir locked by dead pid {pid} ({}); pass takeover to fence it",
                path.display()
            ),
            LockError::FingerprintMismatch { held, ours } => write!(
                f,
                "durable dir locked under fingerprint {held:016x}, ours is {ours:016x}"
            ),
            LockError::Corrupt(path) => write!(
                f,
                "unparseable lock file {} (pass takeover to break it)",
                path.display()
            ),
            LockError::Io(e) => write!(f, "lock i/o error: {e}"),
        }
    }
}

impl std::error::Error for LockError {}

impl From<io::Error> for LockError {
    fn from(e: io::Error) -> LockError {
        LockError::Io(e)
    }
}

/// Parsed contents of a lock file.
struct LockContents {
    pid: u32,
    fingerprint: u64,
}

fn render(pid: u32, fingerprint: u64) -> String {
    format!("pid={pid}\nfingerprint={fingerprint:016x}\n")
}

fn parse(bytes: &[u8]) -> Option<LockContents> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut pid = None;
    let mut fingerprint = None;
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("pid=") {
            pid = v.parse::<u32>().ok();
        } else if let Some(v) = line.strip_prefix("fingerprint=") {
            fingerprint = u64::from_str_radix(v, 16).ok();
        }
    }
    Some(LockContents {
        pid: pid?,
        fingerprint: fingerprint?,
    })
}

/// Whether a PID names a live process. On Linux `/proc/<pid>` is the
/// authority; elsewhere we conservatively presume alive so only an
/// explicit takeover can break a lock.
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// How a lock acquisition ended up succeeding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Acquired {
    /// The directory was unowned.
    Fresh,
    /// A stale (or corrupt, under takeover) lock was fenced and replaced.
    TookOver,
}

/// The held single-writer lock: removing the file on drop releases it.
pub(crate) struct LockGuard {
    fs: Arc<dyn WalFs>,
    path: PathBuf,
    held: bool,
}

impl std::fmt::Debug for LockGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockGuard")
            .field("path", &self.path)
            .field("held", &self.held)
            .finish()
    }
}

impl LockGuard {
    /// Acquires the single-writer lock for `dir` under the rules in the
    /// module docs.
    pub(crate) fn acquire(
        fs: Arc<dyn WalFs>,
        dir: &Path,
        fingerprint: u64,
        takeover: bool,
    ) -> Result<(LockGuard, Acquired), LockError> {
        let path = dir.join(LOCK_FILE);
        let pid = std::process::id();
        let contents = render(pid, fingerprint);
        let mut fenced = false;
        // At most two attempts: one against the existing owner, one after
        // fencing a stale lock.
        for _ in 0..2 {
            match fs.create_new(&path, contents.as_bytes()) {
                Ok(()) => {
                    return Ok((
                        LockGuard {
                            fs,
                            path,
                            held: true,
                        },
                        if fenced {
                            Acquired::TookOver
                        } else {
                            Acquired::Fresh
                        },
                    ));
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let held = match fs.read(&path) {
                        Ok(bytes) => parse(&bytes),
                        // The owner released between our create and read;
                        // try again.
                        Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                        Err(e) => return Err(LockError::Io(e)),
                    };
                    match held {
                        None => {
                            if !takeover {
                                return Err(LockError::Corrupt(path));
                            }
                        }
                        Some(held) => {
                            if held.fingerprint != fingerprint {
                                return Err(LockError::FingerprintMismatch {
                                    held: held.fingerprint,
                                    ours: fingerprint,
                                });
                            }
                            if pid_alive(held.pid) {
                                return Err(LockError::Held {
                                    pid: held.pid,
                                    path,
                                });
                            }
                            if !takeover {
                                return Err(LockError::Stale {
                                    pid: held.pid,
                                    path,
                                });
                            }
                        }
                    }
                    // Fence the dead/corrupt owner and retry the create.
                    match fs.remove(&path) {
                        Ok(()) => {}
                        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                        Err(e) => return Err(LockError::Io(e)),
                    }
                    fenced = true;
                }
                Err(e) => return Err(LockError::Io(e)),
            }
        }
        // Two owners raced us through both attempts; report the second.
        Err(LockError::Io(io::Error::new(
            io::ErrorKind::WouldBlock,
            "lost the lock race twice",
        )))
    }

    /// Releases the lock early (idempotent). Also called on drop; used
    /// explicitly when a cooperative kill simulation ends a run — within
    /// one process a dead "instance" cannot be told apart from a dead
    /// process by PID, so the simulated corpse must not keep the lock.
    pub(crate) fn release(&mut self) {
        if self.held {
            self.held = false;
            let _ = self.fs.remove(&self.path);
        }
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::durable::fs::StdFs;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wtts-lock-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fs() -> Arc<dyn WalFs> {
        Arc::new(StdFs)
    }

    #[test]
    fn fresh_dir_acquires_and_releases_on_drop() {
        let dir = scratch("fresh");
        let (guard, how) = LockGuard::acquire(fs(), &dir, 7, false).unwrap();
        assert_eq!(how, Acquired::Fresh);
        assert!(dir.join(LOCK_FILE).exists());
        drop(guard);
        assert!(!dir.join(LOCK_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_owner_is_refused_even_with_takeover() {
        let dir = scratch("live");
        // Our own PID is alive by definition.
        let (_guard, _) = LockGuard::acquire(fs(), &dir, 7, false).unwrap();
        for takeover in [false, true] {
            match LockGuard::acquire(fs(), &dir, 7, takeover) {
                Err(LockError::Held { pid, .. }) => assert_eq!(pid, std::process::id()),
                other => panic!("expected Held, got {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_owner_requires_takeover() {
        let dir = scratch("stale");
        // A PID that cannot be alive: PID_MAX on Linux is < 2^22.
        std::fs::write(dir.join(LOCK_FILE), render(u32::MAX - 1, 7)).unwrap();
        match LockGuard::acquire(fs(), &dir, 7, false) {
            Err(LockError::Stale { pid, .. }) => assert_eq!(pid, u32::MAX - 1),
            other => panic!("expected Stale, got {other:?}"),
        }
        let (guard, how) = LockGuard::acquire(fs(), &dir, 7, true).unwrap();
        assert_eq!(how, Acquired::TookOver);
        drop(guard);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_refused_even_with_takeover() {
        let dir = scratch("fp");
        std::fs::write(dir.join(LOCK_FILE), render(u32::MAX - 1, 7)).unwrap();
        for takeover in [false, true] {
            match LockGuard::acquire(fs(), &dir, 8, takeover) {
                Err(LockError::FingerprintMismatch { held, ours }) => {
                    assert_eq!((held, ours), (7, 8));
                }
                other => panic!("expected FingerprintMismatch, got {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_lock_requires_takeover() {
        let dir = scratch("corrupt");
        std::fs::write(dir.join(LOCK_FILE), b"\xFF\xFEnot a lock").unwrap();
        match LockGuard::acquire(fs(), &dir, 7, false) {
            Err(LockError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let (_guard, how) = LockGuard::acquire(fs(), &dir, 7, true).unwrap();
        assert_eq!(how, Acquired::TookOver);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
