//! Filesystem abstraction for the durable ingest path.
//!
//! Every file operation the WAL/snapshot/lock machinery performs goes
//! through [`WalFs`], so the whole durability layer can run against either
//! the real filesystem ([`StdFs`]) or a deterministic fault injector
//! ([`FaultyFs`]) that fails the Nth operation with EIO, writes short,
//! reports ENOSPC, lies about `fsync`, or tears a rename between unlink
//! and link. The injector is what lets tests and CI *prove* the recovery
//! invariants under disk failure instead of hoping.
//!
//! Transient-failure handling lives here too: [`IoPolicy`] bounds
//! retry-with-exponential-backoff, and [`with_retry`] is the single retry
//! loop every durable I/O call goes through (retries are counted by the
//! caller via the returned attempt count).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// `EIO` — the transient read/write error a flaky disk or controller
/// reports.
pub const EIO: i32 = 5;
/// `ENOSPC` — the volume is full; retryable because log shipping /
/// compaction elsewhere may free space.
pub const ENOSPC: i32 = 28;

// ---------------------------------------------------------------------------
// Traits
// ---------------------------------------------------------------------------

/// An open append-only file handle on a [`WalFs`].
pub trait WalFile: Send {
    /// Appends bytes at the end of the file, returning how many were
    /// written — a short count models a partial write (interrupted or
    /// out of space mid-buffer) and the caller must resubmit the rest.
    fn append(&mut self, buf: &[u8]) -> io::Result<usize>;
    /// Flushes file data to stable storage (`fdatasync`). A faulty
    /// implementation may *lie* — report success without persisting —
    /// which is exactly the failure mode [`FaultKind::SyncLies`] injects.
    fn sync(&mut self) -> io::Result<()>;
}

/// Every filesystem operation the durable path performs, as one
/// object-safe trait. Implemented by [`StdFs`] (the real thing) and
/// [`FaultyFs`] (seeded fault schedules); held as `Arc<dyn WalFs>` inside
/// [`super::DurableConfig`].
pub trait WalFs: Send + Sync {
    /// Creates (or truncates) a file for appending.
    fn create(&self, path: &Path) -> io::Result<Box<dyn WalFile>>;
    /// Creates a file that must not already exist (`O_EXCL`), writing
    /// `contents` in full — the lock-file primitive.
    fn create_new(&self, path: &Path, contents: &[u8]) -> io::Result<()>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically renames `from` onto `to` (the snapshot publish step).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Lists the file names (not full paths) in a directory.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Truncates a file to `len` bytes (torn-tail healing).
    fn set_len(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Creates a directory and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// File size in bytes, or `None` if the file does not exist.
    fn file_len(&self, path: &Path) -> io::Result<Option<u64>>;
}

// ---------------------------------------------------------------------------
// Real filesystem
// ---------------------------------------------------------------------------

/// The real filesystem: thin wrappers over `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

struct StdFile(File);

impl WalFile for StdFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl WalFs for StdFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        Ok(Box::new(StdFile(File::create(path)?)))
    }

    fn create_new(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new().write(true).create_new(true).open(path)?;
        f.write_all(contents)?;
        f.sync_data()
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        OpenOptions::new().write(true).open(path)?.set_len(len)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn file_len(&self, path: &Path) -> io::Result<Option<u64>> {
        match std::fs::metadata(path) {
            Ok(m) => Ok(Some(m.len())),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// The disk failure a [`FaultSpec`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write fails with `EIO` (nothing written).
    WriteEio,
    /// The write succeeds but short: only half the buffer (at least one
    /// byte) is written.
    WriteShort,
    /// The write fails with `ENOSPC` (nothing written).
    WriteEnospc,
    /// `fsync` reports success but persists nothing — the data is still
    /// only in the page cache and a machine crash
    /// ([`FaultyFs::machine_crash`]) drops it.
    SyncLies,
    /// The rename is torn between unlink and link: the destination is
    /// removed but the source is not linked over it, and the call reports
    /// `EIO`. A retry can still complete it (the source is intact).
    RenameTorn,
}

/// One scheduled fault: fire `kind` on the `op`-th counted I/O operation
/// (writes, syncs and renames share one global counter, so a schedule is a
/// deterministic function of the I/O sequence, not of wall time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// 0-based index into the global operation sequence.
    pub op: u64,
    /// What goes wrong.
    pub kind: FaultKind,
}

#[derive(Default)]
struct FaultyState {
    /// op index -> fault to inject (consumed on fire).
    plan: HashMap<u64, FaultKind>,
    /// Honestly-synced length per file — what survives a machine crash.
    synced: HashMap<PathBuf, u64>,
}

/// The shared core of a [`FaultyFs`] — `Arc`ed into every open file so
/// all handles draw from one global op counter and fault plan.
#[derive(Default)]
struct FaultyShared {
    ops: AtomicU64,
    injected: AtomicU64,
    state: Mutex<FaultyState>,
}

impl FaultyShared {
    /// Draw the planned fault for the next op index, if any.
    fn draw(&self) -> Option<FaultKind> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let kind = self
            .state
            .lock()
            .expect("faulty fs poisoned")
            .plan
            .remove(&op);
        if kind.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        kind
    }

    fn note_synced(&self, path: &Path, len: u64) {
        self.state
            .lock()
            .expect("faulty fs poisoned")
            .synced
            .insert(path.to_path_buf(), len);
    }
}

/// A deterministic fault-injecting filesystem: wraps the real [`StdFs`]
/// (so files genuinely exist and a `SIGKILL` + separate-process recovery
/// still works) but fails operations according to a seeded schedule.
///
/// Operations are counted globally across all files in submission order:
/// the Nth write/sync/rename fires the fault planned for index N. With a
/// single-shard pipeline the count sequence is fully deterministic; with
/// several shards the *set* of injected faults is fixed but which shard
/// absorbs each one depends on thread interleaving — the recovery
/// invariants are attribution-independent, so both modes are useful.
pub struct FaultyFs {
    inner: StdFs,
    shared: Arc<FaultyShared>,
}

impl std::fmt::Debug for FaultyFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyFs")
            .field("ops", &self.ops())
            .field("injected", &self.injected())
            .finish()
    }
}

impl FaultyFs {
    /// A fault injector firing each `schedule` entry at its op index.
    pub fn new(schedule: &[FaultSpec]) -> FaultyFs {
        let plan = schedule.iter().map(|s| (s.op, s.kind)).collect();
        FaultyFs {
            inner: StdFs,
            shared: Arc::new(FaultyShared {
                ops: AtomicU64::new(0),
                injected: AtomicU64::new(0),
                state: Mutex::new(FaultyState {
                    plan,
                    synced: HashMap::new(),
                }),
            }),
        }
    }

    /// How many I/O operations (writes, syncs, renames) have been counted.
    pub fn ops(&self) -> u64 {
        self.shared.ops.load(Ordering::Relaxed)
    }

    /// How many faults actually fired.
    pub fn injected(&self) -> u64 {
        self.shared.injected.load(Ordering::Relaxed)
    }

    /// Simulates a machine (power) crash: every tracked file is truncated
    /// back to its last *honestly synced* length, dropping everything the
    /// page cache held — including data a lying fsync claimed was safe.
    /// Files never synced are truncated to their length at open.
    pub fn machine_crash(&self) -> io::Result<()> {
        let synced: Vec<(PathBuf, u64)> = {
            let state = self.shared.state.lock().expect("faulty fs poisoned");
            state.synced.iter().map(|(p, &l)| (p.clone(), l)).collect()
        };
        for (path, len) in synced {
            // The file may have been renamed or removed since; only
            // truncate what still exists.
            if self.inner.file_len(&path)?.is_some() {
                self.inner.set_len(&path, len)?;
            }
        }
        Ok(())
    }
}

struct FaultyFile {
    file: File,
    path: PathBuf,
    len: u64,
    shared: Arc<FaultyShared>,
}

impl WalFile for FaultyFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.shared.draw() {
            Some(FaultKind::WriteEio) => Err(io::Error::from_raw_os_error(EIO)),
            Some(FaultKind::WriteEnospc) => Err(io::Error::from_raw_os_error(ENOSPC)),
            Some(FaultKind::WriteShort) => {
                let n = (buf.len() / 2).max(1).min(buf.len());
                self.file.write_all(&buf[..n])?;
                self.len += n as u64;
                Ok(n)
            }
            // A sync/rename fault scheduled on a write op degrades to an
            // honest write (those kinds only bite on their own op types).
            Some(FaultKind::SyncLies) | Some(FaultKind::RenameTorn) | None => {
                self.file.write_all(buf)?;
                self.len += buf.len() as u64;
                Ok(buf.len())
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        match self.shared.draw() {
            Some(FaultKind::SyncLies) => Ok(()), // reports success, persists nothing
            Some(FaultKind::WriteEio) => Err(io::Error::from_raw_os_error(EIO)),
            Some(FaultKind::WriteEnospc) => Err(io::Error::from_raw_os_error(ENOSPC)),
            _ => {
                self.file.sync_data()?;
                self.shared.note_synced(&self.path, self.len);
                Ok(())
            }
        }
    }
}

impl WalFs for FaultyFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        let file = File::create(path)?;
        self.shared.note_synced(path, 0);
        Ok(Box::new(FaultyFile {
            file,
            path: path.to_path_buf(),
            len: 0,
            shared: Arc::clone(&self.shared),
        }))
    }

    fn create_new(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        self.inner.create_new(path, contents)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.shared.draw() {
            Some(FaultKind::RenameTorn) => {
                // Torn between unlink and link: the destination is gone,
                // the source still exists, and the caller sees EIO.
                match self.inner.remove(to) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
                Err(io::Error::from_raw_os_error(EIO))
            }
            Some(FaultKind::WriteEio) => Err(io::Error::from_raw_os_error(EIO)),
            Some(FaultKind::WriteEnospc) => Err(io::Error::from_raw_os_error(ENOSPC)),
            _ => self.inner.rename(from, to),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.list(dir)
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        self.inner.set_len(path, len)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn file_len(&self, path: &Path) -> io::Result<Option<u64>> {
        self.inner.file_len(path)
    }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Bounded retry-with-exponential-backoff for transient I/O faults.
///
/// An operation failing with a transient error ([`IoPolicy::transient`])
/// is retried up to `max_retries` times, sleeping `backoff_base * 2^k`
/// (capped at `backoff_max`) before retry `k`. Exhausting the budget
/// surfaces the last error to the caller, which degrades instead of
/// panicking (see [`super::Durability::Degraded`]).
#[derive(Debug, Clone)]
pub struct IoPolicy {
    /// Retries after the first attempt (0 = fail on first error).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each time.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
}

impl Default for IoPolicy {
    fn default() -> IoPolicy {
        IoPolicy {
            max_retries: 4,
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(100),
        }
    }
}

impl IoPolicy {
    /// A policy for tests: `max_retries` attempts, no sleeping.
    pub fn no_backoff(max_retries: u32) -> IoPolicy {
        IoPolicy {
            max_retries,
            backoff_base: Duration::ZERO,
            backoff_max: Duration::ZERO,
        }
    }

    /// Whether an error is worth retrying: interrupted syscalls and the
    /// disk-level transients (`EIO`, `ENOSPC`) — corruption and
    /// configuration errors are not.
    pub fn transient(e: &io::Error) -> bool {
        matches!(
            e.kind(),
            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) || matches!(e.raw_os_error(), Some(EIO) | Some(ENOSPC))
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(16);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_max)
    }
}

/// Runs `op` under `policy`, returning the final result and how many
/// retries were spent (for the `wal_io_retries` counter). Non-transient
/// errors are returned immediately without burning the retry budget.
pub(crate) fn with_retry<T>(
    policy: &IoPolicy,
    mut op: impl FnMut() -> io::Result<T>,
) -> (io::Result<T>, u64) {
    let mut retries = 0u64;
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return (Ok(v), retries),
            Err(e) if IoPolicy::transient(&e) && attempt < policy.max_retries => {
                let pause = policy.backoff(attempt);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
                attempt += 1;
                retries += 1;
            }
            Err(e) => return (Err(e), retries),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_recovers_from_transients_and_counts() {
        let policy = IoPolicy::no_backoff(3);
        let mut failures = 2;
        let (res, retries) = with_retry(&policy, || {
            if failures > 0 {
                failures -= 1;
                Err(io::Error::from_raw_os_error(EIO))
            } else {
                Ok(42)
            }
        });
        assert_eq!(res.unwrap(), 42);
        assert_eq!(retries, 2);
    }

    #[test]
    fn retry_gives_up_after_budget() {
        let policy = IoPolicy::no_backoff(2);
        let (res, retries) =
            with_retry::<()>(&policy, || Err(io::Error::from_raw_os_error(ENOSPC)));
        let err = res.unwrap_err();
        assert_eq!(err.raw_os_error(), Some(ENOSPC));
        assert_eq!(retries, 2);
    }

    #[test]
    fn non_transient_errors_skip_the_retry_budget() {
        let policy = IoPolicy::no_backoff(5);
        let (res, retries) = with_retry::<()>(&policy, || {
            Err(io::Error::new(io::ErrorKind::InvalidData, "corrupt"))
        });
        assert_eq!(res.unwrap_err().kind(), io::ErrorKind::InvalidData);
        assert_eq!(retries, 0);
    }

    #[test]
    fn faulty_fs_injects_on_schedule() {
        let dir = std::env::temp_dir().join(format!("wtts-faultyfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let fs = FaultyFs::new(&[
            FaultSpec {
                op: 0,
                kind: FaultKind::WriteEio,
            },
            FaultSpec {
                op: 1,
                kind: FaultKind::WriteShort,
            },
        ]);
        let path = dir.join("a.bin");
        let mut f = WalFs::create(&fs, &path).unwrap();
        let err = f.append(b"hello world!").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(EIO));
        // Short write: half the buffer lands.
        assert_eq!(f.append(b"hello world!").unwrap(), 6);
        // No more faults planned: full write.
        assert_eq!(f.append(b"!!").unwrap(), 2);
        assert_eq!(fs.injected(), 2);
        assert_eq!(fs.file_len(&path).unwrap(), Some(8));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lying_fsync_loses_data_at_machine_crash() {
        let dir = std::env::temp_dir().join(format!("wtts-liarfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Op 0: honest write. Op 1: lying sync. Op 2+: honest.
        let fs = FaultyFs::new(&[FaultSpec {
            op: 1,
            kind: FaultKind::SyncLies,
        }]);
        let path = dir.join("w.bin");
        let mut f = WalFs::create(&fs, &path).unwrap();
        f.append(b"abcd").unwrap();
        f.sync().unwrap(); // lies: claims durability, records nothing
        drop(f);
        assert_eq!(fs.file_len(&path).unwrap(), Some(4));
        fs.machine_crash().unwrap();
        // Everything after the last honest sync (none) is gone.
        assert_eq!(fs.file_len(&path).unwrap(), Some(0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_rename_removes_destination_but_keeps_source() {
        let dir = std::env::temp_dir().join(format!("wtts-tornfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let fs = FaultyFs::new(&[FaultSpec {
            op: 0,
            kind: FaultKind::RenameTorn,
        }]);
        let src = dir.join("new.bin");
        let dst = dir.join("cur.bin");
        std::fs::write(&src, b"new").unwrap();
        std::fs::write(&dst, b"old").unwrap();
        let err = fs.rename(&src, &dst).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(EIO));
        assert_eq!(fs.file_len(&dst).unwrap(), None, "destination unlinked");
        assert_eq!(fs.file_len(&src).unwrap(), Some(3), "source intact");
        // The retry completes the move.
        fs.rename(&src, &dst).unwrap();
        assert_eq!(fs.file_len(&dst).unwrap(), Some(3));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
