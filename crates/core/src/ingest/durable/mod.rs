//! Durable, replayable, fault-tolerant ingest: rotated per-shard WAL
//! segments + periodic snapshots + compaction + deterministic recovery.
//!
//! The streaming pipeline of the parent module is lossless while the
//! process lives; this module makes it lossless across a `kill -9` and
//! honest about its losses across disk failure. Artifacts per shard, all
//! in one directory guarded by a single-writer lock ([`lock`]):
//!
//! * **WAL segments** (`wal-<shard>-<first_seq>.seg`) — rotated,
//!   length-bounded append-only logs of every report the shard *consumes*,
//!   written before the state transition it causes. Each segment header
//!   names the shard, the configuration fingerprint, the first global
//!   sequence number inside and `records_before` — how many records this
//!   shard appended to *earlier* segments (including counted losses), the
//!   stitch line recovery audits against. Records are length-prefixed and
//!   CRC32-checksummed, so a torn tail is detected and truncated, never
//!   misparsed. Logging consumed rather than merely accepted reports is
//!   deliberate: drop classification (late / duplicate / future-jump) is a
//!   *function of state*, so replaying the same consumed sequence
//!   reproduces the same drops, counters and windows bit for bit.
//! * **Snapshot** (`snap-<shard>.bin`, atomic tmp+rename) — the full
//!   [`ShardState`] plus its [`ShardCounts`] ledger, written every
//!   [`DurableConfig::snapshot_every_reports`] consumed reports. A
//!   checksummed-valid snapshot is trusted as self-contained state: it
//!   records the last consumed sequence (`coverage_seq`), how many records
//!   it covers and the shard's total appended count, and recovery replays
//!   only records beyond `coverage_seq`.
//! * **Compaction** — after a snapshot publishes, every sealed segment
//!   whose records all fall at or below `coverage_seq` is deleted
//!   ([`MetricsSnapshot::wal_segments_compacted`]), so disk usage stays
//!   bounded by the snapshot cadence plus the segment size instead of
//!   growing with the stream.
//! * **Fault tolerance** — every file operation goes through the
//!   [`WalFs`] abstraction ([`fs`]); transient failures (EIO, ENOSPC,
//!   interrupted syscalls) are retried under a bounded
//!   exponential-backoff [`IoPolicy`] (counted `wal_io_retries`). When the
//!   budget is exhausted (`wal_io_gave_up`) the shard **degrades instead
//!   of panicking**: it keeps computing with durability off, counting
//!   every record it can no longer log as `wal_gap_records`, and the run
//!   completes with [`Durability::Degraded`]. Recovery likewise never
//!   invents data: records that were logged but are no longer replayable
//!   (compacted segments whose snapshot died) surface as counted
//!   `wal_lost_records`, and the conservation laws
//!   ([`MetricsSnapshot::fully_accounted`],
//!   [`MetricsSnapshot::durably_accounted`]) still balance.
//!
//! **Recovery invariants** (tested in `tests/durable.rs` and below):
//!
//! 1. *Bit-identical state or a typed gap*: after recovery, each shard's
//!    canonical state encoding equals a fresh fold of
//!    [`ShardState::consume`] over its durably-logged record sequence —
//!    or, when loss was injected, the books report exactly how many
//!    records are gone ([`MetricsSnapshot::durability_gap`]).
//! 2. *Bit-identical completion*: crash at any point, recover, re-feed the
//!    stream, and the final [`IngestSummary`], pre-finish state digest and
//!    deterministic metrics projection equal an uninterrupted run's.
//! 3. *Conservation*: `ingested + dropped + wal_lost_records == offered`
//!    and `wal_records + wal_gap_records + wal_lost_records == offered`
//!    at quiescence, under any seeded fault schedule.
//!
//! Sequence numbers are global (1-based, assigned by the producer in
//! stream order), so each shard's log holds a strictly increasing
//! subsequence and `min` over shards of the last logged seq is a safe
//! resume point ([`DurablePipeline::resume_seq`]); re-feeding the full
//! stream is always correct and is what [`DurablePipeline::run`] expects.
//!
//! Durability of the files themselves is `fsync`-gated
//! ([`DurableConfig::fsync`], default off): without it a *machine* crash
//! can lose buffered bytes, but recovery still lands on a valid
//! checksummed prefix — the guarantee degrades to "replayable from an
//! earlier point", never to corruption. [`FaultyFs::machine_crash`]
//! simulates exactly that power cut (including an fsync that lied).

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use super::{
    GatewayLane, IngestConfig, IngestMetrics, IngestPipeline, IngestReport, IngestSummary,
    KillSwitch, PendingMinute, RunEnd, ShardCounts, ShardState,
};
use crate::streaming::{MotifTemplate, OnlinePearson, WindowAccumulator};
use wtts_timeseries::Minute;

pub mod fs;
pub mod lock;

pub use fs::{FaultKind, FaultSpec, FaultyFs, IoPolicy, StdFs, WalFile, WalFs};
pub use lock::{LockError, LOCK_FILE};

use fs::with_retry;
use lock::{Acquired, LockGuard};

// ---------------------------------------------------------------------------
// Checksums and digests (no external deps: CRC32/IEEE and FNV-1a by hand)
// ---------------------------------------------------------------------------

/// CRC32 (IEEE 802.3, reflected, init/final xor `0xFFFF_FFFF`) — the
/// polynomial every torn-tail detector speaks.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// FNV-1a offset basis (the seed of every digest fold in this module).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64_bytes(mut acc: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        acc = (acc ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    acc
}

/// Folds one `u64` into an FNV-1a accumulator (little-endian bytes).
pub(crate) fn fnv1a64_u64(acc: u64, v: u64) -> u64 {
    fnv1a64_bytes(acc, &v.to_le_bytes())
}

// ---------------------------------------------------------------------------
// Little-endian encode/decode helpers
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("durable ingest: {what}"),
    )
}

/// A bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| corrupt("length overflow"))?;
        if end > self.buf.len() {
            return Err(corrupt("truncated record"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length prefix that must be satisfiable by the remaining bytes
    /// (each element at least `min_width` bytes) — rejects hostile lengths
    /// before any allocation.
    fn len(&mut self, min_width: usize) -> io::Result<usize> {
        let n = self.u64()? as usize;
        if n.saturating_mul(min_width.max(1)) > self.buf.len() - self.pos {
            return Err(corrupt("implausible length prefix"));
        }
        Ok(n)
    }

    fn done(&self) -> io::Result<()> {
        if self.pos != self.buf.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Canonical state encoding
// ---------------------------------------------------------------------------

/// Fingerprint of everything that determines state semantics: a snapshot
/// or WAL written under one configuration must not be replayed under
/// another (different thresholds or shard routing would silently diverge).
pub(crate) fn config_fingerprint(config: &IngestConfig, n_templates: usize) -> u64 {
    let mut acc = FNV_OFFSET;
    acc = fnv1a64_u64(acc, config.window as u64);
    acc = fnv1a64_u64(acc, config.bin_minutes as u64);
    acc = fnv1a64_u64(acc, config.lateness_horizon as u64);
    acc = fnv1a64_u64(acc, config.max_future_jump as u64);
    acc = fnv1a64_u64(acc, config.dominance_phi.to_bits());
    acc = fnv1a64_u64(acc, config.motif_threshold.to_bits());
    acc = fnv1a64_u64(acc, n_templates as u64);
    acc = fnv1a64_u64(acc, config.shards.max(1) as u64);
    acc
}

fn encode_counts(buf: &mut Vec<u8>, c: &ShardCounts) {
    for v in [
        c.ingested,
        c.baselines,
        c.reset_spanning_gaps,
        c.counter_resets,
        c.dropped_late,
        c.dropped_duplicate,
        c.dropped_future_jump,
        c.windows_sealed,
        c.windows_matched,
        c.windows_novel,
        c.windows_insufficient,
        c.partial_windows,
    ] {
        put_u64(buf, v);
    }
}

fn decode_counts(cur: &mut Cursor) -> io::Result<ShardCounts> {
    Ok(ShardCounts {
        ingested: cur.u64()?,
        baselines: cur.u64()?,
        reset_spanning_gaps: cur.u64()?,
        counter_resets: cur.u64()?,
        dropped_late: cur.u64()?,
        dropped_duplicate: cur.u64()?,
        dropped_future_jump: cur.u64()?,
        windows_sealed: cur.u64()?,
        windows_matched: cur.u64()?,
        windows_novel: cur.u64()?,
        windows_insufficient: cur.u64()?,
        partial_windows: cur.u64()?,
    })
}

fn encode_baseline(buf: &mut Vec<u8>, b: Option<(Minute, u64, u64)>) {
    match b {
        None => buf.push(0),
        Some((at, cin, cout)) => {
            buf.push(1);
            put_u32(buf, at.0);
            put_u64(buf, cin);
            put_u64(buf, cout);
        }
    }
}

fn decode_baseline(cur: &mut Cursor) -> io::Result<Option<(Minute, u64, u64)>> {
    match cur.u8()? {
        0 => Ok(None),
        1 => Ok(Some((Minute(cur.u32()?), cur.u64()?, cur.u64()?))),
        _ => Err(corrupt("bad baseline tag")),
    }
}

fn encode_lane(buf: &mut Vec<u8>, lane: &GatewayLane) {
    put_u64(buf, lane.gateway);
    put_u64(buf, lane.reports);
    put_u64(buf, lane.sealed);
    put_u64(buf, lane.matched);
    put_u64(buf, lane.novel);
    put_u64(buf, lane.insufficient);
    put_u32(buf, lane.watermark);
    put_u32(buf, lane.max_seen);
    put_u64(buf, lane.support.len() as u64);
    for &s in &lane.support {
        put_u64(buf, s);
    }
    let (current_start, bins, seen) = lane.accumulator.raw_parts();
    put_u32(buf, current_start);
    put_u64(buf, bins.len() as u64);
    for &b in bins {
        put_f64(buf, b);
    }
    for &s in seen {
        buf.push(s as u8);
    }
    put_u64(buf, lane.pending.len() as u64);
    for pm in &lane.pending {
        put_u32(buf, pm.minute);
        put_u64(buf, pm.contributions.len() as u64);
        for &(device, bytes) in &pm.contributions {
            put_u32(buf, device);
            put_f64(buf, bytes);
        }
    }
    let mut device_ids: Vec<u32> = lane.devices.keys().copied().collect();
    device_ids.sort_unstable();
    put_u64(buf, device_ids.len() as u64);
    for id in device_ids {
        let d = &lane.devices[&id];
        put_u32(buf, id);
        encode_baseline(buf, d.last);
        encode_baseline(buf, d.suspect);
        let (n, parts) = d.dominance.raw_parts();
        put_u64(buf, n);
        for p in parts {
            put_f64(buf, p);
        }
    }
}

fn decode_lane(
    cur: &mut Cursor,
    config: &IngestConfig,
    n_templates: usize,
) -> io::Result<GatewayLane> {
    let gateway = cur.u64()?;
    let mut lane = GatewayLane::new(gateway, config, n_templates);
    lane.reports = cur.u64()?;
    lane.sealed = cur.u64()?;
    lane.matched = cur.u64()?;
    lane.novel = cur.u64()?;
    lane.insufficient = cur.u64()?;
    lane.watermark = cur.u32()?;
    lane.max_seen = cur.u32()?;
    let n_support = cur.len(8)?;
    if n_support != n_templates {
        return Err(corrupt("support width mismatch"));
    }
    for s in lane.support.iter_mut() {
        *s = cur.u64()?;
    }
    let current_start = cur.u32()?;
    let n_bins = cur.len(8)?;
    let mut bins = Vec::with_capacity(n_bins);
    for _ in 0..n_bins {
        bins.push(cur.f64()?);
    }
    let mut seen = Vec::with_capacity(n_bins);
    for _ in 0..n_bins {
        seen.push(match cur.u8()? {
            0 => false,
            1 => true,
            _ => return Err(corrupt("bad seen flag")),
        });
    }
    // Geometry is validated by from_raw_parts against (window, bin_minutes);
    // reject mismatches as corruption rather than panicking.
    if n_bins != lane.accumulator.raw_parts().1.len() {
        return Err(corrupt("window geometry mismatch"));
    }
    lane.accumulator = WindowAccumulator::from_raw_parts(
        config.window,
        config.bin_minutes,
        current_start,
        bins,
        seen,
    );
    let n_pending = cur.len(12)?;
    for _ in 0..n_pending {
        let minute = cur.u32()?;
        let n_contrib = cur.len(12)?;
        let mut contributions = Vec::with_capacity(n_contrib);
        for _ in 0..n_contrib {
            contributions.push((cur.u32()?, cur.f64()?));
        }
        lane.pending.push_back(PendingMinute {
            minute,
            contributions,
        });
    }
    let n_devices = cur.len(4)?;
    for _ in 0..n_devices {
        let id = cur.u32()?;
        let last = decode_baseline(cur)?;
        let suspect = decode_baseline(cur)?;
        let n = cur.u64()?;
        let mut parts = [0.0f64; 5];
        for p in parts.iter_mut() {
            *p = cur.f64()?;
        }
        lane.devices.insert(
            id,
            super::DeviceState {
                last,
                suspect,
                dominance: OnlinePearson::from_raw_parts(n, parts),
            },
        );
    }
    Ok(lane)
}

/// Canonical byte encoding of a full shard state (lanes sorted by gateway,
/// devices by id, floats as IEEE-754 bits). Two states are bit-identical
/// iff their encodings are equal — the comparison primitive of every
/// recovery test.
pub(crate) fn encode_state(state: &ShardState) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, state.last_seq);
    put_u64(&mut buf, state.processed);
    encode_counts(&mut buf, &state.counts);
    let mut gateways: Vec<u64> = state.lanes.keys().copied().collect();
    gateways.sort_unstable();
    put_u64(&mut buf, gateways.len() as u64);
    for gw in gateways {
        encode_lane(&mut buf, &state.lanes[&gw]);
    }
    buf
}

fn decode_state(bytes: &[u8], config: &IngestConfig, n_templates: usize) -> io::Result<ShardState> {
    let mut cur = Cursor::new(bytes);
    let last_seq = cur.u64()?;
    let processed = cur.u64()?;
    let counts = decode_counts(&mut cur)?;
    let n_lanes = cur.len(64)?;
    let mut lanes = HashMap::with_capacity(n_lanes);
    for _ in 0..n_lanes {
        let lane = decode_lane(&mut cur, config, n_templates)?;
        lanes.insert(lane.gateway, lane);
    }
    cur.done()?;
    Ok(ShardState {
        lanes,
        counts,
        last_seq,
        processed,
    })
}

/// FNV-1a digest of the canonical state encoding. Cheap to combine across
/// shards and stable across processes (no address-dependent iteration
/// order leaks into it).
pub(crate) fn state_digest(state: &ShardState) -> u64 {
    fnv1a64_bytes(FNV_OFFSET, &encode_state(state))
}

// ---------------------------------------------------------------------------
// Segment and snapshot formats
// ---------------------------------------------------------------------------

const SEG_MAGIC: &[u8; 8] = b"WTTSSEG1";
const SNAP_MAGIC: &[u8; 8] = b"WTTSSNAP";
const SNAP_VERSION: u32 = 2;
/// Segment header: magic + fingerprint + shard + first_seq + records_before.
const SEG_HEADER_LEN: usize = 36;
/// Fixed payload width of a WAL record (seq, gateway, device, at, cum_in,
/// cum_out); the length prefix exists for forward evolution.
const WAL_PAYLOAD_LEN: usize = 40;
/// On-disk bytes of one record: u32 length + u32 CRC + payload.
const RECORD_LEN: usize = 8 + WAL_PAYLOAD_LEN;
/// Flush the append buffer once it exceeds this many bytes (and always
/// before a snapshot, on segment rotation, and at stream end).
const WAL_FLUSH_BYTES: usize = 64 * 1024;

/// Segment file name: the sequence number is zero-padded so lexical order
/// equals numeric order for any directory listing a human reads.
fn seg_path(dir: &Path, shard: usize, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{shard}-{first_seq:020}.seg"))
}

/// Parses `wal-<shard>-<first_seq>.seg` back into its parts.
fn parse_seg_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    let (shard, seq) = rest.split_once('-')?;
    Some((shard.parse().ok()?, seq.parse().ok()?))
}

fn snap_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("snap-{shard}.bin"))
}

fn encode_seg_header(
    shard: usize,
    fingerprint: u64,
    first_seq: u64,
    records_before: u64,
) -> [u8; SEG_HEADER_LEN] {
    let mut h = [0u8; SEG_HEADER_LEN];
    h[0..8].copy_from_slice(SEG_MAGIC);
    h[8..16].copy_from_slice(&fingerprint.to_le_bytes());
    h[16..20].copy_from_slice(&(shard as u32).to_le_bytes());
    h[20..28].copy_from_slice(&first_seq.to_le_bytes());
    h[28..36].copy_from_slice(&records_before.to_le_bytes());
    h
}

fn encode_wal_payload(seq: u64, r: &IngestReport) -> [u8; WAL_PAYLOAD_LEN] {
    let mut p = [0u8; WAL_PAYLOAD_LEN];
    p[0..8].copy_from_slice(&seq.to_le_bytes());
    p[8..16].copy_from_slice(&r.gateway.to_le_bytes());
    p[16..20].copy_from_slice(&r.device.to_le_bytes());
    p[20..24].copy_from_slice(&r.at.0.to_le_bytes());
    p[24..32].copy_from_slice(&r.cum_in.to_le_bytes());
    p[32..40].copy_from_slice(&r.cum_out.to_le_bytes());
    p
}

fn decode_wal_payload(p: &[u8]) -> io::Result<(u64, IngestReport)> {
    let mut cur = Cursor::new(p);
    let seq = cur.u64()?;
    let report = IngestReport {
        gateway: cur.u64()?,
        device: cur.u32()?,
        at: Minute(cur.u32()?),
        cum_in: cur.u64()?,
        cum_out: cur.u64()?,
    };
    cur.done()?;
    Ok((seq, report))
}

/// Result of scanning one WAL segment.
struct SegScan {
    /// Whether the segment had a complete, matching header. A headerless
    /// shell (the process died inside the header write) carries nothing.
    header_ok: bool,
    /// The shard's appended-record count (durable + counted losses) when
    /// this segment was opened — the stitch line recovery audits.
    records_before: u64,
    /// Decoded records in append order.
    records: Vec<(u64, IngestReport)>,
    /// File length of the valid checksummed prefix (header included).
    valid_len: u64,
    /// 1 if a torn/corrupt tail was found (and everything after the valid
    /// prefix discarded), else 0.
    torn: u64,
}

/// Reads a segment, stopping at the first torn or corrupt record. A bad
/// checksum anywhere truncates the view at the last valid record — a torn
/// tail must never be half-applied. Header mismatches (magic, fingerprint,
/// shard) are hard errors: that is configuration confusion, not disk wear.
fn scan_segment(
    fs: &dyn WalFs,
    path: &Path,
    shard: usize,
    fingerprint: u64,
) -> io::Result<SegScan> {
    let bytes = fs.read(path)?;
    if bytes.len() < SEG_HEADER_LEN {
        return Ok(SegScan {
            header_ok: false,
            records_before: 0,
            records: Vec::new(),
            valid_len: 0,
            torn: 1,
        });
    }
    if &bytes[0..8] != SEG_MAGIC {
        return Err(corrupt("bad segment magic"));
    }
    let fp = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if fp != fingerprint {
        return Err(corrupt("segment written under a different configuration"));
    }
    let sh = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    if sh as usize != shard {
        return Err(corrupt("segment shard mismatch"));
    }
    let records_before = u64::from_le_bytes(bytes[28..36].try_into().unwrap());
    let mut records = Vec::new();
    let mut pos = SEG_HEADER_LEN;
    let mut torn = 0u64;
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            torn = 1;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len != WAL_PAYLOAD_LEN || bytes.len() - pos - 8 < len {
            torn = 1;
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            torn = 1;
            break;
        }
        records.push(decode_wal_payload(payload)?);
        pos += 8 + len;
    }
    Ok(SegScan {
        header_ok: true,
        records_before,
        records,
        valid_len: pos as u64,
        torn,
    })
}

/// Outcome of loading a shard snapshot.
enum SnapLoad {
    /// No snapshot file.
    Absent,
    /// A file exists but fails its checksum (torn or bit-rotted) — counted
    /// `snapshots_discarded`; recovery proceeds from the segments alone.
    Discarded,
    /// A checksummed-valid snapshot: trusted as self-contained state.
    Loaded {
        /// Last consumed global sequence number ("C"): replay only
        /// records with seq > C.
        coverage_seq: u64,
        /// `state.processed` at snapshot time ("S"): how many records the
        /// snapshot covers.
        covered_records: u64,
        /// The shard's total appended-record count at snapshot time
        /// (durable + previously counted losses, "T"); `T - S` is the
        /// inherited durability gap carried across recoveries.
        total_records: u64,
        /// The decoded shard state.
        state: ShardState,
    },
}

fn load_snapshot(
    fs: &dyn WalFs,
    path: &Path,
    shard: usize,
    fingerprint: u64,
    config: &IngestConfig,
    n_templates: usize,
) -> io::Result<SnapLoad> {
    let bytes = match fs.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(SnapLoad::Absent),
        Err(e) => return Err(e),
    };
    if bytes.len() < 4 {
        return Ok(SnapLoad::Discarded);
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != crc {
        return Ok(SnapLoad::Discarded);
    }
    // Past the checksum, mismatches mean configuration confusion, not
    // disk damage: refuse loudly instead of silently starting over.
    let mut cur = Cursor::new(body);
    if cur.take(8)? != SNAP_MAGIC {
        return Err(corrupt("bad snapshot magic"));
    }
    if cur.u32()? != SNAP_VERSION {
        return Err(corrupt("unsupported snapshot version"));
    }
    if cur.u32()? != shard as u32 {
        return Err(corrupt("snapshot shard mismatch"));
    }
    if cur.u64()? != fingerprint {
        return Err(corrupt("snapshot written under a different configuration"));
    }
    let coverage_seq = cur.u64()?;
    let covered_records = cur.u64()?;
    let total_records = cur.u64()?;
    let state_len = cur.len(1)?;
    let state = decode_state(cur.take(state_len)?, config, n_templates)?;
    cur.done()?;
    Ok(SnapLoad::Loaded {
        coverage_seq,
        covered_records,
        total_records,
        state,
    })
}

// ---------------------------------------------------------------------------
// Configuration and typed outcomes
// ---------------------------------------------------------------------------

/// Durable-run configuration.
#[derive(Clone)]
pub struct DurableConfig {
    /// Directory holding the per-shard segments, snapshots and lock.
    pub dir: PathBuf,
    /// Snapshot cadence: write a shard snapshot after this many consumed
    /// reports since the last one (checked at batch boundaries).
    pub snapshot_every_reports: u64,
    /// `fsync` WAL flushes and snapshot files. Off by default: crash
    /// consistency against *process* death never needs it, and the CI
    /// smoke runs both ways.
    pub fsync: bool,
    /// Rotate the active WAL segment once it would exceed this many bytes.
    /// Together with the snapshot cadence this bounds disk usage: sealed
    /// segments below snapshot coverage are compacted away.
    pub segment_bytes: u64,
    /// Fence a stale (dead-owner) or corrupt lock instead of refusing.
    /// A live owner or a fingerprint mismatch is refused regardless.
    pub takeover: bool,
    /// Retry policy for transient I/O faults (EIO, ENOSPC, interrupts).
    pub io: IoPolicy,
    /// The filesystem to run against: [`StdFs`] in production,
    /// [`FaultyFs`] under fault injection.
    pub fs: Arc<dyn WalFs>,
}

impl std::fmt::Debug for DurableConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableConfig")
            .field("dir", &self.dir)
            .field("snapshot_every_reports", &self.snapshot_every_reports)
            .field("fsync", &self.fsync)
            .field("segment_bytes", &self.segment_bytes)
            .field("takeover", &self.takeover)
            .field("io", &self.io)
            .finish_non_exhaustive()
    }
}

impl DurableConfig {
    /// A configuration with default cadence (64k reports), 8 MiB
    /// segments, no fsync, no takeover, the default retry policy and the
    /// real filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> DurableConfig {
        DurableConfig {
            dir: dir.into(),
            snapshot_every_reports: 64 * 1024,
            fsync: false,
            segment_bytes: 8 * 1024 * 1024,
            takeover: false,
            io: IoPolicy::default(),
            fs: Arc::new(StdFs),
        }
    }
}

/// Why a durable pipeline could not be created or recovered.
#[derive(Debug)]
pub enum DurableError {
    /// The single-writer lock was not acquired (held, stale without
    /// takeover, fingerprint mismatch, or corrupt).
    Lock(LockError),
    /// An I/O or data-integrity error outside the lock protocol.
    Io(io::Error),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Lock(e) => write!(f, "durable ingest lock: {e}"),
            DurableError::Io(e) => write!(f, "durable ingest i/o: {e}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<LockError> for DurableError {
    fn from(e: LockError) -> DurableError {
        DurableError::Lock(e)
    }
}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> DurableError {
        DurableError::Io(e)
    }
}

/// The durability status of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Every consumed report is durably logged (or already covered by a
    /// snapshot): recovery reproduces this run bit for bit.
    Durable,
    /// I/O faults exhausted the retry budget at some point: the pipeline
    /// kept computing, but `gap` consumed records are not replayable from
    /// disk. The books still balance — the gap is exactly
    /// `wal_gap_records + wal_lost_records`.
    Degraded {
        /// Number of consumed-but-not-durable records.
        gap: u64,
    },
}

/// Internal typed give-up: a buffered flush (or segment open) failed after
/// retries, losing `lost_records` buffered records. Callers feed the count
/// into degraded-mode gap accounting instead of dropping it silently.
struct WalGaveUp {
    lost_records: u64,
    error: io::Error,
}

impl std::fmt::Display for WalGaveUp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wal i/o gave up after retries ({} buffered records lost): {}",
            self.lost_records, self.error
        )
    }
}

// ---------------------------------------------------------------------------
// Per-shard durability hooks (owned by the shard worker)
// ---------------------------------------------------------------------------

/// A sealed (rotated, fully flushed) segment still on disk.
struct SegmentInfo {
    path: PathBuf,
    /// Last global sequence number inside — compacted once a snapshot's
    /// coverage reaches it.
    last_seq: u64,
}

/// The segment currently receiving appends.
struct ActiveSegment {
    file: Box<dyn WalFile>,
    path: PathBuf,
    /// Last sequence number appended (buffered or flushed).
    last_seq: u64,
    /// Bytes flushed to the file, header included (rotation bound).
    flushed_len: u64,
    /// Records flushed to the file.
    records: u64,
}

/// The durable side of one shard worker: its active segment, sealed
/// segments awaiting compaction and snapshot cadence. Created by
/// [`DurablePipeline`] and moved into the worker thread; every method is
/// called from that one thread. All methods are infallible from the
/// worker's perspective — exhausted I/O retries flip the hook into
/// degraded mode (counted, typed) instead of surfacing errors that would
/// kill the shard.
pub(crate) struct ShardDurability {
    shard: usize,
    dir: PathBuf,
    fs: Arc<dyn WalFs>,
    io: IoPolicy,
    metrics: Arc<IngestMetrics>,
    fingerprint: u64,
    fsync: bool,
    segment_bytes: u64,
    snapshot_every: u64,
    last_snapshot_processed: u64,
    snap: PathBuf,
    snap_tmp: PathBuf,
    /// Records appended over the shard's lifetime: durable + counted
    /// losses. Stamped as `records_before` into each new segment header
    /// and as `total_records` into snapshots.
    total_records: u64,
    active: Option<ActiveSegment>,
    sealed: Vec<SegmentInfo>,
    /// Appended-but-unflushed record bytes; a crash drops these.
    buf: Vec<u8>,
    buf_records: u64,
    degraded: bool,
}

impl ShardDurability {
    fn new(
        shard: usize,
        durable: &DurableConfig,
        fingerprint: u64,
        metrics: Arc<IngestMetrics>,
    ) -> ShardDurability {
        let snap = snap_path(&durable.dir, shard);
        ShardDurability {
            shard,
            dir: durable.dir.clone(),
            fs: Arc::clone(&durable.fs),
            io: durable.io.clone(),
            metrics,
            fingerprint,
            fsync: durable.fsync,
            // A segment must at least fit its header and one record.
            segment_bytes: durable
                .segment_bytes
                .max((SEG_HEADER_LEN + RECORD_LEN) as u64),
            snapshot_every: durable.snapshot_every_reports.max(1),
            last_snapshot_processed: 0,
            snap_tmp: snap.with_extension("tmp"),
            snap,
            total_records: 0,
            active: None,
            sealed: Vec::new(),
            buf: Vec::new(),
            buf_records: 0,
            degraded: false,
        }
    }

    fn note_gap(&self, n: u64) {
        if n > 0 {
            self.metrics.wal_gap_records.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Flips the hook into degraded mode: `lost` already-counted flush
    /// losses plus any straggler buffered records become the durability
    /// gap; the active segment and compaction queue are abandoned (their
    /// durable prefix stays on disk for recovery).
    fn enter_degraded(&mut self, lost: u64) {
        self.degraded = true;
        let gap = lost + self.buf_records;
        self.note_gap(gap);
        self.buf.clear();
        self.buf_records = 0;
        self.active = None;
        self.sealed.clear();
    }

    /// Appends one consumed report (buffered; flushed on threshold, before
    /// snapshots, on rotation, and at stream end). Infallible: exhausted
    /// retries degrade the shard instead of erroring.
    pub(crate) fn append(&mut self, seq: u64, report: &IngestReport) {
        self.total_records += 1;
        if self.degraded {
            self.note_gap(1);
            return;
        }
        // Rotate when this record would push the active segment past its
        // bound (never rotate an empty segment: one oversized record per
        // segment beats an infinite rotation loop).
        if let Some(a) = &self.active {
            let projected = a.flushed_len + (self.buf.len() + RECORD_LEN) as u64;
            if projected > self.segment_bytes && (a.records > 0 || self.buf_records > 0) {
                self.seal_active();
            }
        }
        if !self.degraded && self.active.is_none() {
            self.open_segment(seq);
        }
        if self.degraded {
            self.note_gap(1);
            return;
        }
        let payload = encode_wal_payload(seq, report);
        self.buf
            .extend_from_slice(&(WAL_PAYLOAD_LEN as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.buf_records += 1;
        self.active
            .as_mut()
            .expect("active segment after open")
            .last_seq = seq;
        if self.buf.len() >= WAL_FLUSH_BYTES {
            if let Err(gave) = self.flush_inner() {
                self.enter_degraded(gave.lost_records);
            }
        }
    }

    /// Opens a fresh segment whose first record will carry `first_seq`.
    /// On give-up the shard degrades (the record count lost here is zero —
    /// nothing was buffered against the new segment yet).
    fn open_segment(&mut self, first_seq: u64) {
        let path = seg_path(&self.dir, self.shard, first_seq);
        // The current record was already counted into total_records by
        // append(); everything before it belongs to earlier segments.
        let header = encode_seg_header(
            self.shard,
            self.fingerprint,
            first_seq,
            self.total_records - 1,
        );
        let io = self.io.clone();
        let fs = Arc::clone(&self.fs);
        let (created, retries) = with_retry(&io, || fs.create(&path));
        self.metrics
            .wal_io_retries
            .fetch_add(retries, Ordering::Relaxed);
        let mut file = match created {
            Ok(f) => f,
            Err(_) => {
                self.metrics.wal_io_gave_up.fetch_add(1, Ordering::Relaxed);
                self.enter_degraded(0);
                return;
            }
        };
        let mut off = 0usize;
        while off < header.len() {
            let chunk = &header[off..];
            let (res, retries) = with_retry(&io, || match file.append(chunk) {
                Ok(0) => Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "segment header write made no progress",
                )),
                other => other,
            });
            self.metrics
                .wal_io_retries
                .fetch_add(retries, Ordering::Relaxed);
            match res {
                Ok(n) => off += n,
                Err(_) => {
                    self.metrics.wal_io_gave_up.fetch_add(1, Ordering::Relaxed);
                    let _ = fs.remove(&path);
                    self.enter_degraded(0);
                    return;
                }
            }
        }
        self.metrics
            .wal_segments_created
            .fetch_add(1, Ordering::Relaxed);
        self.active = Some(ActiveSegment {
            file,
            path,
            last_seq: first_seq,
            flushed_len: SEG_HEADER_LEN as u64,
            records: 0,
        });
    }

    /// Flushes and retires the active segment into the compaction queue.
    fn seal_active(&mut self) {
        if let Err(gave) = self.flush_inner() {
            self.enter_degraded(gave.lost_records);
            return;
        }
        if let Some(a) = self.active.take() {
            if a.records > 0 {
                self.sealed.push(SegmentInfo {
                    path: a.path,
                    last_seq: a.last_seq,
                });
            } else {
                // An empty shell (header only) carries nothing.
                let _ = self.fs.remove(&a.path);
            }
        }
    }

    /// Writes the append buffer to the active segment, resubmitting short
    /// writes and retrying transients. On give-up, whole records already
    /// on disk stay durable (counted `wal_records`); the remainder of the
    /// buffer is returned as the typed loss.
    fn flush_inner(&mut self) -> Result<(), WalGaveUp> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let io = self.io.clone();
        let mut off = 0usize;
        while off < self.buf.len() {
            let Some(active) = self.active.as_mut() else {
                let lost = self.buf_records;
                self.buf.clear();
                self.buf_records = 0;
                return Err(WalGaveUp {
                    lost_records: lost,
                    error: io::Error::new(io::ErrorKind::NotFound, "no active segment"),
                });
            };
            let chunk = &self.buf[off..];
            let (res, retries) = with_retry(&io, || match active.file.append(chunk) {
                Ok(0) => Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "wal append made no progress",
                )),
                other => other,
            });
            self.metrics
                .wal_io_retries
                .fetch_add(retries, Ordering::Relaxed);
            match res {
                Ok(n) => off += n,
                Err(error) => {
                    // Whole records below the write point are durable; the
                    // partial tail (if any) is a torn record recovery will
                    // truncate away.
                    let whole = (off / RECORD_LEN) as u64;
                    let lost = self.buf_records.saturating_sub(whole);
                    let a = self.active.as_mut().expect("active segment");
                    a.flushed_len += off as u64;
                    a.records += whole;
                    self.metrics.wal_records.fetch_add(whole, Ordering::Relaxed);
                    self.metrics.wal_io_gave_up.fetch_add(1, Ordering::Relaxed);
                    self.buf.clear();
                    self.buf_records = 0;
                    return Err(WalGaveUp {
                        lost_records: lost,
                        error,
                    });
                }
            }
        }
        let flushed_records = self.buf_records;
        let flushed_bytes = self.buf.len() as u64;
        {
            let a = self.active.as_mut().expect("active segment");
            a.flushed_len += flushed_bytes;
            a.records += flushed_records;
        }
        self.metrics
            .wal_records
            .fetch_add(flushed_records, Ordering::Relaxed);
        self.buf.clear();
        self.buf_records = 0;
        if self.fsync {
            let active = self.active.as_mut().expect("active segment");
            let (res, retries) = with_retry(&io, || active.file.sync());
            self.metrics
                .wal_io_retries
                .fetch_add(retries, Ordering::Relaxed);
            if let Err(error) = res {
                self.metrics.wal_io_gave_up.fetch_add(1, Ordering::Relaxed);
                return Err(WalGaveUp {
                    lost_records: 0,
                    error,
                });
            }
        }
        Ok(())
    }

    /// Simulated process death: unflushed bytes are gone. (Used by the
    /// in-process kill switch; a real SIGKILL gets this for free.)
    pub(crate) fn crash(&mut self) {
        self.buf.clear();
        self.buf_records = 0;
    }

    /// Whether the snapshot cadence has elapsed. Degraded shards stop
    /// snapshotting: a snapshot would stamp a total it cannot cover.
    pub(crate) fn snapshot_due(&self, processed: u64) -> bool {
        !self.degraded && processed - self.last_snapshot_processed >= self.snapshot_every
    }

    /// Flushes the WAL, then writes the snapshot atomically (tmp+rename)
    /// and compacts sealed segments the snapshot now covers. Ordering
    /// matters: the snapshot claims coverage, so the flush must land
    /// first. A failed snapshot is *not* a durability gap — the segments
    /// still hold everything; the cadence is simply skipped.
    pub(crate) fn write_snapshot(&mut self, state: &ShardState) {
        if self.degraded {
            return;
        }
        if let Err(gave) = self.flush_inner() {
            self.enter_degraded(gave.lost_records);
            return;
        }
        let body = encode_state(state);
        let mut buf = Vec::with_capacity(body.len() + 64);
        buf.extend_from_slice(SNAP_MAGIC);
        put_u32(&mut buf, SNAP_VERSION);
        put_u32(&mut buf, self.shard as u32);
        put_u64(&mut buf, self.fingerprint);
        put_u64(&mut buf, state.last_seq);
        put_u64(&mut buf, state.processed);
        put_u64(&mut buf, self.total_records);
        put_u64(&mut buf, body.len() as u64);
        buf.extend_from_slice(&body);
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());

        let io = self.io.clone();
        let fs = Arc::clone(&self.fs);
        let tmp = self.snap_tmp.clone();
        let fsync = self.fsync;
        // The whole tmp write is one retryable unit: a retry restarts from
        // a truncating create, so partial attempts never compose.
        let (res, retries) = with_retry(&io, || {
            let mut f = fs.create(&tmp)?;
            let mut off = 0usize;
            while off < buf.len() {
                match f.append(&buf[off..]) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "snapshot write made no progress",
                        ))
                    }
                    Ok(n) => off += n,
                    Err(e) => return Err(e),
                }
            }
            if fsync {
                f.sync()?;
            }
            Ok(())
        });
        self.metrics
            .wal_io_retries
            .fetch_add(retries, Ordering::Relaxed);
        if res.is_err() {
            self.metrics.wal_io_gave_up.fetch_add(1, Ordering::Relaxed);
            let _ = fs.remove(&tmp);
            return;
        }
        let (res, retries) = with_retry(&io, || fs.rename(&tmp, &self.snap));
        self.metrics
            .wal_io_retries
            .fetch_add(retries, Ordering::Relaxed);
        if res.is_err() {
            self.metrics.wal_io_gave_up.fetch_add(1, Ordering::Relaxed);
            let _ = fs.remove(&tmp);
            return;
        }
        self.last_snapshot_processed = state.processed;
        self.metrics
            .snapshots_written
            .fetch_add(1, Ordering::Relaxed);
        self.compact(state.last_seq);
    }

    /// Deletes sealed segments whose records all fall at or below the
    /// published snapshot coverage. A segment that refuses to die stays
    /// queued for the next cadence.
    fn compact(&mut self, coverage_seq: u64) {
        let io = self.io.clone();
        let fs = Arc::clone(&self.fs);
        let metrics = Arc::clone(&self.metrics);
        self.sealed.retain(|seg| {
            if seg.last_seq > coverage_seq {
                return true;
            }
            let (res, retries) = with_retry(&io, || match fs.remove(&seg.path) {
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
                other => other,
            });
            metrics.wal_io_retries.fetch_add(retries, Ordering::Relaxed);
            match res {
                Ok(()) => {
                    metrics
                        .wal_segments_compacted
                        .fetch_add(1, Ordering::Relaxed);
                    false
                }
                Err(_) => {
                    metrics.wal_io_gave_up.fetch_add(1, Ordering::Relaxed);
                    true
                }
            }
        });
    }

    /// Final flush at stream end. Infallible like every worker-facing
    /// method: a last-moment give-up degrades (and is counted) rather than
    /// erroring the shard.
    pub(crate) fn finish(&mut self) {
        if self.degraded {
            return;
        }
        if let Err(gave) = self.flush_inner() {
            self.enter_degraded(gave.lost_records);
        }
    }
}

// ---------------------------------------------------------------------------
// Durable pipeline
// ---------------------------------------------------------------------------

/// Crash injection for durable runs.
#[derive(Debug, Clone, Copy)]
pub struct KillPoint {
    /// Fire after this many reports have been offered by the run.
    pub after_offered: u64,
    /// How to die.
    pub mode: KillMode,
}

impl KillPoint {
    /// An in-process abort after `after_offered` offered reports.
    pub fn after(after_offered: u64) -> KillPoint {
        KillPoint {
            after_offered,
            mode: KillMode::Abort,
        }
    }
}

/// How a [`KillPoint`] kills the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// Cooperative in-process abort: workers stop without finishing and
    /// unflushed WAL bytes are discarded — a faithful crash simulation
    /// that leaves the process (and the test harness) alive. The
    /// single-writer lock is released, because within one process the
    /// simulated corpse cannot be told apart from a live owner by PID.
    Abort,
    /// `std::process::abort()` — the process dies for real, no unwinding,
    /// no flushing, and the lock file stays behind (stale): recovery needs
    /// [`DurableConfig::takeover`]. For the crash-recovery CI smoke.
    SigKill,
}

/// How a durable run ended.
#[derive(Debug)]
pub enum DurableRun {
    /// The stream was fully consumed and every shard finished.
    Completed {
        /// The merged fleet summary (same type as the in-memory pipeline;
        /// boxed so the enum stays small next to `Killed`).
        summary: Box<IngestSummary>,
        /// Combined pre-finish state digest across shards — equal for an
        /// uninterrupted run and any crash/recover/re-feed of the same
        /// stream (absent injected loss).
        state_digest: u64,
        /// Whether every consumed record is durably logged, or the typed,
        /// counted gap if I/O faults defeated the retry budget.
        durability: Durability,
    },
    /// The kill switch fired; the on-disk segments/snapshots hold the
    /// durable prefix and [`DurablePipeline::recover`] picks it up.
    Killed,
}

impl DurableRun {
    /// The summary of a completed run, if it completed.
    pub fn summary(&self) -> Option<&IngestSummary> {
        match self {
            DurableRun::Completed { summary, .. } => Some(summary),
            DurableRun::Killed => None,
        }
    }

    /// The durability status of a completed run, if it completed.
    pub fn durability(&self) -> Option<Durability> {
        match self {
            DurableRun::Completed { durability, .. } => Some(*durability),
            DurableRun::Killed => None,
        }
    }
}

/// A [`IngestPipeline`] with rotated-segment WAL + snapshot durability,
/// fault-tolerant I/O and single-writer locking. Create a fresh one with
/// [`DurablePipeline::create`], or load the durable state of a crashed run
/// with [`DurablePipeline::recover`]; then feed the stream with
/// [`DurablePipeline::run`]. Each instance runs once.
pub struct DurablePipeline {
    pipeline: IngestPipeline,
    durable: DurableConfig,
    fingerprint: u64,
    lock: LockGuard,
    /// Recovered/fresh shard states and their open durability hooks;
    /// consumed by `run`.
    armed: Option<(Vec<ShardState>, Vec<ShardDurability>)>,
}

impl DurablePipeline {
    /// Starts a fresh durable pipeline: acquires the single-writer lock
    /// and removes any leftover segments, snapshots and tmp files in
    /// `durable.dir`.
    pub fn create(
        config: IngestConfig,
        templates: Vec<MotifTemplate>,
        durable: DurableConfig,
    ) -> Result<DurablePipeline, DurableError> {
        let fs = Arc::clone(&durable.fs);
        fs.create_dir_all(&durable.dir)?;
        let pipeline = IngestPipeline::new(config, templates);
        let shards = pipeline.config().shards.max(1);
        let fingerprint = config_fingerprint(pipeline.config(), pipeline.templates.len());
        let (lock, acquired) =
            LockGuard::acquire(Arc::clone(&fs), &durable.dir, fingerprint, durable.takeover)?;
        let metrics = pipeline.metrics();
        if acquired == Acquired::TookOver {
            metrics.lock_takeovers.fetch_add(1, Ordering::Relaxed);
        }
        // A fresh run owns the directory: clear every durable artifact
        // (never the lock we just wrote).
        for name in fs.list(&durable.dir)? {
            let stale = parse_seg_name(&name).is_some()
                || (name.starts_with("snap-") && name.ends_with(".bin"))
                || name.ends_with(".tmp");
            if stale {
                match fs.remove(&durable.dir.join(&name)) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(DurableError::Io(e)),
                }
            }
        }
        let mut states = Vec::with_capacity(shards);
        let mut hooks = Vec::with_capacity(shards);
        for shard in 0..shards {
            states.push(ShardState::new());
            hooks.push(ShardDurability::new(
                shard,
                &durable,
                fingerprint,
                Arc::clone(&metrics),
            ));
        }
        Ok(DurablePipeline {
            pipeline,
            durable,
            fingerprint,
            lock,
            armed: Some((states, hooks)),
        })
    }

    /// Recovers the durable state of a previous run from `durable.dir`:
    /// per shard, sweep orphaned tmp files, load the snapshot (discarding
    /// a checksum-failed one), stitch the surviving segments by sequence
    /// range, replay records past the snapshot's coverage through the live
    /// consume path, heal torn tails, compact segments the snapshot
    /// covers, account any unreplayable hole as `wal_lost_records`, and
    /// restore the metrics books. The resulting instance is ready to
    /// [`DurablePipeline::run`] the stream again.
    pub fn recover(
        config: IngestConfig,
        templates: Vec<MotifTemplate>,
        durable: DurableConfig,
    ) -> Result<DurablePipeline, DurableError> {
        let fs = Arc::clone(&durable.fs);
        let pipeline = IngestPipeline::new(config, templates);
        let shards = pipeline.config().shards.max(1);
        let fingerprint = config_fingerprint(pipeline.config(), pipeline.templates.len());
        let (lock, acquired) =
            LockGuard::acquire(Arc::clone(&fs), &durable.dir, fingerprint, durable.takeover)?;
        let metrics = pipeline.metrics();
        if acquired == Acquired::TookOver {
            metrics.lock_takeovers.fetch_add(1, Ordering::Relaxed);
        }

        // Sweep tmp orphans (a crash between snapshot write and rename).
        let names = fs.list(&durable.dir)?;
        for name in &names {
            if name.ends_with(".tmp") {
                match fs.remove(&durable.dir.join(name)) {
                    Ok(()) => {
                        metrics.snapshot_tmp_swept.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(DurableError::Io(e)),
                }
            }
        }

        // Group segment files by shard, ordered by first sequence.
        let mut by_shard: Vec<Vec<(u64, String)>> = vec![Vec::new(); shards];
        for name in &names {
            if let Some((shard, first_seq)) = parse_seg_name(name) {
                if shard >= shards {
                    return Err(DurableError::Io(corrupt(
                        "segment for an out-of-range shard",
                    )));
                }
                by_shard[shard].push((first_seq, name.clone()));
            }
        }

        let mut states = Vec::with_capacity(shards);
        let mut hooks = Vec::with_capacity(shards);
        for (shard, mut segs) in by_shard.into_iter().enumerate() {
            segs.sort_unstable_by_key(|(first_seq, _)| *first_seq);
            let snap = snap_path(&durable.dir, shard);
            let (mut state, coverage_seq, covered, mut gap) = match load_snapshot(
                fs.as_ref(),
                &snap,
                shard,
                fingerprint,
                pipeline.config(),
                pipeline.templates.len(),
            )
            .map_err(DurableError::Io)?
            {
                SnapLoad::Loaded {
                    coverage_seq,
                    covered_records,
                    total_records,
                    state,
                } => {
                    // The inherited gap: losses already counted by the run
                    // that wrote this snapshot.
                    let gap = total_records.saturating_sub(covered_records);
                    (state, coverage_seq, covered_records, gap)
                }
                SnapLoad::Discarded => {
                    metrics.snapshots_discarded.fetch_add(1, Ordering::Relaxed);
                    (ShardState::new(), 0, 0, 0)
                }
                SnapLoad::Absent => (ShardState::new(), 0, 0, 0),
            };

            // Stitch segments in sequence order, auditing each header's
            // records_before against what is accounted for so far; any
            // shortfall is a hole — records logged once (compacted away)
            // whose snapshot coverage died with the snapshot.
            let mut above = 0u64; // records replayed past the snapshot
            let mut sealed = Vec::new();
            {
                let _span = metrics.replay.enter();
                for (_first_seq, name) in &segs {
                    let path = durable.dir.join(name);
                    let scan = scan_segment(fs.as_ref(), &path, shard, fingerprint)
                        .map_err(DurableError::Io)?;
                    if !scan.header_ok {
                        // A shell without a whole header carries nothing.
                        metrics
                            .wal_torn_records
                            .fetch_add(scan.torn, Ordering::Relaxed);
                        match fs.remove(&path) {
                            Ok(()) | Err(_) => {}
                        }
                        continue;
                    }
                    let accounted = covered + above + gap;
                    if scan.records_before > accounted {
                        let hole = scan.records_before - accounted;
                        gap += hole;
                    }
                    for (seq, report) in &scan.records {
                        if *seq <= coverage_seq {
                            continue;
                        }
                        state.consume(*seq, report, pipeline.config(), &pipeline.templates);
                        above += 1;
                    }
                    metrics
                        .wal_torn_records
                        .fetch_add(scan.torn, Ordering::Relaxed);
                    if scan.torn > 0 {
                        // Heal the torn tail so future scans are clean.
                        fs.set_len(&path, scan.valid_len)
                            .map_err(DurableError::Io)?;
                    }
                    match scan.records.last() {
                        Some((last_seq, _)) if *last_seq > coverage_seq => {
                            sealed.push(SegmentInfo {
                                path,
                                last_seq: *last_seq,
                            });
                        }
                        _ => {
                            // Empty, or fully covered by the snapshot:
                            // compact it now.
                            match fs.remove(&path) {
                                Ok(()) => {
                                    metrics
                                        .wal_segments_compacted
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                                Err(e) => return Err(DurableError::Io(e)),
                            }
                        }
                    }
                }
            }

            // Restore the books: everything consumed was offered, and the
            // hole is a typed, counted loss — never silent.
            metrics
                .offered
                .fetch_add(state.processed + gap, Ordering::Relaxed);
            metrics
                .wal_records
                .fetch_add(state.processed, Ordering::Relaxed);
            metrics.wal_lost_records.fetch_add(gap, Ordering::Relaxed);
            metrics.apply(&state.counts);
            metrics.shards[shard]
                .processed
                .store(state.processed, Ordering::Relaxed);

            let mut hook = ShardDurability::new(shard, &durable, fingerprint, Arc::clone(&metrics));
            hook.total_records = state.processed + gap;
            hook.last_snapshot_processed = state.processed;
            hook.sealed = sealed;
            states.push(state);
            hooks.push(hook);
        }
        metrics.recoveries.fetch_add(1, Ordering::Relaxed);
        Ok(DurablePipeline {
            pipeline,
            durable,
            fingerprint,
            lock,
            armed: Some((states, hooks)),
        })
    }

    /// The live metrics registry (restored books after a recovery).
    pub fn metrics(&self) -> Arc<IngestMetrics> {
        self.pipeline.metrics()
    }

    /// The underlying pipeline configuration.
    pub fn config(&self) -> &IngestConfig {
        self.pipeline.config()
    }

    /// Combined digest of the current (recovered) shard states — equals
    /// the digest of a fresh [`ShardState::consume`] fold over each
    /// shard's durably-logged records.
    pub fn state_digest(&self) -> u64 {
        let (states, _) = self
            .armed
            .as_ref()
            .expect("durable pipeline already consumed by run()");
        states
            .iter()
            .fold(FNV_OFFSET, |acc, s| fnv1a64_u64(acc, state_digest(s)))
    }

    /// The earliest global sequence number NOT yet durable in every shard:
    /// feeding the stream suffix starting here (via
    /// [`DurablePipeline::run_from`]) loses nothing. Re-feeding from the
    /// beginning is always correct too — already-durable reports are
    /// skipped per shard.
    pub fn resume_seq(&self) -> u64 {
        let (states, _) = self
            .armed
            .as_ref()
            .expect("durable pipeline already consumed by run()");
        states.iter().map(|s| s.last_seq).min().unwrap_or(0) + 1
    }

    /// Runs the full stream (global sequence numbers assigned from 1),
    /// skipping reports each shard already holds durably. `kill` arms the
    /// crash switch.
    pub fn run<I>(&mut self, reports: I, kill: Option<KillPoint>) -> io::Result<DurableRun>
    where
        I: IntoIterator<Item = IngestReport>,
    {
        self.run_from(reports, 1, kill)
    }

    /// Like [`DurablePipeline::run`], but `reports` is the stream suffix
    /// whose first element carries global sequence number `first_seq`
    /// (obtain a safe value from [`DurablePipeline::resume_seq`]).
    pub fn run_from<I>(
        &mut self,
        reports: I,
        first_seq: u64,
        kill: Option<KillPoint>,
    ) -> io::Result<DurableRun>
    where
        I: IntoIterator<Item = IngestReport>,
    {
        let (states, hooks) = self
            .armed
            .take()
            .expect("a durable pipeline instance runs once; recover() a new one");
        let cutoffs = states.iter().map(|s| s.last_seq).collect();
        let durability = hooks.into_iter().map(Some).collect();
        let kill = kill.map(|k| KillSwitch {
            after_offered: k.after_offered,
            hard: k.mode == KillMode::SigKill,
        });
        match self
            .pipeline
            .run_inner(reports, first_seq, cutoffs, states, durability, kill)?
        {
            RunEnd::Completed(summary, digest) => {
                let m = &self.pipeline.metrics;
                let gap = m.wal_gap_records.load(Ordering::Relaxed)
                    + m.wal_lost_records.load(Ordering::Relaxed);
                Ok(DurableRun::Completed {
                    summary,
                    state_digest: digest.expect("durable run always yields a digest"),
                    durability: if gap == 0 {
                        Durability::Durable
                    } else {
                        Durability::Degraded { gap }
                    },
                })
            }
            RunEnd::Killed => {
                // A cooperative kill simulates a dead process; within this
                // process the PID stays alive, so the corpse must release
                // the lock for recovery to proceed without takeover.
                self.lock.release();
                Ok(DurableRun::Killed)
            }
        }
    }

    /// The durable directory this pipeline reads and writes.
    pub fn dir(&self) -> &Path {
        &self.durable.dir
    }

    /// The configuration fingerprint stamped on segments and snapshots.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

// ---------------------------------------------------------------------------
// Offline inspection helpers (no lock, real filesystem)
// ---------------------------------------------------------------------------

/// Total bytes of WAL segment files in a durable directory — the quantity
/// the compaction invariant bounds. Reads the real filesystem.
pub fn wal_disk_usage(dir: &Path) -> io::Result<u64> {
    let mut total = 0u64;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if parse_seg_name(name).is_some() {
                total += entry.metadata()?.len();
            }
        }
    }
    Ok(total)
}

/// The segment files of one shard, sorted by first sequence number.
pub fn segment_files(dir: &Path, shard: usize) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some((s, first_seq)) = parse_seg_name(name) {
                if s == shard {
                    out.push((first_seq, entry.path()));
                }
            }
        }
    }
    out.sort_unstable_by_key(|(first_seq, _)| *first_seq);
    Ok(out)
}

/// The coverage sequence of a shard's snapshot, if a checksummed-valid one
/// exists. Reads the real filesystem; does not validate the fingerprint
/// (inspection must work without knowing the run's configuration).
pub fn snapshot_coverage(dir: &Path, shard: usize) -> io::Result<Option<u64>> {
    let bytes = match std::fs::read(snap_path(dir, shard)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() < 4 {
        return Ok(None);
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    if crc32(body) != u32::from_le_bytes(crc_bytes.try_into().unwrap()) {
        return Ok(None);
    }
    let mut cur = Cursor::new(body);
    if cur.take(8)? != SNAP_MAGIC || cur.u32()? != SNAP_VERSION {
        return Ok(None);
    }
    let _shard = cur.u32()?;
    let _fingerprint = cur.u64()?;
    Ok(Some(cur.u64()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_timeseries::WindowKind;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wtts-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn report(gateway: u64, device: u32, at: u32, cum: u64) -> IngestReport {
        IngestReport {
            gateway,
            device,
            at: Minute(at),
            cum_in: cum,
            cum_out: cum / 2,
        }
    }

    fn config(shards: usize) -> IngestConfig {
        IngestConfig {
            shards,
            batch_reports: 16,
            queue_batches: 2,
            window: WindowKind::Daily,
            bin_minutes: 180,
            lateness_horizon: 3,
            ..IngestConfig::default()
        }
    }

    fn flat_stream(gateway: u64, n: u32) -> Vec<IngestReport> {
        (0..n)
            .map(|m| report(gateway, 0, m, (m as u64 + 1) * 10))
            .collect()
    }

    /// A messy but deterministic stream: several gateways/devices, with
    /// duplicates, late arrivals and an uncorroborated future jump mixed
    /// in so recovery has non-trivial drop state to reproduce.
    fn stream() -> Vec<IngestReport> {
        let mut out = Vec::new();
        for m in 0..2_000u32 {
            for gw in 0..5u64 {
                for dev in 0..2u32 {
                    if (m + gw as u32 * 3 + dev * 7).is_multiple_of(13) {
                        continue; // loss
                    }
                    let cum = (m as u64 + 1) * (50 + gw * 11 + dev as u64 * 5);
                    out.push(report(gw, dev, m, cum));
                    if (m + gw as u32).is_multiple_of(97) {
                        out.push(report(gw, dev, m, cum)); // duplicate
                    }
                }
            }
            if m == 700 {
                out.push(report(1, 0, 90_000, 1)); // wild future jump
            }
            if m == 800 {
                out.push(report(2, 1, 100, 1)); // very late straggler
            }
        }
        out
    }

    #[test]
    fn crc32_known_vectors() {
        // Canonical check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wal_payload_roundtrip() {
        let r = report(42, 7, 1234, 99_999);
        let p = encode_wal_payload(567, &r);
        let (seq, back) = decode_wal_payload(&p).unwrap();
        assert_eq!(seq, 567);
        assert_eq!(back, r);
    }

    #[test]
    fn seg_name_roundtrip() {
        let p = seg_path(Path::new("/x"), 3, 42);
        let name = p.file_name().unwrap().to_str().unwrap();
        assert_eq!(parse_seg_name(name), Some((3, 42)));
        // Zero-padding keeps lexical order numeric.
        let a = seg_path(Path::new("/x"), 0, 9);
        let b = seg_path(Path::new("/x"), 0, 10);
        assert!(a.file_name().unwrap() < b.file_name().unwrap());
        assert_eq!(parse_seg_name("wal-0.log"), None);
        assert_eq!(parse_seg_name("snap-0.bin"), None);
    }

    /// Snapshot encode/decode is the identity on states reached through
    /// real ingest (lanes with pending minutes, suspects, dominance data).
    #[test]
    fn state_encoding_roundtrip() {
        let cfg = config(1);
        let mut state = ShardState::new();
        for (i, r) in stream().into_iter().enumerate() {
            state.consume(i as u64 + 1, &r, &cfg, &[]);
        }
        let bytes = encode_state(&state);
        let back = decode_state(&bytes, &cfg, 0).unwrap();
        assert_eq!(encode_state(&back), bytes);
        assert_eq!(state_digest(&back), state_digest(&state));
        assert_eq!(back.counts, state.counts);
        assert_eq!(back.last_seq, state.last_seq);
    }

    /// Recovery with snapshots equals a pure fold over the logged records:
    /// snapshots are an optimization, not a second source of truth. The
    /// reference fold reads the segments *before* recovery runs — recovery
    /// itself compacts fully-covered segments, so the fold input must be
    /// captured from the exact disk state recovery sees.
    #[test]
    fn recovered_state_equals_wal_fold_at_many_kill_points() {
        let stream = stream();
        for kill_after in [1u64, 17, 900, 2_500, 7_000, stream.len() as u64 / 2] {
            let dir = tmp_dir(&format!("fold-{kill_after}"));
            let cfg = config(2);
            let dcfg = DurableConfig {
                snapshot_every_reports: 300,
                ..DurableConfig::new(dir.clone())
            };
            let mut p = DurablePipeline::create(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
            let fingerprint = p.fingerprint();
            let end = p
                .run(stream.iter().copied(), Some(KillPoint::after(kill_after)))
                .unwrap();
            assert!(matches!(end, DurableRun::Killed));
            drop(p);

            // Reference: fold every durably-logged record from an empty
            // state, straight off the post-crash disk.
            let mut reference = FNV_OFFSET;
            for shard in 0..2 {
                let mut state = ShardState::new();
                for (_first, path) in segment_files(&dir, shard).unwrap() {
                    let scan = scan_segment(&StdFs, &path, shard, fingerprint).unwrap();
                    assert_eq!(scan.torn, 0, "clean abort leaves no torn tail");
                    for (seq, r) in &scan.records {
                        state.consume(*seq, r, &cfg, &[]);
                    }
                }
                reference = fnv1a64_u64(reference, state_digest(&state));
            }

            let recovered =
                DurablePipeline::recover(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
            assert_eq!(
                recovered.state_digest(),
                reference,
                "kill_after={kill_after}"
            );

            let m = recovered.metrics().snapshot();
            assert!(m.fully_accounted(), "recovered books must balance");
            assert!(m.durably_accounted());
            assert_eq!(m.durability_gap(), 0);
            assert_eq!(m.recoveries, 1);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// A segment truncated mid-record recovers to the last valid
    /// checksummed record, heals the file, and counts the tear.
    #[test]
    fn torn_segment_tail_is_truncated_and_counted() {
        let dir = tmp_dir("torn");
        let cfg = config(1);
        let dcfg = DurableConfig {
            snapshot_every_reports: u64::MAX,
            ..DurableConfig::new(dir.clone())
        };
        let mut p = DurablePipeline::create(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        match p.run(flat_stream(9, 100), None).unwrap() {
            DurableRun::Completed { durability, .. } => assert_eq!(durability, Durability::Durable),
            DurableRun::Killed => panic!("no kill point was armed"),
        }
        drop(p);

        // Tear the file mid-record: keep the header, 40 full records, and
        // 13 bytes of the 41st.
        let segs = segment_files(&dir, 0).unwrap();
        assert_eq!(segs.len(), 1, "default segment size holds 100 records");
        let path = segs[0].1.clone();
        let full = std::fs::metadata(&path).unwrap().len();
        assert_eq!(full, (SEG_HEADER_LEN + 100 * RECORD_LEN) as u64);
        let torn_len = (SEG_HEADER_LEN + 40 * RECORD_LEN + 13) as u64;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(torn_len)
            .unwrap();

        let recovered = DurablePipeline::recover(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        let m = recovered.metrics().snapshot();
        assert_eq!(m.wal_torn_records, 1);
        assert_eq!(m.offered, 40, "only the valid prefix survives");
        assert_eq!(m.wal_records, 40);
        assert!(m.fully_accounted());
        // The file was healed back to the valid prefix.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            (SEG_HEADER_LEN + 40 * RECORD_LEN) as u64
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A corrupted byte inside a record fails its checksum and truncates
    /// the view there — a bad record never half-applies.
    #[test]
    fn checksum_mismatch_truncates_at_last_valid_record() {
        let dir = tmp_dir("crc");
        let cfg = config(1);
        let dcfg = DurableConfig {
            snapshot_every_reports: u64::MAX,
            ..DurableConfig::new(dir.clone())
        };
        let mut p = DurablePipeline::create(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        p.run(flat_stream(3, 50), None).unwrap();
        drop(p);

        let path = segment_files(&dir, 0).unwrap()[0].1.clone();
        // Flip one payload byte of record 20 (0-based).
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = SEG_HEADER_LEN + 20 * RECORD_LEN + 8 + 5;
        bytes[victim] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let recovered = DurablePipeline::recover(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        let m = recovered.metrics().snapshot();
        assert_eq!(m.offered, 20);
        assert_eq!(m.wal_torn_records, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A checksummed-valid snapshot is trusted as self-contained state:
    /// truncating the WAL below its coverage does not discard it (v2
    /// semantics — the snapshot is not a claim about WAL bytes).
    #[test]
    fn snapshot_is_trusted_beyond_truncated_wal() {
        let dir = tmp_dir("trusted");
        let cfg = config(1);
        let dcfg = DurableConfig {
            snapshot_every_reports: 30,
            ..DurableConfig::new(dir.clone())
        };
        let mut p = DurablePipeline::create(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        p.run(flat_stream(4, 100), None).unwrap();
        drop(p);

        let coverage = snapshot_coverage(&dir, 0)
            .unwrap()
            .expect("snapshot written");
        assert!(coverage >= 60, "cadence of 30 over 100 reports snapshots");

        // Truncate the (single) segment far below the snapshot coverage.
        let path = segment_files(&dir, 0).unwrap()[0].1.clone();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len((SEG_HEADER_LEN + 10 * RECORD_LEN) as u64)
            .unwrap();

        let recovered = DurablePipeline::recover(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        let m = recovered.metrics().snapshot();
        assert_eq!(m.offered, coverage, "the snapshot's coverage survives");
        assert_eq!(m.wal_records, coverage);
        assert_eq!(m.durability_gap(), 0);
        assert!(m.fully_accounted());
        assert!(m.durably_accounted());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Config fingerprint mismatches are refused loudly instead of
    /// replaying a log under rules it was not written for.
    #[test]
    fn mismatched_configuration_is_refused() {
        let dir = tmp_dir("fingerprint");
        let cfg = config(1);
        let dcfg = DurableConfig::new(dir.clone());
        let mut p = DurablePipeline::create(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        p.run((0..10u32).map(|m| report(1, 0, m, m as u64 + 1)), None)
            .unwrap();
        drop(p);
        let other_cfg = IngestConfig {
            motif_threshold: 0.9,
            ..cfg
        };
        let err = match DurablePipeline::recover(other_cfg, Vec::new(), dcfg) {
            Ok(_) => panic!("mismatched config must be refused"),
            Err(e) => e,
        };
        match err {
            DurableError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData),
            e => panic!("expected an Io error, got {e:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// While a live pipeline holds the directory, a second create or
    /// recover fails with a typed lock error — with or without takeover.
    #[test]
    fn second_writer_is_refused_while_lock_held() {
        let dir = tmp_dir("second");
        let cfg = config(1);
        let dcfg = DurableConfig::new(dir.clone());
        let _p = DurablePipeline::create(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        for takeover in [false, true] {
            let attempt = DurableConfig {
                takeover,
                ..dcfg.clone()
            };
            match DurablePipeline::create(cfg.clone(), Vec::new(), attempt.clone()) {
                Err(DurableError::Lock(LockError::Held { .. })) => {}
                Ok(_) => panic!("second create must be refused"),
                Err(e) => panic!("expected Held, got {e:?}"),
            }
            match DurablePipeline::recover(cfg.clone(), Vec::new(), attempt) {
                Err(DurableError::Lock(LockError::Held { .. })) => {}
                Ok(_) => panic!("recover under a live writer must be refused"),
                Err(e) => panic!("expected Held, got {e:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Rotation seals length-bounded segments and compaction deletes the
    /// snapshot-covered ones, keeping disk usage bounded by cadence +
    /// segment size rather than stream length.
    #[test]
    fn segments_rotate_and_compact_bounded_disk() {
        let dir = tmp_dir("rotate");
        let cfg = config(1);
        let seg_bytes = (SEG_HEADER_LEN + 10 * RECORD_LEN) as u64;
        let dcfg = DurableConfig {
            snapshot_every_reports: 25,
            segment_bytes: seg_bytes,
            ..DurableConfig::new(dir.clone())
        };
        let mut p = DurablePipeline::create(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        let end = p.run(flat_stream(7, 200), None).unwrap();
        assert_eq!(end.durability(), Some(Durability::Durable));
        let fingerprint = p.fingerprint();
        let m = p.metrics().snapshot();
        drop(p);

        assert!(m.wal_segments_created >= 15, "10-record segments rotate");
        assert!(m.wal_segments_compacted >= 10, "covered segments die");
        assert!(m.snapshots_written >= 3);

        let usage = wal_disk_usage(&dir).unwrap();
        assert!(
            usage <= seg_bytes * 6,
            "disk stays bounded: {usage} bytes vs {} written",
            200 * RECORD_LEN
        );
        let coverage = snapshot_coverage(&dir, 0).unwrap().expect("snapshot");
        assert!(coverage >= 150);
        // Compaction invariant: every surviving segment except the newest
        // holds at least one record past the snapshot coverage.
        let segs = segment_files(&dir, 0).unwrap();
        assert!(!segs.is_empty());
        for (_, path) in &segs[..segs.len() - 1] {
            let scan = scan_segment(&StdFs, path, 0, fingerprint).unwrap();
            let last = scan.records.last().map(|(seq, _)| *seq).unwrap_or(0);
            assert!(
                last > coverage,
                "covered segment {} survived compaction",
                path.display()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An orphaned snapshot tmp file (crash between write and rename) is
    /// swept and counted on recovery.
    #[test]
    fn orphan_snapshot_tmp_is_swept() {
        let dir = tmp_dir("tmp-sweep");
        let cfg = config(1);
        let dcfg = DurableConfig::new(dir.clone());
        let mut p = DurablePipeline::create(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        let end = p
            .run(flat_stream(2, 100), Some(KillPoint::after(20)))
            .unwrap();
        assert!(matches!(end, DurableRun::Killed));
        drop(p);

        std::fs::write(dir.join("snap-0.tmp"), b"half-written snapshot").unwrap();
        let recovered = DurablePipeline::recover(cfg, Vec::new(), dcfg).unwrap();
        let m = recovered.metrics().snapshot();
        assert_eq!(m.snapshot_tmp_swept, 1);
        assert!(!dir.join("snap-0.tmp").exists());
        assert!(m.fully_accounted());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An unrecoverable I/O storm (ENOSPC past the retry budget) degrades
    /// the shard instead of panicking: the run completes, and every
    /// consumed-but-unlogged record is a typed, counted gap.
    #[test]
    fn flush_give_up_reports_lost_count_and_degrades() {
        let dir = tmp_dir("degrade");
        let cfg = config(1);
        let storm: Vec<FaultSpec> = (0..2_000)
            .map(|op| FaultSpec {
                op,
                kind: FaultKind::WriteEnospc,
            })
            .collect();
        let dcfg = DurableConfig {
            io: IoPolicy::no_backoff(1),
            fs: Arc::new(FaultyFs::new(&storm)),
            ..DurableConfig::new(dir.clone())
        };
        let mut p = DurablePipeline::create(cfg, Vec::new(), dcfg).unwrap();
        let end = p.run(flat_stream(6, 50), None).unwrap();
        match end {
            DurableRun::Completed { durability, .. } => {
                assert_eq!(durability, Durability::Degraded { gap: 50 });
            }
            DurableRun::Killed => panic!("no kill point was armed"),
        }
        let m = p.metrics().snapshot();
        assert_eq!(m.offered, 50);
        assert_eq!(m.wal_records, 0, "nothing could be logged");
        assert_eq!(m.wal_gap_records, 50);
        assert_eq!(m.durability_gap(), 50);
        assert!(m.wal_io_gave_up >= 1);
        assert!(m.wal_io_retries >= 1);
        assert!(m.fully_accounted());
        assert!(m.durably_accounted());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Compaction deleted segments a snapshot covered; if that snapshot
    /// later dies (checksum failure), the hole is a typed, counted loss —
    /// the books still balance, nothing is silently invented.
    #[test]
    fn dead_snapshot_after_compaction_is_a_counted_gap() {
        let dir = tmp_dir("dead-snap");
        let cfg = config(1);
        let dcfg = DurableConfig {
            snapshot_every_reports: 25,
            segment_bytes: (SEG_HEADER_LEN + 10 * RECORD_LEN) as u64,
            ..DurableConfig::new(dir.clone())
        };
        let mut p = DurablePipeline::create(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        p.run(flat_stream(8, 100), None).unwrap();
        drop(p);

        // Corrupt the snapshot so its checksum fails.
        let snap = dir.join("snap-0.bin");
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();

        let recovered = DurablePipeline::recover(cfg, Vec::new(), dcfg).unwrap();
        let m = recovered.metrics().snapshot();
        assert_eq!(m.snapshots_discarded, 1);
        assert!(
            m.wal_lost_records > 0,
            "compacted records are a counted hole"
        );
        assert_eq!(m.offered, 100, "every record is accounted: durable or lost");
        assert_eq!(m.wal_records + m.wal_lost_records, 100);
        assert!(m.fully_accounted());
        assert!(m.durably_accounted());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An fsync that lies is indistinguishable live, but a machine crash
    /// (power cut) truncates to the honestly-synced prefix — and recovery
    /// lands exactly there, books balanced.
    #[test]
    fn lying_fsync_then_machine_crash_recovers_to_synced_prefix() {
        let dir = tmp_dir("liar");
        let cfg = config(1);
        // Single shard op sequence: 0 = header write, 1 = first flush
        // append (64 KiB threshold at 1366 records), 2 = its honest sync,
        // 3 = final flush append, 4 = the lying sync.
        let faulty = Arc::new(FaultyFs::new(&[FaultSpec {
            op: 4,
            kind: FaultKind::SyncLies,
        }]));
        let dcfg = DurableConfig {
            fsync: true,
            snapshot_every_reports: u64::MAX,
            fs: faulty.clone(),
            ..DurableConfig::new(dir.clone())
        };
        let mut p = DurablePipeline::create(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        let end = p.run(flat_stream(5, 2_000), None).unwrap();
        // The lie is invisible live: the run believes it is durable.
        assert_eq!(end.durability(), Some(Durability::Durable));
        drop(p);

        faulty.machine_crash().unwrap();

        let flush_at = WAL_FLUSH_BYTES.div_ceil(RECORD_LEN) as u64;
        let recovered = DurablePipeline::recover(cfg, Vec::new(), dcfg).unwrap();
        let m = recovered.metrics().snapshot();
        assert_eq!(m.offered, flush_at, "the honestly-synced prefix survives");
        assert_eq!(m.wal_records, flush_at);
        assert_eq!(m.wal_torn_records, 0, "truncation lands on a record edge");
        assert!(m.fully_accounted());
        assert!(m.durably_accounted());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
