//! Durable, replayable ingest: per-shard write-ahead log + periodic
//! snapshots + deterministic recovery.
//!
//! The streaming pipeline of the parent module is lossless while the
//! process lives; this module makes it lossless across a `kill -9`. Three
//! artifacts per shard, all in one directory:
//!
//! * **WAL** (`wal-<shard>.log`) — an append-only log of every report the
//!   shard *consumes*, written before the state transition it causes.
//!   Records are length-prefixed and CRC32-checksummed, so a torn tail
//!   (the process died mid-write) is detected and truncated, never
//!   misparsed. Logging consumed rather than merely accepted reports is
//!   deliberate: drop classification (late / duplicate / future-jump) is a
//!   *function of state*, so replaying the same consumed sequence
//!   reproduces the same drops, counters and windows bit for bit.
//! * **Snapshot** (`snap-<shard>.bin`, atomic tmp+rename) — the full
//!   [`ShardState`] (every gateway lane: device baselines, suspect holds,
//!   dominance accumulators, open window accumulator, pending minutes,
//!   support counts) plus the [`ShardCounts`] ledger, written every
//!   [`DurableConfig::snapshot_every_reports`] consumed reports. The WAL
//!   is flushed first and the snapshot records how many WAL bytes it
//!   covers, so recovery replays exactly the tail.
//! * **Recovery** ([`DurablePipeline::recover`]) — load the snapshot
//!   (discarding it if its WAL coverage exceeds the valid WAL length),
//!   truncate the torn tail, replay the remaining records through the same
//!   [`ShardState::consume`] the live path uses, and restore the metrics
//!   books from the recovered ledgers.
//!
//! **Recovery invariants** (tested in `tests/durable.rs` and below):
//!
//! 1. *Bit-identical state*: after recovery, each shard's canonical state
//!    encoding equals a fresh fold of [`ShardState::consume`] over its
//!    durably-logged record sequence — snapshots are a pure optimization.
//! 2. *Bit-identical completion*: crash at any point, recover, re-feed the
//!    stream ([`DurablePipeline::run`] skips the durable prefix), and the
//!    final [`IngestSummary`], pre-finish state digest and the
//!    deterministic metrics projection
//!    ([`MetricsSnapshot::replay_invariant_core`]) equal an uninterrupted
//!    run's.
//! 3. *Durable accounting*: at quiescence `wal_records == offered`
//!    ([`MetricsSnapshot::durably_accounted`]), because nothing is consumed
//!    before it is logged and nothing already logged is re-offered.
//!
//! Sequence numbers are global (1-based, assigned by the producer in
//! stream order), so each shard's WAL holds a strictly increasing
//! subsequence and `min` over shards of the last logged seq is a safe
//! resume point ([`DurablePipeline::resume_seq`]); re-feeding the full
//! stream is always correct and is what [`DurablePipeline::run`] expects.
//!
//! Durability of the files themselves is `fsync`-gated
//! ([`DurableConfig::fsync`], default off): without it a *machine* crash
//! can lose buffered bytes, but recovery still lands on a valid
//! checksummed prefix — the guarantee degrades to "replayable from an
//! earlier point", never to corruption.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use super::{
    GatewayLane, IngestConfig, IngestMetrics, IngestPipeline, IngestReport, IngestSummary,
    KillSwitch, PendingMinute, RunEnd, ShardCounts, ShardState,
};
use crate::streaming::{MotifTemplate, OnlinePearson, WindowAccumulator};
use wtts_timeseries::Minute;

// ---------------------------------------------------------------------------
// Checksums and digests (no external deps: CRC32/IEEE and FNV-1a by hand)
// ---------------------------------------------------------------------------

/// CRC32 (IEEE 802.3, reflected, init/final xor `0xFFFF_FFFF`) — the
/// polynomial every torn-tail detector speaks.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// FNV-1a offset basis (the seed of every digest fold in this module).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64_bytes(mut acc: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        acc = (acc ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    acc
}

/// Folds one `u64` into an FNV-1a accumulator (little-endian bytes).
pub(crate) fn fnv1a64_u64(acc: u64, v: u64) -> u64 {
    fnv1a64_bytes(acc, &v.to_le_bytes())
}

// ---------------------------------------------------------------------------
// Little-endian encode/decode helpers
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("durable ingest: {what}"),
    )
}

/// A bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| corrupt("length overflow"))?;
        if end > self.buf.len() {
            return Err(corrupt("truncated record"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length prefix that must be satisfiable by the remaining bytes
    /// (each element at least `min_width` bytes) — rejects hostile lengths
    /// before any allocation.
    fn len(&mut self, min_width: usize) -> io::Result<usize> {
        let n = self.u64()? as usize;
        if n.saturating_mul(min_width.max(1)) > self.buf.len() - self.pos {
            return Err(corrupt("implausible length prefix"));
        }
        Ok(n)
    }

    fn done(&self) -> io::Result<()> {
        if self.pos != self.buf.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Canonical state encoding
// ---------------------------------------------------------------------------

/// Fingerprint of everything that determines state semantics: a snapshot
/// or WAL written under one configuration must not be replayed under
/// another (different thresholds or shard routing would silently diverge).
pub(crate) fn config_fingerprint(config: &IngestConfig, n_templates: usize) -> u64 {
    let mut acc = FNV_OFFSET;
    acc = fnv1a64_u64(acc, config.window as u64);
    acc = fnv1a64_u64(acc, config.bin_minutes as u64);
    acc = fnv1a64_u64(acc, config.lateness_horizon as u64);
    acc = fnv1a64_u64(acc, config.max_future_jump as u64);
    acc = fnv1a64_u64(acc, config.dominance_phi.to_bits());
    acc = fnv1a64_u64(acc, config.motif_threshold.to_bits());
    acc = fnv1a64_u64(acc, n_templates as u64);
    acc = fnv1a64_u64(acc, config.shards.max(1) as u64);
    acc
}

fn encode_counts(buf: &mut Vec<u8>, c: &ShardCounts) {
    for v in [
        c.ingested,
        c.baselines,
        c.reset_spanning_gaps,
        c.counter_resets,
        c.dropped_late,
        c.dropped_duplicate,
        c.dropped_future_jump,
        c.windows_sealed,
        c.windows_matched,
        c.windows_novel,
        c.windows_insufficient,
        c.partial_windows,
    ] {
        put_u64(buf, v);
    }
}

fn decode_counts(cur: &mut Cursor) -> io::Result<ShardCounts> {
    Ok(ShardCounts {
        ingested: cur.u64()?,
        baselines: cur.u64()?,
        reset_spanning_gaps: cur.u64()?,
        counter_resets: cur.u64()?,
        dropped_late: cur.u64()?,
        dropped_duplicate: cur.u64()?,
        dropped_future_jump: cur.u64()?,
        windows_sealed: cur.u64()?,
        windows_matched: cur.u64()?,
        windows_novel: cur.u64()?,
        windows_insufficient: cur.u64()?,
        partial_windows: cur.u64()?,
    })
}

fn encode_baseline(buf: &mut Vec<u8>, b: Option<(Minute, u64, u64)>) {
    match b {
        None => buf.push(0),
        Some((at, cin, cout)) => {
            buf.push(1);
            put_u32(buf, at.0);
            put_u64(buf, cin);
            put_u64(buf, cout);
        }
    }
}

fn decode_baseline(cur: &mut Cursor) -> io::Result<Option<(Minute, u64, u64)>> {
    match cur.u8()? {
        0 => Ok(None),
        1 => Ok(Some((Minute(cur.u32()?), cur.u64()?, cur.u64()?))),
        _ => Err(corrupt("bad baseline tag")),
    }
}

fn encode_lane(buf: &mut Vec<u8>, lane: &GatewayLane) {
    put_u64(buf, lane.gateway);
    put_u64(buf, lane.reports);
    put_u64(buf, lane.sealed);
    put_u64(buf, lane.matched);
    put_u64(buf, lane.novel);
    put_u64(buf, lane.insufficient);
    put_u32(buf, lane.watermark);
    put_u32(buf, lane.max_seen);
    put_u64(buf, lane.support.len() as u64);
    for &s in &lane.support {
        put_u64(buf, s);
    }
    let (current_start, bins, seen) = lane.accumulator.raw_parts();
    put_u32(buf, current_start);
    put_u64(buf, bins.len() as u64);
    for &b in bins {
        put_f64(buf, b);
    }
    for &s in seen {
        buf.push(s as u8);
    }
    put_u64(buf, lane.pending.len() as u64);
    for pm in &lane.pending {
        put_u32(buf, pm.minute);
        put_u64(buf, pm.contributions.len() as u64);
        for &(device, bytes) in &pm.contributions {
            put_u32(buf, device);
            put_f64(buf, bytes);
        }
    }
    let mut device_ids: Vec<u32> = lane.devices.keys().copied().collect();
    device_ids.sort_unstable();
    put_u64(buf, device_ids.len() as u64);
    for id in device_ids {
        let d = &lane.devices[&id];
        put_u32(buf, id);
        encode_baseline(buf, d.last);
        encode_baseline(buf, d.suspect);
        let (n, parts) = d.dominance.raw_parts();
        put_u64(buf, n);
        for p in parts {
            put_f64(buf, p);
        }
    }
}

fn decode_lane(
    cur: &mut Cursor,
    config: &IngestConfig,
    n_templates: usize,
) -> io::Result<GatewayLane> {
    let gateway = cur.u64()?;
    let mut lane = GatewayLane::new(gateway, config, n_templates);
    lane.reports = cur.u64()?;
    lane.sealed = cur.u64()?;
    lane.matched = cur.u64()?;
    lane.novel = cur.u64()?;
    lane.insufficient = cur.u64()?;
    lane.watermark = cur.u32()?;
    lane.max_seen = cur.u32()?;
    let n_support = cur.len(8)?;
    if n_support != n_templates {
        return Err(corrupt("support width mismatch"));
    }
    for s in lane.support.iter_mut() {
        *s = cur.u64()?;
    }
    let current_start = cur.u32()?;
    let n_bins = cur.len(8)?;
    let mut bins = Vec::with_capacity(n_bins);
    for _ in 0..n_bins {
        bins.push(cur.f64()?);
    }
    let mut seen = Vec::with_capacity(n_bins);
    for _ in 0..n_bins {
        seen.push(match cur.u8()? {
            0 => false,
            1 => true,
            _ => return Err(corrupt("bad seen flag")),
        });
    }
    // Geometry is validated by from_raw_parts against (window, bin_minutes);
    // reject mismatches as corruption rather than panicking.
    if n_bins != lane.accumulator.raw_parts().1.len() {
        return Err(corrupt("window geometry mismatch"));
    }
    lane.accumulator = WindowAccumulator::from_raw_parts(
        config.window,
        config.bin_minutes,
        current_start,
        bins,
        seen,
    );
    let n_pending = cur.len(12)?;
    for _ in 0..n_pending {
        let minute = cur.u32()?;
        let n_contrib = cur.len(12)?;
        let mut contributions = Vec::with_capacity(n_contrib);
        for _ in 0..n_contrib {
            contributions.push((cur.u32()?, cur.f64()?));
        }
        lane.pending.push_back(PendingMinute {
            minute,
            contributions,
        });
    }
    let n_devices = cur.len(4)?;
    for _ in 0..n_devices {
        let id = cur.u32()?;
        let last = decode_baseline(cur)?;
        let suspect = decode_baseline(cur)?;
        let n = cur.u64()?;
        let mut parts = [0.0f64; 5];
        for p in parts.iter_mut() {
            *p = cur.f64()?;
        }
        lane.devices.insert(
            id,
            super::DeviceState {
                last,
                suspect,
                dominance: OnlinePearson::from_raw_parts(n, parts),
            },
        );
    }
    Ok(lane)
}

/// Canonical byte encoding of a full shard state (lanes sorted by gateway,
/// devices by id, floats as IEEE-754 bits). Two states are bit-identical
/// iff their encodings are equal — the comparison primitive of every
/// recovery test.
pub(crate) fn encode_state(state: &ShardState) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, state.last_seq);
    put_u64(&mut buf, state.processed);
    encode_counts(&mut buf, &state.counts);
    let mut gateways: Vec<u64> = state.lanes.keys().copied().collect();
    gateways.sort_unstable();
    put_u64(&mut buf, gateways.len() as u64);
    for gw in gateways {
        encode_lane(&mut buf, &state.lanes[&gw]);
    }
    buf
}

fn decode_state(bytes: &[u8], config: &IngestConfig, n_templates: usize) -> io::Result<ShardState> {
    let mut cur = Cursor::new(bytes);
    let last_seq = cur.u64()?;
    let processed = cur.u64()?;
    let counts = decode_counts(&mut cur)?;
    let n_lanes = cur.len(64)?;
    let mut lanes = HashMap::with_capacity(n_lanes);
    for _ in 0..n_lanes {
        let lane = decode_lane(&mut cur, config, n_templates)?;
        lanes.insert(lane.gateway, lane);
    }
    cur.done()?;
    Ok(ShardState {
        lanes,
        counts,
        last_seq,
        processed,
    })
}

/// FNV-1a digest of the canonical state encoding. Cheap to combine across
/// shards and stable across processes (no address-dependent iteration
/// order leaks into it).
pub(crate) fn state_digest(state: &ShardState) -> u64 {
    fnv1a64_bytes(FNV_OFFSET, &encode_state(state))
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

const WAL_MAGIC: &[u8; 8] = b"WTTSWAL1";
const SNAP_MAGIC: &[u8; 8] = b"WTTSSNAP";
const SNAP_VERSION: u32 = 1;
/// WAL header: magic + config fingerprint.
const WAL_HEADER_LEN: u64 = 16;
/// Fixed payload width of a WAL record (seq, gateway, device, at, cum_in,
/// cum_out); the length prefix exists for forward evolution.
const WAL_PAYLOAD_LEN: usize = 40;
/// Flush the append buffer once it exceeds this many bytes (and always
/// before a snapshot and at stream end).
const WAL_FLUSH_BYTES: usize = 64 * 1024;

fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("wal-{shard}.log"))
}

fn snap_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("snap-{shard}.bin"))
}

fn encode_wal_payload(seq: u64, r: &IngestReport) -> [u8; WAL_PAYLOAD_LEN] {
    let mut p = [0u8; WAL_PAYLOAD_LEN];
    p[0..8].copy_from_slice(&seq.to_le_bytes());
    p[8..16].copy_from_slice(&r.gateway.to_le_bytes());
    p[16..20].copy_from_slice(&r.device.to_le_bytes());
    p[20..24].copy_from_slice(&r.at.0.to_le_bytes());
    p[24..32].copy_from_slice(&r.cum_in.to_le_bytes());
    p[32..40].copy_from_slice(&r.cum_out.to_le_bytes());
    p
}

fn decode_wal_payload(p: &[u8]) -> io::Result<(u64, IngestReport)> {
    let mut cur = Cursor::new(p);
    let seq = cur.u64()?;
    let report = IngestReport {
        gateway: cur.u64()?,
        device: cur.u32()?,
        at: Minute(cur.u32()?),
        cum_in: cur.u64()?,
        cum_out: cur.u64()?,
    };
    cur.done()?;
    Ok((seq, report))
}

/// Result of scanning one shard's WAL.
struct WalScan {
    /// Decoded records in append order.
    records: Vec<(u64, IngestReport)>,
    /// File length of the valid checksummed prefix (header included).
    valid_len: u64,
    /// 1 if a torn/corrupt tail was found (and everything after the valid
    /// prefix discarded), else 0.
    torn: u64,
}

/// Reads a WAL file, stopping at the first torn or corrupt record. A bad
/// checksum anywhere truncates the view at the last valid record — a torn
/// tail must never be half-applied.
fn scan_wal(path: &Path, fingerprint: u64) -> io::Result<WalScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < WAL_HEADER_LEN as usize || &bytes[0..8] != WAL_MAGIC {
        return Err(corrupt("bad WAL header"));
    }
    let fp = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if fp != fingerprint {
        return Err(corrupt("WAL written under a different configuration"));
    }
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    let mut torn = 0u64;
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            torn = 1;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len != WAL_PAYLOAD_LEN || bytes.len() - pos - 8 < len {
            torn = 1;
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            torn = 1;
            break;
        }
        records.push(decode_wal_payload(payload)?);
        pos += 8 + len;
    }
    Ok(WalScan {
        records,
        valid_len: pos as u64,
        torn,
    })
}

// ---------------------------------------------------------------------------
// Per-shard durability hooks (owned by the shard worker)
// ---------------------------------------------------------------------------

/// Durable-run configuration.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Directory holding the per-shard WAL and snapshot files.
    pub dir: PathBuf,
    /// Snapshot cadence: write a shard snapshot after this many consumed
    /// reports since the last one (checked at batch boundaries).
    pub snapshot_every_reports: u64,
    /// `fsync` WAL flushes and snapshot files. Off by default: crash
    /// consistency against *process* death never needs it, and the CI
    /// smoke runs both ways.
    pub fsync: bool,
}

impl DurableConfig {
    /// A configuration with default cadence (64k reports) and no fsync.
    pub fn new(dir: impl Into<PathBuf>) -> DurableConfig {
        DurableConfig {
            dir: dir.into(),
            snapshot_every_reports: 64 * 1024,
            fsync: false,
        }
    }
}

/// The durable side of one shard worker: its open WAL writer and snapshot
/// cadence. Created by [`DurablePipeline`] and moved into the worker
/// thread; every method is called from that one thread.
pub(crate) struct ShardDurability {
    shard: usize,
    wal: File,
    /// Bytes durably written to the WAL file (valid prefix length).
    wal_len: u64,
    /// Appended-but-unflushed record bytes; a crash drops these.
    buf: Vec<u8>,
    snap: PathBuf,
    snap_tmp: PathBuf,
    fingerprint: u64,
    snapshot_every: u64,
    last_snapshot_processed: u64,
    fsync: bool,
}

impl ShardDurability {
    /// Appends one consumed report to the WAL (buffered; flushed on
    /// threshold, before snapshots, and at stream end).
    pub(crate) fn append(&mut self, seq: u64, report: &IngestReport) -> io::Result<()> {
        let payload = encode_wal_payload(seq, report);
        self.buf
            .extend_from_slice(&(WAL_PAYLOAD_LEN as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        if self.buf.len() >= WAL_FLUSH_BYTES {
            self.flush()?;
        }
        Ok(())
    }

    /// Writes the append buffer to the file (+ `fsync` when configured).
    pub(crate) fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.wal.write_all(&self.buf)?;
            self.wal_len += self.buf.len() as u64;
            self.buf.clear();
            if self.fsync {
                self.wal.sync_data()?;
            }
        }
        Ok(())
    }

    /// Simulated process death: unflushed bytes are gone. (Used by the
    /// in-process kill switch; a real SIGKILL gets this for free.)
    pub(crate) fn crash(&mut self) {
        self.buf.clear();
    }

    /// Whether the snapshot cadence has elapsed.
    pub(crate) fn snapshot_due(&self, processed: u64) -> bool {
        processed - self.last_snapshot_processed >= self.snapshot_every
    }

    /// Flushes the WAL, then writes the snapshot atomically (tmp+rename).
    /// Ordering matters: the snapshot claims WAL coverage, so those bytes
    /// must hit the file first.
    pub(crate) fn write_snapshot(&mut self, state: &ShardState) -> io::Result<()> {
        self.flush()?;
        let body = encode_state(state);
        let mut buf = Vec::with_capacity(body.len() + 64);
        buf.extend_from_slice(SNAP_MAGIC);
        put_u32(&mut buf, SNAP_VERSION);
        put_u32(&mut buf, self.shard as u32);
        put_u64(&mut buf, self.fingerprint);
        put_u64(&mut buf, self.wal_len);
        put_u64(&mut buf, body.len() as u64);
        buf.extend_from_slice(&body);
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        {
            let mut tmp = File::create(&self.snap_tmp)?;
            tmp.write_all(&buf)?;
            if self.fsync {
                tmp.sync_data()?;
            }
        }
        std::fs::rename(&self.snap_tmp, &self.snap)?;
        self.last_snapshot_processed = state.processed;
        Ok(())
    }
}

/// Decoded snapshot file: WAL coverage + state.
struct LoadedSnapshot {
    wal_bytes: u64,
    state: ShardState,
}

fn load_snapshot(
    path: &Path,
    shard: usize,
    fingerprint: u64,
    config: &IngestConfig,
    n_templates: usize,
) -> io::Result<Option<LoadedSnapshot>> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => f.read_to_end(&mut bytes)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() < 4 {
        return Err(corrupt("snapshot too short"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != crc {
        return Err(corrupt("snapshot checksum mismatch"));
    }
    let mut cur = Cursor::new(body);
    if cur.take(8)? != SNAP_MAGIC {
        return Err(corrupt("bad snapshot magic"));
    }
    if cur.u32()? != SNAP_VERSION {
        return Err(corrupt("unsupported snapshot version"));
    }
    if cur.u32()? != shard as u32 {
        return Err(corrupt("snapshot shard mismatch"));
    }
    if cur.u64()? != fingerprint {
        return Err(corrupt("snapshot written under a different configuration"));
    }
    let wal_bytes = cur.u64()?;
    let state_len = cur.len(1)?;
    let state = decode_state(cur.take(state_len)?, config, n_templates)?;
    cur.done()?;
    Ok(Some(LoadedSnapshot { wal_bytes, state }))
}

// ---------------------------------------------------------------------------
// Durable pipeline
// ---------------------------------------------------------------------------

/// Crash injection for durable runs.
#[derive(Debug, Clone, Copy)]
pub struct KillPoint {
    /// Fire after this many reports have been offered by the run.
    pub after_offered: u64,
    /// How to die.
    pub mode: KillMode,
}

impl KillPoint {
    /// An in-process abort after `after_offered` offered reports.
    pub fn after(after_offered: u64) -> KillPoint {
        KillPoint {
            after_offered,
            mode: KillMode::Abort,
        }
    }
}

/// How a [`KillPoint`] kills the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// Cooperative in-process abort: workers stop without finishing and
    /// unflushed WAL bytes are discarded — a faithful crash simulation
    /// that leaves the process (and the test harness) alive.
    Abort,
    /// `std::process::abort()` — the process dies for real, no unwinding,
    /// no flushing. For the crash-recovery CI smoke.
    SigKill,
}

/// How a durable run ended.
#[derive(Debug)]
pub enum DurableRun {
    /// The stream was fully consumed and every shard finished.
    Completed {
        /// The merged fleet summary (same type as the in-memory pipeline;
        /// boxed so the enum stays small next to `Killed`).
        summary: Box<IngestSummary>,
        /// Combined pre-finish state digest across shards — equal for an
        /// uninterrupted run and any crash/recover/re-feed of the same
        /// stream.
        state_digest: u64,
    },
    /// The kill switch fired; the on-disk WAL/snapshots hold the durable
    /// prefix and [`DurablePipeline::recover`] picks it up.
    Killed,
}

impl DurableRun {
    /// The summary of a completed run, if it completed.
    pub fn summary(&self) -> Option<&IngestSummary> {
        match self {
            DurableRun::Completed { summary, .. } => Some(summary),
            DurableRun::Killed => None,
        }
    }
}

/// A [`IngestPipeline`] with per-shard WAL + snapshot durability. Create a
/// fresh one with [`DurablePipeline::create`], or load the durable state
/// of a crashed run with [`DurablePipeline::recover`]; then feed the
/// stream with [`DurablePipeline::run`]. Each instance runs once.
pub struct DurablePipeline {
    pipeline: IngestPipeline,
    durable: DurableConfig,
    fingerprint: u64,
    /// Recovered/fresh shard states and their open durability hooks;
    /// consumed by `run`.
    armed: Option<(Vec<ShardState>, Vec<ShardDurability>)>,
}

impl DurablePipeline {
    /// Starts a fresh durable pipeline: truncates any existing WAL files
    /// in `durable.dir` and removes old snapshots.
    pub fn create(
        config: IngestConfig,
        templates: Vec<MotifTemplate>,
        durable: DurableConfig,
    ) -> io::Result<DurablePipeline> {
        std::fs::create_dir_all(&durable.dir)?;
        let pipeline = IngestPipeline::new(config, templates);
        let shards = pipeline.config().shards.max(1);
        let fingerprint = config_fingerprint(pipeline.config(), pipeline.templates.len());
        let mut states = Vec::with_capacity(shards);
        let mut hooks = Vec::with_capacity(shards);
        for shard in 0..shards {
            let snap = snap_path(&durable.dir, shard);
            match std::fs::remove_file(&snap) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
            let mut wal = File::create(wal_path(&durable.dir, shard))?;
            wal.write_all(WAL_MAGIC)?;
            wal.write_all(&fingerprint.to_le_bytes())?;
            if durable.fsync {
                wal.sync_data()?;
            }
            states.push(ShardState::new());
            hooks.push(ShardDurability {
                shard,
                wal,
                wal_len: WAL_HEADER_LEN,
                buf: Vec::new(),
                snap_tmp: snap.with_extension("tmp"),
                snap,
                fingerprint,
                snapshot_every: durable.snapshot_every_reports.max(1),
                last_snapshot_processed: 0,
                fsync: durable.fsync,
            });
        }
        Ok(DurablePipeline {
            pipeline,
            durable,
            fingerprint,
            armed: Some((states, hooks)),
        })
    }

    /// Recovers the durable state of a previous run from `durable.dir`:
    /// per shard, truncate the WAL's torn tail, load the snapshot (or
    /// start empty — including when the snapshot claims WAL coverage the
    /// file no longer has), replay the WAL tail through the live consume
    /// path, and restore the metrics books. The resulting instance is
    /// ready to [`DurablePipeline::run`] the stream again.
    pub fn recover(
        config: IngestConfig,
        templates: Vec<MotifTemplate>,
        durable: DurableConfig,
    ) -> io::Result<DurablePipeline> {
        let pipeline = IngestPipeline::new(config, templates);
        let shards = pipeline.config().shards.max(1);
        let fingerprint = config_fingerprint(pipeline.config(), pipeline.templates.len());
        let metrics = &pipeline.metrics;
        let mut states = Vec::with_capacity(shards);
        let mut hooks = Vec::with_capacity(shards);
        for shard in 0..shards {
            let path = wal_path(&durable.dir, shard);
            let scan = scan_wal(&path, fingerprint)?;
            metrics
                .wal_torn_records
                .fetch_add(scan.torn, Ordering::Relaxed);

            let snap = snap_path(&durable.dir, shard);
            let loaded = match load_snapshot(
                &snap,
                shard,
                fingerprint,
                pipeline.config(),
                pipeline.templates.len(),
            )? {
                // A snapshot claiming more WAL than survived (torn below
                // its coverage) cannot be trusted to align with the log;
                // fall back to a full replay from empty.
                Some(s) if s.wal_bytes > scan.valid_len => None,
                other => other,
            };
            let (mut state, covered_bytes) = match loaded {
                Some(s) => (s.state, s.wal_bytes),
                None => (ShardState::new(), WAL_HEADER_LEN),
            };

            // Replay the WAL tail: records past the snapshot's coverage,
            // through the exact consume path live ingest uses.
            {
                let _span = metrics.replay.enter();
                let mut offset = WAL_HEADER_LEN;
                for (seq, report) in &scan.records {
                    let start = offset;
                    offset += 8 + WAL_PAYLOAD_LEN as u64;
                    if start < covered_bytes {
                        debug_assert!(*seq <= state.last_seq);
                        continue;
                    }
                    state.consume(*seq, report, pipeline.config(), &pipeline.templates);
                }
            }

            // Restore the books: everything in the WAL was consumed, and
            // everything consumed was offered.
            metrics
                .offered
                .fetch_add(state.processed, Ordering::Relaxed);
            metrics
                .wal_records
                .fetch_add(state.processed, Ordering::Relaxed);
            metrics.apply(&state.counts);
            metrics.shards[shard]
                .processed
                .store(state.processed, Ordering::Relaxed);

            // Truncate the torn tail so appends resume on the valid prefix.
            let wal = OpenOptions::new().read(true).write(true).open(&path)?;
            wal.set_len(scan.valid_len)?;
            let mut wal = wal;
            wal.seek(SeekFrom::End(0))?;

            let last_snapshot_processed = state.processed;
            states.push(state);
            hooks.push(ShardDurability {
                shard,
                wal,
                wal_len: scan.valid_len,
                buf: Vec::new(),
                snap_tmp: snap.with_extension("tmp"),
                snap,
                fingerprint,
                snapshot_every: durable.snapshot_every_reports.max(1),
                last_snapshot_processed,
                fsync: durable.fsync,
            });
        }
        metrics.recoveries.fetch_add(1, Ordering::Relaxed);
        Ok(DurablePipeline {
            pipeline,
            durable,
            fingerprint,
            armed: Some((states, hooks)),
        })
    }

    /// The live metrics registry (restored books after a recovery).
    pub fn metrics(&self) -> Arc<IngestMetrics> {
        self.pipeline.metrics()
    }

    /// The underlying pipeline configuration.
    pub fn config(&self) -> &IngestConfig {
        self.pipeline.config()
    }

    /// Combined digest of the current (recovered) shard states — equals
    /// the digest of a fresh [`ShardState::consume`] fold over each
    /// shard's durably-logged records.
    pub fn state_digest(&self) -> u64 {
        let (states, _) = self
            .armed
            .as_ref()
            .expect("durable pipeline already consumed by run()");
        states
            .iter()
            .fold(FNV_OFFSET, |acc, s| fnv1a64_u64(acc, state_digest(s)))
    }

    /// The earliest global sequence number NOT yet durable in every shard:
    /// feeding the stream suffix starting here (via
    /// [`DurablePipeline::run_from`]) loses nothing. Re-feeding from the
    /// beginning is always correct too — already-durable reports are
    /// skipped per shard.
    pub fn resume_seq(&self) -> u64 {
        let (states, _) = self
            .armed
            .as_ref()
            .expect("durable pipeline already consumed by run()");
        states.iter().map(|s| s.last_seq).min().unwrap_or(0) + 1
    }

    /// Runs the full stream (global sequence numbers assigned from 1),
    /// skipping reports each shard already holds durably. `kill` arms the
    /// crash switch.
    pub fn run<I>(&mut self, reports: I, kill: Option<KillPoint>) -> io::Result<DurableRun>
    where
        I: IntoIterator<Item = IngestReport>,
    {
        self.run_from(reports, 1, kill)
    }

    /// Like [`DurablePipeline::run`], but `reports` is the stream suffix
    /// whose first element carries global sequence number `first_seq`
    /// (obtain a safe value from [`DurablePipeline::resume_seq`]).
    pub fn run_from<I>(
        &mut self,
        reports: I,
        first_seq: u64,
        kill: Option<KillPoint>,
    ) -> io::Result<DurableRun>
    where
        I: IntoIterator<Item = IngestReport>,
    {
        let (states, hooks) = self
            .armed
            .take()
            .expect("a durable pipeline instance runs once; recover() a new one");
        let cutoffs = states.iter().map(|s| s.last_seq).collect();
        let durability = hooks.into_iter().map(Some).collect();
        let kill = kill.map(|k| KillSwitch {
            after_offered: k.after_offered,
            hard: k.mode == KillMode::SigKill,
        });
        match self
            .pipeline
            .run_inner(reports, first_seq, cutoffs, states, durability, kill)?
        {
            RunEnd::Completed(summary, digest) => Ok(DurableRun::Completed {
                summary,
                state_digest: digest.expect("durable run always yields a digest"),
            }),
            RunEnd::Killed => Ok(DurableRun::Killed),
        }
    }

    /// The durable directory this pipeline reads and writes.
    pub fn dir(&self) -> &Path {
        &self.durable.dir
    }

    /// The configuration fingerprint stamped on WAL and snapshot files.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_timeseries::WindowKind;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wtts-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn report(gateway: u64, device: u32, at: u32, cum: u64) -> IngestReport {
        IngestReport {
            gateway,
            device,
            at: Minute(at),
            cum_in: cum,
            cum_out: cum / 2,
        }
    }

    fn config(shards: usize) -> IngestConfig {
        IngestConfig {
            shards,
            batch_reports: 16,
            queue_batches: 2,
            window: WindowKind::Daily,
            bin_minutes: 180,
            lateness_horizon: 3,
            ..IngestConfig::default()
        }
    }

    /// A messy but deterministic stream: several gateways/devices, with
    /// duplicates, late arrivals and an uncorroborated future jump mixed
    /// in so recovery has non-trivial drop state to reproduce.
    fn stream() -> Vec<IngestReport> {
        let mut out = Vec::new();
        for m in 0..2_000u32 {
            for gw in 0..5u64 {
                for dev in 0..2u32 {
                    if (m + gw as u32 * 3 + dev * 7).is_multiple_of(13) {
                        continue; // loss
                    }
                    let cum = (m as u64 + 1) * (50 + gw * 11 + dev as u64 * 5);
                    out.push(report(gw, dev, m, cum));
                    if (m + gw as u32).is_multiple_of(97) {
                        out.push(report(gw, dev, m, cum)); // duplicate
                    }
                }
            }
            if m == 700 {
                out.push(report(1, 0, 90_000, 1)); // wild future jump
            }
            if m == 800 {
                out.push(report(2, 1, 100, 1)); // very late straggler
            }
        }
        out
    }

    #[test]
    fn crc32_known_vectors() {
        // Canonical check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wal_payload_roundtrip() {
        let r = report(42, 7, 1234, 99_999);
        let p = encode_wal_payload(567, &r);
        let (seq, back) = decode_wal_payload(&p).unwrap();
        assert_eq!(seq, 567);
        assert_eq!(back, r);
    }

    /// Snapshot encode/decode is the identity on states reached through
    /// real ingest (lanes with pending minutes, suspects, dominance data).
    #[test]
    fn state_encoding_roundtrip() {
        let cfg = config(1);
        let mut state = ShardState::new();
        for (i, r) in stream().into_iter().enumerate() {
            state.consume(i as u64 + 1, &r, &cfg, &[]);
        }
        let bytes = encode_state(&state);
        let back = decode_state(&bytes, &cfg, 0).unwrap();
        assert_eq!(encode_state(&back), bytes);
        assert_eq!(state_digest(&back), state_digest(&state));
        assert_eq!(back.counts, state.counts);
        assert_eq!(back.last_seq, state.last_seq);
    }

    /// Recovery with snapshots equals a pure fold over the logged records:
    /// snapshots are an optimization, not a second source of truth.
    #[test]
    fn recovered_state_equals_wal_fold_at_many_kill_points() {
        let stream = stream();
        for kill_after in [1u64, 17, 900, 2_500, 7_000, stream.len() as u64 / 2] {
            let dir = tmp_dir(&format!("fold-{kill_after}"));
            let cfg = config(2);
            let dcfg = DurableConfig {
                dir: dir.clone(),
                snapshot_every_reports: 300,
                fsync: false,
            };
            let mut p = DurablePipeline::create(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
            let end = p
                .run(stream.iter().copied(), Some(KillPoint::after(kill_after)))
                .unwrap();
            assert!(matches!(end, DurableRun::Killed));

            let recovered =
                DurablePipeline::recover(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
            // Reference: fold every logged record from an empty state.
            let fingerprint = recovered.fingerprint();
            let mut reference = FNV_OFFSET;
            for shard in 0..2 {
                let scan = scan_wal(&wal_path(&dir, shard), fingerprint).unwrap();
                assert_eq!(scan.torn, 0, "clean abort leaves no torn tail");
                let mut state = ShardState::new();
                for (seq, r) in &scan.records {
                    state.consume(*seq, r, &cfg, &[]);
                }
                reference = fnv1a64_u64(reference, state_digest(&state));
            }
            assert_eq!(
                recovered.state_digest(),
                reference,
                "kill_after={kill_after}"
            );

            let m = recovered.metrics().snapshot();
            assert!(m.fully_accounted(), "recovered books must balance");
            assert!(m.durably_accounted());
            assert_eq!(m.recoveries, 1);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// A WAL truncated mid-record recovers to the last valid checksummed
    /// record and counts the tear.
    #[test]
    fn torn_wal_tail_is_truncated_and_counted() {
        let dir = tmp_dir("torn");
        let cfg = config(1);
        let dcfg = DurableConfig {
            dir: dir.clone(),
            snapshot_every_reports: u64::MAX,
            fsync: false,
        };
        let stream: Vec<IngestReport> = (0..100u32)
            .map(|m| report(9, 0, m, (m as u64 + 1) * 10))
            .collect();
        let mut p = DurablePipeline::create(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        match p.run(stream.iter().copied(), None).unwrap() {
            DurableRun::Completed { .. } => {}
            DurableRun::Killed => panic!("no kill point was armed"),
        }

        // Tear the file mid-record: keep the header, 40 full records, and
        // 13 bytes of the 41st.
        let path = wal_path(&dir, 0);
        let full = std::fs::metadata(&path).unwrap().len();
        let record = 8 + WAL_PAYLOAD_LEN as u64;
        assert_eq!(full, WAL_HEADER_LEN + 100 * record);
        let torn_len = WAL_HEADER_LEN + 40 * record + 13;
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(torn_len)
            .unwrap();

        let recovered = DurablePipeline::recover(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        let m = recovered.metrics().snapshot();
        assert_eq!(m.wal_torn_records, 1);
        assert_eq!(m.offered, 40, "only the valid prefix survives");
        assert_eq!(m.wal_records, 40);
        assert!(m.fully_accounted());
        // The file was truncated to the valid prefix.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            WAL_HEADER_LEN + 40 * record
        );

        // Corrupting a record *body* (checksum mismatch) cuts the view at
        // the same place a physical tear would.
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A corrupted byte inside a record fails its checksum and truncates
    /// the view there — a bad record never half-applies.
    #[test]
    fn checksum_mismatch_truncates_at_last_valid_record() {
        let dir = tmp_dir("crc");
        let cfg = config(1);
        let dcfg = DurableConfig {
            dir: dir.clone(),
            snapshot_every_reports: u64::MAX,
            fsync: false,
        };
        let stream: Vec<IngestReport> = (0..50u32)
            .map(|m| report(3, 0, m, (m as u64 + 1) * 10))
            .collect();
        let mut p = DurablePipeline::create(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        p.run(stream.iter().copied(), None).unwrap();

        let path = wal_path(&dir, 0);
        let record = 8 + WAL_PAYLOAD_LEN as u64;
        // Flip one payload byte of record 20 (0-based).
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = (WAL_HEADER_LEN + 20 * record + 8 + 5) as usize;
        bytes[victim] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let recovered = DurablePipeline::recover(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        let m = recovered.metrics().snapshot();
        assert_eq!(m.offered, 20);
        assert_eq!(m.wal_torn_records, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A snapshot claiming WAL coverage the (torn) log no longer has is
    /// discarded and recovery falls back to a full replay.
    #[test]
    fn snapshot_beyond_torn_wal_is_discarded() {
        let dir = tmp_dir("overclaim");
        let cfg = config(1);
        let dcfg = DurableConfig {
            dir: dir.clone(),
            snapshot_every_reports: 30,
            fsync: false,
        };
        let stream: Vec<IngestReport> = (0..100u32)
            .map(|m| report(4, 0, m, (m as u64 + 1) * 10))
            .collect();
        let mut p = DurablePipeline::create(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        p.run(stream.iter().copied(), None).unwrap();

        // Truncate the WAL below the last snapshot's coverage.
        let path = wal_path(&dir, 0);
        let record = 8 + WAL_PAYLOAD_LEN as u64;
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(WAL_HEADER_LEN + 10 * record)
            .unwrap();

        let recovered = DurablePipeline::recover(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        let m = recovered.metrics().snapshot();
        assert_eq!(m.offered, 10, "full replay of the surviving prefix");
        assert!(m.fully_accounted());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Config fingerprint mismatches are refused loudly instead of
    /// replaying a log under rules it was not written for.
    #[test]
    fn mismatched_configuration_is_refused() {
        let dir = tmp_dir("fingerprint");
        let cfg = config(1);
        let dcfg = DurableConfig::new(dir.clone());
        let mut p = DurablePipeline::create(cfg.clone(), Vec::new(), dcfg.clone()).unwrap();
        p.run((0..10u32).map(|m| report(1, 0, m, m as u64 + 1)), None)
            .unwrap();
        let other = IngestConfig {
            motif_threshold: 0.9,
            ..cfg
        };
        let err = match DurablePipeline::recover(other, Vec::new(), dcfg) {
            Ok(_) => panic!("mismatched config must be refused"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
