//! Hierarchical clustering under the correlation distance (Figure 3).
//!
//! The paper clusters gateway traffic series with distance `1 − cor(·,·)`
//! and cuts the dendrogram at `0.4` — i.e. clusters are groups whose
//! correlation similarity is at least `0.6`, the "high correlation"
//! threshold. This module implements agglomerative average-linkage
//! clustering over an arbitrary distance matrix plus the `cor`-based
//! convenience entry point.

use crate::engine::{
    cor_matrix, cor_matrix_pruned, profile_series, sketch_series, CorMatrixConfig, PruneConfig,
};

/// One merge step of the agglomerative clustering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeStep {
    /// First cluster id merged (ids `0..n` are leaves; `n + k` is the
    /// cluster created by step `k`).
    pub left: usize,
    /// Second cluster id merged.
    pub right: usize,
    /// Average-linkage distance at which the merge happened.
    pub distance: f64,
}

/// The full dendrogram of an agglomerative clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    /// Number of leaves.
    pub n: usize,
    /// Merge steps in execution order (`n − 1` of them for `n > 0`).
    pub steps: Vec<MergeStep>,
}

impl Dendrogram {
    /// Cuts the dendrogram at `threshold`: merges with distance
    /// `<= threshold` are applied, and the resulting groups of leaves are
    /// returned (each sorted, groups ordered by smallest member).
    pub fn cut(&self, threshold: f64) -> Vec<Vec<usize>> {
        // Union-find over leaves, replaying cheap merges.
        let mut parent: Vec<usize> = (0..self.n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        // Map cluster ids to a representative leaf.
        let mut rep: Vec<usize> = (0..self.n).collect();
        for step in self.steps.iter() {
            if step.distance <= threshold {
                let a = find(&mut parent, rep[step.left]);
                let b = find(&mut parent, rep[step.right]);
                parent[b] = a;
                rep.push(a);
            } else {
                // Higher merges can't be applied, but later steps may still
                // reference this cluster id; keep a representative.
                rep.push(rep[step.left]);
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for leaf in 0..self.n {
            let root = find(&mut parent, leaf);
            groups.entry(root).or_default().push(leaf);
        }
        groups.into_values().collect()
    }
}

/// Agglomerative average-linkage clustering over a symmetric distance
/// matrix given as a flat row-major `n × n` slice.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn average_linkage(dist: &[f64], n: usize) -> Dendrogram {
    assert_eq!(dist.len(), n * n, "distance matrix must be n x n");
    if n == 0 {
        return Dendrogram {
            n,
            steps: Vec::new(),
        };
    }
    // Active clusters: id -> member leaves.
    let mut members: Vec<Option<Vec<usize>>> = (0..n).map(|i| Some(vec![i])).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut steps = Vec::with_capacity(n.saturating_sub(1));

    let leaf_dist = |a: usize, b: usize| dist[a * n + b];
    while active.len() > 1 {
        // Find the closest pair by average linkage.
        let mut best = (0usize, 1usize, f64::INFINITY);
        for (ai, &a) in active.iter().enumerate() {
            for &b in &active[ai + 1..] {
                let ma = members[a].as_ref().expect("active cluster");
                let mb = members[b].as_ref().expect("active cluster");
                let mut sum = 0.0;
                for &x in ma {
                    for &y in mb {
                        sum += leaf_dist(x, y);
                    }
                }
                let d = sum / (ma.len() * mb.len()) as f64;
                if d < best.2 {
                    best = (a, b, d);
                }
            }
        }
        let (a, b, d) = best;
        let mut merged = members[a].take().expect("active cluster");
        merged.extend(members[b].take().expect("active cluster"));
        let new_id = members.len();
        members.push(Some(merged));
        active.retain(|&c| c != a && c != b);
        active.push(new_id);
        steps.push(MergeStep {
            left: a,
            right: b,
            distance: d,
        });
    }
    Dendrogram { n, steps }
}

/// Clusters series by correlation distance `1 − cor` with average linkage,
/// cut at `1 − min_similarity` (the paper cuts at distance `0.4`, i.e.
/// similarity `0.6`).
pub fn cluster_correlated(series: &[Vec<f64>], min_similarity: f64) -> Vec<Vec<usize>> {
    let n = series.len();
    let profiles = profile_series(series);
    let matrix = cor_matrix(&profiles, &CorMatrixConfig::default());
    let mut dist = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = 1.0 - matrix.get(i, j) as f64;
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    average_linkage(&dist, n).cut(1.0 - min_similarity)
}

/// Connected components of the `cor ≥ min_similarity` graph, computed
/// from the sketch-pruned sparse matrix — the fleet-scale companion to
/// [`cluster_correlated`].
///
/// Average linkage needs *every* pairwise distance, so it cannot ride the
/// pruned path unchanged. The component decomposition can, and it
/// provably **coarsens** the average-linkage cut: a merge applied at
/// average distance `≤ 1 − min_similarity` implies at least one member
/// pair with similarity `≥ min_similarity`, so every cluster
/// [`cluster_correlated`] returns is wholly contained in one component
/// returned here. Use it to split a fleet into independent sub-problems
/// before running the exact clustering per component.
///
/// Components are sorted by smallest member, members ascending (the same
/// shape [`Dendrogram::cut`] returns).
pub fn correlation_components(series: &[Vec<f64>], min_similarity: f64) -> Vec<Vec<usize>> {
    let n = series.len();
    let profiles = profile_series(series);
    let config = PruneConfig::at_threshold(min_similarity);
    let sketches = sketch_series(&profiles, &config.sketch);
    let (sparse, _) = cor_matrix_pruned(&profiles, &sketches, &config);
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (i, j, v) in sparse.entries() {
        // The same f32 comparison the dense consumers make: a pruned pair
        // is provably below threshold even after f32 rounding (see
        // `wtts_stats::sketch`), so the edge set matches a dense scan.
        if v as f64 >= min_similarity {
            let (a, b) = (find(&mut parent, i), find(&mut parent, j));
            if a != b {
                parent[b] = a;
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for leaf in 0..n {
        let root = find(&mut parent, leaf);
        groups.entry(root).or_default().push(leaf);
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_well_separated_groups() {
        // Group A: rising series; group B: oscillating series.
        let rising = |k: usize| -> Vec<f64> {
            (0..30)
                .map(|i| (i * (k + 1)) as f64 + (i % 3) as f64)
                .collect()
        };
        let wave = |k: usize| -> Vec<f64> {
            (0..30)
                .map(|i| (i as f64 * 0.9 + k as f64 * 0.01).sin() * 100.0)
                .collect()
        };
        let series: Vec<Vec<f64>> = (0..3).map(rising).chain((0..3).map(wave)).collect();
        let clusters = cluster_correlated(&series, 0.6);
        assert_eq!(clusters.len(), 2, "clusters: {clusters:?}");
        assert_eq!(clusters[0], vec![0, 1, 2]);
        assert_eq!(clusters[1], vec![3, 4, 5]);
    }

    #[test]
    fn uncorrelated_series_stay_singletons() {
        let hash = |i: usize, k: f64| ((i as f64 * k).sin() * 43758.5453).fract().abs();
        let series: Vec<Vec<f64>> = [12.9898, 78.233, 39.425, 94.673]
            .into_iter()
            .map(|k| (0..20).map(|i| hash(i, k)).collect())
            .collect();
        let clusters = cluster_correlated(&series, 0.6);
        assert_eq!(clusters.len(), 4, "clusters: {clusters:?}");
    }

    #[test]
    fn cut_threshold_controls_granularity() {
        let series: Vec<Vec<f64>> = (0..4)
            .map(|k| {
                (0..30)
                    .map(|i| (i * (k + 1)) as f64 + ((i + k) % 4) as f64)
                    .collect()
            })
            .collect();
        let tight = cluster_correlated(&series, 0.99999);
        let loose = cluster_correlated(&series, 0.3);
        assert!(tight.len() >= loose.len());
        // All four rising series correlate strongly: one loose cluster.
        assert_eq!(loose.len(), 1);
    }

    #[test]
    fn components_match_clusters_on_separated_groups() {
        let rising = |k: usize| -> Vec<f64> {
            (0..30)
                .map(|i| (i * (k + 1)) as f64 + (i % 3) as f64)
                .collect()
        };
        let wave = |k: usize| -> Vec<f64> {
            (0..30)
                .map(|i| (i as f64 * 0.9 + k as f64 * 0.01).sin() * 100.0)
                .collect()
        };
        let series: Vec<Vec<f64>> = (0..3).map(rising).chain((0..3).map(wave)).collect();
        let components = correlation_components(&series, 0.6);
        assert_eq!(components, cluster_correlated(&series, 0.6));
    }

    #[test]
    fn components_coarsen_average_linkage() {
        // Mixed fixture: components must contain every exact cluster.
        let series: Vec<Vec<f64>> = (0..8)
            .map(|s| {
                (0..36)
                    .map(|t| {
                        ((t * (s % 4 + 1)) % 13) as f64 * 10.0
                            + ((t * 7 + s) % 5) as f64
                            + t as f64 * 1e-3
                    })
                    .collect()
            })
            .collect();
        for phi in [0.4, 0.6, 0.8] {
            let clusters = cluster_correlated(&series, phi);
            let components = correlation_components(&series, phi);
            let comp_of = |leaf: usize| {
                components
                    .iter()
                    .position(|c| c.contains(&leaf))
                    .expect("every leaf in a component")
            };
            for cluster in &clusters {
                let home = comp_of(cluster[0]);
                assert!(
                    cluster.iter().all(|&m| comp_of(m) == home),
                    "cluster {cluster:?} split across components {components:?} at φ={phi}"
                );
            }
        }
    }

    #[test]
    fn dendrogram_has_n_minus_one_steps() {
        let dist = vec![
            0.0, 1.0, 4.0, //
            1.0, 0.0, 5.0, //
            4.0, 5.0, 0.0,
        ];
        let d = average_linkage(&dist, 3);
        assert_eq!(d.steps.len(), 2);
        // First merge is the closest pair (0, 1) at distance 1.
        assert_eq!(d.steps[0].distance, 1.0);
        let firsts = [d.steps[0].left, d.steps[0].right];
        assert!(firsts.contains(&0) && firsts.contains(&1));
        // Second merge at average linkage (4 + 5) / 2.
        assert!((d.steps[1].distance - 4.5).abs() < 1e-12);
    }

    #[test]
    fn cut_respects_threshold() {
        let dist = vec![
            0.0, 0.2, 0.9, //
            0.2, 0.0, 0.8, //
            0.9, 0.8, 0.0,
        ];
        let d = average_linkage(&dist, 3);
        assert_eq!(d.cut(0.4), vec![vec![0, 1], vec![2]]);
        assert_eq!(d.cut(0.05), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(d.cut(1.0), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn empty_and_singleton() {
        let d = average_linkage(&[], 0);
        assert!(d.steps.is_empty());
        assert!(d.cut(1.0).is_empty());
        let d1 = average_linkage(&[0.0], 1);
        assert!(d1.steps.is_empty());
        assert_eq!(d1.cut(0.5), vec![vec![0]]);
    }
}
