//! Best aggregation granularity (Definition 3).
//!
//! Given candidate binnings `G`, the best granularity maximizes
//! `E[cor(x(g), y(g))]` over pairs of non-overlapping calendar windows of
//! the aggregated series. Section 7.1 applies this twice:
//!
//! * **weekly patterns** — windows are whole weeks; every week is compared
//!   with every other week; candidates are 1 minute and the divisor-of-24
//!   hours, with day starts at midnight, 2am and 3am. The paper's winner is
//!   8 hours starting at 2am.
//! * **daily patterns** — windows are days, but only *same weekday* pairs
//!   are compared (Mondays with Mondays, …); candidates range 1–180
//!   minutes. The winner is 3 hours.
//!
//! The functions here are single-`(granularity, offset)` conveniences;
//! evaluating a whole candidate grid should go through [`crate::sweep`],
//! which amortizes the per-series work (prefix-sum pyramid, window
//! extraction, profiles) across all candidates and parallelizes the grid.

use crate::stationarity::StationarityCheck;
use crate::sweep::{daily_cell, weekly_cell};
use wtts_timeseries::{Granularity, TimeSeries};

/// Mean window correlation of one gateway at one candidate binning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GranularityScore {
    /// The aggregation granularity.
    pub granularity: Granularity,
    /// Day-start offset in minutes (0 = midnight, 120 = 2am, …).
    pub offset_minutes: u32,
    /// Mean pairwise window correlation (Definition 3's objective).
    pub mean_correlation: f64,
    /// Number of window pairs behind the mean.
    pub n_pairs: usize,
}

/// Mean pairwise correlation among the weekly windows of `series` at the
/// given binning; `None` when fewer than two weeks carry observations.
///
/// A thin wrapper over one [`crate::sweep::weekly_cell`] — full candidate
/// grids should go through [`crate::sweep::weekly_sweep`], which shares the
/// per-series prefix-sum pyramid across all candidates.
pub fn weekly_window_correlation(
    series: &TimeSeries,
    weeks: u32,
    granularity: Granularity,
    offset_minutes: u32,
) -> Option<GranularityScore> {
    weekly_cell(series, weeks, granularity, offset_minutes, false, None).score
}

/// Mean same-weekday correlation among the daily windows of `series`:
/// Mondays against Mondays, Tuesdays against Tuesdays, and so on.
///
/// `None` when no weekday has two observed instances. For candidate grids,
/// prefer [`crate::sweep::daily_sweep`].
pub fn daily_window_correlation(
    series: &TimeSeries,
    weeks: u32,
    granularity: Granularity,
    offset_minutes: u32,
) -> Option<GranularityScore> {
    daily_cell(series, weeks, granularity, offset_minutes, false, None).score
}

/// Strong stationarity of the weekly windows at a binning (Definition 2
/// applied to week-sized windows).
pub fn weekly_stationarity(
    series: &TimeSeries,
    weeks: u32,
    granularity: Granularity,
    offset_minutes: u32,
) -> Option<StationarityCheck> {
    weekly_cell(series, weeks, granularity, offset_minutes, true, None).stationarity
}

/// Per-weekday strong stationarity of daily windows: entry `d` is the check
/// over all instances of weekday `d` (Monday = 0), `None` where fewer than
/// two instances carry observations.
pub fn daily_stationarity_by_weekday(
    series: &TimeSeries,
    weeks: u32,
    granularity: Granularity,
    offset_minutes: u32,
) -> [Option<StationarityCheck>; 7] {
    daily_cell(series, weeks, granularity, offset_minutes, true, None).stationarity
}

/// Number of strongly stationary weekdays of a gateway at a binning.
pub fn stationary_weekday_count(
    series: &TimeSeries,
    weeks: u32,
    granularity: Granularity,
    offset_minutes: u32,
) -> usize {
    daily_cell(series, weeks, granularity, offset_minutes, true, None).stationary_weekday_count()
}

/// The score with the highest mean correlation (Definition 3's argmax).
pub fn best_score(scores: &[GranularityScore]) -> Option<&GranularityScore> {
    scores
        .iter()
        .filter(|s| s.mean_correlation.is_finite())
        .max_by(|a, b| {
            a.mean_correlation
                .partial_cmp(&b.mean_correlation)
                .expect("finite scores")
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_timeseries::{MINUTES_PER_DAY, MINUTES_PER_WEEK};

    /// Four weeks of per-minute traffic with a strict evening habit plus
    /// per-minute deterministic wiggle.
    fn regular_series(weeks: u32) -> TimeSeries {
        let minutes = (weeks * MINUTES_PER_WEEK) as usize;
        let v: Vec<f64> = (0..minutes)
            .map(|m| {
                let minute_of_day = m % MINUTES_PER_DAY as usize;
                let day = m / MINUTES_PER_DAY as usize;
                let hour = minute_of_day / 60;
                // Evening bursts whose exact minutes drift from day to day:
                // fine binning sees misaligned spikes (low correlation),
                // coarse bins absorb the jitter — the paper's mechanism.
                if (18..23).contains(&hour) && (m + day * 37) % 11 < 3 {
                    5_000.0
                } else {
                    5.0 + ((minute_of_day * 31) % 97) as f64 * 0.05
                }
            })
            .collect();
        TimeSeries::per_minute(v)
    }

    /// A series whose days alternate chaotically.
    fn irregular_series(weeks: u32) -> TimeSeries {
        let minutes = (weeks * MINUTES_PER_WEEK) as usize;
        let v: Vec<f64> = (0..minutes)
            .map(|m| {
                let day = m / MINUTES_PER_DAY as usize;
                let hour = (m % MINUTES_PER_DAY as usize) / 60;
                // The active hour hops pseudo-randomly from day to day.
                let active = (day * 7 + 3) % 24;
                if hour == active {
                    4_000.0 + ((m * 13) % 89) as f64
                } else {
                    ((m * 17) % 23) as f64
                }
            })
            .collect();
        TimeSeries::per_minute(v)
    }

    #[test]
    fn aggregation_raises_weekly_correlation_for_regular_series() {
        let s = regular_series(4);
        let fine = weekly_window_correlation(&s, 4, Granularity::minutes(1), 0).unwrap();
        let coarse = weekly_window_correlation(&s, 4, Granularity::hours(8), 0).unwrap();
        assert!(
            coarse.mean_correlation > fine.mean_correlation,
            "coarse {} must beat fine {}",
            coarse.mean_correlation,
            fine.mean_correlation
        );
        assert!(coarse.mean_correlation > 0.9);
        assert_eq!(fine.n_pairs, 6, "4 weeks -> 6 pairs");
    }

    #[test]
    fn irregular_series_scores_below_regular() {
        let irregular = irregular_series(4);
        let regular = regular_series(4);
        for g in [Granularity::hours(3), Granularity::hours(8)] {
            let irr = weekly_window_correlation(&irregular, 4, g, 0).unwrap();
            let reg = weekly_window_correlation(&regular, 4, g, 0).unwrap();
            assert!(
                irr.mean_correlation < reg.mean_correlation - 0.2,
                "at {g}: irregular {} vs regular {}",
                irr.mean_correlation,
                reg.mean_correlation
            );
            assert!(irr.mean_correlation < 0.75);
        }
    }

    #[test]
    fn daily_correlation_regular_series() {
        let s = regular_series(3);
        let score = daily_window_correlation(&s, 3, Granularity::hours(3), 0).unwrap();
        assert!(score.mean_correlation > 0.9, "{score:?}");
        // 3 instances of each weekday -> 3 pairs x 7 days = 21.
        assert_eq!(score.n_pairs, 21);
    }

    #[test]
    fn weekly_stationarity_verdicts() {
        let regular = regular_series(4);
        let check = weekly_stationarity(&regular, 4, Granularity::hours(8), 0).unwrap();
        assert!(check.is_stationary(), "{check:?}");

        let irregular = irregular_series(4);
        let check = weekly_stationarity(&irregular, 4, Granularity::hours(8), 0).unwrap();
        assert!(!check.is_stationary());
    }

    #[test]
    fn stationary_weekday_count_regular() {
        let s = regular_series(4);
        let n = stationary_weekday_count(&s, 4, Granularity::hours(3), 0);
        assert_eq!(n, 7, "every weekday repeats in the regular series");
        let irr = irregular_series(4);
        let n_irr = stationary_weekday_count(&irr, 4, Granularity::hours(3), 0);
        assert!(
            n_irr <= 2,
            "irregular series has few stationary days: {n_irr}"
        );
    }

    #[test]
    fn offsets_change_the_windows() {
        let s = regular_series(4);
        let midnight = weekly_window_correlation(&s, 4, Granularity::hours(8), 0).unwrap();
        let two_am = weekly_window_correlation(&s, 4, Granularity::hours(8), 120).unwrap();
        // Both are valid scores over the same data; they need not be equal,
        // but both must be high for the regular series.
        assert!(midnight.mean_correlation > 0.8);
        assert!(two_am.mean_correlation > 0.8);
        assert_eq!(two_am.offset_minutes, 120);
    }

    #[test]
    fn too_few_weeks_is_none() {
        let s = regular_series(1);
        assert!(weekly_window_correlation(&s, 1, Granularity::hours(8), 0).is_none());
    }

    #[test]
    fn best_score_picks_argmax() {
        let s = regular_series(4);
        let scores: Vec<GranularityScore> = [1u32, 3, 8]
            .into_iter()
            .map(|h| weekly_window_correlation(&s, 4, Granularity::hours(h), 0).unwrap())
            .collect();
        let best = best_score(&scores).unwrap();
        let max = scores
            .iter()
            .map(|s| s.mean_correlation)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(best.mean_correlation, max);
        assert!(best_score(&[]).is_none());
    }
}
