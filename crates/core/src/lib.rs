//! The analysis framework of *"Characterizing Home Device Usage From
//! Wireless Traffic Time Series"* (EDBT 2016).
//!
//! The paper proposes five definitions that this crate implements directly:
//!
//! 1. [`similarity`] — the **correlation similarity measure** `cor(X, Y)`:
//!    the maximum statistically significant Pearson/Spearman/Kendall
//!    coefficient, `0` when none is significant (Definition 1).
//! 2. [`stationarity`] — **strong stationarity**: pairwise `cor > 0.6` *and*
//!    indistinguishable value distributions (Kolmogorov–Smirnov) across all
//!    non-overlapping windows (Definition 2).
//! 3. [`aggregation`] — the **best aggregation granularity**: the binning
//!    maximizing expected window-to-window correlation (Definition 3).
//! 4. [`dominance`] — **φ-dominant devices**: devices whose traffic tracks
//!    the gateway total with `cor ≥ φ` (Definition 4), plus the Euclidean
//!    and traffic-volume baselines the paper compares against.
//! 5. [`motif`] — **motifs**: sets of calendar windows, within or across
//!    gateways, with individual similarity ≥ φ and group similarity ≥ ¾φ
//!    (Definition 5), including motif merging.
//!
//! Supporting machinery: [`background`] (per-device background-traffic
//! thresholds from boxplot whiskers, Section 6.1), [`clustering`]
//! (hierarchical clustering under the `1 − cor` distance, Figure 3),
//! [`sax`] (a SAX baseline quantifying why symbol-based motif tools fail on
//! Zipfian traffic, Section 2), [`engine`] (the batch
//! pairwise-correlation engine: per-series profiles plus a parallel
//! upper-triangle kernel, bit-identical to per-pair [`similarity`] calls,
//! with a sketch-pruned sparse variant that discards provably
//! below-threshold pairs without exact work),
//! [`sweep`] (the granularity-pyramid sweep engine that evaluates
//! Definition 3's whole candidate grid from exact prefix sums, bit-identical
//! to the per-call path), [`lagsearch`] (the multi-scale lead/lag discovery
//! engine: every gateway pair's cross-correlogram at every candidate scale,
//! folded from cached pyramid levels and pruned by sketch and segmented
//! energy bounds, bit-identical to dense per-cell CCF) and [`obs`]
//! (lock-free pipeline observability:
//! per-stage counters, log-bucketed histograms, span timers and a
//! conservation-checked snapshot, zero-cost when disabled).
//!
//! Beyond the paper's evaluation, the crate also ships the applications its
//! introduction motivates and the future work its conclusion names:
//! [`maintenance`] (per-home firmware-update windows), [`anomaly`]
//! (behavioral contrast for remote troubleshooting), [`profile`] (the
//! all-in-one gateway report), [`streaming`] (online correlation, window
//! accumulation and motif matching for a Storm/Kinesis-style deployment)
//! and [`ingest`] (the sharded fleet ingest pipeline that turns raw
//! cumulative counter reports into sealed windows, motif support counts and
//! dominance rankings, with typed degradation and atomic metrics instead of
//! panics — plus [`ingest::durable`], its write-ahead log / snapshot /
//! deterministic-recovery layer for surviving process crashes with
//! bit-identical results).

pub mod aggregation;
pub mod anomaly;
pub mod background;
pub mod clustering;
pub mod dominance;
pub mod engine;
pub mod ingest;
pub mod lagsearch;
pub mod maintenance;
pub mod motif;
pub mod obs;
pub mod profile;
pub mod sax;
pub mod similarity;
pub mod stationarity;
pub mod streaming;
pub mod sweep;

pub use aggregation::{
    best_score, daily_window_correlation, weekly_window_correlation, GranularityScore,
};
pub use anomaly::{AnomalyConfig, AnomalyDetector, Verdict};
pub use background::{estimate_tau, remove_background, BackgroundProfile, TauGroup, TAU_CAP};
pub use clustering::{cluster_correlated, correlation_components, Dendrogram};
pub use dominance::{
    dominant_devices, euclidean_ranking, rank_dominants, ranking_agreement, volume_ranking,
    DominantDevice, DOMINANCE_PHI,
};
pub use engine::{
    cor_matrix, cor_matrix_observed, cor_matrix_pruned, cor_matrix_pruned_observed, cor_profiled,
    correlation_similarity_profiled, profile_series, profile_series_observed, sketch_series,
    sketch_series_observed, CondensedMatrix, CorMatrixConfig, PruneConfig, PruneStats,
    SparseCorMatrix,
};
pub use ingest::durable::{
    segment_files, snapshot_coverage, wal_disk_usage, Durability, DurableConfig, DurableError,
    DurablePipeline, DurableRun, FaultKind, FaultSpec, FaultyFs, IoPolicy, KillMode, KillPoint,
    LockError, StdFs, WalFs, LOCK_FILE,
};
pub use ingest::{
    DropReason, GatewaySummary, IngestConfig, IngestMetrics, IngestOutcome, IngestPipeline,
    IngestReport, IngestSummary, MetricsSnapshot, ShardCounts, ShardSnapshot,
};
pub use lagsearch::{
    lag_search, LagCell, LagPruneStats, LagSearchConfig, LagSearchResult, LeadLag, PairScaleCcf,
};
pub use maintenance::{MaintenanceWindow, WeeklyProfile};
pub use motif::{
    discover_motifs, discover_motifs_indexed, discover_motifs_observed, discover_motifs_pruned,
    Motif, MotifConfig, MotifIndex, WindowRef, F32_REVERIFY_BAND,
};
pub use obs::{
    HistogramSnapshot, LogHistogram, ObsSnapshot, PipelineObs, Stage, StageSnapshot,
    NEAR_THRESHOLD_BAND,
};
pub use profile::GatewayProfile;
pub use similarity::{cor, cor_at_least, cor_distance, correlation_similarity, CorSimilarity};
pub use stationarity::{
    strong_stationarity, strong_stationarity_observed, StationarityCheck, STATIONARITY_COR,
};
pub use streaming::{
    best_match, CompletedWindow, LateSample, MatchOutcome, MotifMatcher, MotifTemplate,
    OnlinePearson, WindowAccumulator,
};
pub use sweep::{
    daily_cell, daily_sweep, weekly_cell, weekly_sweep, DailyCell, DailySweep, SweepConfig,
    WeeklyCell, WeeklySweep,
};
