//! The Definition-3 granularity sweep engine.
//!
//! Section 7.1 scores every candidate `(granularity, offset)` binning of
//! every gateway by mean pairwise calendar-window correlation, and the
//! experiments repeat that grid per figure. Evaluated naively the sweep
//! re-reads all `O(series_len)` samples per candidate, re-extracts the same
//! calendar windows, and re-sorts every window inside each KS test. This
//! module is the fast path:
//!
//! * each series is turned into a [`GranularityPyramid`] once (integer
//!   prefix sums; see `wtts_timeseries::pyramid` for the exactness
//!   argument), so a candidate re-binning is O(bins), with shared-divisor
//!   candidates folding from a coarse [`PyramidLevel`]; non-integer series
//!   fall back to direct [`aggregate`] summation — same bits either way;
//! * calendar windows are materialized into one flat buffer per cell and
//!   scored from borrowed `chunks_exact` slices — no per-window clones;
//! * each window is profiled ([`CorProfile`]) once, and one **fused** pair
//!   loop feeds both the Definition-3 correlation total and the
//!   Definition-2 stationarity verdict, with KS tests running over the
//!   profiles' cached sort order ([`ks_two_sample_sorted`]) instead of
//!   re-sorting per pair; the per-pair coefficients and the KS sup-scan
//!   bottom out in the stats crate's kernel layer (`wtts_stats::kernels`),
//!   bit-identical to the loops they replaced;
//! * the `series × candidate` grid fans out over `thread::scope`
//!   work-stealing workers (the [`crate::engine::cor_matrix`] pattern), one
//!   [`CorScratch`] per worker; results are deterministic in the thread
//!   count because every cell is computed independently and written to its
//!   own slot.
//!
//! Everything stays **bit-identical** to the legacy per-call path
//! (`aggregate` → `weekly_windows`/`daily_windows` → per-pair
//! [`cor_profiled`] / [`strong_stationarity`]): the pyramid reproduces
//! `aggregate` exactly, window extraction replicates `TimeSeries::slice`,
//! the fused loop visits pairs in the same order with the same accumulation,
//! and the presorted KS consumes the same stably-sorted sequences the
//! unsorted entry point builds internally. The differential tests below
//! check all of this against an inline reimplementation of the old path.
//!
//! Observability: pass `Some(&PipelineObs)` to record `pyramid_build`,
//! `rebin` and `window_score` stage spans plus the
//! `rebins_pyramid`/`rebins_direct`/`level_folds` path counters; with `None`
//! no atomic is touched and results are unchanged.
//!
//! [`strong_stationarity`]: crate::stationarity::strong_stationarity

use crate::aggregation::GranularityScore;
use crate::engine::cor_profiled;
use crate::obs::{sim_millis, PipelineObs};
use crate::stationarity::{StationarityCheck, STATIONARITY_COR};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use wtts_stats::{ks_two_sample_sorted, CorProfile, CorScratch, ALPHA};
use wtts_timeseries::{
    aggregate, Granularity, GranularityPyramid, PyramidLevel, TimeSeries, MINUTES_PER_DAY,
    MINUTES_PER_WEEK,
};

/// Configuration for [`weekly_sweep`] / [`daily_sweep`].
#[derive(Debug, Clone, Default)]
pub struct SweepConfig {
    /// Worker threads; `None` uses the machine's available parallelism.
    pub threads: Option<usize>,
}

impl SweepConfig {
    fn resolved_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
            .max(1)
    }
}

/// One series' sweep state: the original series plus, when the values are
/// exactly representable, its prefix-sum pyramid and the coarse levels
/// planned for the candidate grid. Shared with the multi-scale lag search
/// ([`crate::lagsearch`]), which re-bins the same way before folding lags.
pub(crate) struct SweepSource<'a> {
    series: &'a TimeSeries,
    pyramid: Option<GranularityPyramid>,
    levels: Vec<PyramidLevel>,
}

impl<'a> SweepSource<'a> {
    /// Builds the pyramid (and its planned levels) for a sweep over
    /// `candidates`; falls back to pyramid-less direct summation when the
    /// series is not integer-exact.
    pub(crate) fn build(
        series: &'a TimeSeries,
        candidates: &[(Granularity, u32)],
        obs: Option<&PipelineObs>,
    ) -> SweepSource<'a> {
        let _span = obs.map(|o| o.pyramid_build.enter());
        let pyramid = GranularityPyramid::try_new(series);
        let levels = match &pyramid {
            Some(p) => plan_levels(candidates, series.step_minutes())
                .into_iter()
                .map(|(offset, base)| p.level(Granularity::minutes(base), offset))
                .collect(),
            None => Vec::new(),
        };
        SweepSource {
            series,
            pyramid,
            levels,
        }
    }

    /// A source that always uses direct summation — for one-shot cells where
    /// a pyramid has nothing to amortize over.
    fn direct(series: &'a TimeSeries) -> SweepSource<'a> {
        SweepSource {
            series,
            pyramid: None,
            levels: Vec::new(),
        }
    }

    /// Re-bins the series at one candidate, via the cheapest exact path:
    /// a matching coarse level, the pyramid base, or direct [`aggregate`].
    pub(crate) fn rebin(
        &self,
        g: Granularity,
        offset_minutes: u32,
        obs: Option<&PipelineObs>,
    ) -> TimeSeries {
        let _span = obs.map(|o| o.rebin.enter());
        match &self.pyramid {
            Some(p) => {
                if let Some(o) = obs {
                    o.rebins_pyramid.incr();
                }
                let level = self.levels.iter().find(|l| {
                    l.offset_minutes() == offset_minutes
                        && g.as_minutes().is_multiple_of(l.base_minutes())
                });
                match level {
                    Some(l) => {
                        if let Some(o) = obs {
                            o.level_folds.incr();
                        }
                        l.rebin(g)
                    }
                    None => p.rebin(g, offset_minutes),
                }
            }
            None => {
                if let Some(o) = obs {
                    o.rebins_direct.incr();
                }
                aggregate(self.series, g, offset_minutes)
            }
        }
    }
}

/// Greatest common divisor.
fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Plans the pyramid levels worth building for a candidate grid: per
/// offset, the gcd of the coarser-than-step candidate granularities —
/// provided at least two candidates share that offset and the gcd is itself
/// coarser than the step (otherwise a level would just mirror the base).
/// Returns `(offset, base_minutes)` pairs.
fn plan_levels(candidates: &[(Granularity, u32)], step: u32) -> Vec<(u32, u32)> {
    let mut offsets: Vec<u32> = candidates.iter().map(|&(_, o)| o).collect();
    offsets.sort_unstable();
    offsets.dedup();
    let mut out = Vec::new();
    for offset in offsets {
        let gs: Vec<u32> = candidates
            .iter()
            .filter(|&&(g, o)| o == offset && g.as_minutes() > step)
            .map(|&(g, _)| g.as_minutes())
            .collect();
        if gs.len() < 2 {
            continue;
        }
        let base = gs.iter().copied().fold(0, gcd);
        if base > step {
            out.push((offset, base));
        }
    }
    out
}

/// Appends the samples of the calendar window `[from, from + len*step)` of
/// `agg` to `out`, replicating `TimeSeries::slice` exactly: positions before
/// the series start or past its end come back as missing.
fn fill_window(agg: &TimeSeries, from: u32, len: usize, out: &mut Vec<f64>) {
    let step = agg.step_minutes();
    let s0 = agg.start().0;
    let vals = agg.values();
    for i in 0..len {
        let t = from + i as u32 * step;
        out.push(if t < s0 {
            f64::NAN
        } else {
            vals.get(((t - s0) / step) as usize)
                .copied()
                .unwrap_or(f64::NAN)
        });
    }
}

/// Scores one window group: profiles every observed window once, then runs
/// the fused pair loop — each pair's correlation feeds the Definition-3
/// accumulator (`total`/`pairs`, threaded through so multi-group callers
/// keep the legacy term-by-term accumulation order) and, when
/// `want_stationarity` holds, the Definition-2 verdict with KS tests over
/// presorted values. Returns the stationarity check (`None` when fewer than
/// two windows carry observations, or when not requested).
fn score_group(
    windows: &[&[f64]],
    scratch: &mut CorScratch,
    want_stationarity: bool,
    obs: Option<&PipelineObs>,
    total: &mut f64,
    pairs: &mut usize,
) -> Option<StationarityCheck> {
    let observed: Vec<&&[f64]> = windows
        .iter()
        .filter(|w| w.iter().any(|v| v.is_finite()))
        .collect();
    let n = observed.len();
    if n < 2 {
        return None;
    }
    let profiles: Vec<CorProfile> = observed
        .iter()
        .map(|w| {
            let _p = obs.map(|o| o.profile_build.enter());
            CorProfile::new(w)
        })
        .collect();
    if !want_stationarity {
        for i in 0..n {
            for j in (i + 1)..n {
                *total += cor_profiled(&profiles[i], &profiles[j], scratch);
                *pairs += 1;
            }
        }
        return None;
    }
    // The KS test sorts each sample; the profiles already hold the stable
    // sort permutation, so each window is sorted once here instead of once
    // per pair inside `ks_two_sample`.
    let sorted: Vec<Vec<f64>> = profiles.iter().map(|p| p.sorted_values()).collect();
    let mut min_cor = f64::INFINITY;
    let mut correlations_pass = true;
    let mut ks_rejected = false;
    for i in 0..n {
        for j in (i + 1)..n {
            let c = cor_profiled(&profiles[i], &profiles[j], scratch);
            *total += c;
            *pairs += 1;
            min_cor = min_cor.min(c);
            if c <= STATIONARITY_COR {
                correlations_pass = false;
            }
            if let Some(o) = obs {
                o.stationarity_sim_millis.record(sim_millis(c));
            }
            if let Some(ks) = ks_two_sample_sorted(&sorted[i], &sorted[j]) {
                if let Some(o) = obs {
                    o.ks_tests.incr();
                }
                if ks.rejected(ALPHA) {
                    ks_rejected = true;
                }
            }
        }
    }
    Some(StationarityCheck {
        min_cor,
        correlations_pass,
        ks_rejected,
        n_windows: n,
    })
}

/// One `(series, candidate)` cell of a weekly sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WeeklyCell {
    /// Definition-3 score over all week pairs; `None` when fewer than two
    /// weeks carry observations.
    pub score: Option<GranularityScore>,
    /// Definition-2 verdict over the weekly windows (when requested).
    pub stationarity: Option<StationarityCheck>,
}

/// One `(series, candidate)` cell of a daily sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DailyCell {
    /// Definition-3 score over all same-weekday pairs; `None` when no
    /// weekday has two observed instances.
    pub score: Option<GranularityScore>,
    /// Per-weekday Definition-2 verdicts (Monday = 0; when requested).
    pub stationarity: [Option<StationarityCheck>; 7],
}

impl DailyCell {
    /// Number of strongly stationary weekdays.
    pub fn stationary_weekday_count(&self) -> usize {
        self.stationarity
            .iter()
            .filter(|c| c.is_some_and(|c| c.is_stationary()))
            .count()
    }
}

/// Computes one weekly cell from a prepared source.
fn weekly_cell_from(
    source: &SweepSource<'_>,
    weeks: u32,
    granularity: Granularity,
    offset_minutes: u32,
    want_stationarity: bool,
    scratch: &mut CorScratch,
    obs: Option<&PipelineObs>,
) -> WeeklyCell {
    let agg = source.rebin(granularity, offset_minutes, obs);
    let len = (MINUTES_PER_WEEK / agg.step_minutes()) as usize;
    if len == 0 {
        return WeeklyCell {
            score: None,
            stationarity: None,
        };
    }
    let _span = obs.map(|o| o.window_score.enter());
    let mut buf = Vec::with_capacity(len * weeks as usize);
    for w in 0..weeks {
        fill_window(&agg, w * MINUTES_PER_WEEK + offset_minutes, len, &mut buf);
    }
    let windows: Vec<&[f64]> = buf.chunks_exact(len).collect();
    let mut total = 0.0;
    let mut pairs = 0usize;
    let stationarity = score_group(
        &windows,
        scratch,
        want_stationarity,
        obs,
        &mut total,
        &mut pairs,
    );
    WeeklyCell {
        score: (pairs > 0).then(|| GranularityScore {
            granularity,
            offset_minutes,
            mean_correlation: total / pairs as f64,
            n_pairs: pairs,
        }),
        stationarity,
    }
}

/// Computes one daily cell from a prepared source: same-weekday groups,
/// scored weekday-major exactly like the legacy loop.
fn daily_cell_from(
    source: &SweepSource<'_>,
    weeks: u32,
    granularity: Granularity,
    offset_minutes: u32,
    want_stationarity: bool,
    scratch: &mut CorScratch,
    obs: Option<&PipelineObs>,
) -> DailyCell {
    let agg = source.rebin(granularity, offset_minutes, obs);
    let len = (MINUTES_PER_DAY / agg.step_minutes()) as usize;
    let mut stationarity: [Option<StationarityCheck>; 7] = Default::default();
    if len == 0 {
        return DailyCell {
            score: None,
            stationarity,
        };
    }
    let _span = obs.map(|o| o.window_score.enter());
    let mut buf = Vec::with_capacity(len * weeks as usize);
    let mut total = 0.0;
    let mut pairs = 0usize;
    for (d, slot) in stationarity.iter_mut().enumerate() {
        buf.clear();
        for w in 0..weeks {
            let from = w * MINUTES_PER_WEEK + d as u32 * MINUTES_PER_DAY + offset_minutes;
            fill_window(&agg, from, len, &mut buf);
        }
        let windows: Vec<&[f64]> = buf.chunks_exact(len).collect();
        *slot = score_group(
            &windows,
            scratch,
            want_stationarity,
            obs,
            &mut total,
            &mut pairs,
        );
    }
    DailyCell {
        score: (pairs > 0).then(|| GranularityScore {
            granularity,
            offset_minutes,
            mean_correlation: total / pairs as f64,
            n_pairs: pairs,
        }),
        stationarity,
    }
}

/// One weekly cell for a single series and candidate. One-shot calls have
/// nothing for a pyramid to amortize over, so this path sums directly —
/// the result is bit-identical either way.
pub fn weekly_cell(
    series: &TimeSeries,
    weeks: u32,
    granularity: Granularity,
    offset_minutes: u32,
    want_stationarity: bool,
    obs: Option<&PipelineObs>,
) -> WeeklyCell {
    let source = SweepSource::direct(series);
    let mut scratch = CorScratch::new();
    weekly_cell_from(
        &source,
        weeks,
        granularity,
        offset_minutes,
        want_stationarity,
        &mut scratch,
        obs,
    )
}

/// One daily cell for a single series and candidate (see [`weekly_cell`]).
pub fn daily_cell(
    series: &TimeSeries,
    weeks: u32,
    granularity: Granularity,
    offset_minutes: u32,
    want_stationarity: bool,
    obs: Option<&PipelineObs>,
) -> DailyCell {
    let source = SweepSource::direct(series);
    let mut scratch = CorScratch::new();
    daily_cell_from(
        &source,
        weeks,
        granularity,
        offset_minutes,
        want_stationarity,
        &mut scratch,
        obs,
    )
}

/// Runs `compute` over every `(row, col)` cell of a grid, fanning the flat
/// task list across work-stealing workers. Each worker owns one
/// [`CorScratch`]; each cell writes its own slot, so results are
/// deterministic in the thread count. Also drives the lag-search grids
/// ([`crate::lagsearch`]).
pub(crate) fn run_grid<C, F>(
    n_rows: usize,
    n_cols: usize,
    threads: usize,
    compute: F,
) -> Vec<Vec<C>>
where
    C: Send,
    F: Fn(usize, usize, &mut CorScratch) -> C + Sync,
{
    let total = n_rows * n_cols;
    if threads <= 1 || total <= 1 {
        let mut scratch = CorScratch::new();
        return (0..n_rows)
            .map(|r| (0..n_cols).map(|c| compute(r, c, &mut scratch)).collect())
            .collect();
    }
    let slots: Vec<Mutex<Option<C>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(total) {
            scope.spawn(|| {
                let mut scratch = CorScratch::new();
                loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= total {
                        break;
                    }
                    let cell = compute(t / n_cols, t % n_cols, &mut scratch);
                    *slots[t].lock().expect("no poisoned slot") = Some(cell);
                }
            });
        }
    });
    let mut slots = slots.into_iter();
    (0..n_rows)
        .map(|_| {
            (0..n_cols)
                .map(|_| {
                    slots
                        .next()
                        .expect("one slot per cell")
                        .into_inner()
                        .expect("no poisoned slot")
                        .expect("every task index was claimed")
                })
                .collect()
        })
        .collect()
}

/// A weekly sweep result: `cells[series][candidate]`.
#[derive(Debug, Clone, PartialEq)]
pub struct WeeklySweep {
    /// The `(granularity, offset)` grid, in input order.
    pub candidates: Vec<(Granularity, u32)>,
    /// One row per input series, one cell per candidate.
    pub cells: Vec<Vec<WeeklyCell>>,
}

/// A daily sweep result: `cells[series][candidate]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DailySweep {
    /// The day-start offset shared by all candidates.
    pub offset_minutes: u32,
    /// The candidate granularities, in input order.
    pub candidates: Vec<Granularity>,
    /// One row per input series, one cell per candidate.
    pub cells: Vec<Vec<DailyCell>>,
}

/// Sweeps every series over every weekly `(granularity, offset)` candidate:
/// one pyramid per series, one re-binning and one fused scoring pass per
/// cell, cells fanned across worker threads. Each cell carries both the
/// Definition-3 score and the Definition-2 weekly stationarity verdict.
pub fn weekly_sweep(
    series: &[TimeSeries],
    weeks: u32,
    candidates: &[(Granularity, u32)],
    config: &SweepConfig,
    obs: Option<&PipelineObs>,
) -> WeeklySweep {
    let sources: Vec<SweepSource<'_>> = series
        .iter()
        .map(|s| SweepSource::build(s, candidates, obs))
        .collect();
    let cells = run_grid(
        series.len(),
        candidates.len(),
        config.resolved_threads(),
        |r, c, scratch| {
            let (g, offset) = candidates[c];
            weekly_cell_from(&sources[r], weeks, g, offset, true, scratch, obs)
        },
    );
    WeeklySweep {
        candidates: candidates.to_vec(),
        cells,
    }
}

/// Sweeps every series over every daily candidate granularity at one
/// day-start offset (see [`weekly_sweep`]). Each cell carries the
/// Definition-3 same-weekday score and the per-weekday Definition-2
/// verdicts.
pub fn daily_sweep(
    series: &[TimeSeries],
    weeks: u32,
    candidates: &[Granularity],
    offset_minutes: u32,
    config: &SweepConfig,
    obs: Option<&PipelineObs>,
) -> DailySweep {
    let pairs: Vec<(Granularity, u32)> = candidates.iter().map(|&g| (g, offset_minutes)).collect();
    let sources: Vec<SweepSource<'_>> = series
        .iter()
        .map(|s| SweepSource::build(s, &pairs, obs))
        .collect();
    let cells = run_grid(
        series.len(),
        candidates.len(),
        config.resolved_threads(),
        |r, c, scratch| {
            daily_cell_from(
                &sources[r],
                weeks,
                candidates[c],
                offset_minutes,
                true,
                scratch,
                obs,
            )
        },
    );
    DailySweep {
        offset_minutes,
        candidates: candidates.to_vec(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationarity::strong_stationarity;
    use wtts_timeseries::{daily_windows, weekly_windows};

    /// Integer-valued per-minute series with NaN gaps (pyramid-eligible).
    fn integer_series(weeks: u32) -> TimeSeries {
        let minutes = (weeks * MINUTES_PER_WEEK) as usize;
        let v: Vec<f64> = (0..minutes)
            .map(|m| {
                if m % 97 == 13 {
                    f64::NAN
                } else {
                    let hour = (m % MINUTES_PER_DAY as usize) / 60;
                    let burst = if (18..23).contains(&hour) && m % 11 < 3 {
                        5_000
                    } else {
                        0
                    };
                    (burst + (m * 31 + 5) % 89) as f64
                }
            })
            .collect();
        TimeSeries::per_minute(v)
    }

    /// Fractional series (forces the direct-summation fallback).
    fn fractional_series(weeks: u32) -> TimeSeries {
        let base = integer_series(weeks);
        let v: Vec<f64> = base.values().iter().map(|&x| x * 0.25).collect();
        TimeSeries::per_minute(v)
    }

    /// The pre-sweep weekly path, reimplemented inline as the reference:
    /// direct aggregation, `weekly_windows`, per-pair profiles, and
    /// `strong_stationarity` from `stationarity.rs` (which this PR did not
    /// touch).
    fn legacy_weekly(
        series: &TimeSeries,
        weeks: u32,
        g: Granularity,
        offset: u32,
    ) -> (Option<(f64, usize)>, Option<StationarityCheck>) {
        let agg = aggregate(series, g, offset);
        let windows: Vec<Vec<f64>> = weekly_windows(&agg, weeks, offset)
            .into_iter()
            .map(|w| w.series.into_values())
            .collect();
        let observed: Vec<&Vec<f64>> = windows
            .iter()
            .filter(|w| w.iter().any(|v| v.is_finite()))
            .collect();
        let score = if observed.len() < 2 {
            None
        } else {
            let profiles: Vec<CorProfile> = observed.iter().map(|w| CorProfile::new(w)).collect();
            let mut scratch = CorScratch::new();
            let mut total = 0.0;
            let mut pairs = 0;
            for i in 0..observed.len() {
                for j in (i + 1)..observed.len() {
                    total += cor_profiled(&profiles[i], &profiles[j], &mut scratch);
                    pairs += 1;
                }
            }
            Some((total / pairs as f64, pairs))
        };
        let refs: Vec<&[f64]> = windows.iter().map(|w| w.as_slice()).collect();
        (score, strong_stationarity(&refs))
    }

    /// The pre-sweep daily path, reimplemented inline as the reference.
    fn legacy_daily(
        series: &TimeSeries,
        weeks: u32,
        g: Granularity,
        offset: u32,
    ) -> (Option<(f64, usize)>, [Option<StationarityCheck>; 7]) {
        let agg = aggregate(series, g, offset);
        let windows = daily_windows(&agg, weeks, offset);
        let mut scratch = CorScratch::new();
        let mut total = 0.0;
        let mut pairs = 0;
        let mut checks: [Option<StationarityCheck>; 7] = Default::default();
        for weekday in 0..7u8 {
            let group: Vec<&[f64]> = windows
                .iter()
                .filter(|w| w.weekday.map(|d| d.index()) == Some(weekday))
                .map(|w| w.series.values())
                .filter(|v| v.iter().any(|x| x.is_finite()))
                .collect();
            let profiles: Vec<CorProfile> = group.iter().map(|w| CorProfile::new(w)).collect();
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    total += cor_profiled(&profiles[i], &profiles[j], &mut scratch);
                    pairs += 1;
                }
            }
            let all: Vec<&[f64]> = windows
                .iter()
                .filter(|w| w.weekday.map(|d| d.index()) == Some(weekday))
                .map(|w| w.series.values())
                .collect();
            checks[weekday as usize] = strong_stationarity(&all);
        }
        let score = (pairs > 0).then(|| (total / pairs as f64, pairs));
        (score, checks)
    }

    fn assert_weekly_matches(series: &TimeSeries, weeks: u32, candidates: &[(Granularity, u32)]) {
        let sweep = weekly_sweep(
            std::slice::from_ref(series),
            weeks,
            candidates,
            &SweepConfig { threads: Some(1) },
            None,
        );
        for (k, &(g, offset)) in candidates.iter().enumerate() {
            let cell = &sweep.cells[0][k];
            let (score, stationarity) = legacy_weekly(series, weeks, g, offset);
            match (score, &cell.score) {
                (None, None) => {}
                (Some((mean, pairs)), Some(s)) => {
                    assert_eq!(
                        mean.to_bits(),
                        s.mean_correlation.to_bits(),
                        "weekly mean at {g}+{offset}"
                    );
                    assert_eq!(pairs, s.n_pairs);
                    assert_eq!(s.granularity, g);
                    assert_eq!(s.offset_minutes, offset);
                }
                other => panic!("score presence mismatch at {g}+{offset}: {other:?}"),
            }
            assert_stationarity_eq(&stationarity, &cell.stationarity, g, offset);
        }
    }

    fn assert_stationarity_eq(
        reference: &Option<StationarityCheck>,
        got: &Option<StationarityCheck>,
        g: Granularity,
        offset: u32,
    ) {
        match (reference, got) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(
                    a.min_cor.to_bits(),
                    b.min_cor.to_bits(),
                    "min_cor at {g}+{offset}"
                );
                assert_eq!(a.correlations_pass, b.correlations_pass);
                assert_eq!(a.ks_rejected, b.ks_rejected, "ks at {g}+{offset}");
                assert_eq!(a.n_windows, b.n_windows);
            }
            other => panic!("stationarity presence mismatch at {g}+{offset}: {other:?}"),
        }
    }

    #[test]
    fn weekly_cells_bit_identical_to_legacy_path_integer() {
        let s = integer_series(3);
        let candidates = [
            (Granularity::minutes(1), 0),
            (Granularity::hours(2), 0),
            (Granularity::hours(8), 0),
            (Granularity::hours(8), 120),
            (Granularity::hours(12), 120),
        ];
        assert_weekly_matches(&s, 3, &candidates);
    }

    #[test]
    fn weekly_cells_bit_identical_to_legacy_path_fractional() {
        let s = fractional_series(2);
        assert!(
            GranularityPyramid::try_new(&s).is_none(),
            "fixture must exercise the fallback"
        );
        let candidates = [(Granularity::hours(4), 0), (Granularity::hours(8), 120)];
        assert_weekly_matches(&s, 2, &candidates);
    }

    #[test]
    fn daily_cells_bit_identical_to_legacy_path() {
        for series in [integer_series(3), fractional_series(3)] {
            let candidates = [
                Granularity::minutes(10),
                Granularity::minutes(90),
                Granularity::minutes(180),
            ];
            let sweep = daily_sweep(
                std::slice::from_ref(&series),
                3,
                &candidates,
                0,
                &SweepConfig { threads: Some(1) },
                None,
            );
            for (k, &g) in candidates.iter().enumerate() {
                let cell = &sweep.cells[0][k];
                let (score, checks) = legacy_daily(&series, 3, g, 0);
                match (score, &cell.score) {
                    (None, None) => {}
                    (Some((mean, pairs)), Some(s)) => {
                        assert_eq!(
                            mean.to_bits(),
                            s.mean_correlation.to_bits(),
                            "daily mean at {g}"
                        );
                        assert_eq!(pairs, s.n_pairs);
                    }
                    other => panic!("score presence mismatch at {g}: {other:?}"),
                }
                for (d, check) in checks.iter().enumerate() {
                    assert_stationarity_eq(check, &cell.stationarity[d], g, d as u32);
                }
            }
        }
    }

    #[test]
    fn single_cell_wrappers_match_grid_cells() {
        let s = integer_series(2);
        let g = Granularity::hours(3);
        let grid = weekly_sweep(
            std::slice::from_ref(&s),
            2,
            &[(g, 120)],
            &SweepConfig { threads: Some(1) },
            None,
        );
        assert_eq!(weekly_cell(&s, 2, g, 120, true, None), grid.cells[0][0]);
        let dgrid = daily_sweep(
            std::slice::from_ref(&s),
            2,
            &[g],
            0,
            &SweepConfig { threads: Some(1) },
            None,
        );
        assert_eq!(daily_cell(&s, 2, g, 0, true, None), dgrid.cells[0][0]);
    }

    #[test]
    fn sweep_is_deterministic_in_thread_count() {
        let series: Vec<TimeSeries> = vec![
            integer_series(2),
            fractional_series(2),
            integer_series(2).slice(wtts_timeseries::Minute(0), MINUTES_PER_WEEK as usize * 2),
        ];
        let candidates = [
            (Granularity::hours(1), 0),
            (Granularity::hours(4), 0),
            (Granularity::hours(8), 120),
            (Granularity::hours(12), 180),
        ];
        let reference = weekly_sweep(
            &series,
            2,
            &candidates,
            &SweepConfig { threads: Some(1) },
            None,
        );
        for threads in [2usize, 4, 7] {
            let parallel = weekly_sweep(
                &series,
                2,
                &candidates,
                &SweepConfig {
                    threads: Some(threads),
                },
                None,
            );
            assert_eq!(reference, parallel, "threads = {threads}");
        }
        let daily_ref = daily_sweep(
            &series,
            2,
            Granularity::daily_candidates(),
            0,
            &SweepConfig { threads: Some(1) },
            None,
        );
        let daily_par = daily_sweep(
            &series,
            2,
            Granularity::daily_candidates(),
            0,
            &SweepConfig { threads: Some(3) },
            None,
        );
        assert_eq!(daily_ref, daily_par);
    }

    #[test]
    fn observability_counters_balance() {
        let obs = PipelineObs::new();
        let series = vec![integer_series(2), fractional_series(2)];
        let candidates = [
            (Granularity::hours(2), 0),
            (Granularity::hours(4), 0),
            (Granularity::hours(8), 120),
            (Granularity::hours(12), 120),
        ];
        let with_obs = weekly_sweep(
            &series,
            2,
            &candidates,
            &SweepConfig { threads: Some(2) },
            Some(&obs),
        );
        let without = weekly_sweep(
            &series,
            2,
            &candidates,
            &SweepConfig { threads: Some(2) },
            None,
        );
        assert_eq!(with_obs, without, "observability must not change results");

        let snap = obs.snapshot();
        assert!(snap.conserved());
        assert!(snap.quiescent());
        let rebins = snap
            .stages
            .iter()
            .find(|(n, _)| *n == "rebin")
            .map(|(_, s)| s.entered)
            .unwrap();
        assert_eq!(rebins, (series.len() * candidates.len()) as u64);
        assert_eq!(
            snap.counter("rebins_pyramid") + snap.counter("rebins_direct"),
            rebins,
            "every rebin takes exactly one path"
        );
        // One integer series: its 8 cells ride the pyramid; the fractional
        // series' 8 cells fall back.
        assert_eq!(snap.counter("rebins_direct"), candidates.len() as u64);
        assert!(snap.counter("level_folds") <= snap.counter("rebins_pyramid"));
        // The offset-0 candidates (2h, 4h) share gcd 2h > 1m, and the
        // offset-120 candidates (8h, 12h) share gcd 4h: both levels fold.
        assert_eq!(snap.counter("level_folds"), candidates.len() as u64);
        let pyr = snap
            .stages
            .iter()
            .find(|(n, _)| *n == "pyramid_build")
            .map(|(_, s)| s.entered)
            .unwrap();
        assert_eq!(pyr, series.len() as u64, "one pyramid build per series");
    }

    #[test]
    fn level_planning_follows_divisors() {
        // Offset 0: 60 and 90 share gcd 30 > 1; offset 120 has one coarse
        // candidate (no level); the 1-minute candidate never joins a gcd.
        let candidates = [
            (Granularity::minutes(1), 0),
            (Granularity::minutes(60), 0),
            (Granularity::minutes(90), 0),
            (Granularity::minutes(60), 120),
        ];
        assert_eq!(plan_levels(&candidates, 1), vec![(0, 30)]);
        // Coprime candidates collapse to base 1 = step: no level.
        let coprime = [(Granularity::minutes(7), 0), (Granularity::minutes(11), 0)];
        assert!(plan_levels(&coprime, 1).is_empty());
    }
}
