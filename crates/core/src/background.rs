//! Background-traffic characterization and removal (Section 6.1).
//!
//! Most of a device's reported minutes carry only control chatter and idle
//! app traffic. The paper estimates a per-device, per-direction threshold τ
//! as the **upper whisker** of the traffic boxplot (background values are
//! the frequent mass; active traffic is sparse and lands above the whisker),
//! then caps it at 5000 bytes/minute — consistent with the ~1 kbps
//! background bound of earlier studies — and zeroes everything below when
//! mining active-usage patterns.

use wtts_stats::BoxplotStats;
use wtts_timeseries::TimeSeries;

/// The paper's cap on the background threshold: 5000 bytes per minute.
pub const TAU_CAP: f64 = 5_000.0;

/// The boundary above which a device's τ counts as "large" (Section 6.1's
/// grouping; 40 000 B/min ≈ 5.3 kbps).
pub const TAU_LARGE: f64 = 40_000.0;

/// Size class of a device's background threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TauGroup {
    /// τ ≤ 5000 B/min — typical portables.
    Small,
    /// 5000 < τ ≤ 40000.
    Medium,
    /// τ > 40000 — heavyweight fixed machines.
    Large,
}

impl TauGroup {
    /// Classifies a τ value.
    pub fn of(tau: f64) -> TauGroup {
        if tau <= TAU_CAP {
            TauGroup::Small
        } else if tau <= TAU_LARGE {
            TauGroup::Medium
        } else {
            TauGroup::Large
        }
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            TauGroup::Small => "small",
            TauGroup::Medium => "medium",
            TauGroup::Large => "large",
        }
    }
}

/// Per-direction background thresholds of one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackgroundProfile {
    /// Upper-whisker threshold of the incoming traffic.
    pub tau_in: f64,
    /// Upper-whisker threshold of the outgoing traffic.
    pub tau_out: f64,
}

impl BackgroundProfile {
    /// Estimates both thresholds from a device's traffic.
    ///
    /// Returns `None` when either direction has no observations.
    pub fn estimate(incoming: &TimeSeries, outgoing: &TimeSeries) -> Option<BackgroundProfile> {
        Some(BackgroundProfile {
            tau_in: estimate_tau(incoming)?,
            tau_out: estimate_tau(outgoing)?,
        })
    }

    /// The effective removal threshold for the summed (in + out) series:
    /// `min(τ_in + τ_out, 2·cap)` capped per direction first, matching how
    /// the per-direction rule composes.
    pub fn total_threshold(&self) -> f64 {
        self.tau_in.min(TAU_CAP) + self.tau_out.min(TAU_CAP)
    }

    /// Size class of the larger of the two thresholds.
    pub fn group(&self) -> TauGroup {
        TauGroup::of(self.tau_in.max(self.tau_out))
    }
}

/// Estimates τ for one traffic series: the upper whisker of its boxplot.
///
/// Returns `None` for a series with no observations.
pub fn estimate_tau(series: &TimeSeries) -> Option<f64> {
    BoxplotStats::from_samples(series.values()).map(|b| b.upper_whisker)
}

/// The paper's effective background threshold: `τ_back = min(τ, 5000)`.
pub fn capped_tau(tau: f64) -> f64 {
    tau.min(TAU_CAP)
}

/// Removes background traffic: every observed value below
/// `min(τ, 5000)` becomes zero; missing values stay missing.
pub fn remove_background(series: &TimeSeries, tau: f64) -> TimeSeries {
    series.threshold_below(capped_tau(tau))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_timeseries::TimeSeries;

    /// A series that is mostly low background with sparse big spikes.
    fn trafficlike() -> TimeSeries {
        let mut v = Vec::new();
        for i in 0..400 {
            v.push(800.0 + (i % 50) as f64 * 10.0); // background 800..1300
        }
        for i in 0..8 {
            v[i * 47 + 3] = 2.0e6 + i as f64 * 1e5; // sparse active bursts
        }
        TimeSeries::per_minute(v)
    }

    #[test]
    fn tau_sits_above_background_below_bursts() {
        let s = trafficlike();
        let tau = estimate_tau(&s).unwrap();
        assert!(tau >= 1_290.0, "tau must cover the background: {tau}");
        assert!(tau < 2.0e6, "tau must exclude the bursts: {tau}");
    }

    #[test]
    fn removal_keeps_only_active() {
        let s = trafficlike();
        let tau = estimate_tau(&s).unwrap();
        let active = remove_background(&s, tau);
        // Everything strictly below tau is zeroed; every burst survives.
        for (&orig, &v) in s.values().iter().zip(active.values()) {
            if orig < capped_tau(tau) {
                assert_eq!(v, 0.0, "value {orig} below tau survived");
            } else {
                assert_eq!(v, orig);
            }
        }
        let bursts = active.values().iter().filter(|&&v| v > 1e6).count();
        assert_eq!(bursts, 8, "every burst survives");
        assert_eq!(active.observed_count(), s.observed_count());
    }

    #[test]
    fn cap_applies() {
        assert_eq!(capped_tau(3_000.0), 3_000.0);
        assert_eq!(capped_tau(80_000.0), TAU_CAP);
        // A heavy background device: values below its own whisker but above
        // the cap survive removal (the paper's threshold is the *tighter*
        // of the two).
        let heavy = TimeSeries::per_minute(vec![30_000.0; 100]);
        let removed = remove_background(&heavy, 100_000.0);
        assert!(removed.values().iter().all(|&v| v == 30_000.0));
    }

    #[test]
    fn groups_partition_the_range() {
        assert_eq!(TauGroup::of(100.0), TauGroup::Small);
        assert_eq!(TauGroup::of(5_000.0), TauGroup::Small);
        assert_eq!(TauGroup::of(5_001.0), TauGroup::Medium);
        assert_eq!(TauGroup::of(40_000.0), TauGroup::Medium);
        assert_eq!(TauGroup::of(40_001.0), TauGroup::Large);
        assert_eq!(TauGroup::Small.label(), "small");
    }

    #[test]
    fn profile_estimation() {
        let inc = trafficlike();
        let out = TimeSeries::per_minute(vec![500.0; 408]);
        let p = BackgroundProfile::estimate(&inc, &out).unwrap();
        assert!(p.tau_in > p.tau_out);
        assert_eq!(p.group(), TauGroup::of(p.tau_in));
        assert!(p.total_threshold() <= 2.0 * TAU_CAP);
    }

    #[test]
    fn empty_series_is_none() {
        let empty = TimeSeries::per_minute(vec![]);
        assert!(estimate_tau(&empty).is_none());
        let missing = TimeSeries::per_minute(vec![f64::NAN; 10]);
        assert!(estimate_tau(&missing).is_none());
    }

    #[test]
    fn missing_values_preserved_by_removal() {
        let s = TimeSeries::per_minute(vec![100.0, f64::NAN, 9_000.0]);
        let r = remove_background(&s, 5_000.0);
        assert_eq!(r.values()[0], 0.0);
        assert!(r.values()[1].is_nan());
        assert_eq!(r.values()[2], 9_000.0);
    }
}
