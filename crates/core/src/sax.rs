//! Symbolic Aggregate approXimation (SAX) — the baseline the paper argues
//! against.
//!
//! Section 2 explains why SAX-based motif tools (GrammarViz, VizTree) do not
//! fit traffic data: SAX assumes z-normalized values are standard normal and
//! places its breakpoints at Gaussian quantiles, but traffic values follow
//! Zipf's law, so *most* of the alphabet ends up describing the empty
//! low-traffic region while the actives collapse into the top symbol.
//! This module implements classic SAX (PAA + Gaussian breakpoints) so the
//! experiment harness can quantify that argument.

use wtts_stats::z_normalize;
use wtts_stats::{gaussian_breakpoints, mindist_cell_gaps};

/// Gaussian breakpoints dividing N(0,1) into `a` equiprobable regions, for
/// alphabet sizes 2–10 (Lin et al. 2007, Table 3). Shared with the pruning
/// sketches via [`wtts_stats::gaussian_breakpoints`], so both symbolize
/// identically.
fn breakpoints(alphabet: usize) -> &'static [f64] {
    gaussian_breakpoints(alphabet)
}

/// Piecewise Aggregate Approximation: mean of each of `segments` equal
/// chunks (missing values skipped within a chunk; an all-missing chunk is
/// `NaN`).
pub fn paa(x: &[f64], segments: usize) -> Vec<f64> {
    assert!(segments > 0, "PAA needs at least one segment");
    assert!(!x.is_empty(), "PAA of an empty series");
    let n = x.len();
    (0..segments)
        .map(|s| {
            let lo = s * n / segments;
            let hi = ((s + 1) * n / segments).max(lo + 1);
            let vals: Vec<f64> = x[lo..hi]
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        })
        .collect()
}

/// Converts a series to its SAX word: z-normalize, PAA, then symbolize with
/// Gaussian breakpoints. Symbol `0` is the lowest region. Missing segments
/// map to symbol `0`.
pub fn sax_word(x: &[f64], segments: usize, alphabet: usize) -> Vec<u8> {
    let z = z_normalize(x);
    let p = paa(&z, segments);
    let bp = breakpoints(alphabet);
    p.iter()
        .map(|&v| {
            if !v.is_finite() {
                return 0;
            }
            bp.iter().take_while(|&&b| v > b).count() as u8
        })
        .collect()
}

/// MINDIST between two SAX words of series length `n` (Lin et al. 2007):
/// `sqrt(n / w) · sqrt(Σ gap(a_i, b_i)²)`, where `gap` is the precomputed
/// breakpoint cell-gap table ([`wtts_stats::mindist_cell_gaps`]) — zero
/// for equal or adjacent symbols. Lower-bounds the Euclidean distance
/// between the z-normalized series, which is what makes SAX index pruning
/// admissible.
///
/// # Panics
/// Panics when the words differ in length, are empty, or contain symbols
/// outside the alphabet.
pub fn sax_mindist(a: &[u8], b: &[u8], n: usize, alphabet: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "SAX words must have equal length");
    assert!(!a.is_empty(), "MINDIST of empty SAX words");
    let w = a.len();
    let gaps = mindist_cell_gaps(alphabet);
    let mut d2 = 0.0;
    for (&sa, &sb) in a.iter().zip(b) {
        assert!(
            (sa as usize) < alphabet && (sb as usize) < alphabet,
            "symbol outside alphabet {alphabet}"
        );
        let g = gaps[sa as usize * alphabet + sb as usize];
        d2 += g * g;
    }
    (n as f64 / w as f64).sqrt() * d2.sqrt()
}

/// Fraction of the alphabet actually used by the word — the paper's
/// complaint made measurable: Zipfian data wastes most symbols.
pub fn alphabet_utilization(word: &[u8], alphabet: usize) -> f64 {
    let used: std::collections::HashSet<u8> = word.iter().copied().collect();
    used.len() as f64 / alphabet as f64
}

/// Fraction of the word occupied by the single most frequent symbol.
pub fn dominant_symbol_share(word: &[u8]) -> f64 {
    if word.is_empty() {
        return 0.0;
    }
    let mut counts = std::collections::HashMap::new();
    for &s in word {
        *counts.entry(s).or_insert(0usize) += 1;
    }
    *counts.values().max().expect("non-empty") as f64 / word.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paa_means() {
        let x = [1.0, 3.0, 5.0, 7.0];
        assert_eq!(paa(&x, 2), vec![2.0, 6.0]);
        assert_eq!(paa(&x, 4), vec![1.0, 3.0, 5.0, 7.0]);
        assert_eq!(paa(&x, 1), vec![4.0]);
    }

    #[test]
    fn paa_skips_missing() {
        let x = [1.0, f64::NAN, 5.0, 7.0];
        let p = paa(&x, 2);
        assert_eq!(p[0], 1.0);
        assert_eq!(p[1], 6.0);
        let all_missing = [f64::NAN, f64::NAN];
        assert!(paa(&all_missing, 1)[0].is_nan());
    }

    #[test]
    fn gaussian_data_uses_the_whole_alphabet() {
        // Smooth sine sweep: z-normalized values spread across regions.
        let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
        let word = sax_word(&x, 32, 6);
        assert!(alphabet_utilization(&word, 6) > 0.8);
    }

    #[test]
    fn zipfian_data_wastes_the_alphabet() {
        // Traffic-like: 95% near-zero background, 5% huge spikes. After
        // z-normalization the background collapses into one region and the
        // spikes into the top one — most symbols go unused.
        let mut x = vec![0.0; 950];
        for i in 0..50 {
            x.push(1e7 + (i as f64) * 1e5);
        }
        let word = sax_word(&x, 100, 8);
        assert!(
            alphabet_utilization(&word, 8) <= 0.5,
            "utilization {}",
            alphabet_utilization(&word, 8)
        );
        assert!(
            dominant_symbol_share(&word) > 0.7,
            "dominant share {}",
            dominant_symbol_share(&word)
        );
    }

    #[test]
    fn symbols_are_ordered_by_magnitude() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let word = sax_word(&x, 10, 4);
        for pair in word.windows(2) {
            assert!(pair[0] <= pair[1], "monotone input must give monotone word");
        }
        assert_eq!(word[0], 0);
        assert_eq!(*word.last().unwrap(), 3);
    }

    #[test]
    fn breakpoints_sizes() {
        for a in 2..=10 {
            assert_eq!(breakpoints(a).len(), a - 1);
        }
    }

    #[test]
    #[should_panic(expected = "alphabet size")]
    fn oversized_alphabet_rejected() {
        let _ = sax_word(&[1.0, 2.0], 2, 11);
    }

    #[test]
    fn mindist_lower_bounds_z_normalized_euclidean() {
        // Two out-of-phase waves; MINDIST between their SAX words must
        // never exceed the true Euclidean distance of the z-series.
        let n = 128;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2 + 2.0).sin()).collect();
        for (w, a) in [(8, 4), (16, 6), (32, 8)] {
            let (wa, wb) = (sax_word(&x, w, a), sax_word(&y, w, a));
            let md = sax_mindist(&wa, &wb, n, a);
            let zx = z_normalize(&x);
            let zy = z_normalize(&y);
            let eu = zx
                .iter()
                .zip(&zy)
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f64>()
                .sqrt();
            assert!(md <= eu + 1e-9, "w={w} a={a}: MINDIST {md} > Euclid {eu}");
        }
    }

    #[test]
    fn mindist_is_symmetric_and_zero_on_close_words() {
        assert_eq!(sax_mindist(&[0, 1, 2], &[1, 2, 3], 30, 4), 0.0);
        let d1 = sax_mindist(&[0, 0, 3], &[3, 1, 0], 30, 4);
        let d2 = sax_mindist(&[3, 1, 0], &[0, 0, 3], 30, 4);
        assert_eq!(d1, d2);
        assert!(d1 > 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mindist_rejects_length_mismatch() {
        let _ = sax_mindist(&[0, 1], &[0], 10, 4);
    }

    #[test]
    fn dominant_share_edge_cases() {
        assert_eq!(dominant_symbol_share(&[]), 0.0);
        assert_eq!(dominant_symbol_share(&[1, 1, 1]), 1.0);
        assert!((dominant_symbol_share(&[0, 1, 1, 2]) - 0.5).abs() < 1e-12);
    }
}
