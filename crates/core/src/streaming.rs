//! Streaming (online) variants of the framework — the paper's stated future
//! work: "integrating our time series correlation and motif extraction in a
//! streaming big data analytics platform, such as Apache Storm or Amazon
//! Kinesis".
//!
//! Three building blocks:
//!
//! * [`OnlinePearson`] — O(1)-update Pearson correlation over a stream of
//!   sample pairs (Welford-style accumulation).
//! * [`WindowAccumulator`] — folds a per-minute measurement stream into
//!   aggregated, calendar-aligned daily or weekly windows, emitting each
//!   window the moment it completes.
//! * [`MotifMatcher`] — matches each completed window against a library of
//!   motif templates with the Definition 1 similarity, maintaining online
//!   support counts and flagging novel behavior.

use crate::similarity::cor;
use wtts_timeseries::{Minute, Weekday, WindowKind, MINUTES_PER_DAY, MINUTES_PER_WEEK};

/// Numerically stable online Pearson correlation over `(x, y)` pairs.
#[derive(Debug, Clone, Default)]
pub struct OnlinePearson {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    m2_x: f64,
    m2_y: f64,
    cov: f64,
}

impl OnlinePearson {
    /// An empty accumulator.
    pub fn new() -> OnlinePearson {
        OnlinePearson::default()
    }

    /// Feeds one pair; non-finite pairs are skipped (pairwise-complete
    /// semantics, like the batch measure).
    pub fn push(&mut self, x: f64, y: f64) {
        if !x.is_finite() || !y.is_finite() {
            return;
        }
        self.n += 1;
        let n = self.n as f64;
        let dx = x - self.mean_x;
        self.mean_x += dx / n;
        let dy = y - self.mean_y;
        self.mean_y += dy / n;
        // Note the asymmetric update uses the *new* mean of x and old-delta
        // of y, the standard co-moment recurrence.
        self.m2_x += dx * (x - self.mean_x);
        self.m2_y += dy * (y - self.mean_y);
        self.cov += dx * (y - self.mean_y);
    }

    /// Number of accumulated pairs.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether no pair has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current correlation estimate; `None` below 2 pairs or for constant
    /// streams.
    pub fn correlation(&self) -> Option<f64> {
        if self.n < 2 || self.m2_x <= 0.0 || self.m2_y <= 0.0 {
            return None;
        }
        Some((self.cov / (self.m2_x.sqrt() * self.m2_y.sqrt())).clamp(-1.0, 1.0))
    }

    /// The raw accumulator state `(n, mean_x, mean_y, m2_x, m2_y, cov)`,
    /// for bit-exact serialization by the durable ingest layer.
    pub(crate) fn raw_parts(&self) -> (u64, [f64; 5]) {
        (
            self.n,
            [self.mean_x, self.mean_y, self.m2_x, self.m2_y, self.cov],
        )
    }

    /// Rebuilds an accumulator from [`OnlinePearson::raw_parts`] output.
    pub(crate) fn from_raw_parts(n: u64, parts: [f64; 5]) -> OnlinePearson {
        OnlinePearson {
            n,
            mean_x: parts[0],
            mean_y: parts[1],
            m2_x: parts[2],
            m2_y: parts[3],
            cov: parts[4],
        }
    }

    /// Merges another accumulator (parallel aggregation, Chan's method).
    pub fn merge(&mut self, other: &OnlinePearson) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let dx = other.mean_x - self.mean_x;
        let dy = other.mean_y - self.mean_y;
        self.m2_x += other.m2_x + dx * dx * na * nb / n;
        self.m2_y += other.m2_y + dy * dy * na * nb / n;
        self.cov += other.cov + dx * dy * na * nb / n;
        self.mean_x += dx * nb / n;
        self.mean_y += dy * nb / n;
        self.n += other.n;
    }
}

/// A sample that precedes the accumulator's current window — late data the
/// stream already moved past.
///
/// In a long-running pipeline one delayed report must not abort ingest for
/// a whole shard, so [`WindowAccumulator::try_push`] returns this as a
/// recoverable error for the caller to count and drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LateSample {
    /// Timestamp of the late sample.
    pub at: Minute,
    /// Start of the window currently being accumulated.
    pub window_start: Minute,
}

impl std::fmt::Display for LateSample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "late sample at {} (current window starts at {})",
            self.at, self.window_start
        )
    }
}

impl std::error::Error for LateSample {}

/// A completed calendar window emitted by [`WindowAccumulator`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedWindow {
    /// Daily or weekly.
    pub kind: WindowKind,
    /// Week index of the window.
    pub week: u32,
    /// Weekday for daily windows.
    pub weekday: Option<Weekday>,
    /// Aggregated bin values (missing bins are `NaN`).
    pub values: Vec<f64>,
}

/// Folds a stream of per-minute samples into aggregated daily or weekly
/// windows, emitting each window when the stream passes its end.
///
/// Samples must arrive in non-decreasing time order; gaps simply leave
/// missing bins, matching the batch pipeline's semantics.
#[derive(Debug)]
pub struct WindowAccumulator {
    kind: WindowKind,
    bin_minutes: u32,
    window_minutes: u32,
    current_start: u32,
    bins: Vec<f64>,
    seen: Vec<bool>,
}

impl WindowAccumulator {
    /// Creates an accumulator for daily or weekly windows with bins of
    /// `bin_minutes` (which must divide the window length).
    ///
    /// # Panics
    /// Panics if `bin_minutes` does not divide the window length.
    pub fn new(kind: WindowKind, bin_minutes: u32) -> WindowAccumulator {
        let window_minutes = match kind {
            WindowKind::Daily => MINUTES_PER_DAY,
            WindowKind::Weekly => MINUTES_PER_WEEK,
        };
        assert!(
            window_minutes % bin_minutes == 0,
            "bin width must divide the window length"
        );
        let n_bins = (window_minutes / bin_minutes) as usize;
        WindowAccumulator {
            kind,
            bin_minutes,
            window_minutes,
            current_start: 0,
            bins: vec![0.0; n_bins],
            seen: vec![false; n_bins],
        }
    }

    /// Feeds one per-minute sample, returning any windows completed by the
    /// stream's advance (more than one if the stream jumped a gap).
    ///
    /// # Panics
    /// Panics if `at` precedes the current window. Streaming consumers that
    /// must survive late data should use [`WindowAccumulator::try_push`].
    pub fn push(&mut self, at: Minute, bytes: f64) -> Vec<CompletedWindow> {
        match self.try_push(at, bytes) {
            Ok(out) => out,
            Err(e) => panic!("stream must be time-ordered: {e}"),
        }
    }

    /// Feeds one per-minute sample, returning `Err` instead of panicking
    /// when `at` precedes the current window (the accumulator is unchanged
    /// in that case — the late sample is the caller's to count and drop).
    pub fn try_push(&mut self, at: Minute, bytes: f64) -> Result<Vec<CompletedWindow>, LateSample> {
        if at.0 < self.current_start {
            return Err(LateSample {
                at,
                window_start: Minute(self.current_start),
            });
        }
        let mut out = Vec::new();
        while at.0 >= self.current_start + self.window_minutes {
            out.push(self.seal());
        }
        if bytes.is_finite() {
            let idx = ((at.0 - self.current_start) / self.bin_minutes) as usize;
            self.bins[idx] += bytes;
            self.seen[idx] = true;
        }
        Ok(out)
    }

    /// Peeks at the current partial window (e.g. at end of stream) without
    /// consuming it: the accumulator keeps accumulating into the same
    /// window, so an in-order sample pushed after `flush` still lands in it.
    ///
    /// (An earlier version sealed the partial window and advanced a full
    /// window length, which made any subsequent in-order `push` panic as
    /// "late" — flush-then-push is the normal shutdown-then-resume sequence
    /// of a checkpointing pipeline, so flushing must be non-destructive.)
    pub fn flush(&self) -> CompletedWindow {
        self.window_snapshot()
    }

    /// Start of the window currently being accumulated.
    pub fn current_window_start(&self) -> Minute {
        Minute(self.current_start)
    }

    /// The raw accumulation state `(current_start, bins, seen)`, for
    /// bit-exact serialization by the durable ingest layer.
    pub(crate) fn raw_parts(&self) -> (u32, &[f64], &[bool]) {
        (self.current_start, &self.bins, &self.seen)
    }

    /// Rebuilds an accumulator from [`WindowAccumulator::raw_parts`] output.
    /// `bins`/`seen` lengths must match the `(kind, bin_minutes)` geometry.
    pub(crate) fn from_raw_parts(
        kind: WindowKind,
        bin_minutes: u32,
        current_start: u32,
        bins: Vec<f64>,
        seen: Vec<bool>,
    ) -> WindowAccumulator {
        let mut acc = WindowAccumulator::new(kind, bin_minutes);
        assert_eq!(acc.bins.len(), bins.len(), "snapshot bin-count mismatch");
        acc.current_start = current_start;
        acc.bins = bins;
        acc.seen = seen;
        acc
    }

    fn window_snapshot(&self) -> CompletedWindow {
        let start = Minute(self.current_start);
        let values = self
            .bins
            .iter()
            .zip(&self.seen)
            .map(|(&v, &s)| if s { v } else { f64::NAN })
            .collect();
        CompletedWindow {
            kind: self.kind,
            week: start.week(),
            weekday: matches!(self.kind, WindowKind::Daily).then(|| start.weekday()),
            values,
        }
    }

    fn seal(&mut self) -> CompletedWindow {
        let snapshot = self.window_snapshot();
        for b in &mut self.bins {
            *b = 0.0;
        }
        for s in &mut self.seen {
            *s = false;
        }
        self.current_start += self.window_minutes;
        snapshot
    }
}

/// One motif template the matcher knows about.
#[derive(Debug, Clone, PartialEq)]
pub struct MotifTemplate {
    /// Human-readable name ("late evening users").
    pub name: String,
    /// The motif's average pattern.
    pub pattern: Vec<f64>,
}

/// Outcome of matching one window.
#[derive(Debug, Clone, PartialEq)]
pub enum MatchOutcome {
    /// The window matched template `index` with the given similarity.
    Matched {
        /// Index into the template list.
        index: usize,
        /// Correlation similarity achieved.
        similarity: f64,
    },
    /// No template reached the threshold — novel behavior.
    Novel,
    /// The window carried too few observations to judge.
    Insufficient,
}

/// Matches one window against a template library with the Definition 1
/// similarity, returning the best template at or above `threshold`.
///
/// This is the stateless core of [`MotifMatcher::observe`]; the fleet-ingest
/// worker shards call it directly so many gateways can share one template
/// slice while keeping their own support counts.
pub fn best_match(templates: &[MotifTemplate], threshold: f64, window: &[f64]) -> MatchOutcome {
    if window.iter().filter(|v| v.is_finite()).count() < 3 {
        return MatchOutcome::Insufficient;
    }
    let mut best: Option<(usize, f64)> = None;
    for (i, t) in templates.iter().enumerate() {
        if t.pattern.len() != window.len() {
            continue;
        }
        let c = cor(&t.pattern, window);
        if c >= threshold && best.is_none_or(|(_, bc)| c > bc) {
            best = Some((i, c));
        }
    }
    match best {
        Some((index, similarity)) => MatchOutcome::Matched { index, similarity },
        None => MatchOutcome::Novel,
    }
}

/// Streams windows against a motif-template library, keeping online support
/// counts — the "assign incoming behavior to known patterns" half of a
/// streaming deployment.
#[derive(Debug, Clone)]
pub struct MotifMatcher {
    templates: Vec<MotifTemplate>,
    threshold: f64,
    support: Vec<usize>,
    novel: usize,
}

impl MotifMatcher {
    /// Creates a matcher over `templates` with a similarity `threshold`
    /// (the paper's motif φ = 0.8 is the natural choice).
    pub fn new(templates: Vec<MotifTemplate>, threshold: f64) -> MotifMatcher {
        let n = templates.len();
        MotifMatcher {
            templates,
            threshold,
            support: vec![0; n],
            novel: 0,
        }
    }

    /// Matches one window and updates the counts.
    pub fn observe(&mut self, window: &[f64]) -> MatchOutcome {
        let outcome = best_match(&self.templates, self.threshold, window);
        match outcome {
            MatchOutcome::Matched { index, .. } => self.support[index] += 1,
            MatchOutcome::Novel => self.novel += 1,
            MatchOutcome::Insufficient => {}
        }
        outcome
    }

    /// Current support counts per template.
    pub fn support(&self) -> &[usize] {
        &self.support
    }

    /// Number of windows that matched nothing.
    pub fn novel_count(&self) -> usize {
        self.novel
    }

    /// The templates.
    pub fn templates(&self) -> &[MotifTemplate] {
        &self.templates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_stats::pearson;

    #[test]
    fn online_pearson_matches_batch() {
        let x: Vec<f64> = (0..200).map(|i| ((i * 13) % 31) as f64).collect();
        let y: Vec<f64> = (0..200)
            .map(|i| ((i * 13) % 31) as f64 * 2.0 + ((i % 5) as f64))
            .collect();
        let mut online = OnlinePearson::new();
        for (&a, &b) in x.iter().zip(&y) {
            online.push(a, b);
        }
        let batch = pearson(&x, &y);
        let stream = online.correlation().unwrap();
        assert!((stream - batch.value).abs() < 1e-10);
        assert_eq!(online.len(), 200);
    }

    #[test]
    fn online_pearson_skips_missing() {
        let mut online = OnlinePearson::new();
        online.push(1.0, 2.0);
        online.push(f64::NAN, 5.0);
        online.push(2.0, 4.0);
        online.push(3.0, 6.0);
        assert_eq!(online.len(), 3);
        assert!((online.correlation().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn online_pearson_merge_equals_sequential() {
        let pairs: Vec<(f64, f64)> = (0..100)
            .map(|i| (((i * 7) % 13) as f64, ((i * 11) % 17) as f64))
            .collect();
        let mut whole = OnlinePearson::new();
        for &(a, b) in &pairs {
            whole.push(a, b);
        }
        let mut left = OnlinePearson::new();
        let mut right = OnlinePearson::new();
        for &(a, b) in &pairs[..37] {
            left.push(a, b);
        }
        for &(a, b) in &pairs[37..] {
            right.push(a, b);
        }
        left.merge(&right);
        assert_eq!(left.len(), whole.len());
        assert!((left.correlation().unwrap() - whole.correlation().unwrap()).abs() < 1e-10);
    }

    #[test]
    fn degenerate_online_pearson() {
        let mut p = OnlinePearson::new();
        assert!(p.correlation().is_none());
        assert!(p.is_empty());
        p.push(1.0, 1.0);
        assert!(p.correlation().is_none());
        p.push(1.0, 2.0); // x constant
        assert!(p.correlation().is_none());
    }

    #[test]
    fn accumulator_emits_complete_days() {
        let mut acc = WindowAccumulator::new(WindowKind::Daily, 180);
        let mut emitted = Vec::new();
        for m in 0..(2 * MINUTES_PER_DAY) {
            emitted.extend(acc.push(Minute(m), 10.0));
        }
        assert_eq!(emitted.len(), 1, "one full day sealed by the second day");
        let w = &emitted[0];
        assert_eq!(w.kind, WindowKind::Daily);
        assert_eq!(w.week, 0);
        assert_eq!(w.weekday, Some(Weekday::Monday));
        assert_eq!(w.values.len(), 8);
        for v in &w.values {
            assert!((v - 1800.0).abs() < 1e-9, "180 minutes x 10 bytes");
        }
        let tail = acc.flush();
        assert_eq!(tail.weekday, Some(Weekday::Tuesday));
    }

    #[test]
    fn accumulator_handles_gaps() {
        let mut acc = WindowAccumulator::new(WindowKind::Daily, 720);
        acc.push(Minute(0), 5.0);
        // Jump three days ahead: two whole days pass with no samples.
        let emitted = acc.push(Minute(3 * MINUTES_PER_DAY), 7.0);
        assert_eq!(emitted.len(), 3);
        assert_eq!(emitted[0].values[0], 5.0);
        assert!(emitted[0].values[1].is_nan());
        assert!(emitted[1].values.iter().all(|v| v.is_nan()));
        assert!(emitted[2].values.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn accumulator_weekly_windows() {
        let mut acc = WindowAccumulator::new(WindowKind::Weekly, 480);
        let emitted = acc.push(Minute(MINUTES_PER_WEEK + 5), 1.0);
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].kind, WindowKind::Weekly);
        assert_eq!(emitted[0].values.len(), 21);
        assert_eq!(emitted[0].weekday, None);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn accumulator_rejects_time_travel() {
        let mut acc = WindowAccumulator::new(WindowKind::Daily, 60);
        let _ = acc.push(Minute(MINUTES_PER_DAY * 2), 1.0);
        let _ = acc.push(Minute(0), 1.0);
    }

    #[test]
    fn flush_then_push_keeps_accumulating() {
        // Regression: flush used to seal the partial window and advance
        // `current_start` a full window, so the next in-order push panicked
        // with "stream must be time-ordered".
        let mut acc = WindowAccumulator::new(WindowKind::Daily, 720);
        acc.push(Minute(10), 5.0);
        let partial = acc.flush();
        assert_eq!(partial.values[0], 5.0);
        assert!(partial.values[1].is_nan());
        assert_eq!(acc.current_window_start(), Minute(0));

        // The very next minute must still be accepted, into the same window.
        let emitted = acc.push(Minute(11), 7.0);
        assert!(emitted.is_empty());
        let partial = acc.flush();
        assert_eq!(partial.values[0], 12.0, "flush must not drop accumulation");

        // And once the stream passes the window end, it seals normally.
        let emitted = acc.push(Minute(MINUTES_PER_DAY), 1.0);
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].values[0], 12.0);
    }

    #[test]
    fn flush_is_idempotent() {
        let mut acc = WindowAccumulator::new(WindowKind::Daily, 720);
        acc.push(Minute(3), 2.0);
        let (a, b) = (acc.flush(), acc.flush());
        assert_eq!(a.week, b.week);
        assert_eq!(a.weekday, b.weekday);
        // Compare bin-by-bin (NaN == NaN would fail a direct comparison).
        assert_eq!(a.values.len(), b.values.len());
        for (x, y) in a.values.iter().zip(&b.values) {
            assert!(x == y || (x.is_nan() && y.is_nan()));
        }
        assert_eq!(a.values[0], 2.0);
    }

    #[test]
    fn try_push_rejects_late_sample_recoverably() {
        let mut acc = WindowAccumulator::new(WindowKind::Daily, 60);
        let _ = acc.push(Minute(MINUTES_PER_DAY * 2), 1.0);
        let err = acc.try_push(Minute(5), 1.0).unwrap_err();
        assert_eq!(
            err,
            LateSample {
                at: Minute(5),
                window_start: Minute(MINUTES_PER_DAY * 2)
            }
        );
        assert!(err.to_string().contains("late sample"));
        // The accumulator survives and keeps accepting in-order samples.
        let out = acc.try_push(Minute(MINUTES_PER_DAY * 2 + 1), 3.0).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn best_match_is_stateless_core_of_observe() {
        let t = vec![MotifTemplate {
            name: "t".into(),
            pattern: vec![1.0, 2.0, 30.0, 40.0],
        }];
        let w = [2.0, 3.0, 31.0, 41.0];
        let direct = best_match(&t, 0.8, &w);
        let mut matcher = MotifMatcher::new(t, 0.8);
        assert_eq!(matcher.observe(&w), direct);
        assert!(matches!(direct, MatchOutcome::Matched { index: 0, .. }));
    }

    #[test]
    fn matcher_assigns_and_counts() {
        let evening = MotifTemplate {
            name: "evening".into(),
            pattern: vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 900.0, 950.0],
        };
        let morning = MotifTemplate {
            name: "morning".into(),
            pattern: vec![1.0, 1.0, 800.0, 850.0, 1.0, 1.0, 1.0, 1.0],
        };
        let mut matcher = MotifMatcher::new(vec![evening, morning], 0.8);

        let w_evening = vec![2.0, 3.0, 1.0, 2.0, 4.0, 2.0, 1000.0, 1100.0];
        match matcher.observe(&w_evening) {
            MatchOutcome::Matched { index, similarity } => {
                assert_eq!(index, 0);
                assert!(similarity > 0.8);
            }
            other => panic!("expected evening match, got {other:?}"),
        }

        let w_flat = vec![5.0; 8];
        assert_eq!(matcher.observe(&w_flat), MatchOutcome::Novel);

        let w_sparse = vec![f64::NAN; 8];
        assert_eq!(matcher.observe(&w_sparse), MatchOutcome::Insufficient);

        assert_eq!(matcher.support(), &[1, 0]);
        assert_eq!(matcher.novel_count(), 1);
    }

    #[test]
    fn matcher_prefers_best_template() {
        let a = MotifTemplate {
            name: "a".into(),
            pattern: vec![0.0, 0.0, 10.0, 10.0],
        };
        let b = MotifTemplate {
            name: "b".into(),
            pattern: vec![0.0, 5.0, 10.0, 10.0],
        };
        let mut matcher = MotifMatcher::new(vec![a, b], 0.5);
        // Exactly b's shape.
        match matcher.observe(&[1.0, 6.0, 11.0, 11.0]) {
            MatchOutcome::Matched { index, .. } => assert_eq!(index, 1),
            other => panic!("unexpected {other:?}"),
        }
    }
}
